"""repro — MVASD: performance modeling of multi-tier web applications
with varying service demands.

Reproduction of Kattepur & Nambiar, *Performance Modeling of
Multi-tiered Web Applications with Varying Service Demands* (IJNC 6(1),
2016 / IPPS 2015): exact multi-server Mean Value Analysis extended with
spline-interpolated, concurrency-varying service demands, plus the
entire evaluation substrate — a discrete-event simulation testbed of
three-tier deployments, a Grinder-style load-test harness, VINS and
JPetStore application models, Chebyshev test-point design and the
deviation-scoring machinery of the paper's tables and figures.

Quick start::

    from repro import jpetstore_application, predict_performance

    app = jpetstore_application()
    report = predict_performance(app, n_design_points=5, max_population=280)
    print(report.prediction.summary())

Subpackages
-----------
``repro.core``
    MVA solver family (Algorithms 1-3 and baselines/extensions).
``repro.engine``
    Batched solver kernels and the parallel sweep executor.
``repro.interpolate``
    Cubic/smoothing splines, Chebyshev design, demand models.
``repro.simulation``
    Discrete-event closed-network simulator (the measured testbed).
``repro.apps``
    VINS and JPetStore application models.
``repro.loadtest``
    Grinder-style load tests, monitors, sweeps, demand extraction.
``repro.workflow``
    The Fig. 17 design->measure->predict pipeline.
``repro.analysis``
    Eq. 15 deviations and Tables-4/5 comparisons.
``repro.solvers``
    Unified solver registry and the ``solve(scenario)`` facade.
"""

from .analysis import (
    DeviationReport,
    ModelComparison,
    compare_models,
    deviation_against_sweep,
    mean_percent_deviation,
)
from .apps import (
    Application,
    DemandProfile,
    jpetstore_application,
    vins_application,
)
from .core import (
    ClosedNetwork,
    MVAResult,
    Station,
    approximate_multiserver_mva,
    exact_load_dependent_mva,
    exact_multiclass_mva,
    exact_multiserver_mva,
    exact_mva,
    mvasd,
    schweitzer_amva,
)
from .engine import (
    BatchedMVAResult,
    ScenarioGrid,
    batched_exact_mva,
    batched_mvasd,
    batched_schweitzer_amva,
    parallel_map,
    spawn_seeds,
)
from .interpolate import (
    CubicSpline,
    DemandTable,
    ServiceDemandModel,
    SmoothingSpline,
    chebyshev_nodes,
    concurrency_test_points,
)
from .loadtest import (
    GrinderProperties,
    LoadTest,
    LoadTestSweep,
    run_sweep,
)
from .simulation import SimulationResult, simulate_closed_network
from .solvers import (
    Scenario,
    SolverSpec,
    WorkloadClass,
    capability_matrix,
    get_solver,
    list_solvers,
    register_solver,
    solve,
    solve_stack,
    solver_names,
)
from .workflow import (
    PipelineReport,
    design_points,
    predict_performance,
    predict_performance_grid,
)

__version__ = "1.0.0"

__all__ = [
    "Application",
    "BatchedMVAResult",
    "ClosedNetwork",
    "CubicSpline",
    "DemandProfile",
    "DemandTable",
    "DeviationReport",
    "GrinderProperties",
    "LoadTest",
    "LoadTestSweep",
    "MVAResult",
    "ModelComparison",
    "PipelineReport",
    "Scenario",
    "ScenarioGrid",
    "ServiceDemandModel",
    "SimulationResult",
    "SmoothingSpline",
    "SolverSpec",
    "Station",
    "WorkloadClass",
    "approximate_multiserver_mva",
    "batched_exact_mva",
    "batched_mvasd",
    "batched_schweitzer_amva",
    "capability_matrix",
    "chebyshev_nodes",
    "compare_models",
    "concurrency_test_points",
    "design_points",
    "deviation_against_sweep",
    "exact_load_dependent_mva",
    "exact_multiclass_mva",
    "exact_multiserver_mva",
    "exact_mva",
    "get_solver",
    "jpetstore_application",
    "list_solvers",
    "mean_percent_deviation",
    "mvasd",
    "parallel_map",
    "predict_performance",
    "predict_performance_grid",
    "register_solver",
    "run_sweep",
    "schweitzer_amva",
    "simulate_closed_network",
    "solve",
    "solve_stack",
    "solver_names",
    "spawn_seeds",
    "vins_application",
    "__version__",
]
