"""Prediction-accuracy metrics (paper eq. 15).

The paper scores every model by the mean absolute percentage deviation
of its predictions against the ``M`` measured observations:

    ``%Deviation = (1/M) * sum_m |Predicted(m) - Measured(m)| / Measured(m) * 100``

:func:`mean_percent_deviation` is the raw metric;
:func:`deviation_against_sweep` matches an
:class:`~repro.core.results.MVAResult` to a measured sweep by
interpolating the model trajectory at the measured concurrency levels
(predictions exist at every integer population, measurements only at
the swept grid).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.results import MVAResult
from ..loadtest.runner import LoadTestSweep

__all__ = ["mean_percent_deviation", "deviation_against_sweep", "DeviationReport"]


def mean_percent_deviation(predicted, measured) -> float:
    """Eq. 15 over matched prediction/measurement pairs.

    Raises on empty inputs, mismatched lengths or non-positive measured
    values (the metric divides by them).
    """
    p = np.asarray(predicted, dtype=float)
    m = np.asarray(measured, dtype=float)
    if p.shape != m.shape or p.ndim != 1 or p.size == 0:
        raise ValueError(f"predicted/measured must be equal-length 1-D, got {p.shape}/{m.shape}")
    if np.any(m <= 0):
        raise ValueError("measured values must be strictly positive")
    return float((np.abs(p - m) / m).mean() * 100.0)


class DeviationReport(dict):
    """``{metric: %deviation}`` mapping with a stable rendering order."""

    _ORDER = ("throughput", "cycle_time", "response_time", "utilization")

    def rows(self) -> list[tuple[str, float]]:
        keys = [k for k in self._ORDER if k in self] + [
            k for k in self if k not in self._ORDER
        ]
        return [(k, self[k]) for k in keys]


def deviation_against_sweep(
    result: MVAResult,
    sweep: LoadTestSweep,
    levels: Sequence[int] | None = None,
    stations_for_utilization: Sequence[str] = (),
) -> DeviationReport:
    """Score a solver trajectory against measured load tests.

    Parameters
    ----------
    result:
        Any MVA-family result covering at least the measured levels.
    sweep:
        The measured load-test sweep.
    levels:
        Concurrency levels to score at (default: every swept level that
        the result covers).
    stations_for_utilization:
        Optional station names whose predicted-vs-measured utilization is
        scored too (Fig. 9); reported as ``"utilization:<name>"``.

    Returns
    -------
    DeviationReport
        With at least ``"throughput"`` and ``"cycle_time"`` entries
        (the paper's Table 4/5 metrics), both in percent.
    """
    if levels is None:
        levels = [int(l) for l in sweep.levels if l <= result.max_population]
    else:
        levels = [int(l) for l in levels]
        beyond = [l for l in levels if l > result.max_population]
        if beyond:
            raise ValueError(f"result only covers N<={result.max_population}, asked for {beyond}")
    if not levels:
        raise ValueError("no comparable levels between result and sweep")

    sub = sweep.subset(levels)
    lv = np.asarray(levels, dtype=float)
    report = DeviationReport()
    report["throughput"] = mean_percent_deviation(
        result.interpolate_throughput(lv), sub.throughput
    )
    report["cycle_time"] = mean_percent_deviation(
        result.interpolate_cycle_time(lv), sub.cycle_time
    )
    for name in stations_for_utilization:
        predicted = np.interp(lv, result.populations, result.utilization_of(name))
        measured = sub.utilization_of(name)
        if np.any(measured <= 0):
            raise ValueError(f"station {name!r} has zero measured utilization")
        report[f"utilization:{name}"] = mean_percent_deviation(predicted, measured)
    return report
