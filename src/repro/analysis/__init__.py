"""Prediction scoring, comparison (eq. 15, Tables 4-5), what-if planning
and the curve-fitting extrapolation baseline."""

from .bottlenecks import (
    BottleneckRanking,
    bottleneck_migration,
    bottleneck_ranking,
    upgrade_leverage,
)
from .compare import ModelComparison, compare_models
from .deviation import DeviationReport, deviation_against_sweep, mean_percent_deviation
from .extrapolation import ThroughputExtrapolator
from .tables import format_series, format_table
from .whatif import (
    SLA,
    Scenario,
    ScenarioOutcome,
    evaluate_scenarios,
    max_users_within_sla,
    outcomes_table,
)

__all__ = [
    "BottleneckRanking",
    "DeviationReport",
    "ModelComparison",
    "SLA",
    "bottleneck_migration",
    "bottleneck_ranking",
    "upgrade_leverage",
    "Scenario",
    "ScenarioOutcome",
    "ThroughputExtrapolator",
    "compare_models",
    "deviation_against_sweep",
    "evaluate_scenarios",
    "format_series",
    "format_table",
    "max_users_within_sla",
    "mean_percent_deviation",
    "outcomes_table",
]
