"""Plain-text table rendering for benches and reports.

Every bench prints the same rows/series the paper's tables and figures
report; this module renders them as aligned monospace tables so the
output is directly comparable with the paper side by side.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series"]


def _cell(value, precision: int) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    precision: int = 2,
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table.

    Floats are formatted to ``precision`` decimals; ``None`` renders
    empty.  Column widths adapt to content.
    """
    str_rows = [[_cell(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: dict[str, Sequence],
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render one x-column plus named y-series — a figure as a table."""
    headers = [x_label, *series.keys()]
    columns = [list(x_values)] + [list(v) for v in series.values()]
    lengths = {len(c) for c in columns}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: { {h: len(c) for h, c in zip(headers, columns)} }")
    rows = list(zip(*columns))
    return format_table(headers, rows, precision=precision, title=title)
