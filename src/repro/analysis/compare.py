"""Model-comparison harness for the paper's Tables 4 and 5.

Given one measured load-test sweep, build every competing model the
paper scores —

* **MVASD** (Algorithm 3, multi-server, spline demands) — the paper's
  contribution;
* **MVASD: Single-Server** — demands normalized by core count (Fig. 8);
* **MVA i** (Algorithm 2 with demands frozen at concurrency ``i``) for
  a set of sampling levels;
* optionally the throughput-axis MVASD (Fig. 11) and the approximate
  multi-server baseline —

solve each over the full population range and score it with eq. 15
against the measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.results import MVAResult
from ..loadtest.runner import LoadTestSweep, extract_demands
from ..solvers import USE_DEFAULT_CACHE, Scenario, solve
from .deviation import DeviationReport, deviation_against_sweep
from .tables import format_table

__all__ = ["ModelComparison", "compare_models"]


@dataclass(frozen=True)
class ModelComparison:
    """Results and deviation scores of every compared model."""

    application: str
    max_population: int
    results: dict[str, MVAResult]
    deviations: dict[str, DeviationReport]

    def best(self, metric: str = "throughput") -> str:
        """Model name with the lowest deviation on the given metric."""
        return min(self.deviations, key=lambda name: self.deviations[name][metric])

    def table(self, metrics: Sequence[str] = ("throughput", "cycle_time")) -> str:
        """Render the Table-4/5-style deviation summary."""
        rows = []
        for metric in metrics:
            for name, report in self.deviations.items():
                rows.append((metric, name, report[metric]))
        return format_table(
            ("Metric", "Model", "Deviation (%)"),
            rows,
            precision=2,
            title=f"Mean deviation vs measured — {self.application}",
        )


def compare_models(
    sweep: LoadTestSweep,
    max_population: int | None = None,
    mva_levels: Sequence[int] | None = None,
    include_single_server: bool = True,
    include_throughput_axis: bool = False,
    include_approximate: bool = False,
    demand_kind: str = "cubic",
    cache=USE_DEFAULT_CACHE,
) -> ModelComparison:
    """Run the full Tables-4/5 comparison for one sweep.

    Parameters
    ----------
    sweep:
        Measured load tests (provides demands and the scoring target).
    max_population:
        Population range for every solver (default: top swept level).
    mva_levels:
        Concurrency levels ``i`` for the ``MVA i`` variants (default:
        first, middle and last swept levels).
    include_single_server / include_throughput_axis / include_approximate:
        Toggle the optional baselines.
    demand_kind:
        Interpolation family for the MVASD demand table.
    cache:
        Solver result cache for every ``solve`` call (default: the
        process-global cache, so re-running the comparison on the same
        sweep is free); ``None`` bypasses.
    """
    app = sweep.application
    network = app.network
    top = int(sweep.levels[-1])
    n_max = int(max_population) if max_population is not None else top
    if n_max < 1:
        raise ValueError(f"max_population must be >= 1, got {n_max}")
    if mva_levels is None:
        mid = int(sweep.levels[len(sweep.levels) // 2])
        mva_levels = sorted({int(sweep.levels[0]), mid, top})

    results: dict[str, MVAResult] = {}
    table = sweep.demand_table(kind=demand_kind)
    fitted = Scenario(network, n_max, demand_functions=table.functions())
    results["MVASD"] = solve(fitted, method="mvasd", cache=cache)

    if include_single_server:
        results["MVASD: Single-Server"] = solve(
            fitted, method="mvasd", single_server=True, cache=cache
        )
    if include_throughput_axis:
        xtable = sweep.demand_table(kind=demand_kind, axis="throughput")
        results["MVASD: Throughput-Axis"] = solve(
            Scenario(network, n_max, demand_functions=xtable.functions()),
            method="mvasd",
            demand_axis="throughput",
            cache=cache,
        )

    by_level = {int(lvl): run for lvl, run in zip(sweep.levels, sweep.runs)}
    for level in mva_levels:
        if level not in by_level:
            raise KeyError(f"MVA level {level} was not swept (have {sorted(by_level)})")
        demands_at = extract_demands(by_level[level], app)
        frozen = Scenario(
            network,
            n_max,
            demands=[demands_at[name] for name in network.station_names],
        )
        # Deviation scoring only needs system-level trajectories; skip the
        # per-station complement convolutions (O(K N^2) each).
        results[f"MVA {level}"] = solve(
            frozen, method="exact-multiserver-mva", station_detail=False, cache=cache
        )
        if include_approximate:
            results[f"ApproxMVA {level}"] = solve(
                frozen, method="approx-multiserver-mva", cache=cache
            )

    deviations = {
        name: deviation_against_sweep(result, sweep)
        for name, result in results.items()
    }
    return ModelComparison(
        application=app.name,
        max_population=n_max,
        results=results,
        deviations=deviations,
    )
