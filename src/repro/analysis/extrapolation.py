"""Curve-fitting extrapolation of load-test results (the Perfext baseline).

The paper's related work (its ref. [4], Dattagupta et al.) predicts
high-concurrency performance by *extrapolating the measured curves
directly* — linear regression through the rising region and a sigmoid
for saturation — with no queueing model at all.  This module implements
that baseline so the model-based MVASD can be compared against the
model-free alternative:

* :class:`ThroughputExtrapolator` fits one of three families to the
  measured throughput points: ``"knee"`` (default) — the smooth-min
  ``X(N) = a N / (1 + (a N / X_max)^p)^(1/p)``, which matches the
  linear-then-plateau shape closed systems actually produce (asymptotes
  ``a N`` and ``X_max``, knee sharpness ``p``); ``"saturating"`` —
  ``X_max (1 - exp(-N / tau))``; or ``"logistic"`` — the sigmoid of the
  Perfext paper;
* cycle time follows from Little's law, ``R + Z = N / X(N)`` — the same
  closure the measured system obeys.

Strengths and weaknesses mirror the paper's discussion: interpolation
inside the sampled range is excellent, but the extrapolated plateau is
only as good as how close to saturation the samples reach — unlike
MVASD, which carries the bottleneck structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import curve_fit

__all__ = ["ThroughputExtrapolator"]


def _saturating(n, x_max, tau):
    return x_max * (1.0 - np.exp(-n / tau))


def _logistic(n, x_max, n0, width):
    return x_max / (1.0 + np.exp(-(n - n0) / width))


def _knee(n, slope, x_max, p):
    linear = slope * np.asarray(n, dtype=float)
    return linear / (1.0 + (linear / x_max) ** p) ** (1.0 / p)


@dataclass(frozen=True)
class _Fit:
    kind: str
    params: tuple


class ThroughputExtrapolator:
    """Fit-and-extrapolate throughput (and derived cycle time) curves.

    Parameters
    ----------
    levels:
        Measured concurrency levels (>= 3 points, increasing).
    throughput:
        Measured throughput at those levels (positive).
    model:
        ``"saturating"`` (default) — ``X_max (1 - exp(-N/tau))``, linear
        near 0 with slope ``X_max/tau``; or ``"logistic"`` — the sigmoid
        of the Perfext paper.

    Notes
    -----
    The fit minimizes least squares over the samples
    (:func:`scipy.optimize.curve_fit`); sensible starting values are
    derived from the data (top throughput, light-load slope).
    """

    def __init__(self, levels, throughput, model: str = "knee") -> None:
        levels = np.asarray(levels, dtype=float)
        throughput = np.asarray(throughput, dtype=float)
        if levels.ndim != 1 or levels.shape != throughput.shape:
            raise ValueError("levels and throughput must be equal-length 1-D")
        if levels.size < 3:
            raise ValueError("need at least 3 measured points")
        if np.any(np.diff(levels) <= 0):
            raise ValueError("levels must be strictly increasing")
        if np.any(throughput <= 0):
            raise ValueError("throughput must be positive")
        if model not in ("knee", "saturating", "logistic"):
            raise ValueError(
                f"model must be 'knee', 'saturating' or 'logistic', got {model!r}"
            )
        self.levels = levels
        self.throughput = throughput
        self.model = model

        x_top = float(throughput.max())
        slope0 = float(throughput[0] / max(levels[0], 1.0))
        if model == "knee":
            p0 = (max(slope0, 1e-6), x_top * 1.02, 4.0)
            bounds = ([1e-9, x_top * 0.5, 0.5], [1e6, x_top * 10, 64.0])
            params, _ = curve_fit(
                _knee, levels, throughput, p0=p0, bounds=bounds, maxfev=20_000
            )
            self._fit = _Fit("knee", tuple(params))
        elif model == "saturating":
            p0 = (x_top * 1.05, max(x_top / max(slope0, 1e-9), 1.0))
            bounds = ([x_top * 0.5, 1e-6], [x_top * 10, 1e7])
            params, _ = curve_fit(
                _saturating, levels, throughput, p0=p0, bounds=bounds, maxfev=20_000
            )
            self._fit = _Fit("saturating", tuple(params))
        else:
            p0 = (x_top * 1.05, float(np.median(levels)), float(levels[-1] / 10))
            bounds = ([x_top * 0.5, 0.0, 1e-6], [x_top * 10, levels[-1] * 10, 1e7])
            params, _ = curve_fit(
                _logistic, levels, throughput, p0=p0, bounds=bounds, maxfev=20_000
            )
            self._fit = _Fit("logistic", tuple(params))

    @property
    def x_max(self) -> float:
        """The fitted saturation throughput."""
        if self._fit.kind == "knee":
            return float(self._fit.params[1])
        return float(self._fit.params[0])

    def predict_throughput(self, levels) -> np.ndarray:
        """Extrapolated throughput at arbitrary concurrency levels."""
        n = np.asarray(levels, dtype=float)
        if self._fit.kind == "knee":
            return _knee(n, *self._fit.params)
        if self._fit.kind == "saturating":
            return _saturating(n, *self._fit.params)
        return _logistic(n, *self._fit.params)

    def predict_cycle_time(self, levels) -> np.ndarray:
        """Cycle time via Little's law: ``R + Z = N / X(N)``."""
        n = np.asarray(levels, dtype=float)
        x = self.predict_throughput(n)
        if np.any(x <= 0):
            raise ValueError("fitted throughput non-positive at requested levels")
        return n / x

    def residuals(self) -> np.ndarray:
        """Fit residuals at the measured points."""
        return self.throughput - self.predict_throughput(self.levels)
