"""Bottleneck identification, migration and upgrade advice.

Operational-analysis bookkeeping the paper does by eye on Tables 2-3
("the database server disk utilization value is 93% ... hence it is the
bottleneck"), automated:

* rank stations by per-server demand ``D_k / C_k`` at a load level;
* track the ranking across concurrency — with varying demands the
  bottleneck can *migrate* as curves decay at different rates;
* quantify upgrade leverage: how much the system throughput ceiling
  moves when one station gets faster — the utilization-law argument the
  capacity-planning example makes by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.network import ClosedNetwork
from .tables import format_table

__all__ = [
    "BottleneckRanking",
    "SolvedBottleneckRanking",
    "bottleneck_ranking",
    "bottleneck_migration",
    "solved_bottleneck_ranking",
    "upgrade_leverage",
]


@dataclass(frozen=True)
class BottleneckRanking:
    """Stations ordered by saturation pressure at one load level."""

    level: float
    stations: tuple[str, ...]  # most critical first
    per_server_demands: np.ndarray  # same order
    throughput_ceilings: np.ndarray  # C_k / D_k, same order

    @property
    def primary(self) -> str:
        return self.stations[0]

    @property
    def secondary(self) -> str | None:
        return self.stations[1] if len(self.stations) > 1 else None

    @property
    def system_ceiling(self) -> float:
        return float(self.throughput_ceilings[0])

    def criticality(self, station: str) -> float:
        """Per-server demand of ``station`` relative to the primary's.

        1.0 means co-bottleneck; small values mean ample headroom.
        """
        try:
            idx = self.stations.index(station)
        except ValueError:
            raise KeyError(f"unknown station {station!r}") from None
        top = self.per_server_demands[0]
        return float(self.per_server_demands[idx] / top) if top > 0 else 0.0

    def table(self) -> str:
        rows = [
            (name, d * 1000, ceiling)
            for name, d, ceiling in zip(
                self.stations, self.per_server_demands, self.throughput_ceilings
            )
        ]
        return format_table(
            ("Station", "D/C (ms)", "X ceiling (/s)"),
            rows,
            title=f"Bottleneck ranking at N={self.level:g}",
        )


def bottleneck_ranking(network: ClosedNetwork, level: float = 1.0) -> BottleneckRanking:
    """Rank queueing stations by per-server demand at one concurrency."""
    entries = []
    for st in network.stations:
        if st.kind != "queue":
            continue
        d = st.demand_at(level)
        per_server = d / st.servers
        ceiling = st.servers / d if d > 0 else float("inf")
        entries.append((st.name, per_server, ceiling))
    if not entries:
        raise ValueError("network has no queueing stations")
    entries.sort(key=lambda e: e[1], reverse=True)
    return BottleneckRanking(
        level=float(level),
        stations=tuple(e[0] for e in entries),
        per_server_demands=np.array([e[1] for e in entries]),
        throughput_ceilings=np.array([e[2] for e in entries]),
    )


@dataclass(frozen=True)
class SolvedBottleneckRanking:
    """Stations ordered by solved utilization at one population."""

    population: int
    solver: str
    stations: tuple[str, ...]  # most utilized first
    utilizations: np.ndarray  # same order

    @property
    def primary(self) -> str:
        return self.stations[0]

    def headroom(self, station: str) -> float:
        """Remaining utilization headroom ``1 - U`` for a station."""
        try:
            idx = self.stations.index(station)
        except ValueError:
            raise KeyError(f"unknown station {station!r}") from None
        return float(1.0 - self.utilizations[idx])

    def table(self) -> str:
        rows = [
            (name, f"{u:.1%}")
            for name, u in zip(self.stations, self.utilizations)
        ]
        return format_table(
            ("Station", "Utilization"),
            rows,
            title=f"Solved bottleneck ranking at N={self.population} ({self.solver})",
        )


def solved_bottleneck_ranking(
    network: ClosedNetwork,
    max_population: int,
    method: str = "auto",
    cache="default",
) -> SolvedBottleneckRanking:
    """Rank stations by *solved* utilization at the top population.

    :func:`bottleneck_ranking` orders stations by demand arithmetic
    (``D_k / C_k``), which identifies the bottleneck only at saturation;
    this variant actually solves the model through
    :func:`repro.solvers.solve` and ranks queueing stations by their
    predicted utilization at ``N = max_population`` — the Tables 2-3
    observation ("93 % disk utilization, hence the bottleneck") done
    with model numbers instead of asymptotics.

    ``cache`` is forwarded to :func:`repro.solvers.solve` (the global
    cache by default) so the serve endpoint can route rankings through
    its own store.
    """
    from ..solvers import Scenario, solve

    result = solve(Scenario(network, max_population), method=method, cache=cache)
    utils = result.utilizations[-1]
    entries = []
    for idx, st in enumerate(network.stations):
        if st.kind != "queue":
            continue
        entries.append((st.name, float(utils[idx])))
    if not entries:
        raise ValueError("network has no queueing stations")
    entries.sort(key=lambda e: e[1], reverse=True)
    return SolvedBottleneckRanking(
        population=int(max_population),
        solver=result.solver,
        stations=tuple(e[0] for e in entries),
        utilizations=np.array([e[1] for e in entries]),
    )


def bottleneck_migration(
    network: ClosedNetwork, levels: Sequence[float]
) -> list[tuple[float, str]]:
    """Primary bottleneck at each level — detects migration under
    varying demands.

    Returns ``[(level, primary_station), ...]``; consecutive duplicate
    primaries are retained so callers can see exactly where the switch
    happens.
    """
    if not levels:
        raise ValueError("levels must be non-empty")
    return [
        (float(lvl), bottleneck_ranking(network, lvl).primary) for lvl in levels
    ]


def upgrade_leverage(
    network: ClosedNetwork,
    level: float = 1.0,
    speedup: float = 2.0,
) -> dict[str, float]:
    """Throughput-ceiling gain from speeding each station up by ``speedup``.

    For every queueing station, recompute the system ceiling
    ``min_k C_k / D_k`` with that one station's demand divided by
    ``speedup``; report the ratio to the baseline ceiling.  A value of
    1.0 means "money spent here buys nothing" (the station is not the
    bottleneck); the maximum possible is ``min(speedup, ceiling_2/ceiling_1)``
    before the bottleneck migrates.
    """
    if speedup <= 1.0:
        raise ValueError(f"speedup must exceed 1, got {speedup}")
    base = network.max_throughput(level)
    out = {}
    for st in network.stations:
        if st.kind != "queue":
            continue
        ceilings = []
        for other in network.stations:
            if other.kind != "queue":
                continue
            d = other.demand_at(level)
            if d <= 0:
                continue
            if other.name == st.name:
                d = d / speedup
            ceilings.append(other.servers / d)
        new_ceiling = min(ceilings) if ceilings else float("inf")
        out[st.name] = new_ceiling / base if base > 0 else 1.0
    return out
