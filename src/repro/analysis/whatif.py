"""What-if scenarios and SLA-driven capacity planning.

The practical payoff of MVASD over raw load testing (and the use case of
the paper's TeamQuest comparison): once demand curves are fitted from a
few load tests, hardware and configuration variations are *re-solves*,
not re-tests.  A :class:`Scenario` rewrites the model — scale selected
stations' demands (faster disk array, query optimization), change server
counts (more cores), adjust think time (different user behaviour) — and
:func:`evaluate_scenarios` solves every variant with MVASD over the same
demand curves, reporting capacity against an SLA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.network import ClosedNetwork, Station
from ..core.results import MVAResult
from ..solvers import USE_DEFAULT_CACHE
from ..solvers import Scenario as SolverScenario
from ..solvers import solve
from .tables import format_table

__all__ = [
    "Scenario",
    "ScenarioOutcome",
    "SLA",
    "evaluate_scenarios",
    "max_users_within_sla",
]

DemandFn = Callable[[float], float]


@dataclass(frozen=True)
class SLA:
    """A service-level objective to check predictions against.

    Any unspecified bound is unconstrained.
    """

    max_cycle_time: float | None = None
    min_throughput: float | None = None
    max_utilization: float | None = None
    at_users: int | None = None

    def __post_init__(self) -> None:
        for name in ("max_cycle_time", "min_throughput", "max_utilization"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if (
            self.max_cycle_time is None
            and self.min_throughput is None
            and self.max_utilization is None
        ):
            raise ValueError("SLA needs at least one bound")

    def satisfied_mask(self, result: MVAResult) -> np.ndarray:
        """Boolean per population level: does the prediction meet the SLA?"""
        ok = np.ones(len(result.populations), dtype=bool)
        if self.max_cycle_time is not None:
            ok &= result.cycle_time <= self.max_cycle_time
        if self.min_throughput is not None:
            ok &= result.throughput >= self.min_throughput
        if self.max_utilization is not None:
            ok &= result.utilizations.max(axis=1) <= self.max_utilization
        return ok

    def describe(self) -> str:
        parts = []
        if self.max_cycle_time is not None:
            parts.append(f"R+Z <= {self.max_cycle_time:g}s")
        if self.min_throughput is not None:
            parts.append(f"X >= {self.min_throughput:g}/s")
        if self.max_utilization is not None:
            parts.append(f"util <= {self.max_utilization:.0%}")
        return " and ".join(parts)


@dataclass(frozen=True)
class Scenario:
    """One model rewrite to evaluate.

    Attributes
    ----------
    name:
        Label for reports.
    demand_scale:
        ``station -> factor`` multipliers on the fitted demand curves
        (0.5 = a resource twice as fast per unit of work).
    servers:
        ``station -> C_k`` overrides (hardware with more cores/spindles).
    think_time:
        Optional think-time override (user-behaviour change).
    """

    name: str
    demand_scale: Mapping[str, float] = field(default_factory=dict)
    servers: Mapping[str, int] = field(default_factory=dict)
    think_time: float | None = None

    def __post_init__(self) -> None:
        for station, factor in self.demand_scale.items():
            if factor < 0:
                raise ValueError(f"{station}: demand factor must be non-negative")
        for station, count in self.servers.items():
            if count < 1:
                raise ValueError(f"{station}: servers must be >= 1")
        if self.think_time is not None and self.think_time < 0:
            raise ValueError("think_time must be non-negative")

    def apply(
        self,
        network: ClosedNetwork,
        demand_functions: Mapping[str, DemandFn],
    ) -> tuple[ClosedNetwork, dict[str, DemandFn]]:
        """Rewrite the network and demand curves for this scenario."""
        unknown = (set(self.demand_scale) | set(self.servers)) - set(
            network.station_names
        )
        if unknown:
            raise KeyError(f"scenario {self.name!r}: unknown stations {sorted(unknown)}")
        stations = []
        for st in network.stations:
            servers = self.servers.get(st.name, st.servers)
            stations.append(
                Station(st.name, st.demand, servers=servers, visits=st.visits, kind=st.kind)
            )
        think = self.think_time if self.think_time is not None else network.think_time
        new_net = ClosedNetwork(stations, think_time=think, name=f"{network.name}:{self.name}")

        fns = dict(demand_functions)
        for station, factor in self.demand_scale.items():
            base = fns[station]
            fns[station] = lambda n, _b=base, _f=factor: _b(n) * _f
        return new_net, fns


@dataclass(frozen=True)
class ScenarioOutcome:
    """Solved scenario plus its SLA verdict."""

    scenario: Scenario
    result: MVAResult
    sla: SLA | None
    max_users: int | None

    @property
    def peak_throughput(self) -> float:
        return float(self.result.throughput.max())

    def sla_met_at(self, users: int) -> bool:
        if self.sla is None:
            raise ValueError("no SLA attached")
        idx = users - 1
        return bool(self.sla.satisfied_mask(self.result)[idx])


def max_users_within_sla(result: MVAResult, sla: SLA) -> int:
    """Largest contiguous-from-1 population meeting the SLA (0 if none)."""
    mask = sla.satisfied_mask(result)
    if not mask[0]:
        return 0
    breaks = np.nonzero(~mask)[0]
    if breaks.size == 0:
        return int(result.populations[-1])
    return int(result.populations[breaks[0] - 1]) if breaks[0] > 0 else 0


def _scenario_task(scenario: Scenario, payload) -> MVAResult:
    """Solve one what-if scenario in a (possibly forked) worker."""
    network, demand_functions, max_population, cache = payload
    net, fns = scenario.apply(network, demand_functions)
    solver_scenario = SolverScenario(net, max_population, demand_functions=fns)
    return solve(solver_scenario, method="mvasd", cache=cache)


def evaluate_scenarios(
    network: ClosedNetwork,
    demand_functions: Mapping[str, DemandFn],
    scenarios: Sequence[Scenario],
    max_population: int,
    sla: SLA | None = None,
    workers: int | None = 1,
    cache=USE_DEFAULT_CACHE,
    timeout: float | None = None,
) -> dict[str, ScenarioOutcome]:
    """Solve every scenario with MVASD and score it against the SLA.

    A ``"baseline"`` scenario (no rewrites) is always included first.
    With ``workers > 1`` the scenario solves fan out over a process pool
    (:func:`repro.engine.sweep.parallel_map`); each scenario is an
    independent deterministic solve, so the outcome is identical to the
    serial run.  Repeated evaluations of the same variants (iterating on
    an SLA, re-rendering a capacity plan) are served from the solver
    result cache; pass ``cache=None`` to force recomputation.  Cache
    hits recorded in forked workers stay in the workers — run with
    ``workers=1`` when warm-cache reuse matters more than the fan-out.
    ``timeout`` bounds each scenario solve's seconds in the pool;
    crashed or timed-out workers are recomputed serially in the parent.
    """
    from ..engine.sweep import parallel_map  # runtime import: engine layering

    if max_population < 1:
        raise ValueError("max_population must be >= 1")
    all_scenarios = [Scenario("baseline")] + [
        s for s in scenarios if s.name != "baseline"
    ]
    results = parallel_map(
        _scenario_task,
        all_scenarios,
        workers=workers,
        payload=(network, demand_functions, max_population, cache),
        timeout=timeout,
    )
    outcomes: dict[str, ScenarioOutcome] = {}
    for scenario, result in zip(all_scenarios, results):
        users = max_users_within_sla(result, sla) if sla is not None else None
        outcomes[scenario.name] = ScenarioOutcome(
            scenario=scenario, result=result, sla=sla, max_users=users
        )
    return outcomes


def outcomes_table(outcomes: Mapping[str, ScenarioOutcome]) -> str:
    """Render a capacity-plan summary of :func:`evaluate_scenarios` output."""
    rows = []
    sla = next(iter(outcomes.values())).sla
    for name, outcome in outcomes.items():
        row = [
            name,
            outcome.peak_throughput,
            outcome.result.cycle_time[-1],
        ]
        if sla is not None:
            row.append(outcome.max_users)
        rows.append(tuple(row))
    headers = ["Scenario", "X_max (/s)", "R+Z @ top (s)"]
    title = "What-if capacity plan"
    if sla is not None:
        headers.append("max users in SLA")
        title += f" — SLA: {sla.describe()}"
    return format_table(headers, rows, title=title)
