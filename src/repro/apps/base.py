"""Application model base: a multi-tier deployment as a closed network.

An :class:`Application` bundles everything a load test of a deployed
multi-tier web application exposes to the performance engineer: the
three-tier topology of Fig. 2 (load injector, web/application server,
database server — each with a multi-core CPU, a disk and network Tx/Rx
paths), the per-resource demand profiles, the page count of the tested
workflow and the datapool backing the database.

:func:`three_tier_network` builds the canonical 12-station
:class:`~repro.core.network.ClosedNetwork` the paper models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.network import ClosedNetwork, Station
from .datagen import Datapool
from .profiles import DemandProfile

__all__ = ["Application", "three_tier_network", "TIER_RESOURCES"]

#: Resource suffixes of one server, in canonical column order
#: (matches the paper's Tables 2-3: CPU | Disk | Net-Tx | Net-Rx).
TIER_RESOURCES = ("cpu", "disk", "net_tx", "net_rx")

#: Canonical tier prefixes in table order.
TIERS = ("load", "app", "db")


def three_tier_network(
    profiles: Mapping[str, DemandProfile],
    think_time: float = 1.0,
    cpu_cores: int = 16,
    name: str = "three-tier",
) -> ClosedNetwork:
    """Build the Fig. 2 topology from per-station demand profiles.

    ``profiles`` must contain one entry per ``"<tier>.<resource>"`` for
    the tiers ``load``, ``app``, ``db`` and resources
    ``cpu, disk, net_tx, net_rx``.  CPUs get ``cpu_cores`` servers
    (16-core machines in the paper's testbed); disks and network paths
    are single-server.
    """
    stations = []
    for tier in TIERS:
        for resource in TIER_RESOURCES:
            key = f"{tier}.{resource}"
            if key not in profiles:
                raise ValueError(f"missing demand profile for station {key!r}")
            servers = cpu_cores if resource == "cpu" else 1
            stations.append(Station(key, profiles[key], servers=servers))
    return ClosedNetwork(stations, think_time=think_time, name=name)


@dataclass(frozen=True)
class Application:
    """A benchmark application deployed on the three-tier testbed.

    Attributes
    ----------
    name:
        Application identifier (``"VINS"``, ``"JPetStore"``).
    network:
        The closed-network model with concurrency-varying demands.
    workflow:
        Name of the exercised workflow (e.g. ``"Renew Policy"``).
    pages:
        Pages per workflow iteration; throughput is reported in
        pages/second and one simulated cycle is one page view.
    datapool:
        The synthetic data backing the database tier.
    max_tested_concurrency:
        Upper end of the concurrency range the paper's load tests cover.
    default_sample_levels:
        Concurrency levels at which the paper collected service demands.
    description:
        One-paragraph description for reports.
    page_weights:
        Optional per-page demand weights ``((name, weight), ...)`` for
        page-level simulation (:func:`repro.simulation.simulate_workflow`).
        Length must equal ``pages``; weights are relative (rescaled to
        mean 1).  ``None`` means a uniform workflow.
    """

    name: str
    network: ClosedNetwork
    workflow: str
    pages: int
    datapool: Datapool
    max_tested_concurrency: int
    default_sample_levels: tuple[int, ...]
    description: str = ""
    page_weights: tuple[tuple[str, float], ...] | None = None

    def __post_init__(self) -> None:
        if self.pages < 1:
            raise ValueError(f"pages must be >= 1, got {self.pages}")
        if self.page_weights is not None:
            if len(self.page_weights) != self.pages:
                raise ValueError(
                    f"page_weights must have {self.pages} entries, "
                    f"got {len(self.page_weights)}"
                )
            if any(w <= 0 for _, w in self.page_weights):
                raise ValueError("page weights must be positive")
        if self.max_tested_concurrency < 1:
            raise ValueError("max_tested_concurrency must be >= 1")
        if not self.default_sample_levels:
            raise ValueError("default_sample_levels must be non-empty")
        if any(
            lvl < 1 or lvl > self.max_tested_concurrency
            for lvl in self.default_sample_levels
        ):
            raise ValueError("sample levels must lie in [1, max_tested_concurrency]")

    @property
    def station_names(self) -> tuple[str, ...]:
        return self.network.station_names

    @property
    def think_time(self) -> float:
        return self.network.think_time

    def true_demands_at(self, n: float) -> dict[str, float]:
        """Ground-truth demands at concurrency ``n`` (testbed oracle).

        Real load tests never see these directly — they estimate them via
        the service-demand law.  Exposed for ablations that separate
        interpolation error from measurement error.
        """
        return dict(zip(self.network.station_names, self.network.demands_at(n)))

    def bottleneck(self, n: float | None = None) -> str:
        """Name of the bottleneck station at concurrency ``n``."""
        return self.network.bottleneck(n).name

    def workflow_weights(self) -> dict[str, float]:
        """Page-name -> weight mapping for page-level simulation.

        Uniform weights when the application defines none.
        """
        if self.page_weights is None:
            return {f"{self.workflow}-page-{i + 1}": 1.0 for i in range(self.pages)}
        return dict(self.page_weights)
