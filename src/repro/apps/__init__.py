"""Benchmark application models (the paper's VINS and JPetStore).

Parametric three-tier deployments with concurrency-varying demand
profiles calibrated to the paper's utilization anchors; the simulated
testbed runs these in place of the physical applications.
"""

from .base import Application, TIER_RESOURCES, three_tier_network
from .datagen import Datapool, synthetic_records
from .jpetstore import JPETSTORE_SAMPLE_LEVELS, jpetstore_application
from .profiles import DemandProfile
from .vins import VINS_SAMPLE_LEVELS, vins_application

__all__ = [
    "Application",
    "Datapool",
    "DemandProfile",
    "JPETSTORE_SAMPLE_LEVELS",
    "TIER_RESOURCES",
    "VINS_SAMPLE_LEVELS",
    "jpetstore_application",
    "synthetic_records",
    "three_tier_network",
    "vins_application",
]
