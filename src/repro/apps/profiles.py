"""Concurrency-dependent service-demand profiles.

The paper's central empirical observation (Figs. 5, 10, 12) is that
measured service demands *decrease* as concurrency grows — it attributes
this to resource caching, batch processing at CPU/disk, and better
branch prediction under sustained load — and, around saturation onset,
can locally *increase* again (the JPetStore throughput deviation between
140 and 168 users that MVASD picks up in Fig. 7).

:class:`DemandProfile` captures those shapes as smooth callables
``n -> seconds`` suitable both for the DES testbed (evaluated at the
run's population) and directly as MVASD demand functions (the "oracle"
upper bound in ablations).  Profiles compose: a decay base plus a
saturation bump, scaled by a datapool cache-miss factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["DemandProfile"]


@dataclass(frozen=True)
class DemandProfile:
    """A named demand-vs-concurrency curve.

    Construct via the factory classmethods; instances are callables
    accepting scalars or arrays and always returning non-negative
    demands.
    """

    name: str
    fn: Callable[[np.ndarray], np.ndarray]

    def __call__(self, n):
        arr = np.asarray(n, dtype=float)
        out = np.maximum(np.atleast_1d(np.asarray(self.fn(np.atleast_1d(arr)), float)), 0.0)
        if arr.ndim == 0:
            return float(out[0])
        return out

    # -- factories -------------------------------------------------------------

    @classmethod
    def constant(cls, demand: float, name: str = "constant") -> "DemandProfile":
        """Concurrency-independent demand (the classic MVA assumption)."""
        if demand < 0:
            raise ValueError(f"demand must be non-negative, got {demand}")
        return cls(name, lambda n: np.full_like(n, demand))

    @classmethod
    def exp_decay(
        cls,
        d_initial: float,
        d_plateau: float,
        tau: float,
        name: str = "exp-decay",
    ) -> "DemandProfile":
        """Exponentially decaying demand: ``d_p + (d_i - d_p) exp(-n/tau)``.

        The caching/batching shape of Figs. 5 and 10: single-user demand
        ``d_initial`` relaxing to a warm plateau ``d_plateau`` with
        characteristic concurrency ``tau``.
        """
        if d_initial < 0 or d_plateau < 0:
            raise ValueError("demands must be non-negative")
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        return cls(
            name,
            lambda n: d_plateau + (d_initial - d_plateau) * np.exp(-n / tau),
        )

    @classmethod
    def power_decay(
        cls,
        d_initial: float,
        d_plateau: float,
        exponent: float = 0.5,
        name: str = "power-decay",
    ) -> "DemandProfile":
        """Power-law decay ``d_p + (d_i - d_p) / n**exponent`` (slower tail)."""
        if d_initial < 0 or d_plateau < 0:
            raise ValueError("demands must be non-negative")
        if exponent <= 0:
            raise ValueError(f"exponent must be positive, got {exponent}")
        return cls(
            name,
            lambda n: d_plateau
            + (d_initial - d_plateau) / np.maximum(n, 1.0) ** exponent,
        )

    # -- combinators -----------------------------------------------------------

    def with_bump(
        self, center: float, width: float, amplitude: float
    ) -> "DemandProfile":
        """Add a Gaussian demand bump around ``center`` concurrency.

        Models the saturation-onset demand uptick behind the paper's
        JPetStore 140-168-user throughput deviation: e.g. connection-pool
        pressure or lock convoying raising per-page work locally.
        ``amplitude`` is in seconds (may be negative for a dip).
        """
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        base = self.fn
        return DemandProfile(
            f"{self.name}+bump@{center:g}",
            lambda n: base(n) + amplitude * np.exp(-((n - center) ** 2) / (2 * width**2)),
        )

    def scaled(self, factor: float, name: str | None = None) -> "DemandProfile":
        """Multiply the whole curve (datapool / hardware scaling)."""
        if factor < 0:
            raise ValueError(f"factor must be non-negative, got {factor}")
        base = self.fn
        return DemandProfile(name or f"{self.name}*{factor:g}", lambda n: factor * base(n))

    def floor(self, minimum: float) -> "DemandProfile":
        """Clamp the curve from below (physical lower bound on demand)."""
        if minimum < 0:
            raise ValueError(f"minimum must be non-negative, got {minimum}")
        base = self.fn
        return DemandProfile(f"{self.name}|>={minimum:g}", lambda n: np.maximum(base(n), minimum))
