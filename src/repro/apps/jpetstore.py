"""JPetStore — the open-source e-commerce benchmark.

Model of the paper's second application (Section 4.3): Sun's Pet Store
re-implementation deployed on the same three-tier testbed — 14 pages
per shopping workflow (login, browse categories, pick pets, cart,
checkout), 2,000,000 catalogue items, 1 s think time, 16-core machines,
load-tested from 1 to ~300 users (Chebyshev designs use [1, 300]).

Calibration anchors from the paper (Table 3, Figs. 7-9):

* **CPU-heavy**: the database CPU *and* disk saturate together near
  140 users;
* measured throughput shows a characteristic deviation between 140 and
  168 users which MVASD reproduces but fixed-demand MVA cannot — modeled
  here as a local demand bump at saturation onset (connection-pool /
  lock pressure);
* demands decay with concurrency as in VINS, but over a much shorter
  range (tau ~ 120) because the tested range is only ~300 users.

Because the bottleneck is a 16-core multi-server queue, JPetStore is
the application where the single-server-normalized baseline of Fig. 8
visibly underperforms.
"""

from __future__ import annotations

from .base import Application, three_tier_network
from .datagen import Datapool
from .profiles import DemandProfile

__all__ = ["jpetstore_application", "JPETSTORE_SAMPLE_LEVELS"]

#: Concurrency levels of the paper's JPetStore demand collection
#: (Fig. 12 uses subsets {1,14,28}, {1,14,28,70,140}, {1,...,210}).
JPETSTORE_SAMPLE_LEVELS = (1, 14, 28, 70, 140, 168, 210, 280)

_PROFILES = {
    "load.cpu": DemandProfile.exp_decay(0.0340, 0.0260, 140.0, name="jps-load-cpu"),
    "load.disk": DemandProfile.exp_decay(0.0042, 0.0033, 120.0, name="jps-load-disk"),
    "load.net_tx": DemandProfile.exp_decay(0.0036, 0.0029, 140.0, name="jps-load-net-tx"),
    "load.net_rx": DemandProfile.exp_decay(0.0040, 0.0032, 140.0, name="jps-load-net-rx"),
    # Application server renders catalogue pages: the second-busiest CPU.
    "app.cpu": DemandProfile.exp_decay(0.1150, 0.0880, 130.0, name="jps-app-cpu"),
    "app.disk": DemandProfile.exp_decay(0.0034, 0.0027, 120.0, name="jps-app-disk"),
    "app.net_tx": DemandProfile.exp_decay(0.0044, 0.0035, 140.0, name="jps-app-net-tx"),
    "app.net_rx": DemandProfile.exp_decay(0.0038, 0.0030, 140.0, name="jps-app-net-rx"),
    # Database: CPU and disk calibrated to saturate together near 140
    # users (16/0.131 ~ 122/s and 1/0.0082 ~ 122/s), with a demand bump
    # at saturation onset producing the 140-168-user throughput dip.
    "db.cpu": DemandProfile.exp_decay(0.1680, 0.1310, 120.0, name="jps-db-cpu").with_bump(
        center=155.0, width=18.0, amplitude=0.0120
    ),
    "db.disk": DemandProfile.exp_decay(0.0104, 0.0082, 120.0, name="jps-db-disk").with_bump(
        center=155.0, width=18.0, amplitude=0.0007
    ),
    "db.net_tx": DemandProfile.exp_decay(0.0030, 0.0024, 140.0, name="jps-db-net-tx"),
    "db.net_rx": DemandProfile.exp_decay(0.0026, 0.0021, 140.0, name="jps-db-net-rx"),
}


def jpetstore_application(
    think_time: float = 1.0,
    cpu_cores: int = 16,
    datapool_records: int = 2_000_000,
) -> Application:
    """Build the JPetStore application model.

    As with VINS, the datapool size modulates the disk plateau through
    an assumed 1 GB database buffer cache ("1 GB initial data in the
    data server" in the paper's setup).
    """
    datapool = Datapool(records=datapool_records, bytes_per_record=500, kind="item")
    profiles = dict(_PROFILES)
    reference = Datapool(records=2_000_000, bytes_per_record=500, kind="item")
    cache = 0.5e9
    scale = datapool.cache_miss_factor(cache) / max(
        reference.cache_miss_factor(cache), 1e-9
    )
    if scale != 1.0:
        profiles["db.disk"] = profiles["db.disk"].scaled(max(scale, 0.05))
    network = three_tier_network(
        profiles, think_time=think_time, cpu_cores=cpu_cores, name="JPetStore"
    )
    return Application(
        name="JPetStore",
        network=network,
        workflow="Shopping",
        pages=14,
        datapool=datapool,
        max_tested_concurrency=300,
        default_sample_levels=JPETSTORE_SAMPLE_LEVELS,
        # The 14 shopping pages: catalogue browsing and checkout queries
        # are the heavy hitters, static pages are cheap.
        page_weights=(
            ("home", 0.4),
            ("login", 0.6),
            ("category-birds", 1.2),
            ("category-fish", 1.2),
            ("category-reptiles", 1.1),
            ("category-cats", 1.2),
            ("category-dogs", 1.3),
            ("item-detail-1", 1.0),
            ("item-detail-2", 1.0),
            ("add-to-cart", 1.1),
            ("view-cart", 0.9),
            ("checkout", 1.6),
            ("order-confirm", 1.2),
            ("signout", 0.3),
        ),
        description=(
            "Open-source Pet Store e-commerce application; 14-page "
            "shopping workflow over 2,000,000 catalogue items. CPU-heavy: "
            "the 16-core database CPU and its disk saturate together near "
            "140 users, with a measured throughput dip between 140 and "
            "168 users."
        ),
    )
