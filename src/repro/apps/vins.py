"""VINS — the Vehicle INSurance registration application.

Model of the paper's in-house benchmark (Section 4.3): a three-tier
LAMP deployment exercising the 7-page **Renew Policy** workflow against
a 10 GB datapool of 13,000,000 customers, with 1 s think time on
16-core machines, load-tested from 1 to 1500 concurrent users.

Calibration anchors taken from the paper (Table 2 and Section 5.3):

* the **database disk** is the bottleneck — ~93 % utilization near the
  top of the sweep while the DB CPU sits near ~35 %;
* the **load-injector disk** also runs near saturation (both are
  underlined in Table 2);
* demands decrease with concurrency (Fig. 5) — caching/batching — so
  every profile is an exponential decay toward a warm plateau.

The profile constants below realize those anchors on the simulated
testbed; see DESIGN.md §6 for the calibration argument.  VINS is
"disk-heavy": its throughput ceiling is ``1 / D(db.disk)``.
"""

from __future__ import annotations

from .base import Application, three_tier_network
from .datagen import Datapool
from .profiles import DemandProfile

__all__ = ["vins_application", "VINS_SAMPLE_LEVELS"]

#: Concurrency levels at which the paper reports VINS utilization
#: (Table 2 granularity; MVA_i variants use 1 / 203 / 406).
VINS_SAMPLE_LEVELS = (1, 51, 102, 203, 406, 609, 812, 1015, 1218, 1421)

#: Demand profiles in seconds per page: exp_decay(d_single_user, d_plateau, tau).
_PROFILES = {
    # Load-injector: script execution is cheap, but test logging hammers
    # its disk — the second near-saturated resource of Table 2.
    "load.cpu": DemandProfile.exp_decay(0.0300, 0.0220, 400.0, name="vins-load-cpu"),
    "load.disk": DemandProfile.exp_decay(0.0100, 0.0083, 350.0, name="vins-load-disk"),
    "load.net_tx": DemandProfile.exp_decay(0.0030, 0.0024, 400.0, name="vins-load-net-tx"),
    "load.net_rx": DemandProfile.exp_decay(0.0034, 0.0027, 400.0, name="vins-load-net-rx"),
    # Web/application server: moderate CPU, light disk.
    "app.cpu": DemandProfile.exp_decay(0.0640, 0.0430, 380.0, name="vins-app-cpu"),
    "app.disk": DemandProfile.exp_decay(0.0036, 0.0028, 350.0, name="vins-app-disk"),
    "app.net_tx": DemandProfile.exp_decay(0.0032, 0.0026, 400.0, name="vins-app-net-tx"),
    "app.net_rx": DemandProfile.exp_decay(0.0028, 0.0023, 400.0, name="vins-app-net-rx"),
    # Database server: 16-core CPU around 35% utilization at saturation,
    # single disk spindle as the system bottleneck (~93% utilization).
    "db.cpu": DemandProfile.exp_decay(0.0780, 0.0560, 380.0, name="vins-db-cpu"),
    "db.disk": DemandProfile.exp_decay(0.0128, 0.0094, 320.0, name="vins-db-disk"),
    "db.net_tx": DemandProfile.exp_decay(0.0024, 0.0019, 400.0, name="vins-db-net-tx"),
    "db.net_rx": DemandProfile.exp_decay(0.0022, 0.0018, 400.0, name="vins-db-net-rx"),
}


def vins_application(
    think_time: float = 1.0,
    cpu_cores: int = 16,
    datapool_records: int = 13_000_000,
) -> Application:
    """Build the VINS application model.

    Parameters mirror the paper's deployment; change them for
    what-if capacity planning (more cores, larger datapool).  The
    datapool feeds DESIGN.md's cache-miss scaling: shrinking it below
    the assumed 8 GB buffer cache proportionally relaxes the disk
    plateau.
    """
    datapool = Datapool(records=datapool_records, bytes_per_record=770, kind="customer")
    profiles = dict(_PROFILES)
    # Disk plateaus scale with the miss fraction of an 8 GB buffer cache
    # against the configured datapool (1.0 at the paper's 10 GB pool is
    # approximately the calibrated constants above).
    reference = Datapool(records=13_000_000, bytes_per_record=770, kind="customer")
    cache = 8e9
    scale = datapool.cache_miss_factor(cache) / max(
        reference.cache_miss_factor(cache), 1e-9
    )
    if scale != 1.0:
        for key in ("db.disk", "app.disk"):
            profiles[key] = profiles[key].scaled(max(scale, 0.05))
    network = three_tier_network(
        profiles, think_time=think_time, cpu_cores=cpu_cores, name="VINS"
    )
    return Application(
        name="VINS",
        network=network,
        workflow="Renew Policy",
        pages=7,
        datapool=datapool,
        max_tested_concurrency=1500,
        default_sample_levels=VINS_SAMPLE_LEVELS,
        # The 7 Renew-Policy pages, weighted by work: policy lookup and
        # premium recomputation dominate; confirmation pages are light.
        page_weights=(
            ("login", 0.6),
            ("search-policy", 1.1),
            ("view-policy", 0.8),
            ("premium-calculation", 1.9),
            ("update-details", 1.2),
            ("payment", 1.0),
            ("confirmation", 0.4),
        ),
        description=(
            "Vehicle insurance registration application; Renew Policy "
            "workflow (7 pages) against a 10 GB datapool. Database-disk "
            "intensive: the DB disk saturates (~93% util) while its "
            "16-core CPU stays near 35%."
        ),
    )
