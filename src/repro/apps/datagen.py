"""Synthetic datapool generation.

The paper loads 10 GB (13,000,000 customers) into the VINS database
with an in-house generator, and 2,000,000 items into JPetStore, to
defeat unrealistic cache behaviour during load tests.  This module is
the equivalent substrate: a deterministic record generator (so tests
can assert on content) plus the piece that actually matters to the
performance models — a cache-miss factor describing how datapool size
relative to cache capacity scales the disk demand plateau.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator

__all__ = ["Datapool", "synthetic_records"]

_FIRST_NAMES = (
    "Asha", "Bala", "Chitra", "Dev", "Esha", "Farid", "Gita", "Hari",
    "Indira", "Jai", "Kavya", "Lata", "Mohan", "Nisha", "Om", "Priya",
)
_VEHICLES = ("hatchback", "sedan", "suv", "truck", "two-wheeler", "van")
_PETS = ("bird", "cat", "dog", "fish", "reptile")


def _digest(seed: int, index: int) -> bytes:
    return hashlib.blake2b(
        index.to_bytes(8, "little"), key=seed.to_bytes(8, "little"), digest_size=16
    ).digest()


def synthetic_records(
    count: int, kind: str = "customer", seed: int = 0
) -> Iterator[dict]:
    """Yield ``count`` deterministic records of the requested kind.

    ``kind="customer"`` produces VINS-style registrations (name, vehicle,
    premium); ``kind="item"`` produces JPetStore catalogue items.  The
    same ``(seed, index)`` always yields the same record.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if kind not in ("customer", "item"):
        raise ValueError(f"kind must be 'customer' or 'item', got {kind!r}")
    for i in range(count):
        h = _digest(seed, i)
        if kind == "customer":
            yield {
                "customer_id": i,
                "name": f"{_FIRST_NAMES[h[0] % len(_FIRST_NAMES)]}-{h[1]:02x}{h[2]:02x}",
                "vehicle": _VEHICLES[h[3] % len(_VEHICLES)],
                "policy_value": 50_000 + int.from_bytes(h[4:7], "little") % 950_000,
                "premium": 1_000 + int.from_bytes(h[7:9], "little") % 24_000,
            }
        else:
            yield {
                "item_id": i,
                "category": _PETS[h[0] % len(_PETS)],
                "name": f"{_PETS[h[0] % len(_PETS)]}-{h[1]:02x}{h[2]:02x}",
                "unit_price": 5 + int.from_bytes(h[3:5], "little") % 995,
                "stock": h[5] % 100,
            }


@dataclass(frozen=True)
class Datapool:
    """A database datapool sized for load testing.

    Attributes
    ----------
    records:
        Number of rows (customers / items).
    bytes_per_record:
        Average row footprint, to convert counts to storage size.
    kind:
        Record flavour for :func:`synthetic_records`.
    seed:
        Generation seed.
    """

    records: int
    bytes_per_record: int = 800
    kind: str = "customer"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.records < 1:
            raise ValueError(f"records must be >= 1, got {self.records}")
        if self.bytes_per_record < 1:
            raise ValueError("bytes_per_record must be >= 1")

    @property
    def size_bytes(self) -> int:
        return self.records * self.bytes_per_record

    @property
    def size_gb(self) -> float:
        return self.size_bytes / 1e9

    def generate(self, count: int | None = None) -> Iterator[dict]:
        """Stream (a prefix of) the datapool's records."""
        n = self.records if count is None else min(count, self.records)
        return synthetic_records(n, kind=self.kind, seed=self.seed)

    def cache_miss_factor(self, cache_bytes: float) -> float:
        """Fraction of accesses that miss a cache of the given capacity.

        Uniform-access approximation: a cache holding ``cache_bytes`` of a
        ``size_bytes`` working set hits with probability
        ``min(1, cache/size)``.  The disk-demand *plateau* of an
        application scales with this miss fraction — a datapool that fits
        in RAM drives the warm disk demand toward zero, which is why the
        paper insists on "sufficient datapools ... to prevent caching
        behavior".
        """
        if cache_bytes < 0:
            raise ValueError(f"cache_bytes must be non-negative, got {cache_bytes}")
        if self.size_bytes == 0:
            return 0.0
        hit = min(1.0, cache_bytes / self.size_bytes)
        return 1.0 - hit
