"""Result containers shared by all MVA solvers.

Every solver in :mod:`repro.core` walks the population from 1 to ``N``
and records, for each intermediate population ``n``, the system
throughput ``X^n``, response time ``R^n``, per-station queue lengths,
residence times and utilizations.  :class:`MVAResult` packages those
trajectories as NumPy arrays so benches and tests can slice them
without re-running the recursion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

__all__ = ["MVAResult"]


@dataclass(frozen=True)
class MVAResult:
    """Trajectories produced by an MVA-family solver.

    Attributes
    ----------
    populations:
        Population levels ``n = 1..N`` (shape ``(N,)``).
    throughput:
        System throughput ``X^n`` at each level (jobs/sec).
    response_time:
        System response time ``R^n`` at each level (seconds), *excluding*
        think time.
    queue_lengths:
        Mean jobs at each station, shape ``(N, K)``.
    residence_times:
        Per-interaction residence time ``V_k R_k`` at each station,
        shape ``(N, K)``.
    utilizations:
        Per-server utilization ``X^n D_k^n / C_k`` at each station,
        shape ``(N, K)``; between 0 and 1 for stable stations.
    station_names:
        Station labels in column order.
    think_time:
        The ``Z`` used by the solver, so cycle time is reconstructible.
    marginal_probabilities:
        Optional mapping from station name to an ``(N, C_k)`` array of
        the paper's marginal queue-size probabilities ``p_k(j)``
        (multi-server solvers only; Fig. 3).
    demands_used:
        Demands ``SS_k^n`` the solver actually used per level, shape
        ``(N, K)`` (interesting for MVASD; constant rows for fixed-demand
        solvers).
    solver:
        Name of the producing algorithm.
    final_state:
        Opaque solver state at the last population level, for solvers
        whose recursion can be *resumed* to a larger ``N`` (the
        ``resume_from=`` parameter of ``mvasd``).  ``None`` for solvers
        whose resume state is recoverable from the trajectory itself
        (exact MVA and Schweitzer need only ``queue_lengths[-1]``) and
        for prefix slices, which never carry a terminal state.
    """

    populations: np.ndarray
    throughput: np.ndarray
    response_time: np.ndarray
    queue_lengths: np.ndarray
    residence_times: np.ndarray
    utilizations: np.ndarray
    station_names: tuple[str, ...]
    think_time: float
    solver: str
    marginal_probabilities: Mapping[str, np.ndarray] | None = None
    demands_used: np.ndarray | None = None
    final_state: Mapping | None = None

    def __post_init__(self) -> None:
        n = len(self.populations)
        k = len(self.station_names)
        for attr in ("throughput", "response_time"):
            if getattr(self, attr).shape != (n,):
                raise ValueError(f"{attr} must have shape ({n},)")
        for attr in ("queue_lengths", "residence_times", "utilizations"):
            if getattr(self, attr).shape != (n, k):
                raise ValueError(f"{attr} must have shape ({n}, {k})")
        if self.demands_used is not None and self.demands_used.shape != (n, k):
            raise ValueError(f"demands_used must have shape ({n}, {k})")

    # -- derived quantities ---------------------------------------------------

    @property
    def cycle_time(self) -> np.ndarray:
        """Mean cycle time ``R^n + Z`` — the paper's reported response metric."""
        return self.response_time + self.think_time

    @property
    def max_population(self) -> int:
        return int(self.populations[-1])

    def at(self, n: int) -> dict:
        """Scalar snapshot of every metric at population ``n``."""
        idx = int(np.searchsorted(self.populations, n))
        if idx >= len(self.populations) or self.populations[idx] != n:
            raise KeyError(f"population {n} not in result (max {self.max_population})")
        return {
            "population": n,
            "throughput": float(self.throughput[idx]),
            "response_time": float(self.response_time[idx]),
            "cycle_time": float(self.cycle_time[idx]),
            "queue_lengths": dict(zip(self.station_names, self.queue_lengths[idx])),
            "utilizations": dict(zip(self.station_names, self.utilizations[idx])),
        }

    def prefix(self, n: int) -> "MVAResult":
        """The ``n = 1..n`` prefix of this trajectory as its own result.

        Because every MVA-family recursion builds population ``n`` only
        from levels ``< n``, the prefix of a solve at ``N`` is
        *bit-identical* to solving the same scenario at ``n`` directly —
        this is what makes one cached solve at ``N = 280`` answer every
        ``N' <= 280`` what-if query as a pure lookup.  Arrays are views
        of this result's (possibly frozen) arrays; ``final_state`` is
        dropped since it describes level ``N``, not ``n``.
        """
        n = int(n)
        if n == self.max_population:
            return self
        if not 1 <= n < self.max_population:
            raise ValueError(
                f"prefix population must be in 1..{self.max_population}, got {n}"
            )
        if int(self.populations[0]) != 1 or len(self.populations) != self.max_population:
            raise ValueError(
                "prefix requires a dense 1..N trajectory "
                f"(populations start at {self.populations[0]})"
            )
        # Per-level marginal histories (first axis == level count) slice
        # like every other trajectory; final-population snapshots (e.g.
        # ld-MVA's ``(1, N+1)`` distributions) describe level N only and
        # are dropped, same as ``final_state``.
        marginals = None
        if self.marginal_probabilities is not None:
            n_levels = len(self.populations)
            marginals = {
                k: v[:n]
                for k, v in self.marginal_probabilities.items()
                if v.shape[0] == n_levels
            } or None
        return MVAResult(
            populations=self.populations[:n],
            throughput=self.throughput[:n],
            response_time=self.response_time[:n],
            queue_lengths=self.queue_lengths[:n],
            residence_times=self.residence_times[:n],
            utilizations=self.utilizations[:n],
            station_names=self.station_names,
            think_time=self.think_time,
            solver=self.solver,
            marginal_probabilities=marginals,
            demands_used=None if self.demands_used is None else self.demands_used[:n],
        )

    def interpolate_throughput(self, populations) -> np.ndarray:
        """Linear interpolation of ``X^n`` at arbitrary population levels."""
        return np.interp(np.asarray(populations, float), self.populations, self.throughput)

    def interpolate_cycle_time(self, populations) -> np.ndarray:
        """Linear interpolation of ``R^n + Z`` at arbitrary population levels."""
        return np.interp(np.asarray(populations, float), self.populations, self.cycle_time)

    def utilization_of(self, station: str) -> np.ndarray:
        """Utilization trajectory for one station by name."""
        try:
            col = self.station_names.index(station)
        except ValueError:
            raise KeyError(f"unknown station {station!r}") from None
        return self.utilizations[:, col]

    def queue_length_of(self, station: str) -> np.ndarray:
        try:
            col = self.station_names.index(station)
        except ValueError:
            raise KeyError(f"unknown station {station!r}") from None
        return self.queue_lengths[:, col]

    def littles_law_residual(self) -> np.ndarray:
        """``|N - X (R + Z)| / N`` per level — must be ~0 for a correct solver."""
        n = self.populations.astype(float)
        return np.abs(n - self.throughput * (self.response_time + self.think_time)) / n

    def summary(self) -> str:
        """One-line textual summary used by examples and benches."""
        xmax = float(self.throughput.max())
        nstar = int(self.populations[int(np.argmax(self.throughput))])
        return (
            f"{self.solver}: N=1..{self.max_population}, "
            f"X_max={xmax:.2f}/s at N={nstar}, "
            f"R+Z({self.max_population})={float(self.cycle_time[-1]):.3f}s"
        )
