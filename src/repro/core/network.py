"""Model descriptions of closed queueing networks.

The paper models each tier (load injector, web/application server,
database server) as a set of queueing stations — a multi-core CPU
(multi-server queue), a disk and the network transmit/receive paths
(single-server queues) — closed by a terminal "think time" delay
(Fig. 2).  :class:`Station` and :class:`ClosedNetwork` are the shared
input vocabulary of every solver in :mod:`repro.core` and of the
discrete-event simulator in :mod:`repro.simulation`.

Demands may be given per-station either as a scalar (classic MVA) or as
a callable ``n -> demand`` (MVASD / load-dependent analysis); the
solvers pick the representation they need via
:meth:`Station.demand_at`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Station", "ClosedNetwork"]

DemandLike = float | Callable[[float], float]


@dataclass(frozen=True)
class Station:
    """A single queueing station of a closed network.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"db.disk"``.
    demand:
        Service demand ``D_k = V_k * S_k`` in seconds.  Either a scalar
        (demand independent of concurrency) or a callable mapping the
        population level ``n`` to a demand (the MVASD ``SS_k^n`` array
        abstraction).
    servers:
        Number of servers ``C_k`` at the station (CPU cores); 1 for
        disks and network paths.
    visits:
        Visit count ``V_k`` relative to one system-level interaction.
        MVA formulations in the paper carry ``V_k`` separately from the
        per-visit service time ``S_k``; since only the product
        ``D_k = V_k S_k`` enters the equations we keep ``demand`` as the
        primary quantity and expose ``service_time`` derived from it.
    kind:
        ``"queue"`` for FCFS queueing stations, ``"delay"`` for pure
        delay (infinite-server) stations.
    """

    name: str
    demand: DemandLike
    servers: int = 1
    visits: float = 1.0
    kind: str = "queue"

    def __post_init__(self) -> None:
        if self.servers < 1 or int(self.servers) != self.servers:
            raise ValueError(f"servers must be a positive integer, got {self.servers}")
        if self.visits <= 0:
            raise ValueError(f"visits must be positive, got {self.visits}")
        if self.kind not in ("queue", "delay"):
            raise ValueError(f"kind must be 'queue' or 'delay', got {self.kind!r}")
        if not callable(self.demand) and self.demand < 0:
            raise ValueError(f"demand must be non-negative, got {self.demand}")

    @property
    def is_load_varying(self) -> bool:
        """True when the demand changes with concurrency (callable form)."""
        return callable(self.demand)

    def demand_at(self, n: float) -> float:
        """Service demand at population level ``n`` (``SS_k^n`` in the paper)."""
        if callable(self.demand):
            value = float(self.demand(n))
        else:
            value = float(self.demand)
        if value < 0:
            raise ValueError(
                f"station {self.name!r}: demand({n}) = {value} is negative"
            )
        return value

    def service_time_at(self, n: float) -> float:
        """Per-visit mean service time ``S_k = D_k / V_k`` at population ``n``."""
        return self.demand_at(n) / self.visits

    def with_demand(self, demand: DemandLike) -> "Station":
        """Return a copy of this station with a different demand."""
        return Station(
            name=self.name,
            demand=demand,
            servers=self.servers,
            visits=self.visits,
            kind=self.kind,
        )


@dataclass(frozen=True)
class ClosedNetwork:
    """A single-class closed queueing network with terminal think time.

    This is the product-form model of Fig. 2: ``stations`` hold the
    hardware resources of every tier and ``think_time`` the terminal
    user delay ``Z``.
    """

    stations: tuple[Station, ...]
    think_time: float = 0.0
    name: str = "closed-network"

    def __init__(
        self,
        stations: Iterable[Station],
        think_time: float = 0.0,
        name: str = "closed-network",
    ) -> None:
        stations = tuple(stations)
        if not stations:
            raise ValueError("a closed network needs at least one station")
        seen: set[str] = set()
        for st in stations:
            if st.name in seen:
                raise ValueError(f"duplicate station name {st.name!r}")
            seen.add(st.name)
        if think_time < 0:
            raise ValueError(f"think_time must be non-negative, got {think_time}")
        object.__setattr__(self, "stations", stations)
        object.__setattr__(self, "think_time", float(think_time))
        object.__setattr__(self, "name", name)

    # -- structural helpers -------------------------------------------------

    def __len__(self) -> int:
        return len(self.stations)

    def __iter__(self):
        return iter(self.stations)

    def __getitem__(self, key: int | str) -> Station:
        if isinstance(key, str):
            for st in self.stations:
                if st.name == key:
                    return st
            raise KeyError(key)
        return self.stations[key]

    @property
    def station_names(self) -> tuple[str, ...]:
        return tuple(st.name for st in self.stations)

    @property
    def queueing_stations(self) -> tuple[Station, ...]:
        return tuple(st for st in self.stations if st.kind == "queue")

    @property
    def has_varying_demands(self) -> bool:
        return any(st.is_load_varying for st in self.stations)

    def servers(self) -> np.ndarray:
        """Vector of server counts ``C_k``."""
        return np.array([st.servers for st in self.stations], dtype=int)

    def visits(self) -> np.ndarray:
        """Vector of visit counts ``V_k``."""
        return np.array([st.visits for st in self.stations], dtype=float)

    def demands_at(self, n: float) -> np.ndarray:
        """Vector of demands ``SS_k^n`` evaluated at population ``n``."""
        return np.array([st.demand_at(n) for st in self.stations], dtype=float)

    # -- derived analysis ----------------------------------------------------

    def bottleneck(self, n: float | None = None) -> Station:
        """The station with the largest *per-server* demand ``D_k / C_k``.

        For multi-server stations the saturation throughput is
        ``C_k / D_k``, so the bottleneck comparison must divide by the
        server count.  ``n`` selects the population at which varying
        demands are evaluated (defaults to 1).
        """
        level = 1.0 if n is None else float(n)
        per_server = [
            st.demand_at(level) / st.servers if st.kind == "queue" else 0.0
            for st in self.stations
        ]
        return self.stations[int(np.argmax(per_server))]

    def max_throughput(self, n: float | None = None) -> float:
        """Upper bound ``X <= min_k C_k / D_k`` over queueing stations."""
        level = 1.0 if n is None else float(n)
        bounds = [
            st.servers / st.demand_at(level)
            for st in self.stations
            if st.kind == "queue" and st.demand_at(level) > 0
        ]
        return min(bounds) if bounds else float("inf")

    def with_demands(self, demands: Sequence[DemandLike]) -> "ClosedNetwork":
        """Return a copy with per-station demands replaced (same order)."""
        if len(demands) != len(self.stations):
            raise ValueError(
                f"expected {len(self.stations)} demands, got {len(demands)}"
            )
        return ClosedNetwork(
            (st.with_demand(d) for st, d in zip(self.stations, demands)),
            think_time=self.think_time,
            name=self.name,
        )

    def with_think_time(self, think_time: float) -> "ClosedNetwork":
        return ClosedNetwork(self.stations, think_time=think_time, name=self.name)
