"""Operational laws for queueing-network performance analysis.

These are the fundamental identities of operational analysis (Denning &
Buzen) used throughout the paper — eqs. (1)-(6):

* Utilization law          ``U_i = X_i * S_i``
* Forced-flow law          ``X_i = V_i * X``
* Service-demand law       ``D_i = V_i * S_i = U_i / X``
* Little's law             ``N = X * (R + Z)``
* Bottleneck law           ``X <= 1 / D_max`` and the derived response-time
  lower bound ``R >= N * D_max - Z``.

All functions are pure, accept scalars or NumPy arrays (broadcasting
element-wise), and raise :class:`ValueError` on physically meaningless
inputs (negative times, zero throughput where a division is required).
They are deliberately tiny so they can be used inside tight loops of the
MVA solvers without overhead concerns; everything vectorizes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "utilization",
    "throughput_from_utilization",
    "service_time_from_utilization",
    "forced_flow",
    "visit_count",
    "service_demand",
    "service_demand_from_utilization",
    "littles_law_population",
    "littles_law_throughput",
    "littles_law_response_time",
    "bottleneck_throughput_bound",
    "response_time_lower_bound",
    "asymptotic_knee",
]


def _as_nonnegative(name: str, value):
    """Coerce to ``float`` / ``ndarray`` and validate non-negativity."""
    arr = np.asarray(value, dtype=float)
    if np.any(arr < 0):
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return arr if arr.ndim else float(arr)


def _as_positive(name: str, value):
    arr = np.asarray(value, dtype=float)
    if np.any(arr <= 0):
        raise ValueError(f"{name} must be strictly positive, got {value!r}")
    return arr if arr.ndim else float(arr)


def utilization(throughput, service_time):
    """Utilization law (eq. 1): ``U_i = X_i * S_i``.

    Parameters
    ----------
    throughput:
        Completion rate ``X_i`` of resource *i* (jobs / second).
    service_time:
        Mean service time ``S_i`` per visit (seconds).

    Returns
    -------
    float or ndarray
        Fraction of time the resource is busy.  May exceed 1 for a
        multi-server station where it then denotes *total* busy servers;
        divide by the server count for the per-server utilization.
    """
    x = _as_nonnegative("throughput", throughput)
    s = _as_nonnegative("service_time", service_time)
    return x * s


def throughput_from_utilization(util, service_time):
    """Invert the utilization law: ``X_i = U_i / S_i``."""
    u = _as_nonnegative("util", util)
    s = _as_positive("service_time", service_time)
    return u / s


def service_time_from_utilization(util, throughput):
    """Invert the utilization law: ``S_i = U_i / X_i``."""
    u = _as_nonnegative("util", util)
    x = _as_positive("throughput", throughput)
    return u / x


def forced_flow(system_throughput, visits):
    """Forced-flow law (eq. 2): ``X_i = V_i * X``."""
    x = _as_nonnegative("system_throughput", system_throughput)
    v = _as_nonnegative("visits", visits)
    return x * v


def visit_count(resource_throughput, system_throughput):
    """Invert the forced-flow law: ``V_i = X_i / X``."""
    xi = _as_nonnegative("resource_throughput", resource_throughput)
    x = _as_positive("system_throughput", system_throughput)
    return xi / x


def service_demand(visits, service_time):
    """Service-demand law (eq. 3, first form): ``D_i = V_i * S_i``."""
    v = _as_nonnegative("visits", visits)
    s = _as_nonnegative("service_time", service_time)
    return v * s


def service_demand_from_utilization(util, system_throughput):
    """Service-demand law (eq. 3, second form): ``D_i = U_i / X``.

    This is the form the paper uses to *extract* demands from monitored
    utilization and measured load-test throughput (Tables 2-3 -> Fig. 5).
    """
    u = _as_nonnegative("util", util)
    x = _as_positive("system_throughput", system_throughput)
    return u / x


def littles_law_population(throughput, response_time, think_time=0.0):
    """Little's law (eq. 4): ``N = X * (R + Z)``."""
    x = _as_nonnegative("throughput", throughput)
    r = _as_nonnegative("response_time", response_time)
    z = _as_nonnegative("think_time", think_time)
    return x * (r + z)


def littles_law_throughput(population, response_time, think_time=0.0):
    """Little's law solved for throughput: ``X = N / (R + Z)``."""
    n = _as_nonnegative("population", population)
    r = _as_nonnegative("response_time", response_time)
    z = _as_nonnegative("think_time", think_time)
    denom = np.asarray(r + z, dtype=float)
    if np.any(denom <= 0):
        raise ValueError("R + Z must be strictly positive")
    out = n / denom
    return out if np.ndim(out) else float(out)


def littles_law_response_time(population, throughput, think_time=0.0):
    """Little's law solved for response time: ``R = N / X - Z``."""
    n = _as_nonnegative("population", population)
    x = _as_positive("throughput", throughput)
    z = _as_nonnegative("think_time", think_time)
    out = n / x - z
    return out if np.ndim(out) else float(out)


def bottleneck_throughput_bound(demands) -> float:
    """Bottleneck law (eq. 5): ``X <= 1 / D_max`` with ``D_max = max_i D_i``."""
    d = np.asarray(demands, dtype=float)
    if d.size == 0:
        raise ValueError("demands must be non-empty")
    if np.any(d < 0):
        raise ValueError("demands must be non-negative")
    dmax = float(d.max())
    if dmax <= 0:
        return float("inf")
    return 1.0 / dmax


def response_time_lower_bound(population, demands, think_time=0.0):
    """Asymptotic response-time bound (eq. 6): ``R >= N * D_max - Z``.

    Also bounded below by the zero-contention sum of demands, so the
    returned value is ``max(sum(D), N * D_max - Z)``.
    """
    n = _as_nonnegative("population", population)
    d = np.asarray(demands, dtype=float)
    if np.any(d < 0):
        raise ValueError("demands must be non-negative")
    z = _as_nonnegative("think_time", think_time)
    dmax = float(d.max()) if d.size else 0.0
    dsum = float(d.sum())
    return np.maximum(dsum, n * dmax - z)


def asymptotic_knee(demands, think_time=0.0) -> float:
    """Population ``N*`` where the throughput asymptotes intersect.

    Below ``N* = (sum(D) + Z) / D_max`` the light-load asymptote
    ``X = N / (sum(D) + Z)`` applies; above it, ``X = 1 / D_max``.  Used
    by the benches to locate the saturation onset of each application.
    """
    d = np.asarray(demands, dtype=float)
    if d.size == 0 or np.any(d < 0):
        raise ValueError("demands must be non-empty and non-negative")
    z = _as_nonnegative("think_time", think_time)
    dmax = float(d.max())
    if dmax <= 0:
        return float("inf")
    return (float(d.sum()) + z) / dmax
