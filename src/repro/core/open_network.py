"""Open queueing-network analysis (M/M/C stations, Jackson-style).

Section 7 of the paper motivates modeling demand against *throughput*
because "throughput can be modified much easier" in **open** systems —
arrivals are an external rate ``lambda``, not a fixed user population.
This module provides that open-system counterpart to the closed-network
solvers:

* Erlang-B / Erlang-C formulas (numerically stable recurrences);
* :func:`analyze_open` — per-station utilizations, waiting times and
  queue lengths, system response time and population, for a given
  arrival rate, with stability checking;
* demand curves on the throughput axis plug straight in: for an open
  system the operating point *is* the throughput, so the paper's
  demand-vs-throughput splines (Fig. 11) evaluate directly — no fixed
  point needed.

Stations reuse :class:`repro.core.network.Station` (think time is not
part of an open model and is ignored with a ``ValueError`` if the
network carries one and ``strict=True``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from .network import ClosedNetwork

__all__ = ["OpenResult", "analyze_open", "erlang_b", "erlang_c"]


def erlang_b(servers: int, offered_load: float) -> float:
    """Erlang-B blocking probability for ``C`` servers at load ``a``.

    Computed with the stable recurrence
    ``B(0) = 1; B(j) = a B(j-1) / (j + a B(j-1))``.
    """
    if servers < 0:
        raise ValueError(f"servers must be non-negative, got {servers}")
    if offered_load < 0:
        raise ValueError(f"offered_load must be non-negative, got {offered_load}")
    b = 1.0
    for j in range(1, servers + 1):
        b = offered_load * b / (j + offered_load * b)
    return b


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C delay probability (P[wait > 0]) for an M/M/C queue.

    Requires ``offered_load < servers`` for a finite result; returns 1.0
    at or beyond saturation.
    """
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if offered_load < 0:
        raise ValueError(f"offered_load must be non-negative, got {offered_load}")
    if offered_load >= servers:
        return 1.0
    b = erlang_b(servers, offered_load)
    rho = offered_load / servers
    return b / (1.0 - rho + rho * b)


@dataclass(frozen=True)
class OpenResult:
    """Steady-state metrics of an open network at one arrival rate."""

    arrival_rate: float
    station_names: tuple[str, ...]
    utilizations: np.ndarray
    residence_times: np.ndarray
    queue_lengths: np.ndarray
    response_time: float
    population: float
    demands: np.ndarray

    @property
    def bottleneck(self) -> str:
        return self.station_names[int(np.argmax(self.utilizations))]

    def residence_of(self, station: str) -> float:
        try:
            return float(self.residence_times[self.station_names.index(station)])
        except ValueError:
            raise KeyError(f"unknown station {station!r}") from None


def analyze_open(
    network: ClosedNetwork,
    arrival_rate: float,
    demand_functions: Mapping[str, Callable[[float], float]] | None = None,
) -> OpenResult:
    """Solve the open M/M/C network at arrival rate ``lambda``.

    Parameters
    ----------
    network:
        Station topology (server counts, demands).  The network's think
        time is ignored — an open system has no terminals.
    arrival_rate:
        External arrival rate ``lambda`` (pages/second); this *is* the
        system throughput when stable.
    demand_functions:
        Optional per-station demand curves **on the throughput axis**
        (the Fig. 11 splines); evaluated at ``arrival_rate``.  Defaults
        to the network demands, with varying demands evaluated at the
        arrival rate (throughput-axis semantics).

    Raises
    ------
    ValueError
        If any station would be saturated (``lambda D_k >= C_k``).
    """
    if arrival_rate < 0:
        raise ValueError(f"arrival_rate must be non-negative, got {arrival_rate}")

    names = network.station_names
    k = len(network)
    d = np.empty(k)
    for i, st in enumerate(network.stations):
        if demand_functions is not None and st.name in demand_functions:
            d[i] = float(demand_functions[st.name](arrival_rate))
        else:
            d[i] = st.demand_at(arrival_rate)
        if d[i] < 0:
            raise ValueError(f"station {st.name!r}: negative demand {d[i]}")

    utils = np.zeros(k)
    residence = np.zeros(k)
    for i, st in enumerate(network.stations):
        if st.kind == "delay" or d[i] == 0.0:
            residence[i] = d[i]
            continue
        a = arrival_rate * d[i]  # offered load in servers
        if a >= st.servers:
            raise ValueError(
                f"station {st.name!r} saturated: lambda*D = {a:.3f} >= C = {st.servers}"
            )
        utils[i] = a / st.servers
        # M/M/C waiting time in demand units: Wq = ErlangC * D / (C (1-rho)).
        pw = erlang_c(st.servers, a)
        residence[i] = d[i] + pw * d[i] / (st.servers * (1.0 - utils[i]))

    response = float(residence.sum())
    return OpenResult(
        arrival_rate=arrival_rate,
        station_names=names,
        utilizations=utils,
        residence_times=residence,
        queue_lengths=arrival_rate * residence,
        response_time=response,
        population=arrival_rate * response,
        demands=d,
    )
