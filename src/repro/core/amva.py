"""Approximate MVA solvers — Schweitzer's fixed point and the
Seidmann multi-server transformation.

The paper contrasts its *exact* multi-server recursion (Algorithm 2)
with the *approximate* multi-server MVA used by MAQ-PRO (its ref. [19]),
noting that approximation errors compound with demand variation at high
concurrency.  These solvers provide that baseline for the ablation
bench.

**Schweitzer's approximation** (paper eq. 9) replaces the exact
arrival-theorem queue ``Q_k^{n-1}`` by the scaled current-population
estimate ``(n-1)/n * Q_k^n``, turning the O(N) recursion into a
fixed-point problem solved directly at the target population.

**Seidmann's transformation** approximates a ``C``-server station of
demand ``D`` by a single-server station of demand ``D/C`` in series
with a pure delay of ``D (C-1)/C``: correct at both the no-contention
limit (total ``D``) and the saturation limit (rate ``C/D``), but
inexact in between — which is precisely the regime where the paper
shows accuracy matters.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .mva import _prefill, _resolve_demands, validate_resume
from .network import ClosedNetwork, Station
from .results import MVAResult

__all__ = ["schweitzer_amva", "seidmann_transform", "approximate_multiserver_mva"]

_MAX_ITER = 10_000
_TOL = 1e-10


def _schweitzer_fixed_point(
    d: np.ndarray,
    is_queue: np.ndarray,
    z: float,
    n: int,
    q0: np.ndarray,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Solve the Schweitzer fixed point at population ``n``.

    Returns ``(X, R_k, Q_k)``.  Seeded with ``q0`` (the previous
    population's solution) for fast convergence along a sweep.
    """
    q = q0.copy()
    for _ in range(_MAX_ITER):
        q_arr = (n - 1.0) / n * q
        r_k = np.where(is_queue, d * (1.0 + q_arr), d)
        x = n / (float(r_k.sum()) + z)
        q_new = x * r_k
        if np.max(np.abs(q_new - q)) <= _TOL * max(1.0, float(np.max(q_new))):
            return x, r_k, q_new
        q = q_new
    return x, r_k, q_new  # pragma: no cover - convergence is geometric


def schweitzer_amva(
    network: ClosedNetwork,
    max_population: int,
    demands: Sequence[float] | None = None,
    demand_level: float = 1.0,
    resume_from: MVAResult | None = None,
) -> MVAResult:
    """Schweitzer approximate MVA over ``n = 1..N`` (single-server stations).

    Each population level is an independent fixed point, seeded by the
    previous level's queues; the result therefore has the same
    trajectory shape as the exact solvers.  Because level ``n`` depends
    on earlier levels only through that seed, ``resume_from=`` a
    previous result at ``L < N`` continues the sweep bit-identically
    from level ``L + 1``.
    """
    if max_population < 1:
        raise ValueError(f"max_population must be >= 1, got {max_population}")
    d = _resolve_demands(network, demands, demand_level, solver="schweitzer-amva")
    k = len(network)
    z = network.think_time
    is_queue = np.array([st.kind == "queue" for st in network.stations])
    servers = network.servers().astype(float)

    pops = np.arange(1, max_population + 1)
    xs = np.empty(max_population)
    rs = np.empty(max_population)
    qs = np.empty((max_population, k))
    rks = np.empty((max_population, k))
    utils = np.empty((max_population, k))

    start = 0
    q = np.full(k, 1.0 / k)
    if resume_from is not None:
        start = validate_resume(resume_from, max_population, k, z, "schweitzer-amva")
        if resume_from.demands_used is None or not np.array_equal(
            np.asarray(resume_from.demands_used[-1]), d
        ):
            raise ValueError(
                "schweitzer-amva: resume_from demands differ from this solve"
            )
        _prefill(resume_from, (xs, rs, qs, rks, utils))
        q = np.array(resume_from.queue_lengths[-1], dtype=float)

    for i in range(start, max_population):
        n = i + 1
        x, r_k, q = _schweitzer_fixed_point(d, is_queue, z, int(n), q)
        xs[i] = x
        rs[i] = float(r_k.sum())
        qs[i] = q
        rks[i] = r_k
        utils[i] = x * d / servers

    return MVAResult(
        populations=pops,
        throughput=xs,
        response_time=rs,
        queue_lengths=qs,
        residence_times=rks,
        utilizations=utils,
        station_names=network.station_names,
        think_time=z,
        solver="schweitzer-amva",
        demands_used=np.tile(d, (max_population, 1)),
    )


def seidmann_transform(network: ClosedNetwork) -> ClosedNetwork:
    """Replace every multi-server station by its Seidmann equivalent.

    A ``C``-server queue of demand ``D`` becomes a single-server queue of
    demand ``D/C`` plus a delay station of demand ``D (C-1)/C``.  The
    returned network contains only single-server stations, solvable by
    any single-server MVA.  Varying (callable) demands are wrapped so the
    split scales with the evaluated demand.
    """
    new_stations: list[Station] = []
    for st in network.stations:
        if st.kind != "queue" or st.servers == 1:
            new_stations.append(st)
            continue
        c = st.servers
        if callable(st.demand):
            fn = st.demand
            queue_demand = lambda n, _f=fn, _c=c: float(_f(n)) / _c
            delay_demand = lambda n, _f=fn, _c=c: float(_f(n)) * (_c - 1) / _c
        else:
            queue_demand = float(st.demand) / c
            delay_demand = float(st.demand) * (c - 1) / c
        new_stations.append(
            Station(st.name, queue_demand, servers=1, visits=st.visits, kind="queue")
        )
        new_stations.append(
            Station(
                f"{st.name}.seidmann-delay",
                delay_demand,
                servers=1,
                visits=st.visits,
                kind="delay",
            )
        )
    return ClosedNetwork(
        new_stations, think_time=network.think_time, name=f"{network.name}-seidmann"
    )


def approximate_multiserver_mva(
    network: ClosedNetwork,
    max_population: int,
    demands: Sequence[float] | None = None,
    demand_level: float = 1.0,
) -> MVAResult:
    """Approximate multi-server MVA: Seidmann transform + Schweitzer.

    This is the MAQ-PRO-style baseline ([19] in the paper).  The result
    is reported against the *original* station list: the synthetic
    Seidmann delay residence time is folded back into its parent
    station's columns so trajectories are directly comparable with
    Algorithm 2 output.
    """
    if demands is not None:
        network = network.with_demands(demands)
        demands = None
    transformed = seidmann_transform(network)
    raw = schweitzer_amva(transformed, max_population, demand_level=demand_level)

    names = network.station_names
    n_levels = max_population
    k = len(names)
    qs = np.zeros((n_levels, k))
    rks = np.zeros((n_levels, k))
    utils = np.zeros((n_levels, k))
    for col_raw, raw_name in enumerate(raw.station_names):
        base = raw_name.removesuffix(".seidmann-delay")
        col = names.index(base)
        qs[:, col] += raw.queue_lengths[:, col_raw]
        rks[:, col] += raw.residence_times[:, col_raw]
        if not raw_name.endswith(".seidmann-delay"):
            # utilization of the Seidmann queue (demand D/C) equals the
            # per-server utilization X D / C of the original station.
            utils[:, col] = raw.utilizations[:, col_raw]

    return MVAResult(
        populations=raw.populations,
        throughput=raw.throughput,
        response_time=raw.response_time,
        queue_lengths=qs,
        residence_times=rks,
        utilizations=utils,
        station_names=names,
        think_time=raw.think_time,
        solver="approx-multiserver-mva",
    )
