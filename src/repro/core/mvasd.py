"""Algorithm 3 — MVASD: multi-server MVA with varying service demands.

The paper's core contribution.  Classic MVA assumes the demand vector is
constant over the whole population sweep, but measured demands *change*
with concurrency (caching, batching, branch prediction — Figs. 5, 10).
MVASD therefore re-evaluates, at every population level ``n``, an
interpolated demand ``SS_k^n = h_k(n)`` fitted through demands sampled
at a handful of measured concurrency levels, and feeds it to the
multi-server residence-time equation (eq. 11):

    ``R_k = (SS_k^n / C_k) * (1 + Q_k + F_k)``

with the same marginal-probability machinery as Algorithm 2 (but driven
by ``SS_k^n``).  Two additional variants reproduce the paper's
baselines and extensions:

* ``single_server=True`` — the "MVASD: Single Server" baseline of
  Fig. 8: multi-server queues are *normalized* to single-server ones by
  dividing the demand by the core count (``R_k = (SS_k^n/C_k)(1+Q_k)``),
  dropping the correction factor.  Underestimates contention for
  CPU-bound workloads.
* ``demand_axis="throughput"`` — Section 7 / Fig. 11: demand curves
  interpolated against *throughput* instead of concurrency.  Since
  ``X^n`` is not known before the level is solved, each level runs a
  small damped fixed-point iteration ``X -> demands(X) -> X`` seeded
  with the previous level's throughput.

Demand functions may come from the network's own callable demands, from
an explicit mapping, or from fitted
:class:`repro.interpolate.demand_model.ServiceDemandModel` objects —
anything callable ``level -> seconds``.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from .multiserver import MultiServerState
from .mva import validate_resume
from .network import ClosedNetwork
from .results import MVAResult

__all__ = ["mvasd", "precompute_demand_matrix"]

DemandFn = Callable[[float], float]

#: Damped fixed-point controls for ``demand_axis="throughput"``.
_FP_MAX_ITER = 50
_FP_TOL = 1e-10
_FP_DAMPING = 0.5


def _resolve_demand_functions(
    network: ClosedNetwork,
    demand_functions: Mapping[str, DemandFn] | Sequence[DemandFn] | None,
) -> list[DemandFn]:
    """One callable per station, in station order.

    Delegates to the shared validator in :mod:`repro.solvers.validation`
    (deferred import to avoid the registration-time cycle).
    """
    from ..solvers.validation import resolve_demand_functions

    return resolve_demand_functions(network, demand_functions, solver="mvasd")


def _demands_at(fns: Sequence[DemandFn], level: float) -> np.ndarray:
    d = np.array([float(f(level)) for f in fns])
    if not np.isfinite(d).all():
        raise ValueError(f"mvasd: non-finite interpolated demand at level {level}: {d}")
    if np.any(d < 0):
        raise ValueError(f"negative interpolated demand at level {level}: {d}")
    return d


def precompute_demand_matrix(
    fns: Sequence[DemandFn],
    max_population: int,
    levels: np.ndarray | None = None,
) -> np.ndarray:
    """Evaluate every demand curve over the whole population grid up front.

    Returns the ``(N, K)`` matrix ``SS_k^n`` for ``n = 1..N`` (or over an
    explicit ``levels`` grid).  Curves that accept array input — fitted
    :class:`~repro.interpolate.demand_model.ServiceDemandModel` splines,
    :class:`~repro.apps.profiles.DemandProfile` shapes — are evaluated in
    one vectorized call per station; anything else falls back to a
    per-level loop.  This replaces the K Python calls per recursion level
    inside :func:`mvasd` with a single upfront sweep, which is what makes
    the batched kernels in :mod:`repro.engine` profitable.
    """
    if levels is None:
        if max_population < 1:
            raise ValueError(f"max_population must be >= 1, got {max_population}")
        levels = np.arange(1, max_population + 1, dtype=float)
    else:
        levels = np.asarray(levels, dtype=float)
    cols = []
    for f in fns:
        col = None
        try:
            out = np.asarray(f(levels), dtype=float)
            if out.shape == levels.shape:
                col = out
        except Exception:
            col = None
        if col is None:
            col = np.array([float(f(lvl)) for lvl in levels])
        cols.append(col)
    matrix = np.stack(cols, axis=1)
    if not np.isfinite(matrix).all():
        bad = np.argwhere(~np.isfinite(matrix))[0]
        raise ValueError(
            f"mvasd: non-finite interpolated demand at level {levels[bad[0]]:g} "
            f"(station index {bad[1]})"
        )
    if np.any(matrix < 0):
        bad = np.argwhere(matrix < 0)[0]
        raise ValueError(
            f"negative interpolated demand at level {levels[bad[0]]:g} "
            f"(station index {bad[1]})"
        )
    return matrix


def mvasd(
    network: ClosedNetwork,
    max_population: int,
    demand_functions: Mapping[str, DemandFn] | Sequence[DemandFn] | None = None,
    single_server: bool = False,
    demand_axis: str = "population",
    resume_from: MVAResult | None = None,
) -> MVAResult:
    """Solve a closed network with MVASD (Algorithm 3).

    Parameters
    ----------
    network:
        Closed network; stations with callable demands supply their own
        ``SS_k^n`` curves unless ``demand_functions`` overrides them.
    max_population:
        Largest population ``N``; the recursion covers ``n = 1..N``.
    demand_functions:
        Optional per-station demand curves — a mapping keyed by station
        name or a sequence in station order.  Typically the
        ``predict``/``__call__`` of fitted spline demand models.
    single_server:
        Use the normalized single-server baseline instead of the
        multi-server correction (Fig. 8 comparison).
    demand_axis:
        ``"population"`` (default) evaluates demand curves at ``n``;
        ``"throughput"`` evaluates them at the level's own throughput
        via a damped fixed point (Fig. 11).
    resume_from:
        A previous *non-prefix* result of this solver variant at some
        ``L < N`` over the same network and demand curves: the recursion
        restarts from level ``L + 1``, bit-identical to a full solve.
        Multi-server resumes need the result's ``final_state`` (the
        per-station marginal vectors), which prefix slices drop.  Only
        ``demand_axis="population"`` is resumable — the throughput axis
        seeds each level's fixed point with the float ``x_prev``, which
        a prefix cannot reproduce for the level after the cut.

    Returns
    -------
    MVAResult
        With ``demands_used`` recording the actual ``SS_k^n`` consumed at
        every level and, for multi-server runs, the ``p_k(j)``
        trajectories.
    """
    if max_population < 1:
        raise ValueError(f"max_population must be >= 1, got {max_population}")
    if demand_axis not in ("population", "throughput"):
        raise ValueError(f"demand_axis must be 'population' or 'throughput', got {demand_axis!r}")

    fns = _resolve_demand_functions(network, demand_functions)
    k = len(network)
    z = network.think_time
    stations = network.stations
    servers = network.servers()

    # Population-axis demands depend only on n, so the whole SS_k^n matrix
    # is computable before the recursion starts (vectorized per station).
    demand_matrix = (
        precompute_demand_matrix(fns, max_population)
        if demand_axis == "population"
        else None
    )

    q = np.zeros(k)
    states = (
        None
        if single_server
        else [
            MultiServerState(st.servers, max_population) if st.kind == "queue" else None
            for st in stations
        ]
    )

    pops = np.arange(1, max_population + 1)
    xs = np.empty(max_population)
    rs = np.empty(max_population)
    qs = np.empty((max_population, k))
    rks = np.empty((max_population, k))
    utils = np.empty((max_population, k))
    used = np.empty((max_population, k))
    prob_hist = (
        {}
        if single_server
        else {
            st.name: np.empty((max_population, st.servers))
            for st in stations
            if st.servers > 1
        }
    )

    start = 0
    if resume_from is not None:
        solver_name = "mvasd-single-server" if single_server else "mvasd"
        if demand_axis != "population":
            raise ValueError(
                "mvasd: resume_from requires demand_axis='population' "
                "(the throughput axis is not level-separable)"
            )
        prev = resume_from
        start = validate_resume(prev, max_population, k, z, solver_name)
        if prev.solver != solver_name:
            raise ValueError(
                f"mvasd: resume_from was produced by {prev.solver!r}, "
                f"this solve is {solver_name!r}"
            )
        if prev.demands_used is None or not np.array_equal(
            np.asarray(prev.demands_used), demand_matrix[:start]
        ):
            raise ValueError("mvasd: resume_from demands differ from this solve")
        if not single_server:
            fstate = prev.final_state
            if not isinstance(fstate, Mapping) or "marginals" not in fstate:
                raise ValueError(
                    "mvasd: resume_from lacks final_state (prefix slices drop "
                    "it) — re-solve from scratch or resume the original result"
                )
            if int(fstate.get("level", -1)) != start:
                raise ValueError(
                    f"mvasd: final_state level {fstate.get('level')} != "
                    f"resume level {start}"
                )
            for idx, st in enumerate(stations):
                if st.kind != "queue":
                    continue
                snap = fstate["marginals"].get(st.name)
                if snap is None or int(snap["servers"]) != st.servers:
                    raise ValueError(
                        f"mvasd: final_state has no matching marginals for "
                        f"station {st.name!r}"
                    )
                states[idx] = MultiServerState.restore(
                    st.servers, max_population, snap["p"], snap["level"]
                )
        xs[:start] = prev.throughput
        rs[:start] = prev.response_time
        qs[:start] = prev.queue_lengths
        rks[:start] = prev.residence_times
        utils[:start] = prev.utilizations
        used[:start] = prev.demands_used
        for name, hist in prob_hist.items():
            if prev.marginal_probabilities is None or name not in prev.marginal_probabilities:
                raise ValueError(
                    f"mvasd: resume_from lacks marginal history for {name!r}"
                )
            hist[:start] = prev.marginal_probabilities[name]
        q = np.array(prev.queue_lengths[-1], dtype=float)

    def level_step(n: int, d: np.ndarray) -> tuple[np.ndarray, float]:
        """Residence times and their total at level ``n`` for demands ``d``."""
        r_k = np.empty(k)
        for idx, st in enumerate(stations):
            if st.kind == "delay":
                r_k[idx] = d[idx]
            elif single_server:
                r_k[idx] = (d[idx] / st.servers) * (1.0 + q[idx])
            else:
                r_k[idx] = states[idx].residence(n, d[idx])
        return r_k, float(r_k.sum())

    x_prev = 0.0
    for i in range(start, max_population):
        n = i + 1
        if demand_axis == "population":
            d = demand_matrix[i]
            r_k, r_total = level_step(n, d)
            x = n / (r_total + z)
        else:
            # Fixed point in throughput: seed with the previous level's X
            # (or the zero-contention estimate for the first customer).
            # The residence form is linear in the demand vector, so the
            # iteration only re-scales r_k — the station state is advanced
            # exactly once per level, after convergence.
            if x_prev <= 0:
                d0 = _demands_at(fns, 0.0)
                x_prev = 1.0 / (float(d0.sum()) + z) if (d0.sum() + z) > 0 else 1.0
            x = x_prev
            d = _demands_at(fns, x)
            r_k, r_total = level_step(n, d)
            base = np.divide(r_k, d, out=np.zeros(k), where=d > 0)
            for _ in range(_FP_MAX_ITER):
                x_new = n / (r_total + z)
                if abs(x_new - x) <= _FP_TOL * max(1.0, x):
                    x = x_new
                    break
                x = _FP_DAMPING * x + (1.0 - _FP_DAMPING) * x_new
                d = _demands_at(fns, x)
                r_k = base * d
                r_total = float(r_k.sum())
            else:
                x = n / (r_total + z)

        q = x * r_k
        if not single_server:
            for idx, st in enumerate(stations):
                if st.kind == "queue":
                    states[idx].update(n, x, d[idx])
                if st.servers > 1:
                    prob_hist[st.name][i] = states[idx].marginals()
        x_prev = x
        xs[i] = x
        rs[i] = r_total
        qs[i] = q
        rks[i] = r_k
        utils[i] = x * d / servers
        used[i] = d

    solver = "mvasd-single-server" if single_server else "mvasd"
    if demand_axis == "throughput":
        solver += "-throughput"
    final_state = None
    if states is not None and demand_axis == "population":
        final_state = {
            "solver": solver,
            "level": max_population,
            "marginals": {
                st.name: states[idx].snapshot()
                for idx, st in enumerate(stations)
                if st.kind == "queue"
            },
        }
    return MVAResult(
        populations=pops,
        throughput=xs,
        response_time=rs,
        queue_lengths=qs,
        residence_times=rks,
        utilizations=utils,
        station_names=network.station_names,
        think_time=z,
        solver=solver,
        marginal_probabilities=prob_hist or None,
        demands_used=used,
        final_state=final_state,
    )
