"""Buzen's convolution algorithm in the log domain.

The normalizing-constant method for single-class closed product-form
networks.  Each station contributes a coefficient sequence

    ``f_k(j) = D_k^j / prod_{i=1..j} min(i, C_k)``      (queueing, C_k servers)
    ``f_k(j) = Z^j / j!``                               (delay / think time)

and the network's normalizing constant is the convolution
``G = f_1 * f_2 * ... * f_K`` evaluated over populations ``0..N``.
Throughput follows as ``X(n) = G(n-1) / G(n)``; station marginals as
``p_k(j | n) = f_k(j) * G_{-k}(n - j) / G(n)`` where ``G_{-k}`` excludes
station ``k``.

Everything is carried as logarithms with ``logsumexp`` reductions, which
makes the method numerically robust for any server count and population
— in contrast to the MVA-LD recursion whose ``1 - sum`` marginal closure
amplifies rounding error past ~75 % utilization (see
:mod:`repro.core.multiserver`).  This solver is therefore the exact
reference the rest of :mod:`repro.core` is validated against, and the
backend of :func:`repro.core.multiserver.exact_multiserver_mva`.

Complexity: O(K N^2) time, O(N) per retained sequence.  Per-station
queue lengths for multi-server stations need one complement convolution
``G_{-k}`` each (another O(K N^2) in the worst case), so they are
computed only when requested.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.special import gammaln, logsumexp

from .mva import _resolve_demands
from .network import ClosedNetwork
from .results import MVAResult

__all__ = ["convolution_mva", "log_station_coefficients", "log_convolve"]

_NEG_INF = -np.inf


def log_station_coefficients(
    demand: float, servers: int, max_population: int, kind: str = "queue"
) -> np.ndarray:
    """``log f_k(j)`` for ``j = 0..N`` of one station.

    Zero-demand stations contribute the identity sequence
    ``(1, 0, 0, ...)`` (log: ``(0, -inf, ...)``).
    """
    if demand < 0:
        raise ValueError(f"demand must be non-negative, got {demand}")
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    n = max_population
    out = np.full(n + 1, _NEG_INF)
    out[0] = 0.0
    if demand == 0.0:
        return out
    j = np.arange(1, n + 1)
    if kind == "delay":
        out[1:] = j * np.log(demand) - gammaln(j + 1.0)
    else:
        rates = np.minimum(j, servers).astype(float)
        out[1:] = j * np.log(demand) - np.cumsum(np.log(rates))
    return out


def log_convolve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Convolution of two log-domain sequences, truncated to ``len(a)``.

    ``out[n] = logsumexp_j (a[j] + b[n-j])`` — one vectorized reduction
    per output element.
    """
    if a.shape != b.shape:
        raise ValueError(f"sequences must have equal length, got {a.shape}/{b.shape}")
    n = a.shape[0]
    out = np.empty(n)
    for m in range(n):
        out[m] = logsumexp(a[: m + 1] + b[m::-1])
    return out


def convolution_mva(
    network: ClosedNetwork,
    max_population: int,
    demands: Sequence[float] | None = None,
    demand_level: float = 1.0,
    station_detail: bool = True,
) -> MVAResult:
    """Solve a closed network exactly via log-domain convolution.

    Parameters mirror :func:`repro.core.mva.exact_mva`; demands are
    constant over the sweep (varying networks frozen at
    ``demand_level``).  The network's think time enters as one delay
    station.

    With ``station_detail=True`` (default) per-station queue lengths and
    residence times are computed — exactly, for every station:
    single-server queueing stations via the arrival-theorem recursion
    driven by the exact throughput, multi-server stations via complement
    convolutions.  With ``station_detail=False`` those arrays are filled
    by even distribution of the (exact) total and only throughput /
    response time / utilizations are authoritative — cheaper when only
    system-level trajectories are needed.

    Returns
    -------
    MVAResult
        ``solver="convolution"``.
    """
    if max_population < 1:
        raise ValueError(f"max_population must be >= 1, got {max_population}")
    d = _resolve_demands(network, demands, demand_level, solver="convolution")
    k = len(network)
    z = network.think_time
    stations = network.stations
    servers = network.servers()
    n_levels = max_population

    logs = [
        log_station_coefficients(
            d[i], st.servers, n_levels, "delay" if st.kind == "delay" else "queue"
        )
        for i, st in enumerate(stations)
    ]
    if z > 0:
        logs.append(log_station_coefficients(z, 1, n_levels, kind="delay"))

    log_g = logs[0].copy()
    for seq in logs[1:]:
        log_g = log_convolve(log_g, seq)

    pops = np.arange(1, n_levels + 1)
    # X(n) = G(n-1)/G(n)
    xs = np.exp(log_g[:-1] - log_g[1:])
    rs = pops / xs - z
    utils = (xs[:, np.newaxis] * d[np.newaxis, :]) / servers[np.newaxis, :]

    qs = np.zeros((n_levels, k))
    rks = np.zeros((n_levels, k))
    if station_detail:
        multiserver_idx = [
            i for i, st in enumerate(stations) if st.kind == "queue" and st.servers > 1
        ]
        # Exact queue lengths of single-server stations: arrival theorem with
        # the exact X(n); exact for product-form networks.
        for i, st in enumerate(stations):
            if st.kind == "delay":
                rks[:, i] = d[i]
                qs[:, i] = xs * d[i]
            elif st.servers == 1:
                q_prev = 0.0
                for lev in range(n_levels):
                    r = d[i] * (1.0 + q_prev)
                    q_prev = xs[lev] * r
                    rks[lev, i] = r
                    qs[lev, i] = q_prev
        # Multi-server stations: p_k(j|n) = f_k(j) G_{-k}(n-j) / G(n).
        for i in multiserver_idx:
            others = [seq for j, seq in enumerate(logs) if j != i]
            if others:
                log_g_minus = others[0].copy()
                for seq in others[1:]:
                    log_g_minus = log_convolve(log_g_minus, seq)
            else:
                # lone station, no think term: the complement network is
                # empty, whose G is the delta at population 0
                log_g_minus = np.full(n_levels + 1, -np.inf)
                log_g_minus[0] = 0.0
            f_i = logs[i]
            for lev in range(n_levels):
                n = lev + 1
                log_p = f_i[: n + 1] + log_g_minus[n::-1] - log_g[n]
                with np.errstate(over="ignore"):
                    p = np.exp(log_p)
                qs[lev, i] = float((np.arange(n + 1) * p).sum())
                rks[lev, i] = qs[lev, i] / xs[lev]
    else:
        # System totals are exact; spread them evenly for shape only.
        share = rs / max(k, 1)
        rks[:] = share[:, np.newaxis]
        qs[:] = (xs * share)[:, np.newaxis]

    return MVAResult(
        populations=pops,
        throughput=xs,
        response_time=rs,
        queue_lengths=qs,
        residence_times=rks,
        utilizations=utils,
        station_names=network.station_names,
        think_time=z,
        solver="convolution",
        demands_used=np.tile(d, (n_levels, 1)),
    )
