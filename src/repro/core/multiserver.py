"""Algorithm 2 — exact MVA with multi-server queues.

Multi-core CPUs are multi-server FCFS queues; plain MVA has no notion of
``C_k`` parallel servers.  The paper adopts the correction of its
ref. [8] (the Reiser exact multi-server recursion, as presented e.g. in
Bolch et al., *Queueing Networks and Markov Chains*): the residence
time at a ``C_k``-server station is

    ``R_k = (D_k / C_k) * (1 + Q_k + F_k)``                    (eq. 10)

with a correction factor built from the marginal queue-size
probabilities ``p_k(j)`` = P[``j`` jobs at station ``k``],

    ``F_k = sum_{j=0}^{C_k - 2} (C_k - 1 - j) * p_k(j)``

updated after each population step as

    ``p_k(j) <- (X^n D_k / j) * p_k(j-1)``          for ``j = 1..C_k-1``
    ``p_k(0) <- 1 - (1/C_k) * (X^n D_k + sum_{j=1}^{C_k-1} (C_k - j) p_k(j))``

**Indexing note.** The paper's pseudocode stores these in a 1-based
Scilab array — its ``p_k(1)`` (initialized to 1 on the empty network)
is the *empty-station* probability ``p_k(0)`` here, and its correction
``sum_{j=1}^{C_k}(C_k - j) p_k(j)`` is this ``F_k`` after the index
shift.  Read literally in 0-based form, the pseudocode diverges
(probabilities exceed 1 at ``C_k = 16``).

**Numerical note.** The truncated recursion above, though algebraically
exact, is numerically unstable for larger server counts: near
saturation ``p_k(0)`` becomes a catastrophic cancellation
(``1 - (XD + ...)/C`` with ``XD -> C``) whose rounding error is then
amplified through the ``(XD/j)`` chain — at ``C_k = 16`` the recursion
tracks the exact solution to 1e-13 until ~70 % utilization and then
blows up.  This is a known property of exact multi-server MVA.  The
solver therefore carries the **full** marginal vector ``p_k(j | n)``
for ``j = 0..n`` (:class:`MultiServerState`), for which one can show

    ``(D/C) * (1 + Q + F)  ==  D * sum_{j>=1} (j / min(j, C)) p(j-1 | n-1)``

i.e. eq. 10 evaluated with exact marginals equals the load-dependent
residence form — stable because residence is dominated by the large
marginals instead of the tiny cancelled ones.  The truncated
paper-literal update (:func:`multiserver_step` /
:func:`update_marginals`) is kept for small server counts and the
Fig. 3 bench; the test suite validates both against
:mod:`repro.core.ld_mva` in their stable regimes.

The per-visit ``S_k`` of the paper combines with ``V_k`` into the
demand ``D_k`` here, exactly as in the total ``sum_k V_k R_k``.  For
``C_k = 1`` the correction factor is zero and the recursion reduces to
Algorithm 1.

At zero load ``p_k(0) = 1`` so ``F_k = C_k - 1`` and ``R_k = D_k`` — a
lone customer sees the full service demand.  As the station saturates
the low-occupancy probabilities vanish and
``R_k -> (D_k / C_k)(1 + Q_k)``, the correct heavy-traffic behaviour of
a ``C_k``-server queue.  Fig. 3 of the paper plots these ``p_k(j)``
trajectories for a 4-core CPU;
:class:`~repro.core.results.MVAResult.marginal_probabilities` exposes
them for the corresponding bench.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .mva import _resolve_demands
from .network import ClosedNetwork
from .results import MVAResult

__all__ = [
    "MultiServerState",
    "exact_multiserver_mva",
    "multiserver_step",
    "update_marginals",
]


class MultiServerState:
    """Stable exact residence-time state for one multi-server station.

    Carries the full marginal queue-size vector ``p(j | n)`` for
    ``j = 0..n`` and evaluates eq. 10 through the equivalent
    load-dependent form (see module docstring).  Demands may differ at
    every population level, which is what MVASD needs.
    """

    __slots__ = ("servers", "max_population", "_p", "_weights", "_level")

    def __init__(self, servers: int, max_population: int) -> None:
        if servers < 1:
            raise ValueError(f"servers must be >= 1, got {servers}")
        if max_population < 1:
            raise ValueError(f"max_population must be >= 1, got {max_population}")
        self.servers = int(servers)
        self.max_population = int(max_population)
        self._p = np.zeros(max_population + 1)
        self._p[0] = 1.0  # empty network
        js = np.arange(1, max_population + 1, dtype=float)
        #: j / min(j, C): the per-job residence weight of the LD form.
        self._weights = js / np.minimum(js, self.servers)
        self._level = 0

    def residence(self, n: int, demand: float) -> float:
        """``R_k`` at population ``n`` given this level's demand.

        Must be called with ``n`` equal to one past the last updated
        level (the recursion is strictly sequential).
        """
        if n != self._level + 1:
            raise ValueError(
                f"out-of-order recursion: expected n={self._level + 1}, got {n}"
            )
        return demand * float((self._weights[:n] * self._p[:n]).sum())

    def update(self, n: int, x: float, demand: float) -> None:
        """Advance the marginals to population ``n`` after ``X^n`` is known.

        The closing ``p(0) = 1 - sum(tail)`` is a cancellation whose
        rounding error the recursion amplifies exponentially once the
        station runs past ~75 % utilization (the classical MVA-LD
        instability).  Renormalizing the whole vector each level keeps
        the recursion bounded and self-correcting; the residual bias is
        confined to the saturation transition and is small (<~2 % on a
        16-core bottleneck), which the test suite pins down against the
        exact convolution solver.
        """
        if n != self._level + 1:
            raise ValueError(
                f"out-of-order recursion: expected n={self._level + 1}, got {n}"
            )
        mu_scale = x * demand  # X / mu(j) = X * D / min(j, C), applied below
        js = np.arange(1, n + 1, dtype=float)
        new_tail = (mu_scale / np.minimum(js, self.servers)) * self._p[:n]
        self._p[1 : n + 1] = new_tail
        self._p[0] = max(0.0, 1.0 - float(new_tail.sum()))
        total = float(self._p[: n + 1].sum())
        if total > 0:
            self._p[: n + 1] /= total
        self._level = n

    def snapshot(self) -> dict:
        """Serializable copy of the recursion state at the current level.

        Together with :meth:`restore` this lets a solver resume the
        population recursion from a cached prefix (``resume_from=`` in
        :func:`repro.core.mvasd.mvasd`) bit-identically: the full
        marginal vector *is* the recursion state.
        """
        return {
            "servers": self.servers,
            "level": self._level,
            "p": self._p[: self._level + 1].copy(),
        }

    @classmethod
    def restore(
        cls, servers: int, max_population: int, p: np.ndarray, level: int
    ) -> "MultiServerState":
        """Rebuild a state from :meth:`snapshot` with room to reach ``max_population``."""
        level = int(level)
        p = np.asarray(p, dtype=float)
        if level > max_population:
            raise ValueError(
                f"snapshot level {level} exceeds max_population {max_population}"
            )
        if p.shape != (level + 1,):
            raise ValueError(f"snapshot p must have shape ({level + 1},), got {p.shape}")
        state = cls(servers, max_population)
        state._p[: level + 1] = p
        state._p[level + 1 :] = 0.0
        state._level = level
        return state

    def queue_length(self) -> float:
        """Mean jobs ``Q_k`` at the last updated level (from the marginals)."""
        n = self._level
        js = np.arange(0, n + 1, dtype=float)
        return float((js * self._p[: n + 1]).sum())

    def marginals(self, upto: int | None = None) -> np.ndarray:
        """``p(0..upto-1)`` at the last updated level (default: C values)."""
        count = self.servers if upto is None else int(upto)
        out = np.zeros(count)
        take = min(count, self._p.shape[0])
        out[:take] = self._p[:take]
        return out

    def correction_factor(self) -> float:
        """The paper's ``F_k`` evaluated from the exact marginals."""
        c = self.servers
        if c == 1:
            return 0.0
        j = np.arange(0, c - 1, dtype=float)
        return float(((c - 1 - j) * self._p[: c - 1]).sum())


def multiserver_step(
    demand: float,
    servers: int,
    queue: float,
    probs: np.ndarray,
) -> float:
    """Residence time of one station for one population step (eq. 10).

    ``probs`` holds ``p_k(0 .. C_k-1)`` at the *previous* population;
    the caller updates them afterwards with :func:`update_marginals`.
    Exposed separately so the MVASD solver (Algorithm 3) can reuse it
    with per-level demands.
    """
    if servers == 1:
        return demand * (1.0 + queue)
    j = np.arange(0, servers - 1)
    correction = float(((servers - 1 - j) * probs[: servers - 1]).sum())
    return (demand / servers) * (1.0 + queue + correction)


def update_marginals(probs: np.ndarray, x: float, demand: float, servers: int) -> None:
    """In-place marginal-probability update of Algorithm 2.

    ``p(1..C-1)`` are chained from the previous population's values
    (highest index first, so each reads the *old* lower neighbour), then
    ``p(0)`` is renormalized from the new tail.  ``p(0)`` is clamped at
    0: past saturation the closed-form normalization can dip negative
    by rounding since ``X^n D_k -> C_k`` only in exact arithmetic.
    """
    if servers == 1:
        return
    xd = x * demand
    for j in range(servers - 1, 0, -1):
        probs[j] = (xd / j) * probs[j - 1]
    weights = servers - np.arange(1, servers)
    tail = float((weights * probs[1:servers]).sum())
    probs[0] = max(0.0, 1.0 - (xd + tail) / servers)


def exact_multiserver_mva(
    network: ClosedNetwork,
    max_population: int,
    demands: Sequence[float] | None = None,
    demand_level: float = 1.0,
    method: str = "convolution",
    station_detail: bool = True,
) -> MVAResult:
    """Solve a closed network with exact multi-server MVA (Algorithm 2).

    Demands are constant over the population sweep; as with
    :func:`repro.core.mva.exact_mva`, a varying-demand network is frozen
    at ``demand_level`` (the paper's ``MVA i`` construction) unless an
    explicit ``demands`` vector is given.

    ``method`` selects the backend:

    * ``"convolution"`` (default) — the model Algorithm 2 computes,
      solved exactly and stably for any server count via
      :func:`repro.core.convolution.convolution_mva`.
    * ``"recursion"`` — the paper's marginal-probability recursion
      (full-vector, renormalized).  Matches convolution to rounding for
      small server counts and moderate utilization, and additionally
      returns the ``p_k(j)`` trajectories of Fig. 3 in
      ``marginal_probabilities``; subject to the MVA-LD transition bias
      discussed in the module docstring for many-server bottlenecks.
    """
    if max_population < 1:
        raise ValueError(f"max_population must be >= 1, got {max_population}")
    if method not in ("convolution", "recursion"):
        raise ValueError(f"method must be 'convolution' or 'recursion', got {method!r}")
    if method == "convolution":
        from .convolution import convolution_mva

        result = convolution_mva(
            network,
            max_population,
            demands=demands,
            demand_level=demand_level,
            station_detail=station_detail,
        )
        # Re-badge: callers asked for Algorithm 2's model, which this solves.
        return MVAResult(
            populations=result.populations,
            throughput=result.throughput,
            response_time=result.response_time,
            queue_lengths=result.queue_lengths,
            residence_times=result.residence_times,
            utilizations=result.utilizations,
            station_names=result.station_names,
            think_time=result.think_time,
            solver="exact-multiserver-mva",
            demands_used=result.demands_used,
        )

    d = _resolve_demands(network, demands, demand_level, solver="exact-multiserver-mva")
    k = len(network)
    z = network.think_time
    stations = network.stations
    servers = network.servers()

    states = [
        MultiServerState(st.servers, max_population) if st.kind == "queue" else None
        for st in stations
    ]

    pops = np.arange(1, max_population + 1)
    xs = np.empty(max_population)
    rs = np.empty(max_population)
    qs = np.empty((max_population, k))
    rks = np.empty((max_population, k))
    utils = np.empty((max_population, k))
    prob_hist = {
        st.name: np.empty((max_population, st.servers))
        for st in stations
        if st.servers > 1
    }

    for i, n in enumerate(pops):
        r_k = np.empty(k)
        for idx, st in enumerate(stations):
            if st.kind == "delay":
                r_k[idx] = d[idx]
            else:
                r_k[idx] = states[idx].residence(int(n), d[idx])
        r_total = float(r_k.sum())
        x = n / (r_total + z)
        for idx, st in enumerate(stations):
            if st.kind == "queue":
                states[idx].update(int(n), x, d[idx])
            if st.servers > 1:
                prob_hist[st.name][i] = states[idx].marginals()
        xs[i] = x
        rs[i] = r_total
        qs[i] = x * r_k
        rks[i] = r_k
        utils[i] = x * d / servers

    return MVAResult(
        populations=pops,
        throughput=xs,
        response_time=rs,
        queue_lengths=qs,
        residence_times=rks,
        utilizations=utils,
        station_names=network.station_names,
        think_time=z,
        solver="exact-multiserver-mva-recursion",
        marginal_probabilities=prob_hist or None,
        demands_used=np.tile(d, (max_population, 1)),
    )
