"""Algorithm 1 — exact single-server Mean Value Analysis.

The classic Reiser-Lavenberg recursion for single-class closed
product-form networks: start with an empty network and add customers
one at a time.  At population ``n`` the residence time at station ``k``
follows the arrival theorem,

    ``R_k = D_k * (1 + Q_k^{n-1})``        (queueing stations, eq. 8)
    ``R_k = D_k``                          (delay stations)

then Little's law gives ``X^n = n / (Z + sum_k R_k)`` and the queues
are updated with ``Q_k = X^n R_k``.

The residence times here fold the visit count into the demand
(``D_k = V_k S_k``), matching the ``sum_k V_k R_k`` total of the
paper's pseudocode.

Multi-server stations are *not* modelled here; this solver treats every
station as single-server, which is exactly the naive model the paper
improves on.  Use :func:`repro.core.multiserver.exact_multiserver_mva`
(Algorithm 2) for multi-core CPUs, or pass demands normalized by the
core count to obtain the "normalized single-server" baseline of Fig. 8.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .network import ClosedNetwork
from .results import MVAResult

__all__ = ["exact_mva"]


def _resolve_demands(
    network: ClosedNetwork, demands, level: float, solver: str = "mva"
) -> np.ndarray:
    """Fixed demand vector for a constant-demand solve.

    Delegates to the shared validator in :mod:`repro.solvers.validation`
    (deferred import — ``repro.solvers`` pulls the core solver modules in
    at registration time, so a module-level import here would cycle).
    ``demands`` overrides the network's demands; otherwise varying
    demands are frozen at population ``level`` — this is the paper's
    ``MVA i`` construction (service demands measured at concurrency
    ``i`` fed to a constant-demand solver).
    """
    from ..solvers.validation import resolve_demands

    return resolve_demands(network, demands, level, solver=solver)


def validate_resume(
    prev: MVAResult,
    max_population: int,
    n_stations: int,
    think_time: float,
    solver: str,
) -> int:
    """Check that ``prev`` is a resumable prefix; return its level ``L``.

    Shared by every solver accepting ``resume_from=``: the previous
    result must be a dense ``1..L`` trajectory over the same stations
    and think time, with ``L < max_population``.  Demand agreement is
    checked by each solver against its own resolved demands (exact
    equality — the facade's trajectory store guarantees it via
    fingerprints, direct callers get a cheap guard).
    """
    if not isinstance(prev, MVAResult):
        raise ValueError(
            f"{solver}: resume_from must be an MVAResult, got {type(prev).__name__}"
        )
    if prev.queue_lengths.shape[1] != n_stations:
        raise ValueError(
            f"{solver}: resume_from covers {prev.queue_lengths.shape[1]} stations, "
            f"this network has {n_stations}"
        )
    if float(prev.think_time) != float(think_time):
        raise ValueError(
            f"{solver}: resume_from think time {prev.think_time} != {think_time}"
        )
    level = prev.max_population
    if int(prev.populations[0]) != 1 or len(prev.populations) != level:
        raise ValueError(f"{solver}: resume_from must be a dense 1..L trajectory")
    if level >= max_population:
        raise ValueError(
            f"{solver}: resume_from already covers N={level} >= {max_population}; "
            f"take result.prefix({max_population}) instead"
        )
    return level


def _prefill(prev: MVAResult, arrays: tuple[np.ndarray, ...]) -> None:
    """Copy a resumed prefix into the output arrays (levels ``1..L``)."""
    xs, rs, qs, rks, utils = arrays
    level = prev.max_population
    xs[:level] = prev.throughput
    rs[:level] = prev.response_time
    qs[:level] = prev.queue_lengths
    rks[:level] = prev.residence_times
    utils[:level] = prev.utilizations


def exact_mva(
    network: ClosedNetwork,
    max_population: int,
    demands: Sequence[float] | None = None,
    demand_level: float = 1.0,
    resume_from: MVAResult | None = None,
) -> MVAResult:
    """Solve a closed network with exact single-server MVA (Algorithm 1).

    Parameters
    ----------
    network:
        The closed network model.  Multi-server stations are accepted but
        treated as single servers (see module docstring).
    max_population:
        Largest customer population ``N``; the recursion yields results
        for every ``n = 1..N``.
    demands:
        Optional fixed demand vector overriding the network demands —
        used to build the paper's ``MVA i`` variants from demands
        sampled at concurrency ``i``.
    demand_level:
        When the network has varying demands and ``demands`` is not
        given, the level at which they are frozen.
    resume_from:
        A previous result of this solver for the *same* network and
        demands at some ``L < N``: the recursion restarts from the
        cached queue lengths at ``L`` instead of from the empty network,
        producing trajectories bit-identical to a full ``1..N`` solve.

    Returns
    -------
    MVAResult
        Trajectories for ``n = 1..N``.
    """
    if max_population < 1:
        raise ValueError(f"max_population must be >= 1, got {max_population}")

    d = _resolve_demands(network, demands, demand_level, solver="exact-mva")
    k = len(network)
    z = network.think_time
    is_queue = np.array([st.kind == "queue" for st in network.stations])
    servers = network.servers().astype(float)

    q = np.zeros(k)
    pops = np.arange(1, max_population + 1)
    xs = np.empty(max_population)
    rs = np.empty(max_population)
    qs = np.empty((max_population, k))
    rks = np.empty((max_population, k))
    utils = np.empty((max_population, k))

    start = 0
    if resume_from is not None:
        start = validate_resume(resume_from, max_population, k, z, "exact-mva")
        if resume_from.demands_used is None or not np.array_equal(
            np.asarray(resume_from.demands_used[-1]), d
        ):
            raise ValueError("exact-mva: resume_from demands differ from this solve")
        _prefill(resume_from, (xs, rs, qs, rks, utils))
        q = np.array(resume_from.queue_lengths[-1], dtype=float)

    for i in range(start, max_population):
        n = i + 1
        r_k = np.where(is_queue, d * (1.0 + q), d)
        r_total = float(r_k.sum())
        x = n / (r_total + z)
        q = x * r_k
        xs[i] = x
        rs[i] = r_total
        qs[i] = q
        rks[i] = r_k
        utils[i] = x * d / servers

    return MVAResult(
        populations=pops,
        throughput=xs,
        response_time=rs,
        queue_lengths=qs,
        residence_times=rks,
        utilizations=utils,
        station_names=network.station_names,
        think_time=z,
        solver="exact-mva",
        demands_used=np.tile(d, (max_population, 1)),
    )
