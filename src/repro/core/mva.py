"""Algorithm 1 — exact single-server Mean Value Analysis.

The classic Reiser-Lavenberg recursion for single-class closed
product-form networks: start with an empty network and add customers
one at a time.  At population ``n`` the residence time at station ``k``
follows the arrival theorem,

    ``R_k = D_k * (1 + Q_k^{n-1})``        (queueing stations, eq. 8)
    ``R_k = D_k``                          (delay stations)

then Little's law gives ``X^n = n / (Z + sum_k R_k)`` and the queues
are updated with ``Q_k = X^n R_k``.

The residence times here fold the visit count into the demand
(``D_k = V_k S_k``), matching the ``sum_k V_k R_k`` total of the
paper's pseudocode.

Multi-server stations are *not* modelled here; this solver treats every
station as single-server, which is exactly the naive model the paper
improves on.  Use :func:`repro.core.multiserver.exact_multiserver_mva`
(Algorithm 2) for multi-core CPUs, or pass demands normalized by the
core count to obtain the "normalized single-server" baseline of Fig. 8.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .network import ClosedNetwork
from .results import MVAResult

__all__ = ["exact_mva"]


def _resolve_demands(
    network: ClosedNetwork, demands, level: float, solver: str = "mva"
) -> np.ndarray:
    """Fixed demand vector for a constant-demand solve.

    Delegates to the shared validator in :mod:`repro.solvers.validation`
    (deferred import — ``repro.solvers`` pulls the core solver modules in
    at registration time, so a module-level import here would cycle).
    ``demands`` overrides the network's demands; otherwise varying
    demands are frozen at population ``level`` — this is the paper's
    ``MVA i`` construction (service demands measured at concurrency
    ``i`` fed to a constant-demand solver).
    """
    from ..solvers.validation import resolve_demands

    return resolve_demands(network, demands, level, solver=solver)


def exact_mva(
    network: ClosedNetwork,
    max_population: int,
    demands: Sequence[float] | None = None,
    demand_level: float = 1.0,
) -> MVAResult:
    """Solve a closed network with exact single-server MVA (Algorithm 1).

    Parameters
    ----------
    network:
        The closed network model.  Multi-server stations are accepted but
        treated as single servers (see module docstring).
    max_population:
        Largest customer population ``N``; the recursion yields results
        for every ``n = 1..N``.
    demands:
        Optional fixed demand vector overriding the network demands —
        used to build the paper's ``MVA i`` variants from demands
        sampled at concurrency ``i``.
    demand_level:
        When the network has varying demands and ``demands`` is not
        given, the level at which they are frozen.

    Returns
    -------
    MVAResult
        Trajectories for ``n = 1..N``.
    """
    if max_population < 1:
        raise ValueError(f"max_population must be >= 1, got {max_population}")

    d = _resolve_demands(network, demands, demand_level, solver="exact-mva")
    k = len(network)
    z = network.think_time
    is_queue = np.array([st.kind == "queue" for st in network.stations])
    servers = network.servers().astype(float)

    q = np.zeros(k)
    pops = np.arange(1, max_population + 1)
    xs = np.empty(max_population)
    rs = np.empty(max_population)
    qs = np.empty((max_population, k))
    rks = np.empty((max_population, k))
    utils = np.empty((max_population, k))

    for i, n in enumerate(pops):
        r_k = np.where(is_queue, d * (1.0 + q), d)
        r_total = float(r_k.sum())
        x = n / (r_total + z)
        q = x * r_k
        xs[i] = x
        rs[i] = r_total
        qs[i] = q
        rks[i] = r_k
        utils[i] = x * d / servers

    return MVAResult(
        populations=pops,
        throughput=xs,
        response_time=rs,
        queue_lengths=qs,
        residence_times=rks,
        utilizations=utils,
        station_names=network.station_names,
        think_time=z,
        solver="exact-mva",
        demands_used=np.tile(d, (max_population, 1)),
    )
