"""Exact multi-class MVA (extension beyond the paper's single class).

The paper restricts itself to a single customer class ("customers are
assumed to be indistinguishable"), but real load tests mix workflows —
e.g. VINS Registration vs Renew-Policy customers.  This module provides
the classical exact multi-class recursion over population *vectors* so
such mixes can be modelled:

    ``R_{k,c}(n) = D_{k,c} * (1 + Q_k(n - e_c))``
    ``X_c(n)    = n_c / (Z_c + sum_k R_{k,c}(n))``
    ``Q_k(n)    = sum_c X_c(n) * R_{k,c}(n)``

Stations are single-server (or delay); combine with
:func:`repro.core.amva.seidmann_transform` for multi-core CPUs.  Cost is
O(K * prod_c (N_c + 1)), so keep class populations modest.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Sequence

import numpy as np

__all__ = ["MultiClassResult", "exact_multiclass_mva"]


@dataclass(frozen=True)
class MultiClassResult:
    """Solution of a multi-class closed network at the full population.

    Attributes
    ----------
    populations:
        The target population vector ``(N_1, ..., N_C)``.
    throughput:
        Per-class throughput ``X_c``, shape ``(C,)``.
    response_time:
        Per-class response time (excluding think time), shape ``(C,)``.
    queue_lengths:
        Total mean jobs per station, shape ``(K,)``.
    queue_lengths_by_class:
        Shape ``(K, C)``.
    utilizations:
        Per-station utilization ``sum_c X_c D_{k,c}``, shape ``(K,)``.
    station_names:
        Station labels.
    """

    populations: tuple[int, ...]
    throughput: np.ndarray
    response_time: np.ndarray
    queue_lengths: np.ndarray
    queue_lengths_by_class: np.ndarray
    utilizations: np.ndarray
    station_names: tuple[str, ...]
    think_times: tuple[float, ...]

    @property
    def total_throughput(self) -> float:
        return float(self.throughput.sum())

    @property
    def cycle_times(self) -> np.ndarray:
        return self.response_time + np.asarray(self.think_times)


def exact_multiclass_mva(
    demands: Sequence[Sequence[float]],
    populations: Sequence[int],
    think_times: Sequence[float],
    station_names: Sequence[str] | None = None,
    station_kinds: Sequence[str] | None = None,
) -> MultiClassResult:
    """Solve a multi-class closed network exactly.

    Parameters
    ----------
    demands:
        ``(K, C)`` matrix — demand of class ``c`` at station ``k``.
    populations:
        Class populations ``(N_1, ..., N_C)``.
    think_times:
        Per-class think times ``Z_c``.
    station_names:
        Optional station labels (defaults ``station-0..``).
    station_kinds:
        Optional per-station ``"queue"`` / ``"delay"`` flags (default all
        queueing).

    Returns
    -------
    MultiClassResult
        Metrics at the full population vector.
    """
    d = np.asarray(demands, dtype=float)
    if d.ndim != 2:
        raise ValueError(f"demands must be a (K, C) matrix, got shape {d.shape}")
    if np.any(d < 0):
        raise ValueError("demands must be non-negative")
    k, c = d.shape
    pops = tuple(int(p) for p in populations)
    if len(pops) != c or any(p < 0 for p in pops):
        raise ValueError(f"populations must be {c} non-negative integers, got {populations}")
    z = np.asarray(think_times, dtype=float)
    if z.shape != (c,) or np.any(z < 0):
        raise ValueError(f"think_times must be {c} non-negative values")
    names = tuple(station_names) if station_names else tuple(f"station-{i}" for i in range(k))
    if len(names) != k:
        raise ValueError(f"expected {k} station names")
    kinds = tuple(station_kinds) if station_kinds else ("queue",) * k
    if len(kinds) != k or any(kd not in ("queue", "delay") for kd in kinds):
        raise ValueError("station_kinds must be 'queue'/'delay' per station")
    is_queue = np.array([kd == "queue" for kd in kinds])

    if sum(pops) == 0:
        zero_c = np.zeros(c)
        return MultiClassResult(
            pops, zero_c, zero_c.copy(), np.zeros(k), np.zeros((k, c)),
            np.zeros(k), names, tuple(z),
        )

    # Dense table of station queue lengths Q_k(n) over the population lattice.
    shape = tuple(p + 1 for p in pops)
    q_table = np.zeros(shape + (k,))
    last_x = np.zeros(c)
    last_r = np.zeros(c)
    last_qkc = np.zeros((k, c))

    for n in product(*(range(p + 1) for p in pops)):
        if sum(n) == 0:
            continue
        r_kc = np.zeros((k, c))
        x_c = np.zeros(c)
        for ci in range(c):
            if n[ci] == 0:
                continue
            prev = list(n)
            prev[ci] -= 1
            q_prev = q_table[tuple(prev)]
            r_kc[:, ci] = np.where(is_queue, d[:, ci] * (1.0 + q_prev), d[:, ci])
            x_c[ci] = n[ci] / (z[ci] + float(r_kc[:, ci].sum()))
        q_kc = r_kc * x_c[np.newaxis, :]
        q_table[n] = q_kc.sum(axis=1)
        if n == pops:
            last_x = x_c
            last_r = r_kc.sum(axis=0)
            last_qkc = q_kc

    util = (d * last_x[np.newaxis, :]).sum(axis=1)
    return MultiClassResult(
        populations=pops,
        throughput=last_x,
        response_time=last_r,
        queue_lengths=last_qkc.sum(axis=1),
        queue_lengths_by_class=last_qkc,
        utilizations=util,
        station_names=names,
        think_times=tuple(z),
    )
