"""Asymptotic and balanced-job bounds for closed networks.

Quick sanity envelopes (paper Section 3, eqs. 5-6, and the classical
balanced-job-bound refinement).  Every MVA solution must lie inside the
asymptotic envelope; the property tests enforce this for all solvers.
Multi-server stations contribute ``D_k / C_k`` to the heavy-load bound
(a C-server station saturates at rate ``C/D``) and their full ``D_k``
to the light-load sum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .network import ClosedNetwork

__all__ = ["AsymptoticBounds", "asymptotic_bounds", "balanced_job_bounds"]


@dataclass(frozen=True)
class AsymptoticBounds:
    """Envelope for throughput and cycle time over a population range.

    ``throughput_upper`` / ``cycle_time_lower`` are the optimistic
    bounds; the pessimistic counterparts come from zero parallelism.
    """

    populations: np.ndarray
    throughput_upper: np.ndarray
    throughput_lower: np.ndarray
    cycle_time_lower: np.ndarray
    cycle_time_upper: np.ndarray
    knee: float


def asymptotic_bounds(
    network: ClosedNetwork,
    max_population: int,
    demand_level: float = 1.0,
) -> AsymptoticBounds:
    """Asymptotic bounds of eqs. 5-6 for ``n = 1..N``.

    Demands of varying-demand networks are frozen at ``demand_level``;
    for a conservative envelope around an MVASD run, evaluate at the
    level with the largest bottleneck demand.
    """
    if max_population < 1:
        raise ValueError(f"max_population must be >= 1, got {max_population}")
    d = network.demands_at(demand_level)
    servers = network.servers().astype(float)
    is_queue = np.array([st.kind == "queue" for st in network.stations])
    z = network.think_time

    d_sum = float(d.sum())
    per_server = np.where(is_queue, d / servers, 0.0)
    d_max = float(per_server.max()) if per_server.size else 0.0

    n = np.arange(1, max_population + 1, dtype=float)
    x_upper = np.minimum(n / (d_sum + z), 1.0 / d_max if d_max > 0 else np.inf)
    # Pessimistic: fully serialized customers (each cycle takes n * sum(D)).
    x_lower = n / (n * d_sum + z)
    ct_lower = np.maximum(d_sum + z, n * d_max)
    ct_upper = n * d_sum + z
    knee = (d_sum + z) / d_max if d_max > 0 else float("inf")
    return AsymptoticBounds(
        populations=np.arange(1, max_population + 1),
        throughput_upper=x_upper,
        throughput_lower=x_lower,
        cycle_time_lower=ct_lower,
        cycle_time_upper=ct_upper,
        knee=knee,
    )


def balanced_job_bounds(
    network: ClosedNetwork,
    max_population: int,
    demand_level: float = 1.0,
) -> AsymptoticBounds:
    """Balanced-job bounds (tighter than asymptotic, single-server form).

    The classical BJB expressions with the terminal (think-time)
    adjustment of Lazowska et al. — with terminals, only the fraction
    ``sum(D) / (sum(D) + Z)`` of the other ``n - 1`` customers competes
    at the stations on average, which the optimistic branch must credit
    to remain a true bound:

        ``n / (sum(D) + Z + (n-1) D_max)
            <=  X  <=
          n / (sum(D) + Z + (n-1) D_avg sum(D) / (sum(D) + Z))``

    with ``D_avg`` the mean per-server queueing demand and the upper
    branch additionally capped by ``1 / D_max``.  Multi-server stations
    enter through their per-server demands ``D_k / C_k``.  Verified
    against exact MVA over randomized networks in the test suite.
    """
    if max_population < 1:
        raise ValueError(f"max_population must be >= 1, got {max_population}")
    d_full = network.demands_at(demand_level)
    servers = network.servers().astype(float)
    is_queue = np.array([st.kind == "queue" for st in network.stations])
    d = np.where(is_queue, d_full / servers, 0.0)
    z = network.think_time

    d_sum_total = float(d_full.sum())
    d_bottleneck = float(d.max()) if d.size else 0.0
    queue_demands = d[is_queue]
    d_avg = float(queue_demands.mean()) if queue_demands.size else 0.0

    n = np.arange(1, max_population + 1, dtype=float)
    terminal_adj = d_sum_total / (d_sum_total + z) if d_sum_total + z > 0 else 0.0
    x_lower = n / (d_sum_total + z + (n - 1) * d_bottleneck)
    x_upper = n / (d_sum_total + z + (n - 1) * d_avg * terminal_adj)
    if d_bottleneck > 0:
        x_upper = np.minimum(x_upper, 1.0 / d_bottleneck)
    ct_lower = n / x_upper
    ct_upper = n / x_lower
    knee = (d_sum_total + z) / d_bottleneck if d_bottleneck > 0 else float("inf")
    return AsymptoticBounds(
        populations=np.arange(1, max_population + 1),
        throughput_upper=x_upper,
        throughput_lower=x_lower,
        cycle_time_lower=ct_lower,
        cycle_time_upper=ct_upper,
        knee=knee,
    )
