"""Multi-class approximate MVA with varying demands ("multi-class MVASD").

The paper treats all virtual users as one class and leaves workload
mixes to future work.  This module combines its two threads:

* the **Bard-Schweitzer multi-class approximation** — the exact
  multi-class recursion of :mod:`repro.core.multiclass` costs
  ``prod_c (N_c + 1)`` lattice points, hopeless for realistic
  populations, while the Schweitzer fixed point

      ``Q_k(N - e_c) ~= Q_k(N) - Q_{k,c}(N) / N_c``

  solves directly at the target mix;
* **concurrency-varying demands**: per-class demand curves
  ``SS_{k,c}(n)`` evaluated at the *total* population, exactly like
  Algorithm 3 — fitted from per-workflow load tests.

:func:`multiclass_mvasd` sweeps a fixed mix proportionally (e.g. 20 %
Registration / 80 % Read) from 1 user to a target total, producing
per-class trajectories; this is the multi-class analogue of the paper's
Fig. 6/7 curves.

Stations are single-server or delay (Seidmann-transform multi-server
networks first); multi-class FCFS product form additionally requires a
common service rate across classes at FCFS stations, so — as with every
multi-class AMVA in practice — results for class-dependent demands are
approximations, validated against the multi-class DES in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

__all__ = ["MultiClassTrajectory", "multiclass_mvasd", "bard_schweitzer"]

DemandFn = Callable[[float], float]

_MAX_ITER = 50_000
_TOL = 1e-10


def bard_schweitzer(
    demands: np.ndarray,
    populations: Sequence[int],
    think_times: Sequence[float],
    station_kinds: Sequence[str] | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bard-Schweitzer fixed point at one population vector.

    Parameters
    ----------
    demands:
        ``(K, C)`` demand matrix.
    populations / think_times:
        Per-class ``N_c`` and ``Z_c``.
    station_kinds:
        Optional ``"queue"``/``"delay"`` per station.

    Returns
    -------
    (X_c, R_c, Q_kc):
        Per-class throughput and response time, and the per-station x
        per-class queue matrix.
    """
    d = np.asarray(demands, dtype=float)
    if d.ndim != 2 or np.any(d < 0):
        raise ValueError("demands must be a non-negative (K, C) matrix")
    k, c = d.shape
    n_c = np.asarray(populations, dtype=float)
    z = np.asarray(think_times, dtype=float)
    if n_c.shape != (c,) or np.any(n_c < 0):
        raise ValueError(f"populations must be {c} non-negative values")
    if z.shape != (c,) or np.any(z < 0):
        raise ValueError(f"think_times must be {c} non-negative values")
    kinds = tuple(station_kinds) if station_kinds else ("queue",) * k
    is_queue = np.array([kd == "queue" for kd in kinds])

    active = n_c > 0
    q_kc = np.zeros((k, c))
    if active.any():
        q_kc[:, active] = n_c[active] / k  # even initial spread
    x_c = np.zeros(c)
    r_kc = np.zeros((k, c))
    for _ in range(_MAX_ITER):
        q_total = q_kc.sum(axis=1)
        r_kc = np.empty((k, c))
        for ci in range(c):
            if not active[ci]:
                r_kc[:, ci] = 0.0
                continue
            # arrival-theorem queue with one class-ci customer removed
            removed = q_kc[:, ci] / n_c[ci]
            q_arr = np.maximum(q_total - removed, 0.0)
            r_kc[:, ci] = np.where(is_queue, d[:, ci] * (1.0 + q_arr), d[:, ci])
        r_c = r_kc.sum(axis=0)
        with np.errstate(divide="ignore", invalid="ignore"):
            x_c = np.where(active, n_c / (z + r_c), 0.0)
        q_new = r_kc * x_c[np.newaxis, :]
        if np.max(np.abs(q_new - q_kc)) <= _TOL * max(1.0, float(np.max(q_new))):
            return x_c, r_c, q_new
        q_kc = q_new
    return x_c, r_c, q_new  # pragma: no cover - geometric convergence


@dataclass(frozen=True)
class MultiClassTrajectory:
    """Per-class trajectories along a proportional population sweep."""

    class_names: tuple[str, ...]
    station_names: tuple[str, ...]
    totals: np.ndarray  # total population per step
    populations: np.ndarray  # (steps, C) realized integer mixes
    throughput: np.ndarray  # (steps, C)
    response_time: np.ndarray  # (steps, C)
    utilizations: np.ndarray  # (steps, K)
    think_times: tuple[float, ...]

    @property
    def total_throughput(self) -> np.ndarray:
        return self.throughput.sum(axis=1)

    def class_index(self, name: str) -> int:
        try:
            return self.class_names.index(name)
        except ValueError:
            raise KeyError(f"unknown class {name!r}") from None

    def cycle_time(self, name: str) -> np.ndarray:
        ci = self.class_index(name)
        return self.response_time[:, ci] + self.think_times[ci]


def multiclass_mvasd(
    station_names: Sequence[str],
    class_demands: Mapping[str, Mapping[str, DemandFn | float]],
    mix: Mapping[str, float],
    max_total_population: int,
    think_times: Mapping[str, float],
    station_kinds: Sequence[str] | None = None,
) -> MultiClassTrajectory:
    """Sweep a workload mix with varying-demand multi-class AMVA.

    Parameters
    ----------
    station_names:
        Stations in order (single-server or delay).
    class_demands:
        ``class -> station -> demand`` where demand is a constant or a
        callable of the *total* population (the ``SS_{k,c}^n`` curves).
    mix:
        Relative class weights (normalized internally); realized integer
        populations follow largest-remainder rounding per step.
    max_total_population:
        Sweep 1..N total users.
    think_times:
        Per-class ``Z_c``.
    """
    classes = tuple(class_demands)
    if not classes:
        raise ValueError("need at least one class")
    if set(mix) != set(classes) or set(think_times) != set(classes):
        raise ValueError("mix and think_times must cover exactly the classes")
    weights = np.array([float(mix[c]) for c in classes])
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError("mix weights must be non-negative with positive sum")
    weights = weights / weights.sum()
    if max_total_population < 1:
        raise ValueError("max_total_population must be >= 1")
    names = tuple(station_names)
    k = len(names)
    for cls in classes:
        missing = set(names) - set(class_demands[cls])
        if missing:
            raise ValueError(f"class {cls!r} missing demands for {sorted(missing)}")

    z = np.array([float(think_times[c]) for c in classes])

    def demands_at(total: float) -> np.ndarray:
        d = np.empty((k, len(classes)))
        for ci, cls in enumerate(classes):
            for ki, st in enumerate(names):
                spec = class_demands[cls][st]
                d[ki, ci] = float(spec(total)) if callable(spec) else float(spec)
                if d[ki, ci] < 0:
                    raise ValueError(f"negative demand for {cls}/{st} at N={total}")
        return d

    steps = np.arange(1, max_total_population + 1)
    pops = np.zeros((len(steps), len(classes)), dtype=int)
    xs = np.zeros((len(steps), len(classes)))
    rs = np.zeros((len(steps), len(classes)))
    utils = np.zeros((len(steps), k))
    kinds = tuple(station_kinds) if station_kinds else ("queue",) * k

    for i, total in enumerate(steps):
        # largest-remainder apportionment of the mix at this total
        raw = weights * total
        base = np.floor(raw).astype(int)
        remainder = total - base.sum()
        order = np.argsort(-(raw - base))
        base[order[:remainder]] += 1
        pops[i] = base
        d = demands_at(float(total))
        x_c, r_c, _ = bard_schweitzer(d, base, z, station_kinds=kinds)
        xs[i] = x_c
        rs[i] = r_c
        utils[i] = (d * x_c[np.newaxis, :]).sum(axis=1)

    return MultiClassTrajectory(
        class_names=classes,
        station_names=names,
        totals=steps,
        populations=pops,
        throughput=xs,
        response_time=rs,
        utilizations=utils,
        think_times=tuple(z),
    )
