"""Exact load-dependent MVA (textbook marginal-probability recursion).

The classical exact treatment of stations whose service rate depends on
the local queue length (Lazowska et al., *Quantitative System
Performance*, ch. 20 — the "general load-dependent" recursion the JMT
tool implements, referenced by the paper when discussing ref. [17]):

    ``R_k(n)   = sum_{j=1..n} (j / mu_k(j)) * p_k(j-1 | n-1)``
    ``X(n)     = n / (Z + sum_k R_k(n))``
    ``p_k(j|n) = (X(n) / mu_k(j)) * p_k(j-1 | n-1)``   for ``j = 1..n``
    ``p_k(0|n) = 1 - sum_{j=1..n} p_k(j|n)``

A ``C``-server queue of demand ``D`` is the special case
``mu_k(j) = min(j, C) / D``, which makes this solver the *exact*
reference for multi-server stations: Algorithm 2's correction-factor
recursion is validated against it in the tests and the ablation bench.
The price is O(N^2 K) time and O(N K) memory versus Algorithm 2's
O(N K).

This recursion is also the workhorse of hierarchical composition
(:mod:`repro.solvers.fes`): a flow-equivalent service center is exactly
a station with a tabulated ``mu(j)`` law, supplied here through
``rate_tables``.  The inner ``j``-loop is vectorized across stations —
the per-level work is a handful of ``(K, n)`` array operations — and
the recursion carries its marginal state in ``final_state`` so
``resume_from=`` extends a ``1..L`` trajectory to ``1..N`` without
recomputing the prefix.

Demands must be constant over the sweep (this is a fixed-demand exact
solver); combine with MVASD-style outer sweeps by re-solving per level
if needed.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from .mva import _prefill, _resolve_demands, validate_resume
from .network import ClosedNetwork
from .results import MVAResult

__all__ = ["build_rate_tables", "exact_load_dependent_mva", "multiserver_rates"]

RateFn = Callable[[int], float]

_SOLVER_NAME = "exact-load-dependent-mva"


def multiserver_rates(demand: float, servers: int) -> RateFn:
    """Service-rate function ``mu(j) = min(j, C) / D`` of a C-server queue."""
    if demand <= 0:
        raise ValueError(f"demand must be positive, got {demand}")
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")

    def mu(j: int) -> float:
        return min(j, servers) / demand

    return mu


def build_rate_tables(
    network: ClosedNetwork,
    demands: np.ndarray,
    max_population: int,
    rates: Mapping[str, RateFn] | None = None,
    rate_tables: Mapping[str, Sequence[float]] | None = None,
    solver: str = "ld-mva",
) -> np.ndarray:
    """Dense ``(K, N)`` service-rate matrix ``mu_k(j)`` for ``j = 1..N``.

    Row precedence per queueing station: a callable from ``rates``, then
    a tabulated law from ``rate_tables`` (truncated to ``N`` entries —
    tables shorter than ``N`` are an error), then the multi-server
    default ``min(j, C_k) / D_k``.  Delay stations and zero-demand
    queues get ``+inf`` rows (never congested), which the recursion
    treats as "no queueing contribution".
    """
    big_n = max_population
    js = np.arange(1, big_n + 1, dtype=float)
    mu = np.empty((len(network), big_n), dtype=float)
    for idx, st in enumerate(network.stations):
        if st.kind == "delay":
            mu[idx] = np.inf
            continue
        if rates is not None and st.name in rates:
            fn = rates[st.name]
            row = np.array([fn(j) for j in range(1, big_n + 1)], dtype=float)
        elif rate_tables is not None and st.name in rate_tables:
            table = np.asarray(rate_tables[st.name], dtype=float)
            if table.ndim != 1 or table.shape[0] < big_n:
                have = 0 if table.ndim != 1 else table.shape[0]
                raise ValueError(
                    f"{solver}: station {st.name!r}: rate table covers "
                    f"{have} populations, need {big_n}"
                )
            row = table[:big_n]
        elif demands[idx] <= 0:
            row = np.full(big_n, np.inf)
        else:
            row = np.minimum(js, st.servers) / demands[idx]
        if np.any(np.isnan(row)) or np.any(row <= 0):
            raise ValueError(f"station {st.name!r}: service rates must be positive")
        mu[idx] = row
    return mu


def exact_load_dependent_mva(
    network: ClosedNetwork,
    max_population: int,
    demands: Sequence[float] | None = None,
    demand_level: float = 1.0,
    rates: Mapping[str, RateFn] | None = None,
    rate_tables: Mapping[str, Sequence[float]] | None = None,
    resume_from: MVAResult | None = None,
) -> MVAResult:
    """Exact MVA with general load-dependent stations.

    Parameters
    ----------
    network:
        The closed network.  Queueing stations default to the
        ``min(j, C_k) / D_k`` multi-server rate law; ``rates`` overrides
        individual stations with arbitrary ``mu(j)`` laws (e.g. a disk
        whose throughput improves with queue depth due to scheduling).
    max_population:
        Largest population ``N``.
    demands / demand_level:
        As in the other solvers: optional demand override, or the level
        at which varying demands are frozen.
    rates:
        Optional mapping ``station name -> mu(j)`` (jobs per second when
        ``j`` jobs are present, in demand units — i.e. already folding
        in the visit count).
    rate_tables:
        Optional mapping ``station name -> [mu(1), ..., mu(N)]`` — the
        array-native form of ``rates``, and the representation
        flow-equivalent stations (:mod:`repro.solvers.fes`) carry.
        ``rates`` wins where both name a station.
    resume_from:
        A previous result of this solver for the same network, demands
        and rate laws at some ``L < N``: the recursion restarts from the
        marginal distributions stored in ``final_state``, producing
        trajectories bit-identical to a full ``1..N`` solve.

    Returns
    -------
    MVAResult
        ``marginal_probabilities[name]`` holds ``p_k(j | N)`` for
        ``j = 0..N`` at the final population (shape ``(1, N+1)``),
        complementing the per-level scalars.  ``final_state`` carries
        the full marginal matrix for ``resume_from=``.
    """
    if max_population < 1:
        raise ValueError(f"max_population must be >= 1, got {max_population}")
    d = _resolve_demands(network, demands, demand_level, solver="ld-mva")
    k = len(network)
    z = network.think_time
    stations = network.stations
    servers = network.servers().astype(float)
    big_n = max_population
    is_queue = np.array([st.kind == "queue" for st in stations])

    mu = build_rate_tables(network, d, big_n, rates, rate_tables)
    # R_k(n) weight table j / mu_k(j); +inf rates (delay, idle stations)
    # contribute zero, so the np.where below restores the delay demand.
    weights = np.arange(1, big_n + 1, dtype=float) / mu

    # p[idx, j] = p_k(j | n) for the current n; starts at n = 0.
    p = np.zeros((k, big_n + 1))
    p[:, 0] = 1.0

    pops = np.arange(1, big_n + 1)
    xs = np.empty(big_n)
    rs = np.empty(big_n)
    qs = np.empty((big_n, k))
    rks = np.empty((big_n, k))
    utils = np.empty((big_n, k))

    start = 0
    if resume_from is not None:
        start = _restore(resume_from, big_n, k, z, d, mu, p, (xs, rs, qs, rks, utils))

    for i in range(start, big_n):
        n = i + 1
        r_queue = (weights[:, :n] * p[:, :n]).sum(axis=1)
        r_k = np.where(is_queue, r_queue, d)
        r_total = float(r_k.sum())
        x = n / (r_total + z)

        # p(j|n) = (X/mu(j)) p(j-1|n-1); build the tail fresh before
        # assigning — p still holds the n-1 values.  Divide-first keeps
        # the rounding identical to the scalar reference per element.
        tail = (x / mu[:, :n]) * p[:, :n]
        p[:, 1 : n + 1] = tail
        p[:, 0] = np.maximum(0.0, 1.0 - tail.sum(axis=1))

        xs[i] = x
        rs[i] = r_total
        rks[i] = r_k
        qs[i] = x * r_k
        utils[i] = x * d / servers

    prob_hist = {
        st.name: p[idx][np.newaxis, :].copy()
        for idx, st in enumerate(stations)
        if st.kind == "queue"
    }
    return MVAResult(
        populations=pops,
        throughput=xs,
        response_time=rs,
        queue_lengths=qs,
        residence_times=rks,
        utilizations=utils,
        station_names=network.station_names,
        think_time=z,
        solver=_SOLVER_NAME,
        marginal_probabilities=prob_hist,
        demands_used=np.tile(d, (big_n, 1)),
        final_state={
            "solver": _SOLVER_NAME,
            "level": big_n,
            "marginals": p.copy(),
            "mu": mu.copy(),
        },
    )


def _restore(
    prev: MVAResult,
    max_population: int,
    k: int,
    think_time: float,
    d: np.ndarray,
    mu: np.ndarray,
    p: np.ndarray,
    arrays: tuple[np.ndarray, ...],
) -> int:
    """Validate ``resume_from`` and prefill state; return the start level."""
    level = validate_resume(prev, max_population, k, think_time, "ld-mva")
    if prev.solver != _SOLVER_NAME:
        raise ValueError(
            f"ld-mva: resume_from was produced by {prev.solver!r}, "
            f"expected {_SOLVER_NAME!r}"
        )
    if prev.demands_used is None or not np.array_equal(
        np.asarray(prev.demands_used[-1]), d
    ):
        raise ValueError("ld-mva: resume_from demands differ from this solve")
    state = prev.final_state
    if not isinstance(state, Mapping) or "marginals" not in state:
        raise ValueError("ld-mva: resume_from lacks final_state (prefix slices drop it)")
    marginals = np.asarray(state["marginals"], dtype=float)
    if marginals.shape != (k, level + 1):
        raise ValueError(
            f"ld-mva: resume_from marginals have shape {marginals.shape}, "
            f"expected {(k, level + 1)}"
        )
    prev_mu = np.asarray(state["mu"], dtype=float)
    if not np.array_equal(prev_mu, mu[:, :level]):
        raise ValueError("ld-mva: resume_from service rates differ from this solve")
    _prefill(prev, arrays)
    p[:, : level + 1] = marginals
    return level


def _reference_exact_ld_mva(
    network: ClosedNetwork,
    max_population: int,
    demands: Sequence[float] | None = None,
    demand_level: float = 1.0,
    rates: Mapping[str, RateFn] | None = None,
    rate_tables: Mapping[str, Sequence[float]] | None = None,
) -> MVAResult:
    """Scalar per-station reference recursion (pre-vectorization).

    Kept verbatim as the parity oracle for the vectorized solver: the
    tests require ``exact_load_dependent_mva`` to agree with this
    implementation to ≤1e-12.  Not registered anywhere — import it
    directly.
    """
    if max_population < 1:
        raise ValueError(f"max_population must be >= 1, got {max_population}")
    d = _resolve_demands(network, demands, demand_level, solver="ld-mva")
    k = len(network)
    z = network.think_time
    stations = network.stations
    servers = network.servers().astype(float)
    big_n = max_population

    mu_matrix = build_rate_tables(network, d, big_n, rates, rate_tables)
    mu_tables = [
        None if st.kind == "delay" else mu_matrix[idx]
        for idx, st in enumerate(stations)
    ]

    p = [np.zeros(big_n + 1) for _ in range(k)]
    for arr in p:
        arr[0] = 1.0

    pops = np.arange(1, big_n + 1)
    xs = np.empty(big_n)
    rs = np.empty(big_n)
    qs = np.empty((big_n, k))
    rks = np.empty((big_n, k))
    utils = np.empty((big_n, k))

    for i, n in enumerate(pops):
        r_k = np.empty(k)
        for idx, st in enumerate(stations):
            if st.kind == "delay":
                r_k[idx] = d[idx]
                continue
            mu = mu_tables[idx][:n]
            js = np.arange(1, n + 1, dtype=float)
            r_k[idx] = float(((js / mu) * p[idx][:n]).sum())
        r_total = float(r_k.sum())
        x = n / (r_total + z)

        for idx, st in enumerate(stations):
            if st.kind == "delay":
                continue
            mu = mu_tables[idx][:n]
            new_tail = (x / mu) * p[idx][:n]
            p[idx][1 : n + 1] = new_tail
            p[idx][0] = max(0.0, 1.0 - float(new_tail.sum()))

        xs[i] = x
        rs[i] = r_total
        rks[i] = r_k
        qs[i] = x * r_k
        utils[i] = x * d / servers

    prob_hist = {
        st.name: p[idx][np.newaxis, :].copy()
        for idx, st in enumerate(stations)
        if st.kind == "queue"
    }
    return MVAResult(
        populations=pops,
        throughput=xs,
        response_time=rs,
        queue_lengths=qs,
        residence_times=rks,
        utilizations=utils,
        station_names=network.station_names,
        think_time=z,
        solver=_SOLVER_NAME,
        marginal_probabilities=prob_hist,
        demands_used=np.tile(d, (big_n, 1)),
    )
