"""Exact load-dependent MVA (textbook marginal-probability recursion).

The classical exact treatment of stations whose service rate depends on
the local queue length (Lazowska et al., *Quantitative System
Performance*, ch. 20 — the "general load-dependent" recursion the JMT
tool implements, referenced by the paper when discussing ref. [17]):

    ``R_k(n)   = sum_{j=1..n} (j / mu_k(j)) * p_k(j-1 | n-1)``
    ``X(n)     = n / (Z + sum_k R_k(n))``
    ``p_k(j|n) = (X(n) / mu_k(j)) * p_k(j-1 | n-1)``   for ``j = 1..n``
    ``p_k(0|n) = 1 - sum_{j=1..n} p_k(j|n)``

A ``C``-server queue of demand ``D`` is the special case
``mu_k(j) = min(j, C) / D``, which makes this solver the *exact*
reference for multi-server stations: Algorithm 2's correction-factor
recursion is validated against it in the tests and the ablation bench.
The price is O(N^2 K) time and O(N K) memory versus Algorithm 2's
O(N K).

Demands must be constant over the sweep (this is a fixed-demand exact
solver); combine with MVASD-style outer sweeps by re-solving per level
if needed.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from .mva import _resolve_demands
from .network import ClosedNetwork
from .results import MVAResult

__all__ = ["exact_load_dependent_mva", "multiserver_rates"]

RateFn = Callable[[int], float]


def multiserver_rates(demand: float, servers: int) -> RateFn:
    """Service-rate function ``mu(j) = min(j, C) / D`` of a C-server queue."""
    if demand <= 0:
        raise ValueError(f"demand must be positive, got {demand}")
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")

    def mu(j: int) -> float:
        return min(j, servers) / demand

    return mu


def exact_load_dependent_mva(
    network: ClosedNetwork,
    max_population: int,
    demands: Sequence[float] | None = None,
    demand_level: float = 1.0,
    rates: Mapping[str, RateFn] | None = None,
) -> MVAResult:
    """Exact MVA with general load-dependent stations.

    Parameters
    ----------
    network:
        The closed network.  Queueing stations default to the
        ``min(j, C_k) / D_k`` multi-server rate law; ``rates`` overrides
        individual stations with arbitrary ``mu(j)`` laws (e.g. a disk
        whose throughput improves with queue depth due to scheduling).
    max_population:
        Largest population ``N``.
    demands / demand_level:
        As in the other solvers: optional demand override, or the level
        at which varying demands are frozen.
    rates:
        Optional mapping ``station name -> mu(j)`` (jobs per second when
        ``j`` jobs are present, in demand units — i.e. already folding
        in the visit count).

    Returns
    -------
    MVAResult
        ``marginal_probabilities[name]`` holds ``p_k(j | N)`` for
        ``j = 0..N`` at the final population (shape ``(1, N+1)``),
        complementing the per-level scalars.
    """
    if max_population < 1:
        raise ValueError(f"max_population must be >= 1, got {max_population}")
    d = _resolve_demands(network, demands, demand_level, solver="ld-mva")
    k = len(network)
    z = network.think_time
    stations = network.stations
    servers = network.servers().astype(float)
    big_n = max_population

    mu_tables = []  # mu_k(j) for j = 1..N, vectorized per station
    for idx, st in enumerate(stations):
        if st.kind == "delay":
            mu_tables.append(None)
            continue
        if rates is not None and st.name in rates:
            fn = rates[st.name]
            mu_tables.append(np.array([fn(j) for j in range(1, big_n + 1)], dtype=float))
        else:
            if d[idx] <= 0:
                mu_tables.append(np.full(big_n, np.inf))
            else:
                js = np.arange(1, big_n + 1, dtype=float)
                mu_tables.append(np.minimum(js, st.servers) / d[idx])
    for idx, table in enumerate(mu_tables):
        if table is not None and np.any(table <= 0):
            raise ValueError(f"station {stations[idx].name!r}: service rates must be positive")

    # p[k][j] = p_k(j | n) for the current n; length N+1, starts at n=0.
    p = [np.zeros(big_n + 1) for _ in range(k)]
    for arr in p:
        arr[0] = 1.0

    pops = np.arange(1, big_n + 1)
    xs = np.empty(big_n)
    rs = np.empty(big_n)
    qs = np.empty((big_n, k))
    rks = np.empty((big_n, k))
    utils = np.empty((big_n, k))

    for i, n in enumerate(pops):
        r_k = np.empty(k)
        for idx, st in enumerate(stations):
            if st.kind == "delay":
                r_k[idx] = d[idx]
                continue
            mu = mu_tables[idx][:n]  # mu(1..n)
            js = np.arange(1, n + 1, dtype=float)
            r_k[idx] = float(((js / mu) * p[idx][:n]).sum())
        r_total = float(r_k.sum())
        x = n / (r_total + z)

        for idx, st in enumerate(stations):
            if st.kind == "delay":
                continue
            mu = mu_tables[idx][:n]
            # p(j|n) = (X/mu(j)) p(j-1|n-1), computed high-to-low is unsafe
            # because p still holds n-1 values; build fresh then assign.
            new_tail = (x / mu) * p[idx][:n]
            p[idx][1 : n + 1] = new_tail
            p[idx][0] = max(0.0, 1.0 - float(new_tail.sum()))

        xs[i] = x
        rs[i] = r_total
        rks[i] = r_k
        qs[i] = x * r_k
        utils[i] = x * d / servers

    prob_hist = {
        st.name: p[idx][np.newaxis, :].copy()
        for idx, st in enumerate(stations)
        if st.kind == "queue"
    }
    return MVAResult(
        populations=pops,
        throughput=xs,
        response_time=rs,
        queue_lengths=qs,
        residence_times=rks,
        utilizations=utils,
        station_names=network.station_names,
        think_time=z,
        solver="exact-load-dependent-mva",
        marginal_probabilities=prob_hist,
        demands_used=np.tile(d, (big_n, 1)),
    )
