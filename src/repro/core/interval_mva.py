"""Interval MVA — prediction bands from uncertain demands.

The paper's related work (its ref. [16], Luthi et al.) extends MVA to
*histogram* inputs to absorb workload variability.  This module
implements the interval core of that idea: when each demand is only
known to lie in ``[D_lo, D_hi]`` (measurement noise, regression
confidence intervals from :mod:`repro.loadtest.inference`), the exact
MVA map is **monotone in every demand** — increasing any ``D_k`` can
only decrease throughput and increase response time at every population
(a consequence of the arrival theorem; verified property-based in the
tests).  The tight prediction band is therefore obtained from just two
solves:

* all demands at their lower bounds -> upper throughput / lower R+Z;
* all demands at their upper bounds -> lower throughput / upper R+Z.

:func:`interval_mva` produces the band; :func:`band_from_estimates`
builds the intervals straight from
:class:`~repro.loadtest.inference.DemandEstimate` confidence intervals,
closing the loop noise -> demand CI -> performance band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..loadtest.inference import DemandEstimate
from .multiserver import exact_multiserver_mva
from .network import ClosedNetwork
from .results import MVAResult

__all__ = ["PredictionBand", "band_from_estimates", "interval_mva"]


@dataclass(frozen=True)
class PredictionBand:
    """Guaranteed envelope for throughput and cycle time.

    ``optimistic`` is the all-lower-bound solve, ``pessimistic`` the
    all-upper-bound solve; any true demand vector inside the intervals
    yields trajectories between them.
    """

    populations: np.ndarray
    throughput_low: np.ndarray
    throughput_high: np.ndarray
    cycle_time_low: np.ndarray
    cycle_time_high: np.ndarray
    optimistic: MVAResult
    pessimistic: MVAResult

    def throughput_width(self) -> np.ndarray:
        """Relative band width ``(X_hi - X_lo) / X_hi`` per level."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(
                self.throughput_high > 0,
                (self.throughput_high - self.throughput_low) / self.throughput_high,
                0.0,
            )

    def contains(self, result: MVAResult, rtol: float = 1e-9) -> bool:
        """Does a trajectory (same population range) lie inside the band?"""
        if len(result.populations) != len(self.populations):
            raise ValueError("population ranges differ")
        x_ok = np.all(result.throughput <= self.throughput_high * (1 + rtol)) and np.all(
            result.throughput >= self.throughput_low * (1 - rtol)
        )
        ct_ok = np.all(
            result.cycle_time <= self.cycle_time_high * (1 + rtol)
        ) and np.all(result.cycle_time >= self.cycle_time_low * (1 - rtol))
        return bool(x_ok and ct_ok)

    def at(self, n: int) -> dict:
        idx = int(np.searchsorted(self.populations, n))
        if idx >= len(self.populations) or self.populations[idx] != n:
            raise KeyError(f"population {n} not in band")
        return {
            "population": n,
            "throughput": (float(self.throughput_low[idx]), float(self.throughput_high[idx])),
            "cycle_time": (float(self.cycle_time_low[idx]), float(self.cycle_time_high[idx])),
        }


def interval_mva(
    network: ClosedNetwork,
    max_population: int,
    demand_intervals: Mapping[str, tuple[float, float]],
) -> PredictionBand:
    """Solve the network at both interval corners (exact, multi-server).

    ``demand_intervals`` maps every station name to ``(low, high)``;
    stations not listed use their network demand as a point value.
    """
    if max_population < 1:
        raise ValueError("max_population must be >= 1")
    lo: list[float] = []
    hi: list[float] = []
    for st in network.stations:
        if st.name in demand_intervals:
            a, b = demand_intervals[st.name]
            if a < 0 or b < a:
                raise ValueError(
                    f"station {st.name!r}: invalid interval ({a}, {b})"
                )
            lo.append(float(a))
            hi.append(float(b))
        else:
            d = st.demand_at(1.0)
            lo.append(d)
            hi.append(d)

    optimistic = exact_multiserver_mva(
        network, max_population, demands=lo, station_detail=False
    )
    pessimistic = exact_multiserver_mva(
        network, max_population, demands=hi, station_detail=False
    )
    return PredictionBand(
        populations=optimistic.populations,
        throughput_low=pessimistic.throughput,
        throughput_high=optimistic.throughput,
        cycle_time_low=optimistic.cycle_time,
        cycle_time_high=pessimistic.cycle_time,
        optimistic=optimistic,
        pessimistic=pessimistic,
    )


def band_from_estimates(
    network: ClosedNetwork,
    estimates: Mapping[str, DemandEstimate],
    max_population: int,
) -> PredictionBand:
    """Prediction band from regression demand estimates (95 % CIs).

    Negative CI lower bounds are clipped at 0 (a demand cannot be
    negative); stations without an estimate keep their point demand.
    """
    intervals = {}
    for name, est in estimates.items():
        lo, hi = est.confidence_95
        intervals[name] = (max(lo, 0.0), max(hi, 0.0))
    return interval_mva(network, max_population, intervals)
