"""Linearizer — the Chandy-Neuse high-accuracy approximate MVA.

Schweitzer's approximation (paper eq. 9) assumes the queue *fractions*
``F_k(n) = Q_k(n) / n`` do not change when one customer is removed.
Linearizer refines this with a first-order correction: it estimates the
deviations ``delta_k(n) = F_k(n-1) - F_k(n)`` by actually solving
auxiliary fixed points at populations ``n-1`` and ``n-2``, then re-solves
the target population with

    ``Q_k(n-1) ~= (n-1) * (Q_k(n)/n + delta_k(n))``

iterating the whole scheme a few times.  Accuracy is typically an order
of magnitude better than Schweitzer at a small constant-factor cost —
the standard middle ground between Schweitzer and exact MVA, and a
useful extra baseline for the paper's exact-vs-approximate discussion.

Single-server stations (use :func:`repro.core.amva.seidmann_transform`
first for multi-server networks, as
:func:`linearizer_multiserver_mva` does for you).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .amva import seidmann_transform
from .mva import _resolve_demands
from .network import ClosedNetwork
from .results import MVAResult

__all__ = ["linearizer_amva", "linearizer_multiserver_mva"]

_CORE_MAX_ITER = 10_000
_CORE_TOL = 1e-10
_OUTER_ITERATIONS = 3


def _core(
    d: np.ndarray,
    is_queue: np.ndarray,
    z: float,
    n: int,
    delta: np.ndarray,
    q0: np.ndarray,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Solve the Linearizer core fixed point at population ``n``.

    ``delta`` holds the current deviation estimates ``delta_k(n)``.
    Returns ``(X, R_k, Q_k)``; for ``n == 0`` everything is zero.
    """
    k = d.shape[0]
    if n == 0:
        return 0.0, np.zeros(k), np.zeros(k)
    q = q0.copy()
    x = 0.0
    r_k = np.zeros(k)
    for _ in range(_CORE_MAX_ITER):
        q_arr = (n - 1.0) * (q / n + delta)
        q_arr = np.maximum(q_arr, 0.0)
        r_k = np.where(is_queue, d * (1.0 + q_arr), d)
        x = n / (float(r_k.sum()) + z)
        q_new = x * r_k
        if np.max(np.abs(q_new - q)) <= _CORE_TOL * max(1.0, float(np.max(q_new))):
            return x, r_k, q_new
        q = q_new
    return x, r_k, q_new  # pragma: no cover - geometric convergence


def _solve_population(
    d: np.ndarray, is_queue: np.ndarray, z: float, n: int
) -> tuple[float, np.ndarray, np.ndarray]:
    """Full Linearizer at one population: returns (X, R_k, Q_k)."""
    k = d.shape[0]
    deltas = {m: np.zeros(k) for m in (n, n - 1, n - 2) if m >= 0}
    seeds = {m: np.full(k, m / max(k, 1)) for m in deltas}
    solutions: dict[int, tuple[float, np.ndarray, np.ndarray]] = {}

    for _ in range(_OUTER_ITERATIONS):
        for m in sorted(deltas):
            solutions[m] = _core(d, is_queue, z, m, deltas[m], seeds[m])
            seeds[m] = solutions[m][2]
        # update deviation estimates from the freshly solved populations
        for m in sorted(deltas):
            if m - 1 in solutions and m >= 1:
                q_m = solutions[m][2]
                q_prev = solutions[m - 1][2]
                f_m = q_m / m
                f_prev = q_prev / (m - 1) if m - 1 > 0 else np.zeros(k)
                deltas[m] = f_prev - f_m
    x, r_k, q = solutions[n]
    return x, r_k, q


def linearizer_amva(
    network: ClosedNetwork,
    max_population: int,
    demands: Sequence[float] | None = None,
    demand_level: float = 1.0,
) -> MVAResult:
    """Linearizer approximate MVA over ``n = 1..N`` (single-server form).

    Interface mirrors :func:`repro.core.amva.schweitzer_amva`; each
    population level runs an independent three-population Linearizer.
    """
    if max_population < 1:
        raise ValueError(f"max_population must be >= 1, got {max_population}")
    d = _resolve_demands(network, demands, demand_level, solver="linearizer")
    k = len(network)
    z = network.think_time
    is_queue = np.array([st.kind == "queue" for st in network.stations])
    servers = network.servers().astype(float)

    pops = np.arange(1, max_population + 1)
    xs = np.empty(max_population)
    rs = np.empty(max_population)
    qs = np.empty((max_population, k))
    rks = np.empty((max_population, k))
    utils = np.empty((max_population, k))
    for i, n in enumerate(pops):
        x, r_k, q = _solve_population(d, is_queue, z, int(n))
        xs[i] = x
        rs[i] = float(r_k.sum())
        qs[i] = q
        rks[i] = r_k
        utils[i] = x * d / servers

    return MVAResult(
        populations=pops,
        throughput=xs,
        response_time=rs,
        queue_lengths=qs,
        residence_times=rks,
        utilizations=utils,
        station_names=network.station_names,
        think_time=z,
        solver="linearizer-amva",
        demands_used=np.tile(d, (max_population, 1)),
    )


def linearizer_multiserver_mva(
    network: ClosedNetwork,
    max_population: int,
    demands: Sequence[float] | None = None,
    demand_level: float = 1.0,
) -> MVAResult:
    """Linearizer over the Seidmann transform — multi-server baseline.

    Folds the synthetic Seidmann delay back onto the parent stations, as
    :func:`repro.core.amva.approximate_multiserver_mva` does.
    """
    if demands is not None:
        network = network.with_demands(list(demands))
    transformed = seidmann_transform(network)
    raw = linearizer_amva(transformed, max_population, demand_level=demand_level)

    names = network.station_names
    k = len(names)
    qs = np.zeros((max_population, k))
    rks = np.zeros((max_population, k))
    utils = np.zeros((max_population, k))
    for col_raw, raw_name in enumerate(raw.station_names):
        base = raw_name.removesuffix(".seidmann-delay")
        col = names.index(base)
        qs[:, col] += raw.queue_lengths[:, col_raw]
        rks[:, col] += raw.residence_times[:, col_raw]
        if not raw_name.endswith(".seidmann-delay"):
            utils[:, col] = raw.utilizations[:, col_raw]

    return MVAResult(
        populations=raw.populations,
        throughput=raw.throughput,
        response_time=raw.response_time,
        queue_lengths=qs,
        residence_times=rks,
        utilizations=utils,
        station_names=names,
        think_time=raw.think_time,
        solver="linearizer-multiserver",
    )
