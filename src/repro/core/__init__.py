"""Queueing-network solvers: the paper's MVA family.

Public surface:

* :class:`~repro.core.network.Station`, :class:`~repro.core.network.ClosedNetwork`
  — model inputs.
* :func:`~repro.core.mva.exact_mva` — Algorithm 1 (single-server exact MVA).
* :func:`~repro.core.multiserver.exact_multiserver_mva` — Algorithm 2.
* :func:`~repro.core.mvasd.mvasd` — Algorithm 3 (the paper's contribution).
* :func:`~repro.core.amva.schweitzer_amva`,
  :func:`~repro.core.amva.approximate_multiserver_mva` — approximate baselines.
* :func:`~repro.core.ld_mva.exact_load_dependent_mva` — textbook exact
  load-dependent recursion (validation/ablation).
* :func:`~repro.core.multiclass.exact_multiclass_mva` — multi-class extension.
* :mod:`~repro.core.laws`, :mod:`~repro.core.bounds` — operational laws and
  asymptotic envelopes.
"""

from . import bounds, laws
from .amva import approximate_multiserver_mva, schweitzer_amva, seidmann_transform
from .bounds import AsymptoticBounds, asymptotic_bounds, balanced_job_bounds
from .convolution import convolution_mva
from .interval_mva import PredictionBand, band_from_estimates, interval_mva
from .ld_mva import exact_load_dependent_mva, multiserver_rates
from .linearizer import linearizer_amva, linearizer_multiserver_mva
from .mom import method_of_moments, mom_state_count
from .multiclass import MultiClassResult, exact_multiclass_mva
from .multiclass_amva import MultiClassTrajectory, bard_schweitzer, multiclass_mvasd
from .multiserver import MultiServerState, exact_multiserver_mva
from .mva import exact_mva
from .mvasd import mvasd
from .network import ClosedNetwork, Station
from .open_network import OpenResult, analyze_open, erlang_b, erlang_c
from .results import MVAResult

__all__ = [
    "AsymptoticBounds",
    "ClosedNetwork",
    "MVAResult",
    "MultiClassResult",
    "MultiClassTrajectory",
    "MultiServerState",
    "OpenResult",
    "PredictionBand",
    "Station",
    "analyze_open",
    "approximate_multiserver_mva",
    "asymptotic_bounds",
    "balanced_job_bounds",
    "band_from_estimates",
    "bard_schweitzer",
    "bounds",
    "convolution_mva",
    "erlang_b",
    "erlang_c",
    "exact_load_dependent_mva",
    "interval_mva",
    "exact_multiclass_mva",
    "exact_multiserver_mva",
    "exact_mva",
    "laws",
    "linearizer_amva",
    "linearizer_multiserver_mva",
    "method_of_moments",
    "mom_state_count",
    "multiclass_mvasd",
    "multiserver_rates",
    "mvasd",
    "schweitzer_amva",
    "seidmann_transform",
]
