"""Method of Moments — exact multi-class analysis polynomial in population.

The exact multi-class MVA of :mod:`repro.core.multiclass` walks the full
population lattice, costing ``prod_c (N_c + 1)`` points — exponential in
the number of classes and hopeless for realistic per-class populations.
Casale's Method of Moments (MoM, arXiv:0902.3065) instead works with
*normalizing constants of higher-order moments*: it relates the
normalizing constant of the network to constants of companion networks
with increased station multiplicities, yielding exact per-class
throughputs and queue lengths in time polynomial in the total
population for a fixed number of queueing stations.

This module implements the moment recursion in its *unit-step
population-constraint* form.  Split every customer into its own class
(identical demands within an original class); adding one class-``c``
customer to a network whose normalizing constant is tracked over
station-multiplicity vectors ``v`` (``v_k`` = extra multiplicity of
queueing station ``k``) satisfies exactly

    ``g_t(v) = Z_c^eff * g_{t-1}(v) + sum_k (1 + v_k) D_{k,c} * g_{t-1}(v + e_k)``

with base ``g_0(v) = 1``, where ``Z_c^eff`` folds the delay-station
demands into the think time.  After all ``N`` customers are added,
``g_N(0)`` is the (split-class) normalizing constant ``G``; one more
run per class with a single class-``c`` customer removed gives

    ``X_c = N_c * G(N - e_c) / G(N)``
    ``Q_{k,c} = N_c * D_{k,c} * G^{+e_k}(N - e_c) / G(N)``

(the ``prod_c N_c!`` split-class factors cancel in both ratios).  Each
run touches the ``binom(N + K_q, K_q)`` multiplicity states of degree
``<= N`` — polynomial in ``N`` for fixed queueing-station count
``K_q`` — and needs only degrees ``<= N - t`` (+1 for the queue-length
states) after ``t`` additions, so the per-step state set shrinks as the
run progresses.  All recursion terms are non-negative (no subtractive
cancellation); magnitudes are kept in range by per-step max
normalization with the log-scale accumulated separately.

Exactness is pinned against :func:`~repro.core.multiclass.exact_multiclass_mva`
to 1e-8 on small lattices by the parity suite; the facade auto-selects
``method-of-moments`` when the exact lattice exceeds
``EXACT_MULTICLASS_LATTICE_LIMIT`` but the MoM state count stays
feasible (see :func:`mom_state_count`).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .multiclass import MultiClassResult

__all__ = ["method_of_moments", "mom_state_count"]


def mom_state_count(total_population: int, queue_stations: int) -> int:
    """Multiplicity states a MoM run touches: ``binom(N + K_q, K_q)``.

    The feasibility proxy for auto-selection — total work is roughly
    ``N`` times this (one shrinking pass per customer), for ``C + 1``
    runs.
    """
    return math.comb(int(total_population) + int(queue_stations), int(queue_stations))


def _enumerate_states(kq: int, max_degree: int):
    """Multiplicity vectors ``|v| <= max_degree`` over ``kq`` stations.

    Returns ``(states, nbr, prefix)`` — the ``(P, kq)`` state array
    ordered by (degree, lexicographic), the ``(P, kq)`` index of each
    state's ``v + e_k`` neighbor (-1 past the horizon), and
    ``prefix[d]`` = number of states with degree ``<= d``.
    """
    if kq == 0:
        states = np.zeros((1, 0), dtype=np.int64)
        nbr = np.zeros((1, 0), dtype=np.int64)
        return states, nbr, [1] * (max_degree + 1)

    def compose(total: int, parts: int):
        if parts == 1:
            yield (total,)
            return
        for first in range(total, -1, -1):
            for rest in compose(total - first, parts - 1):
                yield (first,) + rest

    all_states: list[tuple[int, ...]] = []
    prefix: list[int] = []
    for deg in range(max_degree + 1):
        all_states.extend(compose(deg, kq))
        prefix.append(len(all_states))
    index = {v: i for i, v in enumerate(all_states)}
    states = np.array(all_states, dtype=np.int64)
    nbr = np.full((len(all_states), kq), -1, dtype=np.int64)
    for i, v in enumerate(all_states):
        for kk in range(kq):
            up = list(v)
            up[kk] += 1
            nbr[i, kk] = index.get(tuple(up), -1)
    return states, nbr, prefix


def _pc_run(
    seq: Sequence[int],
    states: np.ndarray,
    nbr: np.ndarray,
    prefix: Sequence[int],
    z_eff: np.ndarray,
    d_queue: np.ndarray,
    max_degree: int,
    need_degree: int,
) -> tuple[np.ndarray, float]:
    """Add the customers of ``seq`` one by one; return ``(g, logscale)``.

    ``g[i] * exp(logscale)`` is the normalizing constant of the added
    customers with station multiplicities raised by ``states[i]``;
    ``need_degree`` is the highest multiplicity degree the caller reads
    at the end (0 for a throughput run, 1 for queue-length extraction).
    """
    kq = states.shape[1]
    g = np.ones(len(states))
    logscale = 0.0
    t_final = len(seq)
    for t, ci in enumerate(seq, start=1):
        limit = min(max_degree, t_final - t + need_degree)
        p = prefix[limit]
        new = z_eff[ci] * g[:p]
        for kk in range(kq):
            new = new + (1.0 + states[:p, kk]) * d_queue[kk, ci] * g[nbr[:p, kk]]
        m = float(new.max())
        if not np.isfinite(m) or m <= 0.0:
            raise ArithmeticError(
                "method-of-moments: normalizing-constant recursion degenerated "
                "(a class with zero demand everywhere and zero think time?)"
            )
        g = new / m
        logscale += math.log(m)
    return g, logscale


def method_of_moments(
    demands: Sequence[Sequence[float]],
    populations: Sequence[int],
    think_times: Sequence[float],
    station_names: Sequence[str] | None = None,
    station_kinds: Sequence[str] | None = None,
) -> MultiClassResult:
    """Solve a multi-class closed network exactly via the Method of Moments.

    Drop-in for :func:`~repro.core.multiclass.exact_multiclass_mva`
    (same signature, same :class:`MultiClassResult`), but with cost
    ``O(C * N * binom(N + K_q, K_q))`` — polynomial in the total
    population ``N`` for a fixed number of queueing stations ``K_q`` —
    instead of the lattice's ``prod_c (N_c + 1)``.  Use it when classes
    are many or populations large; for tiny lattices the plain
    recursion is faster.

    Parameters
    ----------
    demands:
        ``(K, C)`` matrix — demand of class ``c`` at station ``k``.
    populations:
        Class populations ``(N_1, ..., N_C)``.
    think_times:
        Per-class think times ``Z_c``.
    station_names / station_kinds:
        Optional labels and ``"queue"``/``"delay"`` flags (default all
        queueing).
    """
    d = np.asarray(demands, dtype=float)
    if d.ndim != 2:
        raise ValueError(f"demands must be a (K, C) matrix, got shape {d.shape}")
    if not np.isfinite(d).all():
        raise ValueError("method-of-moments: demands must be finite")
    if np.any(d < 0):
        raise ValueError("demands must be non-negative")
    k, c = d.shape
    pops = tuple(int(p) for p in populations)
    if len(pops) != c or any(p < 0 for p in pops):
        raise ValueError(f"populations must be {c} non-negative integers, got {populations}")
    z = np.asarray(think_times, dtype=float)
    if z.shape != (c,) or np.any(z < 0):
        raise ValueError(f"think_times must be {c} non-negative values")
    names = tuple(station_names) if station_names else tuple(f"station-{i}" for i in range(k))
    if len(names) != k:
        raise ValueError(f"expected {k} station names")
    kinds = tuple(station_kinds) if station_kinds else ("queue",) * k
    if len(kinds) != k or any(kd not in ("queue", "delay") for kd in kinds):
        raise ValueError("station_kinds must be 'queue'/'delay' per station")
    is_queue = np.array([kd == "queue" for kd in kinds])

    n_total = sum(pops)
    if n_total == 0:
        zero_c = np.zeros(c)
        return MultiClassResult(
            pops, zero_c, zero_c.copy(), np.zeros(k), np.zeros((k, c)),
            np.zeros(k), names, tuple(z),
        )

    d_queue = d[is_queue]
    kq = int(is_queue.sum())
    # Delay stations fold into an effective think time — they only
    # multiply the normalizing constant by a per-customer factor.
    z_eff = z + d[~is_queue].sum(axis=0)

    states, nbr, prefix = _enumerate_states(kq, n_total)
    # index of the zero state and of each e_k state (for Q extraction)
    idx_zero = 0
    idx_e = np.arange(1, kq + 1) if kq else np.zeros(0, dtype=int)

    full_seq = [ci for ci in range(c) for _ in range(pops[ci])]
    g_full, log_full = _pc_run(
        full_seq, states, nbr, prefix, z_eff, d_queue, n_total, need_degree=0
    )
    g0 = float(g_full[idx_zero])
    if g0 <= 0.0:
        raise ArithmeticError("method-of-moments: zero normalizing constant")

    x_c = np.zeros(c)
    q_kc = np.zeros((k, c))
    r_kc = np.zeros((k, c))
    for ci in range(c):
        if pops[ci] == 0:
            continue
        seq = list(full_seq)
        seq.remove(ci)
        g_c, log_c = _pc_run(
            seq, states, nbr, prefix, z_eff, d_queue, n_total, need_degree=1
        )
        # G(N - e_c)/G(N), with the per-run log scales re-applied.
        scale = math.exp(log_c - log_full) / g0
        x_c[ci] = pops[ci] * float(g_c[idx_zero]) * scale
        if kq:
            q_kc[is_queue, ci] = (
                pops[ci] * d_queue[:, ci] * g_c[idx_e] * scale
            )

    # Delay-station queue lengths and residence times follow directly.
    with np.errstate(divide="ignore", invalid="ignore"):
        r_kc[is_queue] = np.where(
            x_c[None, :] > 0, q_kc[is_queue] / x_c[None, :], 0.0
        )
    r_kc[~is_queue] = np.where(x_c[None, :] > 0, d[~is_queue], 0.0)
    q_kc[~is_queue] = d[~is_queue] * x_c[None, :]

    util = (d * x_c[np.newaxis, :]).sum(axis=1)
    return MultiClassResult(
        populations=pops,
        throughput=x_c,
        response_time=r_kc.sum(axis=0),
        queue_lengths=q_kc.sum(axis=1),
        queue_lengths_by_class=q_kc,
        utilizations=util,
        station_names=names,
        think_times=tuple(z),
    )
