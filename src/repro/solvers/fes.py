"""Hierarchical composition via flow-equivalent service centers.

The classical Norton / Chandy-Herzog-Woo aggregation: pick a subsystem
of stations, solve it **in isolation** (think time zero) at every
population ``j = 1..N``, and record its throughputs ``X_sub(j)``.  A
single load-dependent station whose service rate is ``mu(j) = X_sub(j)``
is then *flow-equivalent* to the whole subsystem — for product-form
networks the substitution is exact, so a hierarchy of aggregations
solves to the same answers as the flat model (the acceptance gate of
the composition tests is ``<= 1e-8``).

Three pieces make composition a first-class layer of the solver stack:

* :func:`aggregate` solves the subsystem through the ordinary
  :func:`~repro.solvers.facade.solve` facade, so the rate table rides
  the result cache, the persistent sqlite tier and the trajectory
  store like any other solve — re-aggregating the same subsystem is a
  cache hit, and growing ``N`` extends the ld-MVA trajectory via
  ``resume_from`` instead of recomputing the prefix;
* :class:`FESStation` is the portable aggregate: the member stations it
  stands for, the sampled rate table, and the provenance (solver name +
  subsystem fingerprint) of how it was built;
* :func:`compose` substitutes FES stations into a reduced
  :class:`~repro.solvers.scenario.Scenario` whose ``rate_tables`` field
  carries the tabulated laws — solved by the exact load-dependent MVA
  recursion (``method="auto"`` picks it), fingerprintable, cacheable,
  and itself aggregatable for multi-level hierarchies.

Typical use::

    from repro.solvers import Scenario, aggregate, compose, solve

    sc = Scenario(network, max_population=200)
    disks = aggregate(sc, ["disk1", "disk2"], name="disk-array")
    reduced = compose(sc, [disks])
    result = solve(reduced)        # auto -> ld-mva, exact
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from ..core.network import ClosedNetwork, Station
from .cache import USE_DEFAULT_CACHE
from .scenario import Scenario
from .validation import SolverInputError

__all__ = ["FESStation", "aggregate", "compose"]


@dataclass(frozen=True)
class FESStation:
    """A flow-equivalent service center produced by :func:`aggregate`.

    Attributes
    ----------
    name:
        Station name the aggregate takes in a composed scenario.
    members:
        Names of the stations it replaces, in network order.
    rates:
        Sampled rate table ``mu(j) = X_sub(j)`` for ``j = 1..N``.
    solver:
        Concrete solver that produced the table (provenance).
    source_fingerprint:
        Fingerprint of the subsystem scenario the table was solved
        from — the identity under which it lives in the caches.
    """

    name: str
    members: tuple[str, ...]
    rates: tuple[float, ...]
    solver: str
    source_fingerprint: str

    @property
    def max_population(self) -> int:
        """Largest population the rate table covers."""
        return len(self.rates)

    def as_station(self) -> Station:
        """The single-server station stand-in the composed network uses.

        The fixed demand is ``1 / mu(1)`` — the subsystem's total
        response time with one customer — so fixed-demand views of the
        composed scenario stay meaningful; solvers that actually run it
        read the rate table instead.
        """
        return Station(self.name, demand=1.0 / self.rates[0])


def _require_flat_single_class(scenario: Scenario, op: str) -> None:
    if scenario.is_multiclass:
        raise SolverInputError(
            f"{op}: multi-class scenarios cannot be aggregated — flow "
            f"equivalence needs a single-class product-form subsystem"
        )
    if scenario.has_varying_demands:
        raise SolverInputError(
            f"{op}: varying-demand scenarios cannot be aggregated — freeze "
            f"the demand model (fixed_demands / with_overrides) first"
        )


def _resolve_members(
    scenario: Scenario, stations: Sequence[str], op: str
) -> tuple[str, ...]:
    members = list(stations)
    if not members:
        raise SolverInputError(f"{op}: need at least one station to aggregate")
    if len(set(members)) != len(members):
        raise SolverInputError(f"{op}: duplicate station names in {members}")
    known = set(scenario.station_names)
    unknown = [m for m in members if m not in known]
    if unknown:
        raise SolverInputError(
            f"{op}: unknown station names {unknown}; scenario has "
            f"{list(scenario.station_names)}"
        )
    # Canonical order is network order, not call order.
    return tuple(n for n in scenario.station_names if n in set(members))


def aggregate(
    scenario: Scenario,
    stations: Sequence[str],
    name: str | None = None,
    method: str = "auto",
    max_population: int | None = None,
    cache=USE_DEFAULT_CACHE,
    **options: Any,
) -> FESStation:
    """Collapse a subsystem of ``scenario`` into a flow-equivalent station.

    Builds the isolated subsystem (member stations only, think time
    zero, demands and any rate tables inherited from ``scenario``) and
    solves it across populations ``1..N`` through the solve facade —
    one trajectory solve whose throughput curve *is* the FES rate
    table.  The subsystem solve shares the ordinary cache stack, so
    repeated aggregation of an unchanged subsystem costs one cache
    lookup, and composed scenarios that were themselves built by
    :func:`compose` chain naturally (their rate tables carry over into
    the subsystem, which ``method="auto"`` then routes to ld-MVA).

    Parameters
    ----------
    scenario:
        The parent scenario (single-class, constant demands).
    stations:
        Names of the member stations (any subset; order is normalized
        to network order).
    name:
        Name of the resulting station; defaults to
        ``"fes:<member>+<member>+..."``.
    method:
        Facade method for the subsystem solve.  The default ``"auto"``
        picks an exact solver; approximate methods trade the ``1e-8``
        composition parity for their documented tolerance.
    max_population:
        Populations to sample (defaults to ``scenario.max_population``).
        Sampling deeper than the parent lets one aggregate serve many
        smaller compositions.
    cache:
        Forwarded to :func:`~repro.solvers.facade.solve`.
    **options:
        Forwarded to the subsystem solver adapter.
    """
    _require_flat_single_class(scenario, "aggregate")
    members = _resolve_members(scenario, stations, "aggregate")
    big_n = scenario.max_population if max_population is None else int(max_population)
    if big_n < 1:
        raise SolverInputError(
            f"aggregate: max_population must be >= 1, got {big_n}"
        )

    demands = scenario.fixed_demands("aggregate")
    index = {n: i for i, n in enumerate(scenario.station_names)}
    sub_stations = []
    sub_tables: dict[str, tuple[float, ...]] = {}
    bounded = False
    for member in members:
        st = scenario.network[member]
        value = float(demands[index[member]])
        sub_stations.append(st.with_demand(value))
        table = (scenario.rate_tables or {}).get(member)
        if table is not None:
            if big_n > len(table):
                raise SolverInputError(
                    f"aggregate: station {member!r} carries a rate table "
                    f"sampled to {len(table)} populations; cannot aggregate "
                    f"to {big_n} without re-aggregating its source deeper"
                )
            sub_tables[member] = tuple(table[:big_n])
            bounded = True
        elif value > 0:
            # any positive demand (queue or delay) keeps X_sub(j) finite
            bounded = True
    if not bounded:
        raise SolverInputError(
            f"aggregate: subsystem {list(members)} has zero total demand — "
            f"its throughput is unbounded and no rate table can represent it"
        )

    sub_net = ClosedNetwork(
        sub_stations,
        think_time=0.0,
        name=f"fes-subsystem({'+'.join(members)})",
    )
    sub_scenario = Scenario(
        network=sub_net,
        max_population=big_n,
        rate_tables=sub_tables or None,
    )

    from .facade import solve  # deferred: facade imports would cycle

    result = solve(sub_scenario, method=method, cache=cache, **options)
    throughput = np.asarray(result.throughput, dtype=float)
    if throughput.ndim != 1 or throughput.shape[0] != big_n:
        raise SolverInputError(
            f"aggregate: subsystem solver {result.solver!r} returned "
            f"{throughput.shape} throughputs, need a 1..{big_n} trajectory"
        )
    if np.any(~np.isfinite(throughput)) or np.any(throughput <= 0):
        raise SolverInputError(
            f"aggregate: subsystem {list(members)} produced non-positive or "
            f"non-finite throughputs — not representable as a rate table"
        )
    return FESStation(
        name=name if name is not None else "fes:" + "+".join(members),
        members=members,
        rates=tuple(float(x) for x in throughput),
        solver=str(result.solver),
        source_fingerprint=sub_scenario.fingerprint(),
    )


def compose(
    scenario: Scenario,
    aggregates: FESStation | Sequence[FESStation],
) -> Scenario:
    """Substitute flow-equivalent stations into a reduced scenario.

    Each aggregate's member stations are replaced — at the position of
    the first member — by one load-dependent station carrying the
    aggregate's rate table; untouched stations (and their own rate
    tables) survive verbatim.  The result is an ordinary
    :class:`Scenario`: fingerprintable, cacheable, solvable by
    ``method="auto"`` (which routes rate-table scenarios to the exact
    ld-MVA recursion), and itself a valid input to :func:`aggregate`
    for deeper hierarchies.

    Rate tables sampled deeper than ``scenario.max_population`` are
    truncated; shallower ones are rejected (a table cannot be extended
    beyond its sampled range).
    """
    _require_flat_single_class(scenario, "compose")
    fes_list = [aggregates] if isinstance(aggregates, FESStation) else list(aggregates)
    if not fes_list:
        raise SolverInputError("compose: need at least one FESStation")
    for fes in fes_list:
        if not isinstance(fes, FESStation):
            raise SolverInputError(
                f"compose: expected FESStation instances, got {type(fes).__name__}"
            )

    big_n = scenario.max_population
    known = set(scenario.station_names)
    claimed: dict[str, FESStation] = {}
    for fes in fes_list:
        if fes.max_population < big_n:
            raise SolverInputError(
                f"compose: aggregate {fes.name!r} samples populations "
                f"1..{fes.max_population} but the scenario needs 1..{big_n}; "
                f"re-aggregate with max_population={big_n}"
            )
        for member in fes.members:
            if member not in known:
                raise SolverInputError(
                    f"compose: aggregate {fes.name!r} replaces unknown "
                    f"station {member!r}"
                )
            if member in claimed:
                raise SolverInputError(
                    f"compose: station {member!r} is claimed by both "
                    f"{claimed[member].name!r} and {fes.name!r}"
                )
            claimed[member] = fes

    names = [fes.name for fes in fes_list]
    if len(set(names)) != len(names):
        raise SolverInputError(f"compose: duplicate aggregate names in {names}")
    surviving = [n for n in scenario.station_names if n not in claimed]
    collisions = sorted(set(names) & set(surviving))
    if collisions:
        raise SolverInputError(
            f"compose: aggregate names {collisions} collide with surviving "
            f"stations — rename the aggregate (aggregate(..., name=...))"
        )

    demands = scenario.fixed_demands("compose")
    index = {n: i for i, n in enumerate(scenario.station_names)}
    first_member = {fes.members[0]: fes for fes in fes_list}
    stations: list[Station] = []
    tables: dict[str, tuple[float, ...]] = {}
    for st in scenario.network.stations:
        fes = first_member.get(st.name)
        if fes is not None:
            stations.append(fes.as_station())
            tables[fes.name] = tuple(fes.rates[:big_n])
            continue
        if st.name in claimed:
            continue
        stations.append(st.with_demand(float(demands[index[st.name]])))
        table = (scenario.rate_tables or {}).get(st.name)
        if table is not None:
            tables[st.name] = tuple(table[:big_n])

    reduced_net = ClosedNetwork(
        stations,
        think_time=scenario.think,
        name=scenario.network.name,
    )
    return Scenario(
        network=reduced_net,
        max_population=big_n,
        rate_tables=tables or None,
    )
