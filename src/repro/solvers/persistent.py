"""Persistent (sqlite-backed) second level under :class:`SolverCache`.

The in-process LRU of :mod:`repro.solvers.cache` dies with the process;
a capacity-planning *service* wants restarts and fleets of worker
processes to warm each other.  This module adds that durability as a
strictly-optional second tier:

* keys are sha256 hex digests of a **deterministic encoding** of the
  facade cache key (:func:`persistent_key`) — unlike Python's ``hash``
  they are stable across processes, interpreter versions and
  ``PYTHONHASHSEED``, which is what makes the store shareable;
* values are pickled solver results, stored next to their own sha256 so
  a torn write or bit rot is *detected on read* and degrades to a miss
  instead of returning garbage;
* every operation inherits the PR 5 non-fatal contract: ``get``/``put``/
  ``clear`` never raise — a locked, corrupt, or unwritable store counts
  an error and the caller recomputes.

sqlite is used in WAL mode with a busy timeout so concurrent worker
processes (and the asyncio service's executor threads) can share one
store file without stepping on each other.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sqlite3
import struct
import threading
from dataclasses import dataclass, fields

__all__ = ["PersistentCache", "PersistentStats", "persistent_key"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS solver_cache (
    key     TEXT PRIMARY KEY,
    sha256  TEXT NOT NULL,
    payload BLOB NOT NULL,
    method  TEXT NOT NULL DEFAULT '',
    created REAL NOT NULL DEFAULT 0
)
"""


@dataclass(frozen=True)
class PersistentStats:
    """Point-in-time counters of a :class:`PersistentCache`."""

    hits: int = 0
    misses: int = 0
    errors: int = 0
    writes: int = 0
    entries: int = 0
    bytes: int = 0
    path: str = ""

    def __getitem__(self, name: str):
        if name not in {f.name for f in fields(self)}:
            raise KeyError(name)
        return getattr(self, name)


def _encode(value, out: list) -> None:
    """Deterministic byte encoding of a facade cache key.

    Python's ``hash`` is salted per process; pickling tuples is stable
    in practice but makes no cross-version promise.  This tiny recursive
    codec covers exactly the types the facade puts in keys (str/bytes,
    bool/int, canonical floats, ``None`` and nested tuples from
    :func:`repro.solvers.cache.canonical_options`) with explicit type
    tags — ``bool`` is checked before ``int`` so ``True`` and ``1``
    encode differently, and floats go through the same ``-0.0``/NaN
    canonicalization the fingerprints use.
    """
    if value is None:
        out.append(b"N")
    elif isinstance(value, bool):
        out.append(b"T" if value else b"F")
    elif isinstance(value, int):
        raw = str(value).encode()
        out.append(b"i" + struct.pack("<I", len(raw)) + raw)
    elif isinstance(value, float):
        v = value + 0.0
        if v != v:  # fold every NaN bit pattern onto one
            v = float("nan")
        out.append(b"f" + struct.pack("<d", v))
    elif isinstance(value, str):
        raw = value.encode()
        out.append(b"s" + struct.pack("<I", len(raw)) + raw)
    elif isinstance(value, bytes):
        out.append(b"b" + struct.pack("<I", len(value)) + value)
    elif isinstance(value, tuple):
        out.append(b"(" + struct.pack("<I", len(value)))
        for item in value:
            _encode(item, out)
        out.append(b")")
    else:
        raise TypeError(f"unencodable cache-key component: {type(value).__name__}")


def persistent_key(key) -> str:
    """Cross-process stable sha256 hex digest of a facade cache key."""
    out: list = []
    _encode(key, out)
    return hashlib.sha256(b"".join(out)).hexdigest()


class PersistentCache:
    """sqlite-backed result store keyed on :func:`persistent_key` digests.

    The store is an optimization, never a correctness dependency: every
    failure mode (missing parent directory, locked database, corrupted
    file, truncated payload, unpicklable result) degrades to a counted
    miss or dropped write.  Payload integrity is verified on *every*
    read by recomputing the stored sha256 — a row whose blob no longer
    matches its digest is deleted and reported as a miss, which is what
    the cross-process corruption tests pin down.
    """

    def __init__(self, path: str | os.PathLike, timeout: float = 5.0) -> None:
        self.path = os.fspath(path)
        self.timeout = float(timeout)
        self._lock = threading.Lock()
        self._conn: sqlite3.Connection | None = None
        self._hits = 0
        self._misses = 0
        self._errors = 0
        self._writes = 0

    # -- connection management ------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        """Open (once) the store; caller holds the lock."""
        if self._conn is None:
            conn = sqlite3.connect(
                self.path, timeout=self.timeout, check_same_thread=False
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(_SCHEMA)
            conn.commit()
            self._conn = conn
        return self._conn

    def _drop_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except Exception:
                pass
            self._conn = None

    @staticmethod
    def _fault_hook() -> None:
        from ..engine.faults import maybe_inject

        maybe_inject("persistent")

    # -- the non-fatal store API ----------------------------------------------

    def get(self, digest: str):
        """The stored result for ``digest``, or ``None``.  Never raises."""
        try:
            self._fault_hook()
            with self._lock:
                conn = self._connect()
                row = conn.execute(
                    "SELECT sha256, payload FROM solver_cache WHERE key = ?",
                    (digest,),
                ).fetchone()
                if row is None:
                    self._misses += 1
                    return None
                sha, payload = row
                if hashlib.sha256(payload).hexdigest() != sha:
                    # torn write / bit rot: purge the row, report a miss
                    conn.execute(
                        "DELETE FROM solver_cache WHERE key = ?", (digest,)
                    )
                    conn.commit()
                    self._errors += 1
                    self._misses += 1
                    return None
                value = pickle.loads(payload)
                self._hits += 1
                return value
        except Exception:
            with self._lock:
                self._errors += 1
                self._misses += 1
                self._drop_connection()
            return None

    def put(self, digest: str, result, method: str = "") -> None:
        """Store ``result`` under ``digest``.  Never raises."""
        try:
            self._fault_hook()
            payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
            sha = hashlib.sha256(payload).hexdigest()
            with self._lock:
                conn = self._connect()
                conn.execute(
                    "INSERT OR REPLACE INTO solver_cache "
                    "(key, sha256, payload, method, created) "
                    "VALUES (?, ?, ?, ?, strftime('%s','now'))",
                    (digest, sha, payload, method),
                )
                conn.commit()
                self._writes += 1
        except Exception:
            with self._lock:
                self._errors += 1
                self._drop_connection()

    def clear(self) -> None:
        """Drop every stored entry and reset the counters.  Never raises."""
        try:
            with self._lock:
                conn = self._connect()
                conn.execute("DELETE FROM solver_cache")
                conn.commit()
                self._hits = self._misses = self._errors = self._writes = 0
        except Exception:
            with self._lock:
                self._errors += 1
                self._drop_connection()

    def stats(self) -> PersistentStats:
        entries = 0
        size = 0
        try:
            with self._lock:
                conn = self._connect()
                entries = int(
                    conn.execute("SELECT COUNT(*) FROM solver_cache").fetchone()[0]
                )
            size = os.path.getsize(self.path)
        except Exception:
            with self._lock:
                self._errors += 1
                self._drop_connection()
        with self._lock:
            return PersistentStats(
                hits=self._hits,
                misses=self._misses,
                errors=self._errors,
                writes=self._writes,
                entries=entries,
                bytes=size,
                path=self.path,
            )

    def close(self) -> None:
        with self._lock:
            self._drop_connection()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PersistentCache({self.path!r})"
