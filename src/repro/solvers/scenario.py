"""The canonical solver input: a frozen, pre-validated :class:`Scenario`.

Every solver in the registry consumes the same description of the
problem — network topology, target population, demand model and think
time — instead of each entry point inventing its own keyword soup.  A
scenario is validated **once**, on construction; adapters then read the
representation they need (:meth:`Scenario.fixed_demands` for
constant-demand solvers, :meth:`Scenario.demand_fns` /
:meth:`Scenario.resolved_demand_matrix` for the varying-demand family).

Demands can be supplied four ways, at most one of which may be given
explicitly (otherwise the network's own station demands apply):

* ``demands`` — a fixed per-station vector (the paper's ``MVA i``
  construction when the network itself varies);
* ``demand_functions`` — per-station curves ``n -> seconds`` (fitted
  :class:`~repro.interpolate.demand_model.ServiceDemandModel` splines,
  profile callables, plain lambdas);
* ``demand_matrix`` — a precomputed ``(N, K)`` array of ``SS_k^n``
  samples, the representation the batched kernels consume directly;
* ``classes`` — a multi-class workload mix (:class:`WorkloadClass`),
  which replaces the single-class demand description entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.network import ClosedNetwork
from .validation import (
    SolverInputError,
    resolve_demand_functions,
    resolve_demands,
    validate_population,
)

__all__ = ["Scenario", "WorkloadClass"]

DemandFn = Callable[[float], float]


@dataclass(frozen=True)
class WorkloadClass:
    """One customer class of a multi-class scenario.

    Attributes
    ----------
    name:
        Class label, e.g. ``"registration"``.
    population:
        Number of customers of this class (for mix-sweep solvers the
        populations act as relative mix weights).
    demands:
        ``station name -> demand`` where each demand is a constant or a
        callable of the *total* population (``SS_{k,c}^n``).
    think_time:
        Per-class think time ``Z_c``.
    """

    name: str
    population: int
    demands: Mapping[str, float | DemandFn] = field(default_factory=dict)
    think_time: float = 0.0

    def __post_init__(self) -> None:
        if self.population < 0:
            raise SolverInputError(
                f"class {self.name!r}: population must be non-negative, "
                f"got {self.population}"
            )
        if self.think_time < 0:
            raise SolverInputError(
                f"class {self.name!r}: think_time must be non-negative, "
                f"got {self.think_time}"
            )
        for station, demand in self.demands.items():
            if not callable(demand) and float(demand) < 0:
                raise SolverInputError(
                    f"class {self.name!r}: demand for {station!r} must be "
                    f"non-negative, got {demand}"
                )

    @property
    def has_varying_demands(self) -> bool:
        return any(callable(d) for d in self.demands.values())

    def demand_vector(self, station_names: Sequence[str], level: float) -> np.ndarray:
        """Per-station demands of this class evaluated at ``level``."""
        out = np.empty(len(station_names))
        for i, name in enumerate(station_names):
            try:
                spec = self.demands[name]
            except KeyError:
                raise SolverInputError(
                    f"class {self.name!r}: missing demands for station {name!r}"
                ) from None
            out[i] = float(spec(level)) if callable(spec) else float(spec)
        if np.any(out < 0):
            raise SolverInputError(
                f"class {self.name!r}: negative demand at level {level:g}"
            )
        return out


@dataclass(frozen=True)
class Scenario:
    """A fully specified solve request.

    Attributes
    ----------
    network:
        Closed-network topology (stations, server counts, think time).
    max_population:
        Largest population ``N``; trajectory solvers cover ``n = 1..N``.
    demands:
        Optional fixed per-station demand vector.
    demand_functions:
        Optional per-station demand curves (mapping by station name or
        sequence in station order).
    demand_matrix:
        Optional precomputed ``(N, K)`` demand samples ``SS_k^n``.
    demand_level:
        Level at which varying demands are frozen when a constant-demand
        solver runs this scenario.
    think_time:
        Optional override of the network's think time ``Z``.
    classes:
        Optional multi-class structure; when given, the single-class
        demand fields must be absent.
    """

    network: ClosedNetwork
    max_population: int
    demands: tuple[float, ...] | None = None
    demand_functions: Mapping[str, DemandFn] | Sequence[DemandFn] | None = None
    demand_matrix: np.ndarray | None = None
    demand_level: float = 1.0
    think_time: float | None = None
    classes: tuple[WorkloadClass, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "max_population", validate_population(self.max_population, solver="scenario")
        )
        sources = [
            name
            for name, value in (
                ("demands", self.demands),
                ("demand_functions", self.demand_functions),
                ("demand_matrix", self.demand_matrix),
                ("classes", self.classes),
            )
            if value is not None
        ]
        if len(sources) > 1:
            raise SolverInputError(
                f"scenario: give at most one demand source, got {sources}"
            )
        if self.demands is not None:
            arr = resolve_demands(self.network, self.demands, solver="scenario")
            object.__setattr__(self, "demands", tuple(float(v) for v in arr))
        if self.demand_functions is not None:
            # Validate coverage/length now; adapters re-resolve per solver.
            resolve_demand_functions(self.network, self.demand_functions, solver="scenario")
        if self.demand_matrix is not None:
            matrix = np.asarray(self.demand_matrix, dtype=float)
            expected = (self.max_population, len(self.network))
            if matrix.shape != expected:
                raise SolverInputError(
                    f"scenario: demand_matrix must have shape {expected}, "
                    f"got {matrix.shape}"
                )
            if np.any(matrix < 0):
                raise SolverInputError("scenario: demand_matrix must be non-negative")
            matrix = matrix.copy()
            matrix.setflags(write=False)
            object.__setattr__(self, "demand_matrix", matrix)
        if self.think_time is not None and self.think_time < 0:
            raise SolverInputError(
                f"scenario: think_time must be non-negative, got {self.think_time}"
            )
        if self.classes is not None:
            classes = tuple(self.classes)
            if not classes:
                raise SolverInputError("scenario: classes must be non-empty when given")
            names = [c.name for c in classes]
            if len(set(names)) != len(names):
                raise SolverInputError(f"scenario: duplicate class names in {names}")
            if sum(c.population for c in classes) < 1:
                raise SolverInputError("scenario: total class population must be >= 1")
            object.__setattr__(self, "classes", classes)

    # -- structure ----------------------------------------------------------

    @property
    def station_names(self) -> tuple[str, ...]:
        return self.network.station_names

    @property
    def is_multiclass(self) -> bool:
        return self.classes is not None

    @property
    def is_multiserver(self) -> bool:
        """Any queueing station with more than one server?"""
        return any(st.servers > 1 for st in self.network.stations if st.kind == "queue")

    @property
    def has_varying_demands(self) -> bool:
        """Does the demand model change with concurrency?"""
        if self.classes is not None:
            return any(c.has_varying_demands for c in self.classes)
        if self.demands is not None:
            return False
        if self.demand_functions is not None or self.demand_matrix is not None:
            return True
        return self.network.has_varying_demands

    @property
    def think(self) -> float:
        """The effective think time ``Z`` of this scenario."""
        return self.network.think_time if self.think_time is None else float(self.think_time)

    def resolved_network(self) -> ClosedNetwork:
        """The network with any think-time override applied."""
        if self.think_time is None:
            return self.network
        return self.network.with_think_time(float(self.think_time))

    # -- demand views -------------------------------------------------------

    def fixed_demands(self, solver: str = "scenario") -> np.ndarray:
        """The constant ``(K,)`` demand vector a fixed-demand solver sees.

        Varying demand models are frozen at ``demand_level`` (matrix
        scenarios at the nearest sampled level).
        """
        if self.is_multiclass:
            raise SolverInputError(
                f"{solver}: multi-class scenarios have no single-class demand vector"
            )
        if self.demands is not None:
            return np.asarray(self.demands, dtype=float)
        if self.demand_matrix is not None:
            row = min(max(int(round(self.demand_level)), 1), self.max_population) - 1
            return np.asarray(self.demand_matrix[row], dtype=float)
        if self.demand_functions is not None:
            fns = resolve_demand_functions(self.network, self.demand_functions, solver=solver)
            return np.array([float(f(self.demand_level)) for f in fns])
        return resolve_demands(self.network, None, self.demand_level, solver=solver)

    def demand_fns(self, solver: str = "scenario") -> list[DemandFn]:
        """Per-station demand curves ``n -> seconds`` in station order."""
        if self.is_multiclass:
            raise SolverInputError(
                f"{solver}: multi-class scenarios have no single-class demand curves"
            )
        if self.demands is not None:
            return [lambda _n, _v=float(v): _v for v in self.demands]
        if self.demand_matrix is not None:
            levels = np.arange(1, self.max_population + 1, dtype=float)
            return [
                lambda n, _lv=levels, _col=np.asarray(self.demand_matrix[:, i]): np.interp(
                    n, _lv, _col
                )
                for i in range(self.demand_matrix.shape[1])
            ]
        return resolve_demand_functions(self.network, self.demand_functions, solver=solver)

    def resolved_demand_matrix(self, solver: str = "scenario") -> np.ndarray:
        """The full ``(N, K)`` demand samples ``SS_k^n`` for ``n = 1..N``."""
        if self.demand_matrix is not None:
            return np.asarray(self.demand_matrix)
        if self.demands is not None:
            return np.tile(
                np.asarray(self.demands, dtype=float), (self.max_population, 1)
            )
        from ..core.mvasd import precompute_demand_matrix

        return precompute_demand_matrix(self.demand_fns(solver), self.max_population)

    # -- derivation ---------------------------------------------------------

    def with_overrides(
        self,
        demand_scale: float | None = None,
        think_time: float | None = None,
        max_population: int | None = None,
    ) -> "Scenario":
        """A variant of this scenario with simple axis overrides.

        ``demand_scale`` multiplies the whole demand model (the
        resolved matrix for varying scenarios, the fixed vector
        otherwise) — the common what-if axis of the sweep grids.
        """
        if self.is_multiclass:
            raise SolverInputError(
                "scenario: with_overrides does not support multi-class scenarios"
            )
        n = self.max_population if max_population is None else int(max_population)
        think = self.think if think_time is None else float(think_time)
        if demand_scale is None:
            if self.has_varying_demands:
                return Scenario(
                    network=self.network,
                    max_population=n,
                    demand_matrix=self.resolved_demand_matrix()[:n]
                    if n <= self.max_population
                    else None,
                    demand_functions=None if n <= self.max_population else self.demand_functions,
                    demand_level=self.demand_level,
                    think_time=think,
                )
            return Scenario(
                network=self.network,
                max_population=n,
                demands=self.demands,
                demand_level=self.demand_level,
                think_time=think,
            )
        scale = float(demand_scale)
        if scale < 0:
            raise SolverInputError(f"scenario: demand_scale must be non-negative, got {scale}")
        if self.has_varying_demands:
            base = self.resolved_demand_matrix()
            if n > self.max_population:
                raise SolverInputError(
                    "scenario: cannot extend a demand matrix beyond its sampled range"
                )
            return Scenario(
                network=self.network,
                max_population=n,
                demand_matrix=base[:n] * scale,
                demand_level=self.demand_level,
                think_time=think,
            )
        return Scenario(
            network=self.network,
            max_population=n,
            demands=tuple(scale * v for v in self.fixed_demands()),
            demand_level=self.demand_level,
            think_time=think,
        )
