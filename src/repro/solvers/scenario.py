"""The canonical solver input: a frozen, pre-validated :class:`Scenario`.

Every solver in the registry consumes the same description of the
problem — network topology, target population, demand model and think
time — instead of each entry point inventing its own keyword soup.  A
scenario is validated **once**, on construction; adapters then read the
representation they need (:meth:`Scenario.fixed_demands` for
constant-demand solvers, :meth:`Scenario.demand_fns` /
:meth:`Scenario.resolved_demand_matrix` for the varying-demand family).

Demands can be supplied four ways, at most one of which may be given
explicitly (otherwise the network's own station demands apply):

* ``demands`` — a fixed per-station vector (the paper's ``MVA i``
  construction when the network itself varies);
* ``demand_functions`` — per-station curves ``n -> seconds`` (fitted
  :class:`~repro.interpolate.demand_model.ServiceDemandModel` splines,
  profile callables, plain lambdas);
* ``demand_matrix`` — a precomputed ``(N, K)`` array of ``SS_k^n``
  samples, the representation the batched kernels consume directly;
* ``classes`` — a multi-class workload mix (:class:`WorkloadClass`),
  which replaces the single-class demand description entirely.

Orthogonally to the demand source, ``rate_tables`` attaches tabulated
load-dependent service-rate laws ``station name -> [mu(1), ..., mu(N)]``
to individual queueing stations — the canonical representation of a
flow-equivalent service center (:mod:`repro.solvers.fes`).  Stations
with a rate table are served by the exact load-dependent MVA recursion;
the tables are part of the fingerprint, so composed scenarios ride the
result cache, the persistent tier and the trajectory store like any
other scenario.

Scenarios are **content-addressed**: :meth:`Scenario.fingerprint` hashes
the canonical serialization of everything a solver can observe —
topology, server counts, the resolved demand matrix (with float
canonicalization so ``-0.0`` and ``NaN`` bit patterns cannot split
equal scenarios), population, think time and class mix — and is the
identity the :mod:`repro.solvers.cache` result cache keys on.  To keep
fingerprints valid for the lifetime of a scenario, construction takes
defensive copies of every mutable input (demand-function mappings,
demand matrices) and the demand views hand out read-only arrays.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.network import ClosedNetwork
from .validation import (
    SolverInputError,
    resolve_demand_functions,
    resolve_demands,
    validate_population,
)

__all__ = ["Scenario", "WorkloadClass"]

DemandFn = Callable[[float], float]

#: Bumped whenever the canonical serialization changes, so fingerprints
#: from different layouts can never collide.
_FINGERPRINT_VERSION = b"repro-scenario-v1"


def _canonical_float_array(values) -> np.ndarray:
    """Float64 array with one bit pattern per numeric value.

    Adding ``0.0`` collapses ``-0.0`` onto ``+0.0``; every NaN payload is
    replaced by the canonical quiet NaN.  The returned buffer is what
    fingerprints hash, so two arrays that compare equal elementwise (NaN
    aside) always serialize to the same bytes.
    """
    arr = np.ascontiguousarray(np.asarray(values, dtype=np.float64)) + 0.0
    if np.isnan(arr).any():
        arr = np.where(np.isnan(arr), np.float64("nan"), arr)
    return arr


def _hash_floats(h, values) -> None:
    h.update(_canonical_float_array(values).tobytes())


def _readonly(arr: np.ndarray) -> np.ndarray:
    """Mark ``arr`` read-only (views of read-only bases already are)."""
    if arr.flags.writeable:
        arr.setflags(write=False)
    return arr


class _ScaledDemand:
    """Picklable wrapper scaling a demand curve by a constant factor.

    ``with_overrides(demand_scale=...)`` on multi-class scenarios wraps
    callable per-class demands with this instead of a lambda so derived
    scenarios survive the fork/pickle boundary of the sharded backends.
    """

    __slots__ = ("fn", "scale")

    def __init__(self, fn: DemandFn, scale: float) -> None:
        self.fn = fn
        self.scale = float(scale)

    def __call__(self, level: float) -> float:
        return float(self.fn(level)) * self.scale


def _scale_class_demand(demand: float | DemandFn, scale: float) -> float | DemandFn:
    if callable(demand):
        return _ScaledDemand(demand, scale)
    return float(demand) * scale


@dataclass(frozen=True)
class WorkloadClass:
    """One customer class of a multi-class scenario.

    Attributes
    ----------
    name:
        Class label, e.g. ``"registration"``.
    population:
        Number of customers of this class (for mix-sweep solvers the
        populations act as relative mix weights).
    demands:
        ``station name -> demand`` where each demand is a constant or a
        callable of the *total* population (``SS_{k,c}^n``).
    think_time:
        Per-class think time ``Z_c``.
    """

    name: str
    population: int
    demands: Mapping[str, float | DemandFn] = field(default_factory=dict)
    think_time: float = 0.0

    def __post_init__(self) -> None:
        # Defensive copy: the caller keeping (and mutating) the original
        # mapping must not change this class after construction.
        object.__setattr__(self, "demands", dict(self.demands))
        if self.population < 0:
            raise SolverInputError(
                f"class {self.name!r}: population must be non-negative, "
                f"got {self.population}"
            )
        if self.think_time < 0:
            raise SolverInputError(
                f"class {self.name!r}: think_time must be non-negative, "
                f"got {self.think_time}"
            )
        for station, demand in self.demands.items():
            if not callable(demand) and float(demand) < 0:
                raise SolverInputError(
                    f"class {self.name!r}: demand for {station!r} must be "
                    f"non-negative, got {demand}"
                )

    @property
    def has_varying_demands(self) -> bool:
        return any(callable(d) for d in self.demands.values())

    def demand_vector(self, station_names: Sequence[str], level: float) -> np.ndarray:
        """Per-station demands of this class evaluated at ``level``."""
        out = np.empty(len(station_names))
        for i, name in enumerate(station_names):
            try:
                spec = self.demands[name]
            except KeyError:
                raise SolverInputError(
                    f"class {self.name!r}: missing demands for station {name!r}"
                ) from None
            out[i] = float(spec(level)) if callable(spec) else float(spec)
        if np.any(out < 0):
            raise SolverInputError(
                f"class {self.name!r}: negative demand at level {level:g}"
            )
        return out

    def fingerprint(self, station_names: Sequence[str], max_population: int) -> str:
        """Content hash of this class within a scenario's station order.

        Constant demands hash as one vector; varying demands are sampled
        over every total-population level ``1..max_population`` — exactly
        the values a mix-sweep solver can observe.
        """
        h = hashlib.sha256()
        h.update(_FINGERPRINT_VERSION)
        h.update(b"workload-class\x00")
        h.update(self.name.encode("utf-8"))
        h.update(struct.pack("<q", int(self.population)))
        _hash_floats(h, [self.think_time])
        if self.has_varying_demands:
            levels = np.stack(
                [
                    self.demand_vector(station_names, float(level))
                    for level in range(1, int(max_population) + 1)
                ]
            )
        else:
            levels = self.demand_vector(station_names, 1.0)
        _hash_floats(h, levels)
        return h.hexdigest()


@dataclass(frozen=True)
class Scenario:
    """A fully specified solve request.

    Attributes
    ----------
    network:
        Closed-network topology (stations, server counts, think time).
    max_population:
        Largest population ``N``; trajectory solvers cover ``n = 1..N``.
    demands:
        Optional fixed per-station demand vector.
    demand_functions:
        Optional per-station demand curves (mapping by station name or
        sequence in station order).
    demand_matrix:
        Optional precomputed ``(N, K)`` demand samples ``SS_k^n``.
    demand_level:
        Level at which varying demands are frozen when a constant-demand
        solver runs this scenario.
    think_time:
        Optional override of the network's think time ``Z``.
    classes:
        Optional multi-class structure; when given, the single-class
        demand fields must be absent.
    rate_tables:
        Optional tabulated service-rate laws ``station name ->
        [mu(1), ..., mu(N)]`` for individual queueing stations (the
        flow-equivalent representation).  Orthogonal to the demand
        source, but only combines with *constant* demands — varying
        demands and multi-class mixes are rejected.
    """

    network: ClosedNetwork
    max_population: int
    demands: tuple[float, ...] | None = None
    demand_functions: Mapping[str, DemandFn] | Sequence[DemandFn] | None = None
    demand_matrix: np.ndarray | None = None
    demand_level: float = 1.0
    think_time: float | None = None
    classes: tuple[WorkloadClass, ...] | None = None
    rate_tables: Mapping[str, Sequence[float]] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "max_population", validate_population(self.max_population, solver="scenario")
        )
        sources = [
            name
            for name, value in (
                ("demands", self.demands),
                ("demand_functions", self.demand_functions),
                ("demand_matrix", self.demand_matrix),
                ("classes", self.classes),
            )
            if value is not None
        ]
        if len(sources) > 1:
            raise SolverInputError(
                f"scenario: give at most one demand source, got {sources}"
            )
        if self.demands is not None:
            arr = resolve_demands(self.network, self.demands, solver="scenario")
            object.__setattr__(self, "demands", tuple(float(v) for v in arr))
        if self.demand_functions is not None:
            # Validate coverage/length now; adapters re-resolve per solver.
            resolve_demand_functions(self.network, self.demand_functions, solver="scenario")
            # Defensive copy: later mutation of the caller's mapping or
            # sequence must not alias into this (fingerprinted) scenario.
            if isinstance(self.demand_functions, Mapping):
                object.__setattr__(self, "demand_functions", dict(self.demand_functions))
            else:
                object.__setattr__(self, "demand_functions", tuple(self.demand_functions))
        if self.demand_matrix is not None:
            matrix = np.asarray(self.demand_matrix, dtype=float)
            expected = (self.max_population, len(self.network))
            if matrix.shape != expected:
                raise SolverInputError(
                    f"scenario: demand_matrix must have shape {expected}, "
                    f"got {matrix.shape}"
                )
            if np.any(matrix < 0):
                raise SolverInputError("scenario: demand_matrix must be non-negative")
            matrix = matrix.copy()
            matrix.setflags(write=False)
            object.__setattr__(self, "demand_matrix", matrix)
        if self.think_time is not None and self.think_time < 0:
            raise SolverInputError(
                f"scenario: think_time must be non-negative, got {self.think_time}"
            )
        if self.classes is not None:
            classes = tuple(self.classes)
            if not classes:
                raise SolverInputError("scenario: classes must be non-empty when given")
            names = [c.name for c in classes]
            if len(set(names)) != len(names):
                raise SolverInputError(f"scenario: duplicate class names in {names}")
            if sum(c.population for c in classes) < 1:
                raise SolverInputError("scenario: total class population must be >= 1")
            object.__setattr__(self, "classes", classes)
        if self.rate_tables is not None:
            object.__setattr__(self, "rate_tables", self._validated_rate_tables())

    def _validated_rate_tables(self) -> Mapping[str, tuple[float, ...]] | None:
        """Canonicalize ``rate_tables`` into an immutable, validated form."""
        if self.is_multiclass:
            raise SolverInputError(
                "scenario: rate_tables do not combine with multi-class workloads"
            )
        if self.has_varying_demands:
            raise SolverInputError(
                "scenario: rate_tables require constant demands — freeze varying "
                "demands (fixed_demands) before attaching flow-equivalent stations"
            )
        tables: dict[str, tuple[float, ...]] = {}
        kinds = {st.name: st.kind for st in self.network.stations}
        for name, values in self.rate_tables.items():
            kind = kinds.get(name)
            if kind is None:
                raise SolverInputError(
                    f"scenario: rate table names unknown station {name!r}"
                )
            if kind != "queue":
                raise SolverInputError(
                    f"scenario: rate table for {name!r} targets a {kind} station; "
                    f"only queueing stations are load-dependent"
                )
            arr = np.asarray(values, dtype=float)
            if arr.ndim != 1 or arr.shape[0] != self.max_population:
                raise SolverInputError(
                    f"scenario: rate table for {name!r} must cover populations "
                    f"1..{self.max_population}, got shape {arr.shape}"
                )
            if np.any(np.isnan(arr)) or np.any(arr <= 0):
                raise SolverInputError(
                    f"scenario: rate table for {name!r} must be positive"
                )
            tables[name] = tuple(float(v) for v in arr)
        return tables or None

    # -- structure ----------------------------------------------------------

    @property
    def station_names(self) -> tuple[str, ...]:
        return self.network.station_names

    @property
    def is_multiclass(self) -> bool:
        return self.classes is not None

    @property
    def is_multiserver(self) -> bool:
        """Any queueing station with more than one server?"""
        return any(st.servers > 1 for st in self.network.stations if st.kind == "queue")

    @property
    def has_varying_demands(self) -> bool:
        """Does the demand model change with concurrency?"""
        if self.classes is not None:
            return any(c.has_varying_demands for c in self.classes)
        if self.demands is not None:
            return False
        if self.demand_functions is not None or self.demand_matrix is not None:
            return True
        return self.network.has_varying_demands

    @property
    def has_rate_tables(self) -> bool:
        """Any station carrying a tabulated load-dependent rate law?"""
        return bool(self.rate_tables)

    @property
    def think(self) -> float:
        """The effective think time ``Z`` of this scenario."""
        return self.network.think_time if self.think_time is None else float(self.think_time)

    # -- multi-class structure ----------------------------------------------

    @property
    def class_names(self) -> tuple[str, ...]:
        """Class labels in order (multi-class scenarios only)."""
        if self.classes is None:
            raise SolverInputError("scenario: not a multi-class scenario")
        return tuple(c.name for c in self.classes)

    @property
    def class_populations(self) -> tuple[int, ...]:
        """Per-class populations ``(N_1, ..., N_C)``."""
        if self.classes is None:
            raise SolverInputError("scenario: not a multi-class scenario")
        return tuple(int(c.population) for c in self.classes)

    @property
    def class_think_times(self) -> tuple[float, ...]:
        """Per-class think times ``(Z_1, ..., Z_C)``."""
        if self.classes is None:
            raise SolverInputError("scenario: not a multi-class scenario")
        return tuple(float(c.think_time) for c in self.classes)

    def class_structure(self) -> tuple[tuple[str, int, float], ...]:
        """The batching invariant: ``(name, population, think_time)`` per class.

        Multi-class scenarios are stackable into one batched kernel call
        exactly when they share this structure (and the topology /
        ``max_population``); demands are free to differ per scenario.
        """
        if self.classes is None:
            raise SolverInputError("scenario: not a multi-class scenario")
        return tuple(
            (c.name, int(c.population), float(c.think_time)) for c in self.classes
        )

    def resolved_network(self) -> ClosedNetwork:
        """The network with any think-time override applied."""
        if self.think_time is None:
            return self.network
        return self.network.with_think_time(float(self.think_time))

    # -- demand views -------------------------------------------------------

    def fixed_demands(self, solver: str = "scenario") -> np.ndarray:
        """The constant ``(K,)`` demand vector a fixed-demand solver sees.

        Varying demand models are frozen at ``demand_level`` (matrix
        scenarios at the nearest sampled level).  The returned array is
        read-only — derive variants through :meth:`with_overrides`.
        """
        if self.is_multiclass:
            raise SolverInputError(
                f"{solver}: multi-class scenarios have no single-class demand vector"
            )
        if self.demands is not None:
            return _readonly(np.asarray(self.demands, dtype=float))
        if self.demand_matrix is not None:
            row = min(max(int(round(self.demand_level)), 1), self.max_population) - 1
            return _readonly(np.asarray(self.demand_matrix[row], dtype=float))
        if self.demand_functions is not None:
            fns = resolve_demand_functions(self.network, self.demand_functions, solver=solver)
            return _readonly(np.array([float(f(self.demand_level)) for f in fns]))
        return _readonly(resolve_demands(self.network, None, self.demand_level, solver=solver))

    def demand_fns(self, solver: str = "scenario") -> list[DemandFn]:
        """Per-station demand curves ``n -> seconds`` in station order."""
        if self.is_multiclass:
            raise SolverInputError(
                f"{solver}: multi-class scenarios have no single-class demand curves"
            )
        if self.demands is not None:
            return [lambda _n, _v=float(v): _v for v in self.demands]
        if self.demand_matrix is not None:
            levels = np.arange(1, self.max_population + 1, dtype=float)
            return [
                lambda n, _lv=levels, _col=np.asarray(self.demand_matrix[:, i]): np.interp(
                    n, _lv, _col
                )
                for i in range(self.demand_matrix.shape[1])
            ]
        return resolve_demand_functions(self.network, self.demand_functions, solver=solver)

    def resolved_demand_matrix(self, solver: str = "scenario") -> np.ndarray:
        """The full ``(N, K)`` demand samples ``SS_k^n`` for ``n = 1..N``.

        The returned array is read-only; copy before mutating.
        """
        if self.demand_matrix is not None:
            return _readonly(np.asarray(self.demand_matrix))
        if self.demands is not None:
            return _readonly(
                np.tile(np.asarray(self.demands, dtype=float), (self.max_population, 1))
            )
        from ..core.mvasd import precompute_demand_matrix

        return _readonly(
            precompute_demand_matrix(self.demand_fns(solver), self.max_population)
        )

    def ld_rate_matrix(self, solver: str = "scenario") -> np.ndarray:
        """The dense ``(K, N)`` service-rate matrix ``mu_k(j)``.

        Rate-table stations use their tables; other queueing stations
        fall back to the multi-server law ``min(j, C_k) / D_k``; delay
        stations (and zero-demand queues) get ``+inf`` rows.  This is
        the representation the ld-MVA recursion and its batched kernel
        consume; read-only.
        """
        from ..core.ld_mva import build_rate_tables

        return _readonly(
            build_rate_tables(
                self.network,
                self.fixed_demands(solver),
                self.max_population,
                rate_tables=self.rate_tables,
                solver=solver,
            )
        )

    def multiclass_demand_matrix(self, solver: str = "scenario") -> np.ndarray:
        """The ``(K, C)`` class-demand matrix frozen at ``demand_level``.

        The representation the exact multi-class solvers (and their
        batched kernel) consume; read-only.
        """
        if self.classes is None:
            raise SolverInputError(f"{solver}: not a multi-class scenario")
        names = self.station_names
        return _readonly(
            np.stack(
                [c.demand_vector(names, self.demand_level) for c in self.classes],
                axis=1,
            )
        )

    def multiclass_demand_tensor(self, solver: str = "scenario") -> np.ndarray:
        """The ``(N, K, C)`` class-demand samples at totals ``1..N``.

        Per-class demand curves evaluated at every *total* population —
        exactly the values the scalar mix sweep
        (:func:`~repro.core.multiclass_amva.multiclass_mvasd`) observes,
        precomputed for the batched kernel; read-only.
        """
        if self.classes is None:
            raise SolverInputError(f"{solver}: not a multi-class scenario")
        names = self.station_names
        out = np.empty((self.max_population, len(names), len(self.classes)))
        for ci, cls in enumerate(self.classes):
            if cls.has_varying_demands:
                for level in range(1, self.max_population + 1):
                    out[level - 1, :, ci] = cls.demand_vector(names, float(level))
            else:
                out[:, :, ci] = cls.demand_vector(names, 1.0)[None, :]
        return _readonly(out)

    # -- identity -----------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable content hash of everything a solver can observe.

        Two scenarios with the same fingerprint produce the same result
        for any registered method: the hash covers topology (station
        names, kinds, server counts, visits), population, effective
        think time, the frozen ``demand_level``, and the demand model —
        the resolved ``(N, K)`` matrix *and* the frozen single-level
        vector for single-class scenarios, per-class digests for
        multi-class ones.  Float bytes are canonicalized (``-0.0`` →
        ``+0.0``, one NaN bit pattern) before hashing.  The network
        *name* is deliberately excluded: it never reaches a solver, so
        renamed copies share cache entries.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        h = hashlib.sha256()
        h.update(_FINGERPRINT_VERSION)
        for st in self.network.stations:
            h.update(st.name.encode("utf-8"))
            h.update(b"\x00")
            h.update(st.kind.encode("utf-8"))
            h.update(b"\x00")
            h.update(struct.pack("<q", int(st.servers)))
            _hash_floats(h, [st.visits])
        h.update(struct.pack("<q", self.max_population))
        _hash_floats(h, [self.think, self.demand_level])
        if self.is_multiclass:
            h.update(b"classes\x00")
            for c in self.classes:
                h.update(c.fingerprint(self.station_names, self.max_population).encode("ascii"))
        else:
            h.update(b"single-class\x00")
            _hash_floats(h, self.resolved_demand_matrix("fingerprint"))
            _hash_floats(h, self.fixed_demands("fingerprint"))
            if self.rate_tables:
                h.update(b"rate-tables\x00")
                for name in sorted(self.rate_tables):
                    h.update(name.encode("utf-8"))
                    h.update(b"\x00")
                    _hash_floats(h, self.rate_tables[name])
        digest = h.hexdigest()
        object.__setattr__(self, "_fingerprint", digest)
        return digest

    # -- derivation ---------------------------------------------------------

    def with_overrides(
        self,
        demand_scale: float | None = None,
        think_time: float | None = None,
        max_population: int | None = None,
    ) -> "Scenario":
        """A variant of this scenario with simple axis overrides.

        ``demand_scale`` multiplies the whole demand model (the
        resolved matrix for varying scenarios, the fixed vector
        otherwise) — the common what-if axis of the sweep grids.
        Rate tables scale by ``1 / demand_scale`` (service *rates* are
        inverse demands, so the whole model slows down together) and
        truncate with ``max_population``; like demand matrices, they
        cannot extend beyond their sampled range.

        Multi-class scenarios support ``demand_scale`` (every class's
        demands scale together) and ``max_population``; a ``think_time``
        override is rejected because think times live per class.
        """
        if self.is_multiclass:
            if think_time is not None:
                raise SolverInputError(
                    "scenario: think_time override does not apply to multi-class "
                    "scenarios — think times are per class (WorkloadClass.think_time)"
                )
            n = self.max_population if max_population is None else int(max_population)
            scale = 1.0 if demand_scale is None else float(demand_scale)
            if scale < 0:
                raise SolverInputError(
                    f"scenario: demand_scale must be non-negative, got {scale}"
                )
            if scale == 1.0 and n == self.max_population:
                return self
            classes = tuple(
                WorkloadClass(
                    name=c.name,
                    population=c.population,
                    demands={
                        st: _scale_class_demand(dm, scale)
                        for st, dm in c.demands.items()
                    }
                    if scale != 1.0
                    else c.demands,
                    think_time=c.think_time,
                )
                for c in self.classes
            )
            return Scenario(
                network=self.network,
                max_population=n,
                demand_level=self.demand_level,
                classes=classes,
            )
        n = self.max_population if max_population is None else int(max_population)
        think = self.think if think_time is None else float(think_time)
        if demand_scale is None:
            if self.has_varying_demands:
                return Scenario(
                    network=self.network,
                    max_population=n,
                    demand_matrix=self.resolved_demand_matrix()[:n]
                    if n <= self.max_population
                    else None,
                    demand_functions=None if n <= self.max_population else self.demand_functions,
                    demand_level=self.demand_level,
                    think_time=think,
                )
            return Scenario(
                network=self.network,
                max_population=n,
                demands=self.demands,
                demand_level=self.demand_level,
                think_time=think,
                rate_tables=self._derived_rate_tables(n, 1.0),
            )
        scale = float(demand_scale)
        if scale < 0:
            raise SolverInputError(f"scenario: demand_scale must be non-negative, got {scale}")
        if self.has_varying_demands:
            base = self.resolved_demand_matrix()
            if n > self.max_population:
                raise SolverInputError(
                    "scenario: cannot extend a demand matrix beyond its sampled range"
                )
            return Scenario(
                network=self.network,
                max_population=n,
                demand_matrix=base[:n] * scale,
                demand_level=self.demand_level,
                think_time=think,
            )
        return Scenario(
            network=self.network,
            max_population=n,
            demands=tuple(scale * v for v in self.fixed_demands()),
            demand_level=self.demand_level,
            think_time=think,
            rate_tables=self._derived_rate_tables(n, scale),
        )

    def _derived_rate_tables(
        self, max_population: int, scale: float
    ) -> Mapping[str, tuple[float, ...]] | None:
        """Rate tables for a derived scenario: truncated and rate-scaled."""
        if not self.rate_tables:
            return None
        if max_population > self.max_population:
            raise SolverInputError(
                "scenario: cannot extend a rate table beyond its sampled range"
            )
        if scale <= 0:
            raise SolverInputError(
                f"scenario: demand_scale must be positive for rate-table "
                f"scenarios, got {scale}"
            )
        return {
            name: tuple(v / scale for v in table[:max_population])
            for name, table in self.rate_tables.items()
        }
