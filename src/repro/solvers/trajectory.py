"""Incremental-solve trajectory store — the MVA-shaped cache tier.

Every MVA-family recursion builds population ``n`` strictly from levels
``< n``, so one solve at ``N = 280`` *contains* the answer to every
``N' <= 280`` what-if query, and a deeper query can resume the recursion
from the cached terminal state instead of restarting at 1
(``resume_from=`` in :mod:`repro.core`).  The plain
:class:`~repro.solvers.cache.SolverCache` cannot exploit either fact:
its keys include ``max_population``, so ``N = 120`` and ``N = 119`` of
the same scenario are unrelated entries.

This store adds the missing structure.  Entries are bucketed by a
*family* key — the fingerprint of the scenario truncated to one
customer, plus method and canonical options — so every population of
one scenario lands in one bucket holding the deepest trajectory seen so
far.  A query is then served one of two ways:

* **prefix** (``N' <= N``): verified by comparing the request
  fingerprint against the stored scenario truncated to ``N'`` (memoized
  per entry), then answered with a pure slice —
  :meth:`~repro.core.results.MVAResult.prefix` — that is bit-identical
  to a direct solve;
* **extend** (``N' > N``): verified by truncating the *request* to the
  stored depth, then answered by resuming the recursion from the cached
  state — again bit-identical, but costing only the ``N - N'`` missing
  levels.

Fingerprint verification makes bucket collisions harmless: two demand
curves that coincide at one customer but diverge later share a family
yet can never serve each other.  Only the level-separable solvers are
eligible (exact MVA, Schweitzer AMVA, MVASD on the population axis, and
load-dependent MVA — a flow-equivalent rate table *is* a trajectory, so
growing ``N`` on a composed scenario extends the table instead of
recomputing it); everything else falls through to a plain cache miss.  The store follows
the same non-fatal contract as the other cache tiers: any internal
failure counts an error and degrades to "no answer".
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Mapping

from ..core.results import MVAResult

__all__ = ["TrajectoryStore", "resumable_method"]

#: Methods whose recursion is level-separable and therefore resumable.
_RESUMABLE = {"exact-mva", "schweitzer-amva", "mvasd", "ld-mva"}

DEFAULT_MAX_FAMILIES = 64


def resumable_method(method: str, options: Mapping[str, Any]) -> bool:
    """Can this (method, options) request be served from a trajectory?

    MVASD's throughput axis seeds each level's fixed point with the
    previous level's float throughput, which a sliced prefix cannot
    reproduce for the level after the cut — so only the population axis
    qualifies.
    """
    if method not in _RESUMABLE:
        return False
    if method == "mvasd" and options.get("demand_axis", "population") != "population":
        return False
    return True


class _Family:
    """The deepest trajectory seen for one (scenario-family, method, options)."""

    __slots__ = ("scenario", "fingerprint", "result", "_prefix_fps")

    def __init__(self, scenario, fingerprint: str, result: MVAResult) -> None:
        self.scenario = scenario
        self.fingerprint = fingerprint
        self.result = result
        self._prefix_fps: dict[int, str] = {result.max_population: fingerprint}

    def prefix_fingerprint(self, n: int) -> str:
        """Fingerprint of the stored scenario truncated to ``n`` (memoized)."""
        fp = self._prefix_fps.get(n)
        if fp is None:
            fp = self.scenario.with_overrides(max_population=n).fingerprint()
            self._prefix_fps[n] = fp
        return fp


class TrajectoryStore:
    """Bounded per-family store of the deepest solved trajectories.

    Used by the facade around the regular cache lookup: consulted on a
    miss (:meth:`serve`), fed after a fresh solve or a persistent-tier
    hit (:meth:`offer`).  All methods are thread-safe and never raise.
    """

    def __init__(self, max_families: int = DEFAULT_MAX_FAMILIES) -> None:
        if max_families < 1:
            raise ValueError(f"max_families must be >= 1, got {max_families}")
        self.max_families = int(max_families)
        self._families: OrderedDict[tuple, _Family] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._extends = 0
        self._misses = 0
        self._errors = 0
        self._evictions = 0

    # -- keys -----------------------------------------------------------------

    @staticmethod
    def _family_key(scenario, method: str, options: Mapping[str, Any]):
        """Bucket key: one-customer fingerprint + method + options.

        Truncating to one customer erases ``max_population`` from the
        fingerprint while keeping topology, think time, class mix and
        the level-1 demand row — scenarios differing only in ``N`` (the
        what-if sweep case) collide on purpose; anything else that
        collides is sorted out by exact prefix-fingerprint checks.
        """
        from .cache import canonical_options  # deferred: cache imports us

        opts = canonical_options(options)
        if opts is None:
            return None
        base = scenario.with_overrides(max_population=1).fingerprint()
        return (method, opts, base)

    # -- the store API --------------------------------------------------------

    def serve(self, scenario, method: str, options: Mapping[str, Any]):
        """Answer a solve request from a stored trajectory, if possible.

        Returns ``("prefix", result)`` for a pure slice,
        ``("extend", result)`` after resuming the recursion to a deeper
        ``N`` (the caller should re-:meth:`offer` and persist it), or
        ``None``.  Never raises.
        """
        try:
            if not resumable_method(method, options):
                return None
            key = self._family_key(scenario, method, options)
            if key is None:
                return None
            with self._lock:
                family = self._families.get(key)
                if family is not None:
                    self._families.move_to_end(key)
            if family is None:
                with self._lock:
                    self._misses += 1
                return None

            n_req = scenario.max_population
            n_have = family.result.max_population
            if n_req <= n_have:
                if family.prefix_fingerprint(n_req) != scenario.fingerprint():
                    with self._lock:
                        self._misses += 1
                    return None
                with self._lock:
                    self._hits += 1
                return ("prefix", family.result.prefix(n_req))

            # Deeper than what we have: check the request *is* an
            # extension of the stored scenario, then resume.
            req_prefix_fp = scenario.with_overrides(
                max_population=n_have
            ).fingerprint()
            if req_prefix_fp != family.fingerprint:
                with self._lock:
                    self._misses += 1
                return None
            result = self._extend(scenario, method, options, family.result)
            with self._lock:
                self._extends += 1
            return ("extend", result)
        except Exception:
            with self._lock:
                self._errors += 1
            return None

    def offer(self, scenario, method: str, options: Mapping[str, Any], result) -> None:
        """Feed a freshly solved (or persistent-tier) result to the store.

        Keeps, per family, only the deepest trajectory: a shallower
        offer never displaces a deeper entry whose prefix it is (that
        would throw away paid-for levels), but a *conflicting* offer —
        same family bucket, different demands — replaces the entry, so
        a stale bucket cannot pin a mismatched trajectory forever.
        Never raises.
        """
        try:
            if not isinstance(result, MVAResult):
                return
            if not resumable_method(method, options):
                return
            n = result.max_population
            if (
                int(result.populations[0]) != 1
                or len(result.populations) != n
                or n != scenario.max_population
            ):
                return  # not a dense full trajectory for this scenario
            key = self._family_key(scenario, method, options)
            if key is None:
                return
            fp = scenario.fingerprint()
            with self._lock:
                family = self._families.get(key)
                if family is not None:
                    if n < family.result.max_population:
                        if family.prefix_fingerprint(n) == fp:
                            self._families.move_to_end(key)
                            return  # already covered by a deeper entry
                    elif n == family.result.max_population and family.fingerprint == fp:
                        self._families.move_to_end(key)
                        return  # identical entry
                self._families[key] = _Family(scenario, fp, result)
                self._families.move_to_end(key)
                while len(self._families) > self.max_families:
                    self._families.popitem(last=False)
                    self._evictions += 1
        except Exception:
            with self._lock:
                self._errors += 1

    def _extend(self, scenario, method: str, options: Mapping[str, Any], prev):
        """Resume the recursion from ``prev`` up to the scenario's ``N``.

        Mirrors the builtin solver adapters, adding ``resume_from=``.
        """
        from ..core.amva import schweitzer_amva
        from ..core.ld_mva import exact_load_dependent_mva
        from ..core.mva import exact_mva
        from ..core.mvasd import mvasd

        net = scenario.resolved_network()
        n = scenario.max_population
        if method == "ld-mva":
            return exact_load_dependent_mva(
                net,
                n,
                demands=scenario.fixed_demands("ld-mva"),
                rates=options.get("rates"),
                rate_tables=scenario.rate_tables,
                resume_from=prev,
            )
        if method == "exact-mva":
            return exact_mva(
                net, n, demands=scenario.fixed_demands("exact-mva"), resume_from=prev
            )
        if method == "schweitzer-amva":
            return schweitzer_amva(
                net,
                n,
                demands=scenario.fixed_demands("schweitzer-amva"),
                resume_from=prev,
            )
        if method == "mvasd":
            return mvasd(
                net,
                n,
                demand_functions=scenario.demand_fns("mvasd"),
                single_server=options.get("single_server", False),
                demand_axis="population",
                resume_from=prev,
            )
        raise ValueError(f"not a resumable method: {method!r}")

    # -- maintenance ----------------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._families.clear()
            self._hits = self._extends = self._misses = 0
            self._errors = self._evictions = 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self._hits,
                "extends": self._extends,
                "misses": self._misses,
                "errors": self._errors,
                "evictions": self._evictions,
                "families": len(self._families),
                "max_families": self.max_families,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._families)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"TrajectoryStore(families={s['families']}/{s['max_families']}, "
            f"hits={s['hits']}, extends={s['extends']})"
        )
