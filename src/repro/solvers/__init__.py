"""Unified solver registry and ``solve()`` facade.

This package is the one place the repo decides *which* MVA-family
algorithm runs a performance model:

* :mod:`~repro.solvers.validation` — shared input checks (leaf module;
  also used by the core solvers themselves);
* :mod:`~repro.solvers.scenario` — the frozen, validated
  :class:`Scenario` every solver consumes;
* :mod:`~repro.solvers.registry` — decorator-based plugin registry of
  :class:`SolverSpec` entries with capability flags;
* :mod:`~repro.solvers.facade` — :func:`solve` / :func:`solve_stack`
  with capability-ranked auto-selection and batched-kernel routing;
* :mod:`~repro.solvers.builtin` — registrations of the built-in family
  (exact MVA, multi-server MVA, MVASD, AMVA variants, convolution,
  bounds, interval and multi-class solvers).

Typical use::

    from repro.solvers import Scenario, solve

    result = solve(Scenario(network, max_population=200))   # method="auto"
    result = solve(Scenario(network, 200), method="mvasd")
    batch = solve([scenario_a, scenario_b], backend="batched")
"""

from .validation import (  # noqa: F401  (re-exports)
    SolverInputError,
    resolve_demand_functions,
    resolve_demands,
    validate_population,
)
from .scenario import Scenario, WorkloadClass  # noqa: F401
from .cache import (  # noqa: F401
    DEFAULT_MAXSIZE,
    USE_DEFAULT_CACHE,
    CacheStats,
    SolverCache,
    cache_stats,
    default_cache,
    resolve_cache,
    set_default_cache,
)
from .persistent import (  # noqa: F401
    PersistentCache,
    PersistentStats,
    persistent_key,
)
from .trajectory import TrajectoryStore, resumable_method  # noqa: F401
from .registry import (  # noqa: F401
    CAPABILITY_FLAGS,
    DuplicateSolverError,
    SolverSpec,
    UnknownSolverError,
    capability_matrix,
    get_solver,
    list_solvers,
    register_solver,
    solver_names,
    unregister_solver,
)
from .facade import (  # noqa: F401
    EXACT_POPULATION_LIMIT,
    SolverCapabilityError,
    auto_method,
    solve,
    solve_stack,
)
from .fes import FESStation, aggregate, compose  # noqa: F401
from ..engine.batched import ScenarioFailure  # noqa: F401  (failure records)
from . import builtin  # noqa: F401  (registers the built-in solvers)

__all__ = [
    "CAPABILITY_FLAGS",
    "CacheStats",
    "DEFAULT_MAXSIZE",
    "DuplicateSolverError",
    "EXACT_POPULATION_LIMIT",
    "FESStation",
    "PersistentCache",
    "PersistentStats",
    "Scenario",
    "ScenarioFailure",
    "SolverCache",
    "SolverCapabilityError",
    "SolverInputError",
    "SolverSpec",
    "TrajectoryStore",
    "USE_DEFAULT_CACHE",
    "UnknownSolverError",
    "WorkloadClass",
    "aggregate",
    "auto_method",
    "cache_stats",
    "capability_matrix",
    "compose",
    "default_cache",
    "get_solver",
    "list_solvers",
    "register_solver",
    "resolve_cache",
    "resolve_demand_functions",
    "persistent_key",
    "resolve_demands",
    "resumable_method",
    "set_default_cache",
    "solve",
    "solve_stack",
    "solver_names",
    "unregister_solver",
    "validate_population",
]
