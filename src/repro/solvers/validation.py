"""Shared input validation for every solver in the registry.

Before this layer existed each solver module carried its own copy of the
demand-resolution logic (``_resolve_demands`` in :mod:`repro.core.mva`,
``_resolve_demand_functions`` in :mod:`repro.core.mvasd`, the stack
validators in :mod:`repro.engine.batched`).  The facade validates once,
here, and every error message names the solver that rejected the input —
``"mvasd: expected 4 demands, got shape (3,)"`` instead of an anonymous
traceback out of a NumPy helper.

The functions duck-type the network argument (``len``, ``stations``,
``station_names``, ``demands_at``) so this module stays a leaf: it
imports nothing from :mod:`repro.core` and can therefore be used *by*
the core solver modules without an import cycle.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

__all__ = [
    "SolverInputError",
    "check_finite_demands",
    "resolve_demands",
    "resolve_demand_functions",
    "validate_population",
]

DemandFn = Callable[[float], float]


class SolverInputError(ValueError):
    """A solver rejected its inputs (subclass of :class:`ValueError`)."""


def validate_population(max_population: int, *, solver: str = "solver") -> int:
    """Check and normalize a ``max_population`` argument."""
    n = int(max_population)
    if n != max_population or n < 1:
        raise SolverInputError(
            f"{solver}: max_population must be a positive integer, "
            f"got {max_population!r}"
        )
    return n


def resolve_demands(
    network,
    demands: Sequence[float] | None,
    level: float = 1.0,
    *,
    solver: str = "solver",
) -> np.ndarray:
    """Fixed demand vector for a constant-demand solve.

    ``demands`` overrides the network's demands; otherwise varying
    demands are frozen at population ``level`` — the paper's ``MVA i``
    construction (service demands measured at concurrency ``i`` fed to a
    constant-demand solver).  Errors name the requesting ``solver``.
    """
    if demands is not None:
        arr = np.asarray(demands, dtype=float)
        if arr.shape != (len(network),):
            raise SolverInputError(
                f"{solver}: expected {len(network)} demands, got shape {arr.shape}"
            )
        return check_finite_demands(arr, solver=solver)
    return check_finite_demands(np.asarray(network.demands_at(level), dtype=float),
                                solver=solver, context=f"at level {level:g}")


def check_finite_demands(
    arr: np.ndarray, *, solver: str = "solver", context: str = ""
) -> np.ndarray:
    """Reject NaN/Inf and negative demand values with a solver-named error.

    The non-finite check must come first: NaN compares ``False`` against
    ``0``, so a bare ``demands < 0`` guard silently admits NaN demands
    and every downstream queue length, utilization and throughput turns
    NaN instead of failing loudly at the boundary.
    """
    suffix = f" {context}" if context else ""
    if not np.isfinite(arr).all():
        bad = np.asarray(arr)[~np.isfinite(arr)][:4].tolist()
        raise SolverInputError(
            f"{solver}: demands must be finite{suffix}, got {bad}"
        )
    if np.any(arr < 0):
        raise SolverInputError(f"{solver}: demands must be non-negative{suffix}")
    return arr


def resolve_demand_functions(
    network,
    demand_functions: Mapping[str, DemandFn] | Sequence[DemandFn] | None,
    *,
    solver: str = "solver",
) -> list[DemandFn]:
    """One demand callable per station, in station order.

    ``None`` falls back to the network's own demands (callables pass
    through, constants become constant functions); a mapping is keyed by
    station name and must cover every station; a sequence must match the
    station count.
    """
    if demand_functions is None:
        fns: list[DemandFn] = []
        for st in network.stations:
            if callable(st.demand):
                fns.append(st.demand)
            else:
                value = float(st.demand)
                fns.append(lambda _n, _v=value: _v)
        return fns
    if isinstance(demand_functions, Mapping):
        missing = set(network.station_names) - set(demand_functions)
        if missing:
            raise SolverInputError(
                f"{solver}: missing demand functions for stations: {sorted(missing)}"
            )
        return [demand_functions[name] for name in network.station_names]
    fns = list(demand_functions)
    if len(fns) != len(network):
        raise SolverInputError(
            f"{solver}: expected {len(network)} demand functions, got {len(fns)}"
        )
    return fns
