"""Decorator-based solver registry with capability flags.

Solver choice is a *policy over a common network description*, not a
call-site decision: every MVA-family algorithm registers here under a
stable name with a :class:`SolverSpec` describing what it can model —
multi-server stations, concurrency-varying demands, multiple customer
classes — whether it is exact for the product-form model, which batched
engine kernel (if any) evaluates it over scenario stacks, and a relative
cost rank the auto-selector uses to pick the cheapest capable method.

Registering a new solver is one decorator::

    from repro.solvers import register_solver

    @register_solver(
        "my-solver",
        summary="one-line description",
        multiserver=True,
        varying_demands=False,
        exact=False,
        cost=22,
    )
    def _solve_my_solver(scenario, **options):
        return my_solver(scenario.resolved_network(), scenario.max_population, ...)

The adapter receives a validated :class:`~repro.solvers.scenario.Scenario`
and returns the solver's native result — a canonical
:class:`~repro.core.results.MVAResult` for trajectory solvers (declared
via ``returns="trajectory"``), a bounds envelope, a prediction band, or
a multi-class container.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "DuplicateSolverError",
    "SolverSpec",
    "UnknownSolverError",
    "capability_matrix",
    "get_solver",
    "list_solvers",
    "register_solver",
    "solver_names",
    "unregister_solver",
]

#: Capability columns in display order (matches the DESIGN.md matrix).
CAPABILITY_FLAGS = (
    "multiserver",
    "varying_demands",
    "multiclass",
    "load_dependent",
    "exact",
)


class DuplicateSolverError(ValueError):
    """A solver name was registered twice."""


class UnknownSolverError(KeyError):
    """Lookup of a name no solver registered under."""


@dataclass(frozen=True)
class SolverSpec:
    """Registry entry: an adapter plus the capabilities it advertises.

    Attributes
    ----------
    name:
        Stable registry key (also the CLI ``--method`` choice).
    solve:
        Adapter ``(scenario, **options) -> result``.
    summary:
        One-line description for listings.
    multiserver:
        Models multi-server (``C_k > 1``) queueing stations faithfully.
    varying_demands:
        Tracks concurrency-varying demands along the sweep (solvers
        without this flag freeze them at ``scenario.demand_level``).
    multiclass:
        Consumes the scenario's :class:`~repro.solvers.scenario.WorkloadClass`
        structure.
    load_dependent:
        Consumes tabulated service-rate laws (``Scenario.rate_tables``)
        — the flow-equivalent stations hierarchical composition
        produces.  Solvers without this flag only read
        ``fixed_demands`` and would silently mis-model a rate-table
        station, so the facade rejects the pairing.
    exact:
        Exact for the (single-class, product-form) model it solves.
    batched_kernel:
        Name of the :mod:`repro.engine.batched` kernel that evaluates
        stacked scenarios for this method, or ``None``.
    cost:
        Relative cost rank; the auto-selector prefers lower ranks among
        capable solvers.
    returns:
        ``"trajectory"`` (canonical :class:`MVAResult`), ``"bounds"``,
        ``"band"`` or ``"multiclass"``.
    legacy:
        Dotted path of the thin public wrapper this spec adapts, for
        documentation and the parity suite.
    """

    name: str
    solve: Callable[..., Any]
    summary: str
    multiserver: bool = False
    varying_demands: bool = False
    multiclass: bool = False
    load_dependent: bool = False
    exact: bool = False
    batched_kernel: str | None = None
    cost: int = 50
    returns: str = "trajectory"
    legacy: str | None = None

    def __post_init__(self) -> None:
        if not self.name or any(ch.isspace() for ch in self.name):
            raise ValueError(f"solver name must be non-empty without spaces, got {self.name!r}")
        if self.returns not in ("trajectory", "bounds", "band", "multiclass"):
            raise ValueError(f"unknown returns kind {self.returns!r}")

    def capabilities(self) -> dict[str, bool]:
        """The capability flags as an ordered mapping."""
        return {flag: getattr(self, flag) for flag in CAPABILITY_FLAGS}

    def describe(self) -> str:
        """Compact one-line rendering, e.g. ``mvasd [multiserver,varying]``."""
        flags = [flag for flag, on in self.capabilities().items() if on]
        if self.batched_kernel:
            flags.append("batched")
        return f"{self.name} [{','.join(flags) or 'single-server'}] — {self.summary}"


_REGISTRY: dict[str, SolverSpec] = {}


def register_solver(
    name: str,
    *,
    summary: str,
    multiserver: bool = False,
    varying_demands: bool = False,
    multiclass: bool = False,
    load_dependent: bool = False,
    exact: bool = False,
    batched_kernel: str | None = None,
    cost: int = 50,
    returns: str = "trajectory",
    legacy: str | None = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Class-method decorator registering ``fn`` as solver ``name``.

    Duplicate names are rejected (:class:`DuplicateSolverError`) so two
    plugins cannot silently shadow each other; use
    :func:`unregister_solver` first to replace an entry deliberately.
    """

    def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
        if name in _REGISTRY:
            raise DuplicateSolverError(
                f"solver {name!r} is already registered "
                f"(by {_REGISTRY[name].solve.__module__})"
            )
        _REGISTRY[name] = SolverSpec(
            name=name,
            solve=fn,
            summary=summary,
            multiserver=multiserver,
            varying_demands=varying_demands,
            multiclass=multiclass,
            load_dependent=load_dependent,
            exact=exact,
            batched_kernel=batched_kernel,
            cost=cost,
            returns=returns,
            legacy=legacy,
        )
        return fn

    return decorator


def unregister_solver(name: str) -> SolverSpec:
    """Remove and return a registered spec (for tests and plugins)."""
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise UnknownSolverError(
            f"unknown solver {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def get_solver(name: str) -> SolverSpec:
    """Look a solver up by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownSolverError(
            f"unknown solver {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def solver_names() -> tuple[str, ...]:
    """All registered names, sorted."""
    return tuple(sorted(_REGISTRY))


def list_solvers() -> tuple[SolverSpec, ...]:
    """All registered specs, cheapest first (then by name)."""
    return tuple(sorted(_REGISTRY.values(), key=lambda s: (s.cost, s.name)))


def capability_matrix() -> str:
    """ASCII capability table of every registered solver (CLI listing)."""
    headers = ("Solver", *(flag.replace("_", " ") for flag in CAPABILITY_FLAGS),
               "batched kernel", "returns", "Summary")
    rows = []
    for spec in list_solvers():
        rows.append(
            (
                spec.name,
                *("yes" if on else "-" for on in spec.capabilities().values()),
                spec.batched_kernel or "-",
                spec.returns,
                spec.summary,
            )
        )
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    def fmt(row):
        return "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
    lines = [fmt(headers), fmt(tuple("-" * w for w in widths))]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
