"""The single entry point: ``solve(scenario, method="auto", backend="auto")``.

The facade turns solver choice into a policy:

* **validation** happens once, in :class:`~repro.solvers.scenario.Scenario`
  — no per-solver re-checking of demand vectors and population counts;
* **auto-selection** walks the paper's Algorithm 1 → 2 → 3 hierarchy:
  exact single-server MVA for constant-demand single-server networks,
  the exact multi-server solver when stations have cores, MVASD when
  demands vary with concurrency — falling back to the approximate
  (Schweitzer / Seidmann) family only when the population is too large
  for the exact recursions to be worth it;
* **backend routing** sends stacks of scenarios through the batched
  :mod:`repro.engine` kernels when the selected method has one, and
  transparently falls back to a scalar loop (stacked into the same
  :class:`~repro.engine.batched.BatchedMVAResult` container) when it
  does not.

``solve`` accepts a single :class:`Scenario` (returns the solver's
native result — a canonical :class:`~repro.core.results.MVAResult` for
trajectory methods) or a sequence of scenarios (delegates to
:func:`solve_stack`, returns a :class:`BatchedMVAResult`).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..engine.batched import (
    BatchedMVAResult,
    batched_exact_mva,
    batched_mvasd,
    batched_schweitzer_amva,
)
from .registry import SolverSpec, get_solver
from .scenario import Scenario
from .validation import SolverInputError

__all__ = [
    "SolverCapabilityError",
    "auto_method",
    "solve",
    "solve_stack",
]

#: Above this population the auto-selector trades the exact recursions
#: for the approximate family (the "AMVA fallback" of the hierarchy).
EXACT_POPULATION_LIMIT = 50_000

#: Largest population lattice ``prod_c (N_c + 1)`` the exact multi-class
#: recursion is attempted on before falling back to the Bard-Schweitzer
#: mix sweep.
EXACT_MULTICLASS_LATTICE_LIMIT = 250_000


class SolverCapabilityError(SolverInputError):
    """The scenario needs a capability the chosen solver does not have."""


def auto_method(
    scenario: Scenario,
    exact_limit: int = EXACT_POPULATION_LIMIT,
) -> str:
    """Cheapest capable registry method for ``scenario``.

    Mirrors the paper's algorithm hierarchy: exact MVA (Algorithm 1)
    for constant-demand single-server networks, the exact multi-server
    recursion (Algorithm 2) once stations have cores, MVASD
    (Algorithm 3) as soon as demands vary with concurrency.  Past
    ``exact_limit`` customers the constant-demand paths fall back to the
    approximate family.
    """
    if scenario.is_multiclass:
        if scenario.has_varying_demands:
            return "multiclass-mvasd"
        lattice = 1
        for cls in scenario.classes:
            lattice *= cls.population + 1
        if lattice <= EXACT_MULTICLASS_LATTICE_LIMIT:
            return "exact-multiclass"
        return "multiclass-mvasd"
    if scenario.has_varying_demands:
        return "mvasd"
    if scenario.is_multiserver:
        if scenario.max_population <= exact_limit:
            return "exact-multiserver-mva"
        return "approx-multiserver-mva"
    if scenario.max_population <= exact_limit:
        return "exact-mva"
    return "schweitzer-amva"


def _resolve_spec(scenario: Scenario, method: str) -> SolverSpec:
    spec = get_solver(auto_method(scenario) if method == "auto" else method)
    if scenario.is_multiclass and not spec.multiclass:
        raise SolverCapabilityError(
            f"{spec.name}: scenario has customer classes but the solver is "
            f"single-class; use a multiclass-capable method "
            f"(or method='auto')"
        )
    if spec.multiclass and not scenario.is_multiclass:
        raise SolverCapabilityError(
            f"{spec.name}: multi-class solver needs a scenario with classes"
        )
    return spec


def solve(
    scenario: Scenario | Sequence[Scenario],
    method: str = "auto",
    backend: str = "auto",
    **options: Any,
):
    """Solve one scenario (or a stack) with a registered method.

    Parameters
    ----------
    scenario:
        A validated :class:`Scenario`, or a sequence of them (routed to
        :func:`solve_stack`).
    method:
        Registry name, or ``"auto"`` for the capability-based selection
        of :func:`auto_method`.
    backend:
        ``"auto"`` (scalar for one scenario, batched for stacks when the
        method has a kernel), ``"scalar"``, or ``"batched"`` (force the
        engine kernel; errors if the method has none).
    **options:
        Forwarded to the solver adapter (e.g. ``single_server=True`` or
        ``demand_axis="throughput"`` for ``mvasd``,
        ``station_detail=False`` for the convolution-backed solvers,
        ``demand_intervals=...`` for ``interval-mva``).
    """
    if not isinstance(scenario, Scenario):
        return solve_stack(scenario, method=method, backend=backend, **options)
    if backend not in ("auto", "scalar", "batched"):
        raise SolverInputError(
            f"backend must be 'auto', 'scalar' or 'batched', got {backend!r}"
        )
    spec = _resolve_spec(scenario, method)
    if backend == "batched":
        stacked = solve_stack([scenario], method=spec.name, backend="batched", **options)
        return stacked.scenario(0)
    return spec.solve(scenario, **options)


def _check_stackable(scenarios: Sequence[Scenario]) -> None:
    first = scenarios[0]
    topo = (
        first.network.station_names,
        tuple(st.kind for st in first.network.stations),
        tuple(st.servers for st in first.network.stations),
    )
    for sc in scenarios[1:]:
        other = (
            sc.network.station_names,
            tuple(st.kind for st in sc.network.stations),
            tuple(st.servers for st in sc.network.stations),
        )
        if other != topo:
            raise SolverInputError(
                "solve_stack: scenarios must share the station topology "
                "(names, kinds, server counts)"
            )
        if sc.max_population != first.max_population:
            raise SolverInputError(
                "solve_stack: scenarios must share max_population "
                f"({sc.max_population} != {first.max_population})"
            )
        if sc.is_multiclass:
            raise SolverInputError("solve_stack: multi-class scenarios are not stackable")
    if first.is_multiclass:
        raise SolverInputError("solve_stack: multi-class scenarios are not stackable")


def _auto_stack_method(scenarios: Sequence[Scenario]) -> str:
    if any(sc.has_varying_demands for sc in scenarios):
        return "mvasd"
    if any(sc.is_multiserver for sc in scenarios):
        # The only multi-server-faithful batched kernel is MVASD's
        # (constant demands are just a flat demand matrix).
        return "mvasd"
    return "exact-mva"


def _run_batched_kernel(
    spec: SolverSpec, scenarios: Sequence[Scenario], **options: Any
) -> BatchedMVAResult:
    network = scenarios[0].resolved_network()
    n = scenarios[0].max_population
    think = np.array([sc.think for sc in scenarios])
    kernel = spec.batched_kernel
    if kernel == "exact-mva":
        stack = np.stack([sc.fixed_demands(spec.name) for sc in scenarios])
        return batched_exact_mva(network, n, stack, think_times=think)
    if kernel == "schweitzer-amva":
        stack = np.stack([sc.fixed_demands(spec.name) for sc in scenarios])
        return batched_schweitzer_amva(network, n, stack, think_times=think)
    if kernel == "mvasd":
        matrices = np.stack([sc.resolved_demand_matrix(spec.name) for sc in scenarios])
        return batched_mvasd(
            network,
            n,
            matrices,
            single_server=bool(options.get("single_server", False)),
            think_times=think,
        )
    raise SolverInputError(
        f"{spec.name}: unknown batched kernel {kernel!r}"
    )  # pragma: no cover - registration error


def _stack_scalar_results(
    spec: SolverSpec, scenarios: Sequence[Scenario], **options: Any
) -> BatchedMVAResult:
    results = [spec.solve(sc, **options) for sc in scenarios]
    demands = [r.demands_used for r in results]
    return BatchedMVAResult(
        populations=results[0].populations,
        throughput=np.stack([r.throughput for r in results]),
        response_time=np.stack([r.response_time for r in results]),
        queue_lengths=np.stack([r.queue_lengths for r in results]),
        residence_times=np.stack([r.residence_times for r in results]),
        utilizations=np.stack([r.utilizations for r in results]),
        station_names=results[0].station_names,
        think_times=np.array([r.think_time for r in results]),
        solver=f"stacked-{spec.name}",
        demands_used=None if any(d is None for d in demands) else np.stack(demands),
    )


def solve_stack(
    scenarios: Sequence[Scenario],
    method: str = "auto",
    backend: str = "auto",
    **options: Any,
) -> BatchedMVAResult:
    """Solve a stack of topology-sharing scenarios in one shot.

    With ``backend="auto"`` the stack goes through the method's
    :mod:`repro.engine` kernel when it has one (one batched recursion
    for all scenarios); methods without a kernel are solved scenario by
    scenario and stacked into the same result container, so callers
    never branch on the backend.  ``backend="batched"`` insists on a
    kernel; ``backend="scalar"`` forces the per-scenario loop.
    """
    scenarios = list(scenarios)
    if not scenarios:
        raise SolverInputError("solve_stack: need at least one scenario")
    for sc in scenarios:
        if not isinstance(sc, Scenario):
            raise SolverInputError(
                f"solve_stack: expected Scenario instances, got {type(sc).__name__}"
            )
    _check_stackable(scenarios)
    if backend not in ("auto", "scalar", "batched"):
        raise SolverInputError(
            f"backend must be 'auto', 'scalar' or 'batched', got {backend!r}"
        )
    name = _auto_stack_method(scenarios) if method == "auto" else method
    spec = get_solver(name)
    if spec.returns != "trajectory":
        raise SolverCapabilityError(
            f"{spec.name}: only trajectory solvers can be stacked"
        )
    if backend == "batched" and spec.batched_kernel is None:
        raise SolverCapabilityError(
            f"{spec.name}: no batched kernel registered for this method"
        )
    if backend != "scalar" and spec.batched_kernel is not None:
        return _run_batched_kernel(spec, scenarios, **options)
    return _stack_scalar_results(spec, scenarios, **options)
