"""The single entry point: ``solve(scenario, method="auto", backend="auto")``.

The facade turns solver choice into a policy:

* **validation** happens once, in :class:`~repro.solvers.scenario.Scenario`
  — no per-solver re-checking of demand vectors and population counts;
* **auto-selection** walks the paper's Algorithm 1 → 2 → 3 hierarchy:
  exact single-server MVA for constant-demand single-server networks,
  the exact multi-server solver when stations have cores, MVASD when
  demands vary with concurrency — falling back to the approximate
  (Schweitzer / Seidmann) family only when the population is too large
  for the exact recursions to be worth it;
* **caching** memoizes results in a :class:`~repro.solvers.cache.SolverCache`
  keyed on content-addressed request identity
  (:meth:`Scenario.fingerprint` + method + backend + canonicalized
  options).  ``cache=`` defaults to the process-global cache; pass
  ``None`` to bypass or a private :class:`SolverCache` to isolate;
* **backend routing** hands stacks to a pluggable
  :mod:`repro.engine.backends` execution backend: ``batched`` engine
  kernels when the method has one, a ``serial`` per-scenario loop when
  it does not, and a ``process-sharded`` fan-out (contiguous sub-stacks
  over :func:`~repro.engine.sweep.parallel_map` workers) that ``auto``
  picks for large stacks.  Callers never branch on the backend — every
  path returns the same :class:`~repro.engine.batched.BatchedMVAResult`,
  stamped with the backend that produced it.

``solve`` accepts a single :class:`Scenario` (returns the solver's
native result — a canonical :class:`~repro.core.results.MVAResult` for
trajectory methods) or a sequence of scenarios (delegates to
:func:`solve_stack`, returns a :class:`BatchedMVAResult`).
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import Any, Mapping, Sequence

from ..core.mom import mom_state_count
from ..engine.backends import get_backend
from ..engine.batched import BatchedMVAResult
from ..engine.sweep import resolve_workers
from .cache import USE_DEFAULT_CACHE, canonical_options, resolve_cache
from .registry import SolverSpec, get_solver, list_solvers
from .scenario import Scenario
from .validation import SolverInputError

__all__ = [
    "SolverCapabilityError",
    "auto_method",
    "solve",
    "solve_stack",
]

#: Above this population the auto-selector trades the exact recursions
#: for the approximate family (the "AMVA fallback" of the hierarchy).
EXACT_POPULATION_LIMIT = 50_000

#: Largest population lattice ``prod_c (N_c + 1)`` the exact multi-class
#: recursion is attempted on before falling back to the Method of
#: Moments (still exact, polynomial in total population) or — when even
#: MoM is infeasible — the Bard-Schweitzer mix sweep.
EXACT_MULTICLASS_LATTICE_LIMIT = 250_000

#: Largest Method-of-Moments state count ``binom(N + K_q, K_q)`` (see
#: :func:`repro.core.mom.mom_state_count`) auto-selection considers
#: feasible when the exact lattice is not.
MOM_STATE_LIMIT = 1_000_000

#: Stacks at least this large are process-sharded by ``backend="auto"``
#: (when more than one worker is available).  Below it the fork +
#: pickle-back overhead beats the per-scenario savings.
AUTO_SHARD_THRESHOLD = 1024

_STACK_BACKENDS = (
    "auto",
    "scalar",
    "serial",
    "batched",
    "process-sharded",
    "resilient",
    "remote",
)


class SolverCapabilityError(SolverInputError):
    """The scenario needs a capability the chosen solver does not have."""


def auto_method(
    scenario: Scenario,
    exact_limit: int = EXACT_POPULATION_LIMIT,
) -> str:
    """Cheapest capable registry method for ``scenario``.

    Mirrors the paper's algorithm hierarchy: exact MVA (Algorithm 1)
    for constant-demand single-server networks, the exact multi-server
    recursion (Algorithm 2) once stations have cores, MVASD
    (Algorithm 3) as soon as demands vary with concurrency.  Past
    ``exact_limit`` customers the constant-demand paths fall back to the
    approximate family.
    """
    if scenario.is_multiclass:
        if scenario.has_varying_demands:
            return "multiclass-mvasd"
        lattice = 1
        for cls in scenario.classes:
            lattice *= cls.population + 1
        if lattice <= EXACT_MULTICLASS_LATTICE_LIMIT:
            return "exact-multiclass"
        total = sum(cls.population for cls in scenario.classes)
        n_queue = sum(1 for st in scenario.network.stations if st.kind == "queue")
        if mom_state_count(total, n_queue) <= MOM_STATE_LIMIT:
            # Lattice blew up but the moment recursion stays polynomial:
            # keep exactness via Casale's Method of Moments.
            return "method-of-moments"
        return "multiclass-mvasd"
    if scenario.has_rate_tables:
        # Tabulated service-rate laws (flow-equivalent stations from
        # hierarchical composition) need the load-dependent recursion;
        # it is exact, so population never demotes this path.
        return "ld-mva"
    if scenario.has_varying_demands:
        return "mvasd"
    if scenario.is_multiserver:
        if scenario.max_population <= exact_limit:
            return "exact-multiserver-mva"
        return "approx-multiserver-mva"
    if scenario.max_population <= exact_limit:
        return "exact-mva"
    return "schweitzer-amva"


def _resolve_spec(
    scenario: Scenario, method: str, options: Mapping[str, Any] | None = None
) -> SolverSpec:
    spec = get_solver(auto_method(scenario) if method == "auto" else method)
    if scenario.is_multiclass and not spec.multiclass:
        raise SolverCapabilityError(
            f"{spec.name}: scenario has customer classes but the solver is "
            f"single-class; use a multiclass-capable method "
            f"(or method='auto')"
        )
    if spec.multiclass and not scenario.is_multiclass:
        raise SolverCapabilityError(
            f"{spec.name}: multi-class solver needs a scenario with classes"
        )
    _check_single_class_capabilities(spec, scenario, options or {})
    return spec


def _check_single_class_capabilities(
    spec: SolverSpec, scenario: Scenario, options: Mapping[str, Any]
) -> None:
    """Reject scenario/solver pairings a fixed-demand path would mis-model.

    Two silent-wrong-answer traps guarded here: a rate-table scenario
    (flow-equivalent stations) handed to a solver that only reads
    ``fixed_demands`` would ignore the tabulated law entirely, and a
    multi-server scenario handed to a single-server solver would quietly
    model ``servers>1`` stations as single servers.  The deliberate
    single-server baseline of the paper stays available through
    ``single_server=True``.
    """
    if scenario.is_multiclass:
        return  # the multi-class family has its own Seidmann guard
    if scenario.has_rate_tables and not spec.load_dependent:
        nearest = _nearest_load_dependent_method()
        hint = f"; nearest load-dependent method: {nearest!r}" if nearest else ""
        raise SolverCapabilityError(
            f"{spec.name}: scenario carries load-dependent rate tables "
            f"(flow-equivalent stations) but this solver only reads fixed "
            f"demands and would ignore them{hint} (or use method='auto')"
        )
    if (
        scenario.is_multiserver
        and not spec.multiserver
        and not options.get("single_server", False)
    ):
        raise SolverCapabilityError(
            f"{spec.name}: scenario has multi-server stations (servers>1) "
            f"but this solver reads only single-server fixed demands and "
            f"would silently model them as single servers; use "
            f"{auto_method(scenario)!r} (method='auto' picks it), or pass "
            f"single_server=True for the deliberate single-server baseline"
        )


def _nearest_load_dependent_method() -> str | None:
    """Cheapest registered solver that consumes rate tables, if any."""
    candidates = [s for s in list_solvers() if s.load_dependent]
    if not candidates:
        return None
    return min(candidates, key=lambda s: (s.cost, s.name)).name


def _nearest_batched_method(spec: SolverSpec) -> str | None:
    """The registered method with a kernel closest to ``spec``'s profile.

    Scores capability agreement (multi-server fidelity weighs most, then
    varying demands, then class structure / exactness), breaking ties by
    cost — so ``linearizer`` points at ``schweitzer-amva`` and
    ``exact-multiserver-mva`` at ``mvasd``.
    """
    candidates = [s for s in list_solvers() if s.batched_kernel and s.name != spec.name]
    if not candidates:
        return None

    def score(cand: SolverSpec) -> tuple:
        return (
            4 * (cand.multiserver == spec.multiserver)
            + 2 * (cand.varying_demands == spec.varying_demands)
            + (cand.multiclass == spec.multiclass)
            + (cand.exact == spec.exact),
            -cand.cost,
        )

    return max(candidates, key=score).name


def _cache_key(kind, fingerprints, spec, backend, options):
    """Cache key for a request, or ``None`` when it is uncacheable.

    ``demand_axis="throughput"`` evaluates demand curves off the integer
    population grid that fingerprints sample, so equal fingerprints do
    not guarantee equal results there — never cache it.
    """
    if options.get("demand_axis") == "throughput":
        return None
    opts = canonical_options(options)
    if opts is None:
        return None
    return (kind, fingerprints, spec.name, backend, opts)


def solve(
    scenario: Scenario | Sequence[Scenario],
    method: str = "auto",
    backend: str = "auto",
    cache=USE_DEFAULT_CACHE,
    workers: int | None = None,
    errors: str = "raise",
    retry_policy=None,
    checkpoint=None,
    hosts=None,
    fleet=None,
    **options: Any,
):
    """Solve one scenario (or a stack) with a registered method.

    Parameters
    ----------
    scenario:
        A validated :class:`Scenario`, or a sequence of them (routed to
        :func:`solve_stack`).
    method:
        Registry name, or ``"auto"`` for the capability-based selection
        of :func:`auto_method`.
    backend:
        ``"auto"`` (scalar for one scenario, batched for stacks when the
        method has a kernel, process-sharded for large stacks),
        ``"scalar"``/``"serial"``, ``"batched"`` (force the engine
        kernel; errors if the method has none), or ``"process-sharded"``
        (stacks only).
    cache:
        Where to memoize: the process-global
        :func:`~repro.solvers.cache.default_cache` by default, ``None``
        to bypass, or a private :class:`~repro.solvers.cache.SolverCache`.
    workers:
        Process count for the sharded backend (``None`` = one per core).
    **options:
        Forwarded to the solver adapter (e.g. ``single_server=True`` or
        ``demand_axis="throughput"`` for ``mvasd``,
        ``station_detail=False`` for the convolution-backed solvers,
        ``demand_intervals=...`` for ``interval-mva``).
    """
    if not isinstance(scenario, Scenario):
        return solve_stack(
            scenario,
            method=method,
            backend=backend,
            cache=cache,
            workers=workers,
            errors=errors,
            retry_policy=retry_policy,
            checkpoint=checkpoint,
            hosts=hosts,
            fleet=fleet,
            **options,
        )
    if (
        errors != "raise"
        or retry_policy is not None
        or checkpoint is not None
        or hosts is not None
        or fleet is not None
    ):
        raise SolverInputError(
            "solve: errors/retry_policy/checkpoint/hosts/fleet apply to scenario "
            "stacks; pass a sequence of scenarios (or call solve_stack)"
        )
    if backend not in ("auto", "scalar", "serial", "batched"):
        raise SolverInputError(
            f"backend must be 'auto', 'scalar', 'serial' or 'batched' for a "
            f"single scenario, got {backend!r}"
        )
    spec = _resolve_spec(scenario, method, options)
    kind = "batched" if backend == "batched" else "scalar"
    store = resolve_cache(cache)
    key = None
    traj = store.trajectory if store is not None and kind == "scalar" else None
    if store is not None:
        key = _cache_key("solve", (scenario.fingerprint(),), spec, kind, options)
        if key is None:
            store.note_uncacheable()
        else:
            hit, tier = store.fetch(key)
            if hit is not None:
                if tier == "persistent" and traj is not None:
                    # a restarted process rebuilds trajectory serving from
                    # whatever the shared store hands back
                    traj.offer(scenario, spec.name, options, hit)
                return hit
            if traj is not None:
                served = traj.serve(scenario, spec.name, options)
                if served is not None:
                    tkind, result = served
                    store.note_trajectory(tkind)
                    # prefixes are free slices of already-stored work;
                    # extensions contain newly paid-for levels worth sharing
                    store.put(key, result, persist=(tkind == "extend"))
                    if tkind == "extend":
                        traj.offer(scenario, spec.name, options, result)
                    return result
    if backend == "batched":
        stacked = solve_stack(
            [scenario], method=spec.name, backend="batched", cache=None, **options
        )
        result = stacked.scenario(0)
    else:
        result = spec.solve(scenario, **options)
    if store is not None and key is not None:
        store.put(key, result)
        if traj is not None:
            traj.offer(scenario, spec.name, options, result)
    return result


def _check_stackable(scenarios: Sequence[Scenario]) -> None:
    first = scenarios[0]
    topo = (
        first.network.station_names,
        tuple(st.kind for st in first.network.stations),
        tuple(st.servers for st in first.network.stations),
    )
    multi = first.is_multiclass
    for sc in scenarios[1:]:
        other = (
            sc.network.station_names,
            tuple(st.kind for st in sc.network.stations),
            tuple(st.servers for st in sc.network.stations),
        )
        if other != topo:
            raise SolverInputError(
                "solve_stack: scenarios must share the station topology "
                "(names, kinds, server counts)"
            )
        if sc.is_multiclass != multi:
            raise SolverInputError(
                "solve_stack: cannot mix single-class and multi-class scenarios"
            )
        if sc.max_population != first.max_population:
            raise SolverInputError(
                "solve_stack: scenarios must share max_population "
                f"({sc.max_population} != {first.max_population})"
            )
    if multi:
        structure = first.class_structure()
        for sc in scenarios[1:]:
            if sc.class_structure() != structure:
                raise SolverInputError(
                    "solve_stack: multi-class scenarios must share the class "
                    "structure (names, populations, think times); only demands "
                    "may vary across the stack"
                )


def _auto_stack_method(scenarios: Sequence[Scenario]) -> str:
    if scenarios[0].is_multiclass:
        # Prefer the kernel-backed multi-class methods; method-of-moments
        # is a scalar-only solver and would demote the stack to a serial
        # loop, so past the exact lattice the stack takes Bard-Schweitzer.
        if any(sc.has_varying_demands for sc in scenarios):
            return "multiclass-mvasd"
        if auto_method(scenarios[0]) == "exact-multiclass":
            return "exact-multiclass"
        return "multiclass-mvasd"
    if any(sc.has_rate_tables for sc in scenarios):
        # Composed (flow-equivalent) scenarios ride the ld-MVA kernel —
        # it is exact and multi-server-faithful, so it also covers the
        # plain-demand scenarios sharing the stack.
        return "ld-mva"
    if any(sc.has_varying_demands for sc in scenarios):
        return "mvasd"
    if any(sc.is_multiserver for sc in scenarios):
        # The only multi-server-faithful batched kernel is MVASD's
        # (constant demands are just a flat demand matrix).
        return "mvasd"
    return "exact-mva"


#: Methods already warned about falling back to a scalar stacked loop —
#: the warning fires once per process per method, not once per stack.
_SCALAR_FALLBACK_WARNED: set[str] = set()


def _warn_scalar_fallback(spec: SolverSpec, n_scenarios: int) -> None:
    """One-time ``UserWarning`` when a stack degrades to a scalar loop.

    Kernel gaps should be visible, not quietly slow: a ``backend="auto"``
    stack that lands on the serial per-scenario loop (solver label
    ``stacked-<name>``) only does so because the method has no batched
    kernel registered.
    """
    if spec.name in _SCALAR_FALLBACK_WARNED:
        return
    _SCALAR_FALLBACK_WARNED.add(spec.name)
    nearest = _nearest_batched_method(spec)
    hint = f"; nearest kernel-backed method: {nearest!r}" if nearest else ""
    warnings.warn(
        f"solve_stack: {spec.name!r} has no batched kernel, so the "
        f"{n_scenarios}-scenario stack runs a scalar per-scenario loop "
        f"(solver label 'stacked-{spec.name}'){hint}",
        UserWarning,
        stacklevel=3,
    )


def _resolve_backend(
    spec: SolverSpec, n_scenarios: int, backend: str, workers: int | None
) -> str:
    """Map a ``backend=`` request to a concrete execution backend name."""
    if backend not in _STACK_BACKENDS:
        raise SolverInputError(
            f"backend must be one of {_STACK_BACKENDS}, got {backend!r}"
        )
    if backend == "scalar":
        backend = "serial"
    if backend == "batched" and spec.batched_kernel is None:
        nearest = _nearest_batched_method(spec)
        hint = f"; nearest method with one: {nearest!r}" if nearest else ""
        raise SolverCapabilityError(
            f"{spec.name}: no batched kernel registered for this method{hint}"
        )
    if backend != "auto":
        return backend
    if n_scenarios >= AUTO_SHARD_THRESHOLD and resolve_workers(workers) > 1:
        return "process-sharded"
    if spec.batched_kernel is not None:
        return "batched"
    return "serial"


def _resolve_fleet(fleet):
    """Turn ``solve_stack``'s ``fleet=`` into ``(membership, ephemeral)``.

    ``ephemeral`` is non-``None`` only when this call launched the fleet
    itself (``fleet=<int>``) and therefore owns its teardown.
    """
    if fleet is None:
        return None, None
    from ..engine.supervisor import FleetSupervisor, StaticMembership, load_fleet_state

    if isinstance(fleet, FleetSupervisor):
        return fleet, None
    if isinstance(fleet, int) and not isinstance(fleet, bool):
        if fleet < 1:
            raise SolverInputError(
                f"solve_stack: fleet= worker count must be >= 1, got {fleet}"
            )
        supervisor = FleetSupervisor(workers=fleet)
        supervisor.start()
        return supervisor, supervisor
    if isinstance(fleet, str) or hasattr(fleet, "__fspath__"):
        try:
            state = load_fleet_state(str(fleet))
        except (OSError, ValueError) as exc:
            raise SolverInputError(f"solve_stack: fleet= state file: {exc}") from exc
        endpoints = [(w["host"], int(w["port"])) for w in state["workers"]]
        if not endpoints:
            raise SolverInputError(
                f"solve_stack: fleet state file {fleet!s} lists no workers"
            )
        return StaticMembership(endpoints), None
    raise SolverInputError(
        "solve_stack: fleet= must be a FleetSupervisor, a worker count, or "
        f"the path of a 'repro fleet up' state file, got {type(fleet).__name__}"
    )


def solve_stack(
    scenarios: Sequence[Scenario],
    method: str = "auto",
    backend: str = "auto",
    cache=USE_DEFAULT_CACHE,
    workers: int | None = None,
    errors: str = "raise",
    retry_policy=None,
    checkpoint=None,
    hosts=None,
    fleet=None,
    **options: Any,
) -> BatchedMVAResult | Any:
    """Solve a stack of topology-sharing scenarios in one shot.

    Single-class trajectory stacks return a :class:`BatchedMVAResult`;
    multi-class stacks return the matching
    :class:`~repro.engine.batched.BatchedMultiClassResult` (point
    solvers) or :class:`~repro.engine.batched.BatchedMultiClassTrajectory`
    (``multiclass-mvasd``) container with the same ``backend`` /
    ``failures`` / ``scenario(i)`` surface.

    With ``backend="auto"`` the stack goes through the method's
    :mod:`repro.engine` kernel when it has one (one batched recursion
    for all scenarios), falls back to the ``serial`` per-scenario loop
    when it does not, and fans out over ``process-sharded`` workers once
    the stack reaches :data:`AUTO_SHARD_THRESHOLD` scenarios — callers
    never branch on the backend.  ``backend="batched"`` insists on a
    kernel; ``"serial"`` (alias ``"scalar"``) forces the per-scenario
    loop; ``"process-sharded"`` forces the fan-out; ``"resilient"``
    routes through the :mod:`repro.engine.resilience` degradation chain
    (sharded → batched → serial) with bounded retries.  The result's
    ``backend`` attribute records which one ran, and ``solver`` names
    the concrete method (``stacked-<name>`` for serial runs).

    Fault-tolerance knobs
    ---------------------
    errors:
        ``"raise"`` (default) propagates the first scenario failure;
        ``"isolate"`` contains failures — failed scenarios become
        :class:`~repro.engine.batched.ScenarioFailure` records on
        ``result.failures`` with NaN trajectory rows, while every
        healthy scenario keeps its exact result.
    retry_policy:
        A :class:`~repro.engine.resilience.RetryPolicy` bounding shard
        retries, backoff and per-shard timeouts.  Implies
        ``backend="resilient"``.
    checkpoint:
        Path (or :class:`~repro.engine.resilience.SweepCheckpoint`) of
        an append-only journal of completed shards; re-running after a
        crash re-solves only the missing shards and reassembles a
        bit-identical result.  Implies ``backend="resilient"``
        (or rides ``backend="remote"`` unchanged).
    hosts:
        ``"host:port,host:port"`` (or a list of such specs) naming
        ``repro worker`` processes — implies ``backend="remote"``: the
        stack shards over the workers via the
        :class:`~repro.engine.fabric.Dispatcher`, with the same retry /
        checkpoint / degradation semantics as ``"resilient"`` (shards
        that no worker can solve fall back to local execution).
    fleet:
        A *supervised* fleet — implies ``backend="remote"`` with elastic
        membership (crashed workers are relaunched mid-sweep and rejoin
        the shard queue).  Accepts a running
        :class:`~repro.engine.supervisor.FleetSupervisor` (left running
        afterwards), an ``int`` worker count (an ephemeral local fleet
        is launched, supervised for the sweep, and torn down), or the
        path of a ``repro fleet up`` state file (attaches to those
        workers without supervising them).  Mutually exclusive with
        ``hosts=``.

    Results carrying failures are never cached — a retry after fixing
    the inputs must recompute, not replay the failure.
    """
    scenarios = list(scenarios)
    if not scenarios:
        raise SolverInputError("solve_stack: need at least one scenario")
    for sc in scenarios:
        if not isinstance(sc, Scenario):
            raise SolverInputError(
                f"solve_stack: expected Scenario instances, got {type(sc).__name__}"
            )
    if errors not in ("raise", "isolate"):
        raise SolverInputError(
            f"solve_stack: errors must be 'raise' or 'isolate', got {errors!r}"
        )
    if fleet is not None and hosts is not None:
        raise SolverInputError(
            "solve_stack: fleet= and hosts= are mutually exclusive — a fleet "
            "already knows its workers"
        )
    if (hosts is not None or fleet is not None) and backend == "auto":
        backend = "remote"
    if backend == "remote" and not hosts and fleet is None:
        raise SolverInputError(
            "solve_stack: backend='remote' needs hosts= naming at least one "
            "repro worker (e.g. hosts='127.0.0.1:7173'), or fleet="
        )
    if (hosts is not None or fleet is not None) and backend != "remote":
        raise SolverInputError(
            f"solve_stack: hosts=/fleet= only apply to backend='remote', got {backend!r}"
        )
    _check_stackable(scenarios)
    name = _auto_stack_method(scenarios) if method == "auto" else method
    spec = get_solver(name)
    if spec.returns not in ("trajectory", "multiclass"):
        raise SolverCapabilityError(
            f"{spec.name}: only trajectory and multiclass solvers can be stacked"
        )
    if spec.multiclass and not scenarios[0].is_multiclass:
        raise SolverCapabilityError(
            f"{spec.name}: multi-class solver needs scenarios with classes"
        )
    if scenarios[0].is_multiclass and not spec.multiclass:
        raise SolverCapabilityError(
            f"{spec.name}: scenarios have customer classes but the solver is "
            f"single-class; use a multiclass-capable method (or method='auto')"
        )
    for sc in scenarios:
        _check_single_class_capabilities(spec, sc, options)
    resolved = _resolve_backend(spec, len(scenarios), backend, workers)
    if (
        backend == "auto"
        and resolved == "serial"
        and spec.batched_kernel is None
        and len(scenarios) > 1
    ):
        _warn_scalar_fallback(spec, len(scenarios))
    if (checkpoint is not None or retry_policy is not None) and resolved not in (
        "resilient",
        "remote",
    ):
        # The retry/checkpoint machinery lives in the dispatcher-backed
        # backends; asking for either is asking for one of them.
        resolved = "resilient"
    if (
        spec.batched_kernel == "ld-mva"
        and options.get("rates") is not None
        and resolved != "serial"
    ):
        # Callable mu(j) laws cannot cross the kernel-input boundary;
        # running the kernel anyway would silently drop the override.
        if backend == "auto" and resolved != "resilient":
            resolved = "serial"
        else:
            raise SolverInputError(
                f"{spec.name}: callable rates= laws cannot ride the "
                f"{resolved!r} backend — encode them as Scenario.rate_tables "
                f"or use backend='serial'"
            )
    store = resolve_cache(cache)
    key = None
    if store is not None:
        fps = tuple(sc.fingerprint() for sc in scenarios)
        key = _cache_key("stack", fps, spec, resolved, options)
        if key is None:
            store.note_uncacheable()
        else:
            # two-tier lookup: stacks profit from the persistent store on
            # restart just like single solves (no trajectory serving here —
            # the store is keyed per scenario, not per stack)
            hit, _ = store.fetch(key)
            if hit is not None:
                return hit
    if resolved == "remote":
        membership, ephemeral = _resolve_fleet(fleet)
        try:
            runner = get_backend(
                "remote",
                hosts=hosts if hosts is not None else (),
                membership=membership,
                policy=retry_policy,
                checkpoint=checkpoint,
                errors=errors,
            )
            result = runner.run(spec, scenarios, options)
        finally:
            if ephemeral is not None:
                ephemeral.stop()
    elif resolved == "resilient":
        runner = get_backend(
            "resilient",
            workers=workers,
            policy=retry_policy,
            checkpoint=checkpoint,
            errors=errors,
        )
        result = runner.run(spec, scenarios, options)
    elif errors == "isolate":
        try:
            result = get_backend(resolved, workers=workers).run(spec, scenarios, options)
        except Exception:
            from ..engine.resilience import solve_isolated, solve_isolated_batched

            if resolved != "serial" and spec.batched_kernel is not None:
                # Mask the poisoned scenarios out of the kernel instead of
                # demoting every healthy row to the serial loop.
                result = solve_isolated_batched(spec, scenarios, options)
            else:
                result = solve_isolated(spec, scenarios, options)
    else:
        result = get_backend(resolved, workers=workers).run(spec, scenarios, options)
    if not result.failures and result.backend != resolved:
        result = replace(result, backend=resolved)
    if store is not None and key is not None and not result.failures:
        store.put(key, result)
    return result
