"""Content-addressed result cache behind the :func:`repro.solvers.solve` facade.

Capacity-planning studies are sweeps of thousands of near-identical
model evaluations: what-if grids re-solve the same baseline, comparison
tables run every method on one scenario, pipelines re-predict the
scenario they just calibrated.  Since PR 2 every one of those calls
funnels through ``solve()``/``solve_stack()``, a single LRU keyed on
:meth:`Scenario.fingerprint` + method + canonicalized options makes the
repeats free.

The cache is strictly a memoization layer: a hit returns the *same*
result object a miss produced, so every NumPy array stored in a result
is frozen (``writeable=False``) on insertion — mutating a cached result
would silently corrupt every later hit.

``resolve_cache`` accepts four spellings so call sites with different
import constraints can all opt in:

* the :data:`USE_DEFAULT_CACHE` sentinel (the default) — process-global
  cache;
* ``None`` — bypass caching entirely;
* a :class:`SolverCache` instance — private cache, e.g. per-test;
* the string ``"default"`` — for modules (``loadtest.replication``)
  that cannot import :mod:`repro.solvers` at module scope without a
  cycle and therefore cannot name the sentinel.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, fields, is_dataclass

import numpy as np

__all__ = [
    "CacheStats",
    "DEFAULT_MAXSIZE",
    "SolverCache",
    "USE_DEFAULT_CACHE",
    "cache_stats",
    "canonical_options",
    "default_cache",
    "resolve_cache",
    "set_default_cache",
]

DEFAULT_MAXSIZE = 256


class _UseDefault:
    """Sentinel distinguishing "use the global cache" from ``cache=None``."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "USE_DEFAULT_CACHE"


USE_DEFAULT_CACHE = _UseDefault()


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of a :class:`SolverCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    uncacheable: int = 0
    size: int = 0
    maxsize: int = DEFAULT_MAXSIZE
    #: Internal cache failures (corrupted entries, unhashable keys,
    #: freezing errors) that degraded to a miss instead of propagating.
    #: Includes failures of the persistent tier, so the PR 5 contract —
    #: ``cache_stats()["errors"]`` counts every degraded operation —
    #: holds across tiers.
    errors: int = 0
    #: Requests answered by the persistent (sqlite) second level after an
    #: in-memory miss.
    persistent_hits: int = 0
    #: Requests answered as a pure prefix slice of a cached trajectory.
    trajectory_hits: int = 0
    #: Requests answered by resuming a cached trajectory to a deeper N.
    trajectory_extends: int = 0
    #: Counters of the persistent tier itself (None when not configured).
    persistent: object | None = None

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __getitem__(self, name: str):
        """Counter access by name, e.g. ``cache_stats()["errors"]``."""
        if name not in {f.name for f in fields(self)}:
            raise KeyError(name)
        return getattr(self, name)


def canonical_options(options: Mapping[str, object]) -> tuple | None:
    """Hashable canonical form of a solver-options mapping.

    Returns ``None`` when any value cannot be canonicalized (callables,
    arbitrary objects) — the caller must then treat the request as
    uncacheable rather than risk a false hit.  Floats are canonicalized
    the same way fingerprints are (``-0.0`` folds onto ``+0.0``), arrays
    hash by shape + canonical bytes, mappings by sorted key.
    """
    try:
        return tuple(
            (str(k), _canonical_value(v)) for k, v in sorted(options.items())
        )
    except _Uncacheable:
        return None


class _Uncacheable(Exception):
    pass


def _canonical_value(value):
    if value is None or isinstance(value, (bool, int, str, bytes)):
        return value
    if isinstance(value, float):
        return value + 0.0
    if isinstance(value, np.generic):
        return _canonical_value(value.item())
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(np.asarray(value, dtype=np.float64)) + 0.0
        if np.isnan(arr).any():
            arr = np.where(np.isnan(arr), np.float64("nan"), arr)
        return ("ndarray", arr.shape, arr.tobytes())
    if isinstance(value, Mapping):
        return (
            "mapping",
            tuple((str(k), _canonical_value(v)) for k, v in sorted(value.items())),
        )
    if isinstance(value, Sequence):
        return ("sequence", tuple(_canonical_value(v) for v in value))
    raise _Uncacheable(value)


def _freeze(value) -> None:
    """Recursively mark every ndarray reachable from ``value`` read-only."""
    if isinstance(value, np.ndarray):
        try:
            value.setflags(write=False)
        except ValueError:
            pass  # view of a buffer we do not own; base is what matters
        return
    if is_dataclass(value) and not isinstance(value, type):
        for f in fields(value):
            _freeze(getattr(value, f.name))
        return
    if isinstance(value, Mapping):
        for v in value.values():
            _freeze(v)
        return
    if isinstance(value, (list, tuple, set)):
        for v in value:
            _freeze(v)


class SolverCache:
    """Thread-safe LRU of solver results keyed on content-addressed requests.

    Keys are built by the facade from ``(kind, fingerprint(s), method,
    backend, canonical options)``; values are the solver-result objects
    themselves, frozen on insertion.

    Two optional lower tiers extend the in-memory LRU (PR 7):

    * ``persistent=`` — a :class:`~repro.solvers.persistent.PersistentCache`
      (or a path to create one): a sqlite-backed shared store consulted
      by :meth:`fetch` after an in-memory miss, so process restarts and
      worker fleets warm each other;
    * ``trajectory`` — a
      :class:`~repro.solvers.trajectory.TrajectoryStore` (on by
      default) the *facade* consults for population-prefix and
      resumed-recursion answers; it lives on the cache object so
      ``clear()`` and ``stats()`` cover it.

    The cache is an *optimization*, never a correctness dependency: any
    internal failure in :meth:`get`/:meth:`put` (a corrupted entry, an
    unhashable key, a freezing error) degrades to a counted miss — the
    ``errors`` counter in :meth:`stats` — and the caller recomputes.  A
    broken cache can slow ``solve()`` down but can never make it fail.
    """

    def __init__(
        self,
        maxsize: int = DEFAULT_MAXSIZE,
        persistent=None,
        trajectory=True,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._uncacheable = 0
        self._errors = 0
        self._persistent_hits = 0
        self._trajectory_hits = 0
        self._trajectory_extends = 0
        if isinstance(persistent, (str, os.PathLike)):
            from .persistent import PersistentCache

            persistent = PersistentCache(persistent)
        self.persistent = persistent
        if trajectory is True:
            from .trajectory import TrajectoryStore

            trajectory = TrajectoryStore()
        elif trajectory is False:
            trajectory = None
        self.trajectory = trajectory

    def _note_error(self) -> None:
        with self._lock:
            self._errors += 1
            self._misses += 1

    def get(self, key):
        """The cached result for ``key``, or ``None`` (counted as a miss).

        Never raises: internal failures degrade to a miss and bump the
        ``errors`` counter.
        """
        try:
            self._fault_hook("cache")
            with self._lock:
                try:
                    value = self._data[key]
                except KeyError:
                    self._misses += 1
                    return None
                self._data.move_to_end(key)
                self._hits += 1
                return value
        except Exception:
            self._note_error()
            return None

    def fetch(self, key):
        """Two-tier lookup: ``(result, tier)`` with tier ``"memory"``,
        ``"persistent"``, or ``None`` on a full miss.

        The in-memory LRU is consulted first (same counters as
        :meth:`get`); on a miss, the persistent tier — when configured —
        is probed by the cross-process stable digest of ``key``, and a
        hit is *promoted* into the LRU (frozen, like any insertion) so
        repeats are pure memory hits.  Never raises.
        """
        try:
            self._fault_hook("cache")
            with self._lock:
                try:
                    value = self._data[key]
                except KeyError:
                    pass
                else:
                    self._data.move_to_end(key)
                    self._hits += 1
                    return value, "memory"
            if self.persistent is None:
                with self._lock:
                    self._misses += 1
                return None, None
            from .persistent import persistent_key

            value = self.persistent.get(persistent_key(key))
            if value is None:
                with self._lock:
                    self._misses += 1
                return None, None
            _freeze(value)
            with self._lock:
                self._persistent_hits += 1
                self._data[key] = value
                self._data.move_to_end(key)
                while len(self._data) > self.maxsize:
                    self._data.popitem(last=False)
                    self._evictions += 1
            return value, "persistent"
        except Exception:
            self._note_error()
            return None, None

    def put(self, key, result, persist: bool = True) -> None:
        """Insert ``result``, freezing its arrays; evicts LRU entries.

        With a persistent tier configured and ``persist=True`` the
        result is also written through to the shared store (pass
        ``persist=False`` for derived values — e.g. prefix slices — that
        are cheap to recreate from what is already stored).  Never
        raises: internal failures are dropped (the entry simply is not
        cached) and bump the ``errors`` counter.
        """
        try:
            self._fault_hook("cache")
            _freeze(result)
            with self._lock:
                if key in self._data:
                    self._data.move_to_end(key)
                self._data[key] = result
                while len(self._data) > self.maxsize:
                    self._data.popitem(last=False)
                    self._evictions += 1
        except Exception:
            with self._lock:
                self._errors += 1
            return
        if persist and self.persistent is not None:
            try:
                from .persistent import persistent_key

                method = key[2] if isinstance(key, tuple) and len(key) > 2 else ""
                self.persistent.put(persistent_key(key), result, method=str(method))
            except Exception:
                with self._lock:
                    self._errors += 1

    def note_trajectory(self, kind: str) -> None:
        """Count a request answered by the trajectory store.

        ``kind`` is ``"prefix"`` (pure slice) or ``"extend"`` (resumed
        recursion), matching the tuple tags
        :meth:`~repro.solvers.trajectory.TrajectoryStore.serve` returns.
        """
        with self._lock:
            if kind == "prefix":
                self._trajectory_hits += 1
            elif kind == "extend":
                self._trajectory_extends += 1

    @staticmethod
    def _fault_hook(point: str) -> None:
        """Injection point for the deterministic fault harness.

        ``corrupt-cache-entry`` faults raise here, exercising the
        degrade-to-miss guard above.  Deferred import so this module
        stays importable before the engine package initializes.
        """
        from ..engine.faults import maybe_inject

        maybe_inject(point)

    def note_uncacheable(self) -> None:
        """Count a request the facade could not build a key for."""
        with self._lock:
            self._uncacheable += 1

    def clear(self, persistent: bool = True) -> None:
        """Drop all entries and reset the counters — every tier.

        Pass ``persistent=False`` to keep the shared on-disk store (it
        may be warming *other* processes) while flushing this process's
        memory and trajectory state.
        """
        with self._lock:
            self._data.clear()
            self._hits = self._misses = self._evictions = 0
            self._uncacheable = self._errors = 0
            self._persistent_hits = 0
            self._trajectory_hits = self._trajectory_extends = 0
        if self.trajectory is not None:
            self.trajectory.clear()
        if persistent and self.persistent is not None:
            self.persistent.clear()

    def stats(self) -> CacheStats:
        pstats = self.persistent.stats() if self.persistent is not None else None
        t_errors = (
            self.trajectory.stats()["errors"] if self.trajectory is not None else 0
        )
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                uncacheable=self._uncacheable,
                size=len(self._data),
                maxsize=self.maxsize,
                # one counter covers every tier's degraded operations
                errors=self._errors + t_errors + (pstats.errors if pstats else 0),
                persistent_hits=self._persistent_hits,
                trajectory_hits=self._trajectory_hits,
                trajectory_extends=self._trajectory_extends,
                persistent=pstats,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"SolverCache(size={s.size}/{s.maxsize}, hits={s.hits}, "
            f"misses={s.misses}, evictions={s.evictions})"
        )


_default_cache = SolverCache()
_default_lock = threading.Lock()


def default_cache() -> SolverCache:
    """The process-global cache ``solve()`` uses when none is passed."""
    return _default_cache


def set_default_cache(cache: SolverCache) -> SolverCache:
    """Replace the process-global cache; returns the previous one."""
    global _default_cache
    if not isinstance(cache, SolverCache):
        raise TypeError(f"expected a SolverCache, got {type(cache).__name__}")
    with _default_lock:
        previous = _default_cache
        _default_cache = cache
    return previous


def cache_stats(cache: SolverCache | None = None) -> CacheStats:
    """Counters of ``cache`` (the process-global cache by default)."""
    return (cache if cache is not None else _default_cache).stats()


def resolve_cache(cache) -> SolverCache | None:
    """Map a user-facing ``cache=`` argument to a cache instance or ``None``."""
    if cache is USE_DEFAULT_CACHE or cache == "default":
        return _default_cache
    if cache is None or isinstance(cache, SolverCache):
        return cache
    raise TypeError(
        "cache must be USE_DEFAULT_CACHE, None, a SolverCache, or 'default', "
        f"got {cache!r}"
    )
