"""Registrations of the repo's built-in solver family.

Each adapter is a thin shim from the canonical
:class:`~repro.solvers.scenario.Scenario` onto the existing public entry
point (which keeps its legacy signature — downstream code that calls
``exact_mva(network, n)`` directly is untouched).  The capability flags
and cost ranks drive :func:`repro.solvers.facade.auto_method`:

=========================  ===========  ========  =======  =====  =======
name                       multiserver  varying   multicl  exact  batched
=========================  ===========  ========  =======  =====  =======
bounds                     yes          -         -        -      -
balanced-job-bounds        yes          -         -        -      -
exact-mva                  -            -         -        yes    yes
schweitzer-amva            -            -         -        -      yes
linearizer                 -            -         -        -      -
approx-multiserver-mva     yes          -         -        -      -
exact-multiserver-mva      yes          -         -        yes    -
linearizer-multiserver     yes          -         -        -      -
convolution                yes          -         -        yes    -
mvasd                      yes          yes       -        -      yes
ld-mva                     yes          -         -        yes    -
interval-mva               yes          -         -        yes    -
multiclass-mvasd           -            yes       yes      -      yes
exact-multiclass           -            -         yes      yes    yes
method-of-moments          -            -         yes      yes    -
=========================  ===========  ========  =======  =====  =======

Bounds solvers return an :class:`~repro.core.bounds.AsymptoticBounds`
envelope, ``interval-mva`` a :class:`~repro.core.interval_mva.PredictionBand`,
the multi-class solvers their class-resolved containers; everything else
returns the canonical :class:`~repro.core.results.MVAResult`.
"""

from __future__ import annotations

from typing import Any

from ..core.amva import approximate_multiserver_mva, schweitzer_amva
from ..core.bounds import asymptotic_bounds, balanced_job_bounds
from ..core.convolution import convolution_mva
from ..core.interval_mva import band_from_estimates, interval_mva
from ..core.ld_mva import exact_load_dependent_mva
from ..core.linearizer import linearizer_amva, linearizer_multiserver_mva
from ..core.mom import method_of_moments
from ..core.multiclass import exact_multiclass_mva
from ..core.multiclass_amva import multiclass_mvasd
from ..core.multiserver import exact_multiserver_mva
from ..core.mva import exact_mva
from ..core.mvasd import mvasd
from .facade import SolverCapabilityError
from .registry import register_solver
from .scenario import Scenario
from .validation import SolverInputError

__all__: list[str] = []


def _single_class_network(scenario: Scenario, solver: str):
    if scenario.is_multiclass:  # defensive; the facade checks capabilities first
        raise SolverCapabilityError(f"{solver}: single-class solver")
    return scenario.resolved_network()


@register_solver(
    "bounds",
    summary="asymptotic throughput/cycle-time envelope (eqs. 5-6)",
    multiserver=True,
    cost=1,
    returns="bounds",
    legacy="repro.core.bounds.asymptotic_bounds",
)
def _solve_bounds(scenario: Scenario, **options: Any):
    net = _single_class_network(scenario, "bounds")
    return asymptotic_bounds(
        net, scenario.max_population, demand_level=scenario.demand_level
    )


@register_solver(
    "balanced-job-bounds",
    summary="balanced-job bounds (tighter envelope, terminal-adjusted)",
    multiserver=True,
    cost=2,
    returns="bounds",
    legacy="repro.core.bounds.balanced_job_bounds",
)
def _solve_balanced_job_bounds(scenario: Scenario, **options: Any):
    net = _single_class_network(scenario, "balanced-job-bounds")
    return balanced_job_bounds(
        net, scenario.max_population, demand_level=scenario.demand_level
    )


@register_solver(
    "exact-mva",
    summary="Algorithm 1 — exact single-server MVA",
    exact=True,
    batched_kernel="exact-mva",
    cost=10,
    legacy="repro.core.mva.exact_mva",
)
def _solve_exact_mva(scenario: Scenario, **options: Any):
    net = _single_class_network(scenario, "exact-mva")
    return exact_mva(
        net, scenario.max_population, demands=scenario.fixed_demands("exact-mva")
    )


@register_solver(
    "schweitzer-amva",
    summary="Schweitzer approximate MVA (fixed point, single-server)",
    batched_kernel="schweitzer-amva",
    cost=12,
    legacy="repro.core.amva.schweitzer_amva",
)
def _solve_schweitzer(scenario: Scenario, **options: Any):
    net = _single_class_network(scenario, "schweitzer-amva")
    return schweitzer_amva(
        net, scenario.max_population, demands=scenario.fixed_demands("schweitzer-amva")
    )


@register_solver(
    "linearizer",
    summary="Chandy-Neuse Linearizer AMVA (single-server)",
    cost=15,
    legacy="repro.core.linearizer.linearizer_amva",
)
def _solve_linearizer(scenario: Scenario, **options: Any):
    net = _single_class_network(scenario, "linearizer")
    return linearizer_amva(
        net, scenario.max_population, demands=scenario.fixed_demands("linearizer")
    )


@register_solver(
    "approx-multiserver-mva",
    summary="Seidmann transform + Schweitzer (MAQ-PRO-style baseline)",
    multiserver=True,
    cost=18,
    legacy="repro.core.amva.approximate_multiserver_mva",
)
def _solve_approx_multiserver(scenario: Scenario, **options: Any):
    net = _single_class_network(scenario, "approx-multiserver-mva")
    return approximate_multiserver_mva(
        net,
        scenario.max_population,
        demands=scenario.fixed_demands("approx-multiserver-mva"),
    )


@register_solver(
    "exact-multiserver-mva",
    summary="Algorithm 2 — exact multi-server MVA (convolution-backed)",
    multiserver=True,
    exact=True,
    cost=20,
    legacy="repro.core.multiserver.exact_multiserver_mva",
)
def _solve_exact_multiserver(scenario: Scenario, **options: Any):
    net = _single_class_network(scenario, "exact-multiserver-mva")
    return exact_multiserver_mva(
        net,
        scenario.max_population,
        demands=scenario.fixed_demands("exact-multiserver-mva"),
        method=options.get("method", "convolution"),
        station_detail=options.get("station_detail", True),
    )


@register_solver(
    "linearizer-multiserver",
    summary="Linearizer over the Seidmann transform (multi-server baseline)",
    multiserver=True,
    cost=25,
    legacy="repro.core.linearizer.linearizer_multiserver_mva",
)
def _solve_linearizer_multiserver(scenario: Scenario, **options: Any):
    net = _single_class_network(scenario, "linearizer-multiserver")
    return linearizer_multiserver_mva(
        net,
        scenario.max_population,
        demands=scenario.fixed_demands("linearizer-multiserver"),
    )


@register_solver(
    "convolution",
    summary="Buzen normalizing-constant method in the log domain (exact reference)",
    multiserver=True,
    exact=True,
    cost=30,
    legacy="repro.core.convolution.convolution_mva",
)
def _solve_convolution(scenario: Scenario, **options: Any):
    net = _single_class_network(scenario, "convolution")
    return convolution_mva(
        net,
        scenario.max_population,
        demands=scenario.fixed_demands("convolution"),
        station_detail=options.get("station_detail", True),
    )


@register_solver(
    "mvasd",
    summary="Algorithm 3 — multi-server MVA with varying service demands",
    multiserver=True,
    varying_demands=True,
    batched_kernel="mvasd",
    cost=35,
    legacy="repro.core.mvasd.mvasd",
)
def _solve_mvasd(scenario: Scenario, **options: Any):
    net = _single_class_network(scenario, "mvasd")
    return mvasd(
        net,
        scenario.max_population,
        demand_functions=scenario.demand_fns("mvasd"),
        single_server=options.get("single_server", False),
        demand_axis=options.get("demand_axis", "population"),
    )


@register_solver(
    "ld-mva",
    summary="exact load-dependent MVA (textbook marginal recursion)",
    multiserver=True,
    load_dependent=True,
    exact=True,
    batched_kernel="ld-mva",
    cost=40,
    legacy="repro.core.ld_mva.exact_load_dependent_mva",
)
def _solve_ld_mva(scenario: Scenario, **options: Any):
    net = _single_class_network(scenario, "ld-mva")
    return exact_load_dependent_mva(
        net,
        scenario.max_population,
        demands=scenario.fixed_demands("ld-mva"),
        rates=options.get("rates"),
        rate_tables=scenario.rate_tables,
    )


@register_solver(
    "interval-mva",
    summary="prediction band from demand intervals (two exact corner solves)",
    multiserver=True,
    exact=True,
    cost=45,
    returns="band",
    legacy="repro.core.interval_mva.interval_mva",
)
def _solve_interval(scenario: Scenario, **options: Any):
    net = _single_class_network(scenario, "interval-mva")
    if "demand_intervals" in options:
        return interval_mva(net, scenario.max_population, options["demand_intervals"])
    if "estimates" in options:
        return band_from_estimates(net, options["estimates"], scenario.max_population)
    raise SolverInputError(
        "interval-mva: pass demand_intervals={station: (lo, hi)} or "
        "estimates={station: DemandEstimate}"
    )


def _require_single_server(scenario: Scenario, solver: str) -> None:
    if scenario.is_multiserver:
        raise SolverCapabilityError(
            f"{solver}: multi-class solvers take single-server/delay stations "
            f"only — Seidmann-transform the network first "
            f"(repro.core.amva.seidmann_transform)"
        )


@register_solver(
    "multiclass-mvasd",
    summary="Bard-Schweitzer mix sweep with varying per-class demands",
    varying_demands=True,
    multiclass=True,
    batched_kernel="multiclass-mvasd",
    cost=55,
    returns="multiclass",
    legacy="repro.core.multiclass_amva.multiclass_mvasd",
)
def _solve_multiclass_mvasd(scenario: Scenario, **options: Any):
    _require_single_server(scenario, "multiclass-mvasd")
    classes = scenario.classes
    return multiclass_mvasd(
        station_names=scenario.station_names,
        class_demands={c.name: dict(c.demands) for c in classes},
        mix={c.name: float(c.population) for c in classes},
        max_total_population=scenario.max_population,
        think_times={c.name: c.think_time for c in classes},
        station_kinds=tuple(st.kind for st in scenario.network.stations),
    )


@register_solver(
    "exact-multiclass",
    summary="exact multi-class MVA over the full population lattice",
    multiclass=True,
    exact=True,
    batched_kernel="exact-multiclass",
    cost=60,
    returns="multiclass",
    legacy="repro.core.multiclass.exact_multiclass_mva",
)
def _solve_exact_multiclass(scenario: Scenario, **options: Any):
    _require_single_server(scenario, "exact-multiclass")
    return exact_multiclass_mva(
        demands=scenario.multiclass_demand_matrix("exact-multiclass"),
        populations=scenario.class_populations,
        think_times=scenario.class_think_times,
        station_names=scenario.station_names,
        station_kinds=tuple(st.kind for st in scenario.network.stations),
    )


@register_solver(
    "method-of-moments",
    summary="Casale MoM: exact multi-class via moment recursions, poly in N",
    multiclass=True,
    exact=True,
    cost=65,
    returns="multiclass",
    legacy="repro.core.mom.method_of_moments",
)
def _solve_method_of_moments(scenario: Scenario, **options: Any):
    _require_single_server(scenario, "method-of-moments")
    return method_of_moments(
        demands=scenario.multiclass_demand_matrix("method-of-moments"),
        populations=scenario.class_populations,
        think_times=scenario.class_think_times,
        station_names=scenario.station_names,
        station_kinds=tuple(st.kind for st in scenario.network.stations),
    )
