"""Seeded, purpose-separated random streams for the simulator.

Every stochastic component of the testbed (service times per station,
think times, load-generator sleep jitter) draws from its own
``numpy.random.Generator`` spawned from one root seed, so

* runs are exactly reproducible from a single integer seed, and
* changing how many draws one component makes never perturbs another
  component's stream (the classic common-random-numbers discipline for
  variance-controlled comparisons between configurations).
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomStreams", "spawn_seeds"]


def spawn_seeds(seed: int, count: int) -> list[int]:
    """Derive ``count`` independent child seeds from one root seed.

    Uses ``numpy.random.SeedSequence.spawn``, so the children are
    statistically independent of each other and of the root stream, and
    the derivation depends only on ``(seed, count index)`` — never on
    which process or worker consumes a child.  Parallel replications
    seeded this way are therefore bit-identical to their serial
    counterparts regardless of worker count or scheduling order.
    """
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    children = np.random.SeedSequence(int(seed)).spawn(count)
    return [int(child.generate_state(1, np.uint32)[0]) for child in children]


class RandomStreams:
    """A family of independent generators derived from one seed.

    ``streams.get("service:db.cpu")`` always returns the same generator
    for the same name and root seed; distinct names get statistically
    independent streams (NumPy ``SeedSequence.spawn`` guarantees).
    """

    def __init__(self, seed: int = 0) -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._generators: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Generator dedicated to ``name`` (created on first use)."""
        gen = self._generators.get(name)
        if gen is None:
            # Deterministic per-name child: a stable digest of the name forms
            # the spawn key, so neither creation order nor the process's
            # (salted) built-in str hash affects the stream.
            import hashlib

            digest = hashlib.blake2b(name.encode(), digest_size=4).digest()
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=(int.from_bytes(digest, "little"),),
            )
            gen = np.random.default_rng(child)
            self._generators[name] = gen
        return gen

    def spawn(self, count: int) -> list["RandomStreams"]:
        """``count`` independent child stream families (parallel replications).

        Each child is a full :class:`RandomStreams` rooted at a
        :func:`spawn_seeds`-derived seed, so a replication running in a
        worker process draws exactly the same variates it would draw
        serially — the per-name streams inside each child stay isolated
        from the siblings'.
        """
        return [RandomStreams(s) for s in spawn_seeds(self.seed, count)]

    def exponential_sampler(self, name: str, mean: float, block: int = 1024):
        """A fast callable drawing exponential variates with the given mean.

        Draws are buffered in blocks (one NumPy call per ``block``
        variates) because the simulator requests them one at a time in
        its event loop; per-call ``Generator.exponential`` overhead would
        dominate otherwise.  A zero mean yields a constant-0 sampler
        (stations with negligible demand).
        """
        if mean < 0:
            raise ValueError(f"mean must be non-negative, got {mean}")
        if mean == 0.0:
            return lambda: 0.0
        gen = self.get(name)
        buf = gen.exponential(mean, block)
        state = {"buf": buf, "i": 0}

        def draw() -> float:
            i = state["i"]
            buf = state["buf"]
            if i >= buf.shape[0]:
                buf = gen.exponential(mean, block)
                state["buf"] = buf
                i = 0
            state["i"] = i + 1
            return float(buf[i])

        return draw
