"""Page-level workflow simulation.

The aggregate simulator (:mod:`repro.simulation.closednet`) folds a
whole workflow into one average "page" — exactly what the MVA models
see.  Real load tests, however, report *per-page* statistics: the VINS
Renew-Policy workflow has 7 pages, JPetStore's shopping flow 14, and
The Grinder prints a response-time row per page.

:func:`simulate_workflow` runs the same closed network at page
granularity: each customer cycles think -> page_1 -> think -> page_2 ->
... with page ``p`` scaling every station's service demand by a weight
``w_p`` (mean 1 across pages, so aggregate demands — and therefore the
MVA view — are unchanged).  Per-page response-time distributions come
out, enabling Grinder-style per-page reports and SLAs on individual
pages.

Note on exactness: page-dependent service at a FCFS station breaks the
BCMP conditions (service must be class-independent exponential), so
aggregate means can shift slightly relative to the aggregate simulator
for strongly skewed weights.  The test suite pins the agreement for
uniform weights (exact) and bounds the drift for the bundled
applications' mild skews.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.network import ClosedNetwork
from .closednet import SimulationResult
from .events import EventList
from .rng import RandomStreams
from .stations import SimDelay, SimQueue

__all__ = ["PageStats", "WorkflowResult", "simulate_workflow"]

_THINK_DONE = 0
_SERVICE_DONE = 1
_CUSTOMER_START = 2


@dataclass(frozen=True)
class PageStats:
    """Steady-state statistics of one workflow page."""

    name: str
    weight: float
    completions: int
    mean_response_time: float
    p95_response_time: float

    def summary(self) -> str:
        return (
            f"{self.name}: {self.completions} views, "
            f"mean {self.mean_response_time * 1000:.0f} ms, "
            f"p95 {self.p95_response_time * 1000:.0f} ms"
        )


@dataclass(frozen=True)
class WorkflowResult:
    """Aggregate metrics plus the per-page breakdown."""

    aggregate: SimulationResult
    pages: tuple[PageStats, ...]

    @property
    def page_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.pages)

    def page(self, name: str) -> PageStats:
        for p in self.pages:
            if p.name == name:
                return p
        raise KeyError(f"unknown page {name!r}")

    @property
    def workflow_time(self) -> float:
        """Mean wall time of one full workflow pass (pages + think gaps).

        ``pages * (mean page response + think)`` — how long a virtual
        user takes to complete the whole business transaction.
        """
        m = len(self.pages)
        return m * self.aggregate.cycle_time


def _normalize_weights(
    page_weights: Mapping[str, float] | Sequence[float],
) -> tuple[tuple[str, ...], np.ndarray]:
    if isinstance(page_weights, Mapping):
        names = tuple(page_weights)
        w = np.array([page_weights[n] for n in names], dtype=float)
    else:
        w = np.asarray(list(page_weights), dtype=float)
        names = tuple(f"page-{i + 1}" for i in range(w.size))
    if w.size == 0:
        raise ValueError("workflow needs at least one page")
    if np.any(w <= 0):
        raise ValueError("page weights must be positive")
    # normalize to mean 1 so aggregate demands are preserved
    return names, w * (w.size / w.sum())


def simulate_workflow(
    network: ClosedNetwork,
    population: int,
    page_weights: Mapping[str, float] | Sequence[float],
    duration: float,
    warmup: float = 0.0,
    seed: int = 0,
) -> WorkflowResult:
    """Simulate a closed network at page granularity.

    Parameters
    ----------
    network:
        The application's network; demands are the *per-page averages*
        (as everywhere else) and are evaluated at ``population``.
    population:
        Concurrent virtual users.
    page_weights:
        One positive weight per page (mapping name -> weight, or a
        sequence).  Weights are rescaled to mean 1; page ``p``'s demand
        at every station is ``w_p`` times the average page demand.
    duration / warmup / seed:
        As in :func:`repro.simulation.simulate_closed_network`.

    Returns
    -------
    WorkflowResult
        Aggregate :class:`SimulationResult` (throughput in pages/second,
        response time per page — directly comparable with the MVA view)
        plus per-page statistics.
    """
    if population < 1:
        raise ValueError(f"population must be >= 1, got {population}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if not 0 <= warmup < duration:
        raise ValueError(f"warmup must lie in [0, duration), got {warmup}")
    page_names, weights = _normalize_weights(page_weights)
    n_pages = weights.size

    demands = network.demands_at(population)
    station_defs = network.stations

    streams = RandomStreams(seed)
    queues: list[SimQueue | None] = []
    samplers: list[list] = []  # [station][page] -> draw()
    route: list[int] = []
    for idx, (st, d) in enumerate(zip(station_defs, demands)):
        if st.kind == "delay":
            queues.append(None)
            samplers.append([])
            continue
        queues.append(SimQueue(st.name, st.servers))
        samplers.append(
            [
                streams.exponential_sampler(
                    f"service:{st.name}:p{p}", d * weights[p]
                )
                for p in range(n_pages)
            ]
        )
        if d > 0:
            route.append(idx)
    extra_delay = float(
        sum(d for st, d in zip(station_defs, demands) if st.kind == "delay")
    )
    think_mean = network.think_time + extra_delay
    think_station = SimDelay("think")
    think_sampler = (
        streams.exponential_sampler("think", think_mean) if think_mean > 0 else None
    )

    stage = np.full(population, -1, dtype=np.int64)
    page_of = np.zeros(population, dtype=np.int64)  # next page index per user
    cycle_start = np.zeros(population)

    events = EventList()
    for cust in range(population):
        events.schedule(0.0, _CUSTOMER_START, cust)

    completion_times: list[float] = []
    response_samples: list[float] = []
    completion_pages: list[int] = []
    stats_reset_done = warmup == 0.0

    def begin_page(t: float, cust: int) -> None:
        stage[cust] = 0
        cycle_start[cust] = t
        if route:
            enter_station(t, cust, route[0])
        else:
            finish_page(t, cust)

    def enter_station(t: float, cust: int, st_idx: int) -> None:
        if queues[st_idx].arrive(t, cust):
            draw = samplers[st_idx][page_of[cust]]
            events.schedule(t + draw(), _SERVICE_DONE, (st_idx, cust))

    def finish_page(t: float, cust: int) -> None:
        completion_times.append(t)
        response_samples.append(t - cycle_start[cust])
        completion_pages.append(int(page_of[cust]))
        page_of[cust] = (page_of[cust] + 1) % n_pages
        stage[cust] = -1
        if think_sampler is not None:
            think_station.arrive(t)
            events.schedule(t + think_sampler(), _THINK_DONE, cust)
        else:
            begin_page(t, cust)

    while events:
        if events.peek_time() > duration:
            break
        now, kind, payload = events.pop()
        if not stats_reset_done and now >= warmup:
            for q in queues:
                if q is not None:
                    q.reset_statistics(warmup)
            think_station.reset_statistics(warmup)
            stats_reset_done = True
        if kind == _CUSTOMER_START:
            begin_page(now, payload)
        elif kind == _THINK_DONE:
            think_station.depart(now)
            begin_page(now, payload)
        else:
            st_idx, cust = payload
            next_cust = queues[st_idx].depart(now)
            if next_cust is not None:
                draw = samplers[st_idx][page_of[next_cust]]
                events.schedule(now + draw(), _SERVICE_DONE, (st_idx, next_cust))
            pos = int(stage[cust]) + 1
            if pos < len(route):
                stage[cust] = pos
                enter_station(now, cust, route[pos])
            else:
                finish_page(now, cust)

    comp = np.asarray(completion_times)
    resp = np.asarray(response_samples)
    pages_arr = np.asarray(completion_pages)
    in_window = comp >= warmup
    window = duration - warmup
    cycles = int(in_window.sum())
    throughput = cycles / window if window > 0 else 0.0
    mean_resp = float(resp[in_window].mean()) if cycles else 0.0

    utils = np.zeros(len(station_defs))
    jobs = np.zeros(len(station_defs))
    xput = np.zeros(len(station_defs))
    for idx, q in enumerate(queues):
        if q is None:
            xput[idx] = throughput
            continue
        utils[idx] = q.utilization(duration)
        jobs[idx] = q.mean_jobs(duration)
        xput[idx] = q.throughput(duration)

    aggregate = SimulationResult(
        population=population,
        duration=duration,
        warmup=warmup,
        seed=seed,
        throughput=throughput,
        response_time=mean_resp,
        cycle_time=mean_resp + think_mean,
        station_names=network.station_names,
        utilizations=utils,
        mean_jobs=jobs,
        station_throughputs=xput,
        completion_times=comp,
        response_samples=resp,
        cycles_completed=cycles,
    )

    page_stats = []
    for p, name in enumerate(page_names):
        mask = in_window & (pages_arr == p)
        samples = resp[mask]
        page_stats.append(
            PageStats(
                name=name,
                weight=float(weights[p]),
                completions=int(mask.sum()),
                mean_response_time=float(samples.mean()) if samples.size else 0.0,
                p95_response_time=(
                    float(np.percentile(samples, 95)) if samples.size else 0.0
                ),
            )
        )
    return WorkflowResult(aggregate=aggregate, pages=tuple(page_stats))
