"""Multi-class closed-network simulation.

Validation substrate for the multi-class solvers: each class has its own
demand vector, think time and population, sharing the FCFS stations.
(Class-dependent exponential service at FCFS stations is outside BCMP
product form, so the solvers are approximations — this simulator is the
ground truth they are scored against.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .events import EventList
from .rng import RandomStreams
from .stations import SimDelay, SimQueue

__all__ = ["ClassSpec", "MultiClassSimResult", "simulate_multiclass"]

_THINK_DONE = 0
_SERVICE_DONE = 1
_CUSTOMER_START = 2


@dataclass(frozen=True)
class ClassSpec:
    """One customer class: population, think time and per-station demands."""

    name: str
    population: int
    think_time: float
    demands: Mapping[str, float]

    def __post_init__(self) -> None:
        if self.population < 0:
            raise ValueError(f"population must be non-negative, got {self.population}")
        if self.think_time < 0:
            raise ValueError("think_time must be non-negative")
        if any(d < 0 for d in self.demands.values()):
            raise ValueError("demands must be non-negative")


@dataclass(frozen=True)
class MultiClassSimResult:
    """Per-class and per-station steady-state measurements."""

    class_names: tuple[str, ...]
    station_names: tuple[str, ...]
    throughput: np.ndarray  # per class
    response_time: np.ndarray  # per class
    cycle_time: np.ndarray  # per class
    utilizations: np.ndarray  # per station (per-server)
    completions: np.ndarray  # per class

    @property
    def total_throughput(self) -> float:
        return float(self.throughput.sum())

    def of_class(self, name: str) -> dict:
        try:
            ci = self.class_names.index(name)
        except ValueError:
            raise KeyError(f"unknown class {name!r}") from None
        return {
            "throughput": float(self.throughput[ci]),
            "response_time": float(self.response_time[ci]),
            "cycle_time": float(self.cycle_time[ci]),
            "completions": int(self.completions[ci]),
        }


def simulate_multiclass(
    station_names: Sequence[str],
    servers: Mapping[str, int],
    classes: Sequence[ClassSpec],
    duration: float,
    warmup: float = 0.0,
    seed: int = 0,
) -> MultiClassSimResult:
    """Simulate a closed multi-class network at fixed per-class populations.

    Routing is the same fixed station order for every class (a class with
    zero demand at a station skips it); service times are exponential
    with class-specific means.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if not 0 <= warmup < duration:
        raise ValueError("warmup must lie in [0, duration)")
    names = tuple(station_names)
    if not classes:
        raise ValueError("need at least one class")
    class_names = tuple(spec.name for spec in classes)
    if len(set(class_names)) != len(class_names):
        raise ValueError("duplicate class names")
    total_pop = sum(spec.population for spec in classes)
    if total_pop < 1:
        raise ValueError("total population must be >= 1")

    streams = RandomStreams(seed)
    queues = [SimQueue(name, servers.get(name, 1)) for name in names]
    think = SimDelay("think")

    # per (class, station) samplers and per-class routes
    samplers: list[list] = []
    routes: list[list[int]] = []
    think_samplers = []
    for spec in classes:
        row = []
        route = []
        for idx, st in enumerate(names):
            d = float(spec.demands.get(st, 0.0))
            row.append(
                streams.exponential_sampler(f"svc:{spec.name}:{st}", d)
            )
            if d > 0:
                route.append(idx)
        samplers.append(row)
        routes.append(route)
        think_samplers.append(
            streams.exponential_sampler(f"think:{spec.name}", spec.think_time)
            if spec.think_time > 0
            else None
        )
        if not route and spec.think_time == 0 and spec.population > 0:
            raise ValueError(f"class {spec.name!r} has nothing to do")

    # flatten customers: (class index, per-class position)
    cust_class = []
    for ci, spec in enumerate(classes):
        cust_class.extend([ci] * spec.population)
    cust_class = np.array(cust_class, dtype=int)
    stage = np.full(total_pop, -1, dtype=int)
    cycle_start = np.zeros(total_pop)

    events = EventList()
    for cust in range(total_pop):
        events.schedule(0.0, _CUSTOMER_START, cust)

    comp_t: list[float] = []
    comp_class: list[int] = []
    resp: list[float] = []
    stats_reset = warmup == 0.0

    def begin(t: float, cust: int) -> None:
        ci = cust_class[cust]
        stage[cust] = 0
        cycle_start[cust] = t
        route = routes[ci]
        if route:
            enter(t, cust, route[0])
        else:
            finish(t, cust)

    def enter(t: float, cust: int, st_idx: int) -> None:
        if queues[st_idx].arrive(t, cust):
            draw = samplers[cust_class[cust]][st_idx]
            events.schedule(t + draw(), _SERVICE_DONE, (st_idx, cust))

    def finish(t: float, cust: int) -> None:
        ci = cust_class[cust]
        comp_t.append(t)
        comp_class.append(ci)
        resp.append(t - cycle_start[cust])
        stage[cust] = -1
        sampler = think_samplers[ci]
        if sampler is not None:
            think.arrive(t)
            events.schedule(t + sampler(), _THINK_DONE, cust)
        else:
            begin(t, cust)

    while events:
        if events.peek_time() > duration:
            break
        now, kind, payload = events.pop()
        if not stats_reset and now >= warmup:
            for q in queues:
                q.reset_statistics(warmup)
            think.reset_statistics(warmup)
            stats_reset = True
        if kind == _CUSTOMER_START:
            begin(now, payload)
        elif kind == _THINK_DONE:
            think.depart(now)
            begin(now, payload)
        else:
            st_idx, cust = payload
            nxt = queues[st_idx].depart(now)
            if nxt is not None:
                draw = samplers[cust_class[nxt]][st_idx]
                events.schedule(now + draw(), _SERVICE_DONE, (st_idx, nxt))
            ci = cust_class[cust]
            pos = int(stage[cust]) + 1
            route = routes[ci]
            if pos < len(route):
                stage[cust] = pos
                enter(now, cust, route[pos])
            else:
                finish(now, cust)

    comp_t_arr = np.asarray(comp_t)
    comp_c_arr = np.asarray(comp_class, dtype=int)
    resp_arr = np.asarray(resp)
    window = duration - warmup
    in_win = comp_t_arr >= warmup

    n_classes = len(classes)
    xput = np.zeros(n_classes)
    rtime = np.zeros(n_classes)
    counts = np.zeros(n_classes, dtype=int)
    for ci in range(n_classes):
        mask = in_win & (comp_c_arr == ci)
        counts[ci] = int(mask.sum())
        xput[ci] = counts[ci] / window
        rtime[ci] = float(resp_arr[mask].mean()) if counts[ci] else 0.0

    utils = np.array([q.utilization(duration) for q in queues])
    think_z = np.array([spec.think_time for spec in classes])
    return MultiClassSimResult(
        class_names=class_names,
        station_names=names,
        throughput=xput,
        response_time=rtime,
        cycle_time=rtime + think_z,
        utilizations=utils,
        completions=counts,
    )
