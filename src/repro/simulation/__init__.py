"""Discrete-event simulation testbed.

Substitutes the paper's physical multi-tier deployment: a from-scratch
event-driven simulator of closed queueing networks whose output
(throughput, response time, per-resource utilization) plays the role of
the measured load-test data.
"""

from .closednet import SimulationResult, simulate_closed_network
from .distributions import (
    Deterministic,
    DistributionShape,
    Erlang,
    Exponential,
    HyperExponential,
    LogNormal,
)
from .events import EventList
from .multiclass import ClassSpec, MultiClassSimResult, simulate_multiclass
from .rng import RandomStreams, spawn_seeds
from .software import ConnectionPool, PoolStats
from .stations import SimDelay, SimQueue
from .workflows import PageStats, WorkflowResult, simulate_workflow

__all__ = [
    "ClassSpec",
    "ConnectionPool",
    "Deterministic",
    "DistributionShape",
    "PoolStats",
    "Erlang",
    "EventList",
    "Exponential",
    "HyperExponential",
    "LogNormal",
    "MultiClassSimResult",
    "PageStats",
    "RandomStreams",
    "spawn_seeds",
    "SimDelay",
    "SimQueue",
    "SimulationResult",
    "WorkflowResult",
    "simulate_closed_network",
    "simulate_multiclass",
    "simulate_workflow",
]
