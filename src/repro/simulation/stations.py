"""Simulated queueing stations.

Each station tracks exactly the accounting the paper's monitors report:
busy-server time (-> utilization, as vmstat/iostat would), completion
counts (-> per-resource throughput, the forced-flow check) and sojourn
times.  Service times are drawn by the owning simulator; stations only
manage queue/server state so they stay unit-testable in isolation.

``SimQueue`` is FCFS with ``C`` identical servers — the model of a
multi-core CPU (C = cores) or a disk / network path (C = 1).
``SimDelay`` is an infinite-server delay used for client think time.
"""

from __future__ import annotations

from collections import deque

__all__ = ["SimQueue", "SimDelay"]


class SimQueue:
    """FCFS multi-server queue state machine.

    The simulator calls :meth:`arrive` when a customer reaches the
    station and :meth:`depart` when its service completes.  ``arrive``
    returns ``True`` when the customer seized a server immediately (the
    caller must then schedule its completion); otherwise the customer
    waits and will be returned by a later ``depart`` for scheduling.

    Time-integrated statistics are advanced lazily from the timestamps
    of the calls, so no per-tick work is needed.
    """

    __slots__ = (
        "name",
        "servers",
        "busy",
        "waiting",
        "completions",
        "busy_time",
        "queue_time_area",
        "arrivals",
        "_last_t",
        "_stats_from",
    )

    def __init__(self, name: str, servers: int = 1) -> None:
        if servers < 1:
            raise ValueError(f"servers must be >= 1, got {servers}")
        self.name = name
        self.servers = int(servers)
        self.busy = 0
        self.waiting: deque = deque()
        self.completions = 0
        self.arrivals = 0
        self.busy_time = 0.0  # integral of busy servers dt (after _stats_from)
        self.queue_time_area = 0.0  # integral of (waiting + busy) dt
        self._last_t = 0.0
        self._stats_from = 0.0

    # -- internal accounting ---------------------------------------------------

    def _advance(self, t: float) -> None:
        if t > self._last_t:
            dt = t - self._last_t
            self.busy_time += self.busy * dt
            self.queue_time_area += (self.busy + len(self.waiting)) * dt
            self._last_t = t

    def reset_statistics(self, t: float) -> None:
        """Discard accumulated statistics (end of warm-up)."""
        self._advance(t)
        self.busy_time = 0.0
        self.queue_time_area = 0.0
        self.completions = 0
        self.arrivals = 0
        self._stats_from = t
        self._last_t = t

    # -- state transitions -------------------------------------------------------

    def arrive(self, t: float, customer) -> bool:
        """Customer arrives; True iff it starts service immediately."""
        self._advance(t)
        self.arrivals += 1
        if self.busy < self.servers:
            self.busy += 1
            return True
        self.waiting.append(customer)
        return False

    def depart(self, t: float):
        """A service completes; returns the next waiting customer (or None).

        The freed server is immediately handed to the head of the queue
        when one exists — the caller schedules that customer's service
        completion.
        """
        self._advance(t)
        if self.busy <= 0:
            raise RuntimeError(f"station {self.name!r}: depart with no busy server")
        self.completions += 1
        if self.waiting:
            return self.waiting.popleft()
        self.busy -= 1
        return None

    # -- reported metrics ----------------------------------------------------------

    def utilization(self, now: float) -> float:
        """Mean per-server utilization since the last statistics reset."""
        self._advance(now)
        elapsed = now - self._stats_from
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self.servers)

    def mean_jobs(self, now: float) -> float:
        """Time-averaged number of jobs at the station (queue + service)."""
        self._advance(now)
        elapsed = now - self._stats_from
        if elapsed <= 0:
            return 0.0
        return self.queue_time_area / elapsed

    def throughput(self, now: float) -> float:
        """Completion rate since the last statistics reset."""
        elapsed = now - self._stats_from
        if elapsed <= 0:
            return 0.0
        return self.completions / elapsed

    @property
    def jobs_present(self) -> int:
        return self.busy + len(self.waiting)


class SimDelay:
    """Infinite-server delay station (think time).

    Customers never queue; only completion counting and the
    time-averaged population are tracked.
    """

    __slots__ = ("name", "present", "completions", "pop_area", "_last_t", "_stats_from")

    def __init__(self, name: str) -> None:
        self.name = name
        self.present = 0
        self.completions = 0
        self.pop_area = 0.0
        self._last_t = 0.0
        self._stats_from = 0.0

    def _advance(self, t: float) -> None:
        if t > self._last_t:
            self.pop_area += self.present * (t - self._last_t)
            self._last_t = t

    def reset_statistics(self, t: float) -> None:
        self._advance(t)
        self.pop_area = 0.0
        self.completions = 0
        self._stats_from = t
        self._last_t = t

    def arrive(self, t: float) -> None:
        self._advance(t)
        self.present += 1

    def depart(self, t: float) -> None:
        self._advance(t)
        if self.present <= 0:
            raise RuntimeError(f"delay {self.name!r}: depart from empty station")
        self.present -= 1
        self.completions += 1

    def mean_population(self, now: float) -> float:
        self._advance(now)
        elapsed = now - self._stats_from
        if elapsed <= 0:
            return 0.0
        return self.pop_area / elapsed
