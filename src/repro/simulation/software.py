"""Software bottlenecks: connection pools / admission limits.

The paper explicitly scopes these out ("software bottlenecks such as
synchronization locks and connection pools ... are assumed to be tuned
prior to performance analysis") — which makes them the natural
*extension*: this module adds finite-capacity admission control to the
simulated testbed so one can measure exactly what happens when a pool is
NOT tuned, and show that hardware-only models (all the MVA variants)
overpredict throughput once a software limit binds.

A :class:`ConnectionPool` guards a contiguous span of the page route
(typically one tier): a customer must hold one of ``capacity`` tokens
from its first pool station through its last, and queues FIFO in the
pool otherwise.  The resulting wait is *software* queueing invisible to
utilization monitors — hardware looks idle while users wait, the classic
mis-tuned-pool signature.

Use via :func:`repro.simulation.simulate_closed_network` 's ``pools``
argument; per-pool statistics come back in
:class:`PoolStats`-valued ``SimulationResult.pool_stats``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["ConnectionPool", "PoolStats"]


@dataclass(frozen=True)
class ConnectionPool:
    """An admission limit over a set of stations.

    Attributes
    ----------
    name:
        Pool label (e.g. ``"db-connections"``).
    capacity:
        Maximum customers simultaneously inside the guarded stations.
    stations:
        Names of the guarded stations.  They must form a contiguous span
        of the simulator's page route (one tier does); the simulator
        validates this.
    """

    name: str
    capacity: int
    stations: tuple[str, ...]

    def __init__(self, name: str, capacity: int, stations: Sequence[str]) -> None:
        if capacity < 1:
            raise ValueError(f"pool capacity must be >= 1, got {capacity}")
        stations = tuple(stations)
        if not stations:
            raise ValueError("pool must guard at least one station")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "capacity", int(capacity))
        object.__setattr__(self, "stations", stations)


@dataclass(frozen=True)
class PoolStats:
    """Steady-state statistics of one pool."""

    name: str
    capacity: int
    acquisitions: int
    mean_wait: float
    max_waiting: int
    utilization: float

    def summary(self) -> str:
        return (
            f"{self.name}: {self.capacity} tokens, "
            f"{self.utilization:.0%} busy, mean wait {self.mean_wait * 1000:.1f} ms, "
            f"max queue {self.max_waiting}"
        )
