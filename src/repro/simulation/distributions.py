"""Service-time distribution shapes for the simulator.

Exact MVA is exact only for BCMP networks — FCFS stations need
*exponential* service.  The paper implicitly relies on that; this module
makes the assumption testable by letting the testbed draw service times
from other families with a chosen coefficient of variation (CV):

* :class:`Exponential` — CV 1, the product-form baseline;
* :class:`Deterministic` — CV 0 (constant service);
* :class:`Erlang` — CV ``1/sqrt(k)`` (sub-exponential variability);
* :class:`HyperExponential` — CV > 1 (two-phase, burstier than Poisson);
* :class:`LogNormal` — arbitrary CV, the shape real page-service
  measurements usually resemble.

Shapes carry no mean: the simulator scales each to the station's demand,
so swapping the family changes only the *variability* of the system.
The sensitivity bench quantifies how far measured throughput drifts
from the exponential-exact MVA prediction as CV moves away from 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Deterministic",
    "DistributionShape",
    "Erlang",
    "Exponential",
    "HyperExponential",
    "LogNormal",
]


class DistributionShape:
    """Base class: a non-negative distribution shape with unit mean."""

    #: Coefficient of variation (std / mean); subclasses set it.
    cv: float

    def _draw_block(self, gen: np.random.Generator, size: int) -> np.ndarray:
        raise NotImplementedError

    def sampler(self, gen: np.random.Generator, mean: float, block: int = 1024):
        """A callable producing variates with the given mean.

        Buffered in blocks like
        :meth:`repro.simulation.rng.RandomStreams.exponential_sampler`.
        """
        if mean < 0:
            raise ValueError(f"mean must be non-negative, got {mean}")
        if mean == 0.0:
            return lambda: 0.0
        state = {"buf": self._draw_block(gen, block) * mean, "i": 0}

        def draw() -> float:
            i = state["i"]
            buf = state["buf"]
            if i >= buf.shape[0]:
                buf = self._draw_block(gen, block) * mean
                state["buf"] = buf
                i = 0
            state["i"] = i + 1
            return float(buf[i])

        return draw


@dataclass(frozen=True)
class Exponential(DistributionShape):
    """Memoryless service — the BCMP/product-form case (CV = 1)."""

    cv: float = 1.0

    def _draw_block(self, gen, size):
        return gen.exponential(1.0, size)


@dataclass(frozen=True)
class Deterministic(DistributionShape):
    """Constant service time (CV = 0)."""

    cv: float = 0.0

    def _draw_block(self, gen, size):
        return np.ones(size)


class Erlang(DistributionShape):
    """Sum of ``k`` exponential phases — CV ``1/sqrt(k)`` < 1."""

    def __init__(self, k: int = 2) -> None:
        if k < 1:
            raise ValueError(f"Erlang needs k >= 1 phases, got {k}")
        self.k = int(k)
        self.cv = 1.0 / math.sqrt(self.k)

    def _draw_block(self, gen, size):
        return gen.gamma(self.k, 1.0 / self.k, size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Erlang(k={self.k})"


class HyperExponential(DistributionShape):
    """Two-phase hyperexponential with balanced means — CV > 1.

    Uses the standard balanced-means construction: phase probabilities
    ``p, 1-p`` with rates chosen so the mean is 1 and the CV matches.
    """

    def __init__(self, cv: float = 2.0) -> None:
        if cv <= 1.0:
            raise ValueError(f"hyperexponential needs CV > 1, got {cv}")
        self.cv = float(cv)
        c2 = cv * cv
        # balanced means: p1/mu1 = p2/mu2 = 1/2
        self.p1 = 0.5 * (1.0 + math.sqrt((c2 - 1.0) / (c2 + 1.0)))
        self.mu1 = 2.0 * self.p1
        self.mu2 = 2.0 * (1.0 - self.p1)

    def _draw_block(self, gen, size):
        phase1 = gen.random(size) < self.p1
        scale = np.where(phase1, 1.0 / self.mu1, 1.0 / self.mu2)
        return gen.exponential(1.0, size) * scale

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HyperExponential(cv={self.cv})"


class LogNormal(DistributionShape):
    """Log-normal service with the requested CV."""

    def __init__(self, cv: float = 1.0) -> None:
        if cv <= 0:
            raise ValueError(f"lognormal needs CV > 0, got {cv}")
        self.cv = float(cv)
        self.sigma2 = math.log(1.0 + cv * cv)
        self.mu = -0.5 * self.sigma2  # unit mean

    def _draw_block(self, gen, size):
        return gen.lognormal(self.mu, math.sqrt(self.sigma2), size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LogNormal(cv={self.cv})"
