"""Future-event list for the discrete-event simulator.

A thin, fast wrapper around :mod:`heapq` holding ``(time, seq, kind,
payload)`` tuples.  The monotonically increasing sequence number breaks
time ties deterministically (FIFO among simultaneous events), which
keeps runs bit-reproducible across Python versions — heap order on
equal keys is otherwise unspecified.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator

__all__ = ["EventList"]


class EventList:
    """Min-heap of timestamped events."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Any]] = []
        self._seq = 0

    def schedule(self, time: float, kind: int, payload: Any = None) -> None:
        """Insert an event; ``kind`` is an integer tag the simulator switches on."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        heapq.heappush(self._heap, (time, self._seq, kind, payload))
        self._seq += 1

    def pop(self) -> tuple[float, int, Any]:
        """Remove and return the earliest ``(time, kind, payload)``."""
        time, _seq, kind, payload = heapq.heappop(self._heap)
        return time, kind, payload

    def peek_time(self) -> float:
        """Timestamp of the earliest event (raises IndexError when empty)."""
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain_until(self, horizon: float) -> Iterator[tuple[float, int, Any]]:
        """Yield events in order until the heap empties or passes ``horizon``."""
        while self._heap and self._heap[0][0] <= horizon:
            yield self.pop()
