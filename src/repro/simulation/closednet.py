"""Discrete-event simulation of closed multi-tier queueing networks.

This is the testbed substitute for the paper's physical servers: an
event-driven simulation of the Fig. 2 model — ``N`` customers cycling
through think time and the CPU / disk / network stations of every tier.
Given the same demands, server counts and think time as an MVA model it
produces the "measured" throughput, response-time and utilization
numbers that the paper obtains from The Grinder plus vmstat/iostat/
netstat.

Modelling choices (all standard for product-form comparability):

* exponential service times and think times — the BCMP conditions under
  which exact MVA is provably exact, so solver-vs-simulation deviations
  measure solver error, not distribution mismatch;
* one visit per station per page cycle with the *demand* as its mean —
  for FCFS exponential stations, splitting ``D_k`` into ``V_k``
  exponential visits of mean ``S_k`` leaves all mean steady-state
  quantities unchanged, so the simpler routing is exact for the metrics
  of interest;
* demands are evaluated at the run's population ``N`` (``demand_at(N)``)
  — concurrency-dependent demands manifest *across* runs, exactly as in
  the paper's load tests where each test fixes a concurrency.

The implementation is a single tight event loop over an
:class:`~repro.simulation.events.EventList`; stations keep their own
lazily-integrated statistics (:mod:`repro.simulation.stations`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.network import ClosedNetwork
from .events import EventList
from .rng import RandomStreams
from .software import ConnectionPool, PoolStats
from .stations import SimDelay, SimQueue

__all__ = ["SimulationResult", "simulate_closed_network"]

_THINK_DONE = 0
_SERVICE_DONE = 1
_CUSTOMER_START = 2


@dataclass(frozen=True)
class SimulationResult:
    """Steady-state measurements of one simulation run.

    All rates and averages are computed over ``[warmup, duration]``;
    the raw per-cycle records (including warm-up) are retained for
    transient analysis (Fig. 1).
    """

    population: int
    duration: float
    warmup: float
    seed: int
    throughput: float
    response_time: float
    cycle_time: float
    station_names: tuple[str, ...]
    utilizations: np.ndarray
    mean_jobs: np.ndarray
    station_throughputs: np.ndarray
    completion_times: np.ndarray
    response_samples: np.ndarray
    cycles_completed: int
    pool_stats: tuple[PoolStats, ...] = ()

    def pool(self, name: str) -> PoolStats:
        """Statistics of a connection pool by name."""
        for stats in self.pool_stats:
            if stats.name == name:
                return stats
        raise KeyError(f"unknown pool {name!r}")

    def utilization_of(self, station: str) -> float:
        try:
            return float(self.utilizations[self.station_names.index(station)])
        except ValueError:
            raise KeyError(f"unknown station {station!r}") from None

    def windowed_series(self, window: float) -> dict[str, np.ndarray]:
        """Per-window throughput and mean response time over the whole run.

        Returns ``{"time", "throughput", "response_time"}`` arrays — the
        Grinder-Analyzer-style transient view of Fig. 1.  Windows with no
        completions report NaN response time.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        edges = np.arange(0.0, self.duration + window, window)
        counts, _ = np.histogram(self.completion_times, bins=edges)
        sums, _ = np.histogram(
            self.completion_times, bins=edges, weights=self.response_samples
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            mean_rt = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
        return {
            "time": edges[1:],
            "throughput": counts / window,
            "response_time": mean_rt,
        }

    def demand_estimates(self, servers: Sequence[int]) -> dict[str, float]:
        """Service demands via the service-demand law ``D = U_total / X``.

        ``servers`` supplies ``C_k`` per station (the result only stores
        per-server utilization): total utilization is ``U_k * C_k`` and
        ``D_k = U_k C_k / X`` — exactly the extraction the paper performs
        on Tables 2-3.
        """
        if self.throughput <= 0:
            raise ValueError("no completions in measurement window")
        if len(servers) != len(self.station_names):
            raise ValueError(
                f"expected {len(self.station_names)} server counts, got {len(servers)}"
            )
        return {
            name: float(u) * int(c) / self.throughput
            for name, u, c in zip(self.station_names, self.utilizations, servers)
        }


def simulate_closed_network(
    network: ClosedNetwork,
    population: int,
    duration: float,
    warmup: float = 0.0,
    seed: int = 0,
    start_times: Sequence[float] | None = None,
    service_shape=None,
    pools: Sequence[ConnectionPool] | None = None,
    think_shape=None,
) -> SimulationResult:
    """Run one closed-network simulation at a fixed population.

    Parameters
    ----------
    network:
        The model; varying demands are evaluated at ``population``.
    population:
        Number of circulating customers ``N``.
    duration:
        Simulated seconds; events past this horizon are discarded.
    warmup:
        Statistics (rates, utilizations, means) ignore ``[0, warmup)``;
        raw cycle records keep everything.
    seed:
        Root seed for all random streams.
    start_times:
        Optional per-customer first-arrival times (ramp-up); defaults to
        all zero.  Values beyond ``duration`` mean the customer never
        starts.
    service_shape:
        Service-time distribution shape(s) — a
        :class:`~repro.simulation.distributions.DistributionShape`
        applied to every queueing station, or a mapping
        ``station name -> shape`` (unlisted stations stay exponential).
        ``None`` (default) is exponential everywhere — the product-form
        case exact MVA assumes.  Think time is always exponential.
    pools:
        Optional :class:`~repro.simulation.software.ConnectionPool`
        admission limits (software bottlenecks); per-pool statistics are
        returned in ``SimulationResult.pool_stats``.
    think_shape:
        Optional distribution shape for the think time (its mean stays
        the network's ``Z``).  Default exponential; the paper's related
        work models realistic user wait-time distributions, and delay
        stations are insensitive to the shape in product-form theory —
        a property the tests verify empirically.

    Returns
    -------
    SimulationResult
    """
    if population < 1:
        raise ValueError(f"population must be >= 1, got {population}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if not 0 <= warmup < duration:
        raise ValueError(f"warmup must lie in [0, duration), got {warmup}")

    demands = network.demands_at(population)
    station_defs = network.stations
    if not any(d > 0 for d in demands) and network.think_time == 0:
        raise ValueError("all demands and think time are zero: nothing to simulate")

    def _shape_for(name: str):
        if service_shape is None:
            return None
        if hasattr(service_shape, "sampler"):
            return service_shape
        return service_shape.get(name)

    streams = RandomStreams(seed)
    queues: list[SimQueue | None] = []
    samplers = []
    route: list[int] = []  # indices of stations with positive demand, in order
    for idx, (st, d) in enumerate(zip(station_defs, demands)):
        if st.kind == "delay":
            # Extra delay stations fold into think time for the simulator.
            queues.append(None)
            samplers.append(None)
            continue
        queues.append(SimQueue(st.name, st.servers))
        shape = _shape_for(st.name)
        if shape is None:
            samplers.append(streams.exponential_sampler(f"service:{st.name}", d))
        else:
            samplers.append(
                shape.sampler(streams.get(f"service:{st.name}"), d)
            )
        if d > 0:
            route.append(idx)
    extra_delay = float(
        sum(d for st, d in zip(station_defs, demands) if st.kind == "delay")
    )
    think_mean = network.think_time + extra_delay
    think_station = SimDelay("think")
    if think_mean <= 0:
        think_sampler = None
    elif think_shape is not None:
        think_sampler = think_shape.sampler(streams.get("think"), think_mean)
    else:
        think_sampler = streams.exponential_sampler("think", think_mean)

    # Per-customer state.
    stage = np.full(population, -1, dtype=np.int64)  # index into route
    cycle_start = np.zeros(population)

    # Connection pools: map route positions to pool entry/exit, token
    # state and waiting queues.  Pool stations must be contiguous along
    # the route so "holding a token" is a well-defined span.
    pool_specs = list(pools or [])
    pool_entry: dict[int, int] = {}  # route position -> pool index
    pool_exit: dict[int, int] = {}
    pool_tokens: list[int] = []
    pool_waiting: list[deque] = []
    pool_wait_since: list[dict[int, float]] = []
    pool_acquisitions: list[int] = []
    pool_wait_total: list[float] = []
    pool_max_waiting: list[int] = []
    pool_busy_area: list[float] = []
    pool_last_t: list[float] = []
    route_names = [station_defs[idx].name for idx in route]
    for p_idx, pool in enumerate(pool_specs):
        positions = [i for i, name in enumerate(route_names) if name in pool.stations]
        if not positions:
            raise ValueError(
                f"pool {pool.name!r} guards no routed station (all zero-demand?)"
            )
        if positions != list(range(positions[0], positions[-1] + 1)):
            raise ValueError(
                f"pool {pool.name!r}: guarded stations must be contiguous on the "
                f"route, got positions {positions}"
            )
        if positions[0] in pool_entry or positions[-1] in pool_exit:
            raise ValueError("pools may not overlap on the route")
        pool_entry[positions[0]] = p_idx
        pool_exit[positions[-1]] = p_idx
        pool_tokens.append(pool.capacity)
        pool_waiting.append(deque())
        pool_wait_since.append({})
        pool_acquisitions.append(0)
        pool_wait_total.append(0.0)
        pool_max_waiting.append(0)
        pool_busy_area.append(0.0)
        pool_last_t.append(0.0)

    def _pool_advance(p_idx: int, t: float) -> None:
        busy = pool_specs[p_idx].capacity - pool_tokens[p_idx]
        pool_busy_area[p_idx] += busy * (t - pool_last_t[p_idx])
        pool_last_t[p_idx] = t

    events = EventList()
    if start_times is None:
        for cust in range(population):
            events.schedule(0.0, _CUSTOMER_START, cust)
    else:
        if len(start_times) != population:
            raise ValueError(
                f"start_times must have length {population}, got {len(start_times)}"
            )
        for cust, t0 in enumerate(start_times):
            if t0 < 0:
                raise ValueError("start_times must be non-negative")
            if t0 <= duration:
                events.schedule(float(t0), _CUSTOMER_START, cust)

    completion_times: list[float] = []
    response_samples: list[float] = []
    stats_reset_done = warmup == 0.0
    now = 0.0

    def begin_cycle(t: float, cust: int) -> None:
        """Think completed (or first start): enter the first routed station."""
        cycle_start[cust] = t
        if route:
            advance_to_position(t, cust, 0)
        else:
            finish_cycle(t, cust)

    def enter_station(t: float, cust: int, st_idx: int) -> None:
        q = queues[st_idx]
        if q.arrive(t, cust):
            events.schedule(t + samplers[st_idx](), _SERVICE_DONE, (st_idx, cust))

    def advance_to_position(t: float, cust: int, pos: int) -> None:
        """Move a customer to route position ``pos``, honouring pools."""
        stage[cust] = pos
        p_idx = pool_entry.get(pos)
        if p_idx is not None:
            _pool_advance(p_idx, t)
            if pool_tokens[p_idx] > 0:
                pool_tokens[p_idx] -= 1
                pool_acquisitions[p_idx] += 1
            else:
                pool_waiting[p_idx].append((cust, pos))
                pool_wait_since[p_idx][cust] = t
                pool_max_waiting[p_idx] = max(
                    pool_max_waiting[p_idx], len(pool_waiting[p_idx])
                )
                return
        enter_station(t, cust, route[pos])

    def release_pool(p_idx: int, t: float) -> None:
        """Free a token; hand it straight to the head waiter if any."""
        _pool_advance(p_idx, t)
        if pool_waiting[p_idx]:
            cust2, pos2 = pool_waiting[p_idx].popleft()
            pool_wait_total[p_idx] += t - pool_wait_since[p_idx].pop(cust2)
            pool_acquisitions[p_idx] += 1
            enter_station(t, cust2, route[pos2])
        else:
            pool_tokens[p_idx] += 1

    def finish_cycle(t: float, cust: int) -> None:
        completion_times.append(t)
        response_samples.append(t - cycle_start[cust])
        stage[cust] = -1
        if think_sampler is not None:
            think_station.arrive(t)
            events.schedule(t + think_sampler(), _THINK_DONE, cust)
        else:
            begin_cycle(t, cust)

    while events:
        if events.peek_time() > duration:
            break
        now, kind, payload = events.pop()
        if not stats_reset_done and now >= warmup:
            for q in queues:
                if q is not None:
                    q.reset_statistics(warmup)
            think_station.reset_statistics(warmup)
            for p_idx in range(len(pool_specs)):
                _pool_advance(p_idx, warmup)
                pool_acquisitions[p_idx] = 0
                pool_wait_total[p_idx] = 0.0
                pool_busy_area[p_idx] = 0.0
                pool_max_waiting[p_idx] = len(pool_waiting[p_idx])
            stats_reset_done = True
        if kind == _CUSTOMER_START:
            begin_cycle(now, payload)
        elif kind == _THINK_DONE:
            think_station.depart(now)
            begin_cycle(now, payload)
        else:  # _SERVICE_DONE
            st_idx, cust = payload
            next_cust = queues[st_idx].depart(now)
            if next_cust is not None:
                events.schedule(
                    now + samplers[st_idx](), _SERVICE_DONE, (st_idx, next_cust)
                )
            done_pos = int(stage[cust])
            exit_pool = pool_exit.get(done_pos)
            if exit_pool is not None:
                release_pool(exit_pool, now)
            pos = done_pos + 1
            if pos < len(route):
                advance_to_position(now, cust, pos)
            else:
                finish_cycle(now, cust)

    end = duration
    comp = np.asarray(completion_times)
    resp = np.asarray(response_samples)
    in_window = comp >= warmup
    window = end - warmup
    cycles = int(in_window.sum())
    throughput = cycles / window if window > 0 else 0.0
    mean_resp = float(resp[in_window].mean()) if cycles else 0.0

    utils = np.zeros(len(station_defs))
    jobs = np.zeros(len(station_defs))
    xput = np.zeros(len(station_defs))
    for idx, q in enumerate(queues):
        if q is None:
            utils[idx] = 0.0
            jobs[idx] = 0.0
            xput[idx] = throughput
            continue
        utils[idx] = q.utilization(end)
        jobs[idx] = q.mean_jobs(end)
        xput[idx] = q.throughput(end)

    pool_results = []
    for p_idx, pool in enumerate(pool_specs):
        _pool_advance(p_idx, end)
        acq = pool_acquisitions[p_idx]
        pool_results.append(
            PoolStats(
                name=pool.name,
                capacity=pool.capacity,
                acquisitions=acq,
                mean_wait=pool_wait_total[p_idx] / acq if acq else 0.0,
                max_waiting=pool_max_waiting[p_idx],
                utilization=pool_busy_area[p_idx] / ((end - warmup) * pool.capacity),
            )
        )

    return SimulationResult(
        population=population,
        duration=duration,
        warmup=warmup,
        seed=seed,
        throughput=throughput,
        response_time=mean_resp,
        cycle_time=mean_resp + think_mean,
        station_names=network.station_names,
        utilizations=utils,
        mean_jobs=jobs,
        station_throughputs=xput,
        completion_times=comp,
        response_samples=resp,
        cycles_completed=cycles,
        pool_stats=tuple(pool_results),
    )
