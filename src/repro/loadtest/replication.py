"""Replicated load tests and confidence intervals.

The paper runs each load test once and long; sound practice (and what
its industrial comparators do) is R independent replications per
operating point with confidence intervals on the means.  This module
wraps :func:`repro.loadtest.runner.run_sweep` accordingly, so deviation
claims like "MVASD within 3 %" can be read against the measurement
noise floor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..apps.base import Application
from ..simulation.rng import spawn_seeds
from .runner import LoadTestSweep, run_sweep

__all__ = ["ReplicatedMeasurement", "ReplicatedSweep", "run_replicated_sweep"]

# two-sided 97.5 % Student-t quantiles for dof 1..30 (dof > 30 -> 1.96)
_T_975 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def _t_quantile(dof: int) -> float:
    if dof < 1:
        raise ValueError("need at least 2 replications for an interval")
    return _T_975[dof - 1] if dof <= len(_T_975) else 1.96


@dataclass(frozen=True)
class ReplicatedMeasurement:
    """Mean and 95 % confidence half-width of one metric at one level."""

    level: int
    mean: float
    half_width: float
    replications: int

    @property
    def interval(self) -> tuple[float, float]:
        return (self.mean - self.half_width, self.mean + self.half_width)

    @property
    def relative_half_width(self) -> float:
        return self.half_width / self.mean if self.mean else float("inf")


@dataclass(frozen=True)
class ReplicatedSweep:
    """R independent sweeps over the same concurrency grid."""

    application: Application
    levels: np.ndarray
    sweeps: tuple[LoadTestSweep, ...]

    def __post_init__(self) -> None:
        if len(self.sweeps) < 2:
            raise ValueError("need at least 2 replications")
        for sweep in self.sweeps:
            if not np.array_equal(sweep.levels, self.levels):
                raise ValueError("replications must share the concurrency grid")

    @property
    def replications(self) -> int:
        return len(self.sweeps)

    def _metric_matrix(self, metric: str) -> np.ndarray:
        if metric not in ("throughput", "response_time", "cycle_time"):
            raise ValueError(f"unknown metric {metric!r}")
        return np.vstack([getattr(s, metric) for s in self.sweeps])

    def measurements(self, metric: str = "throughput") -> list[ReplicatedMeasurement]:
        """Per-level mean and 95 % CI across replications."""
        values = self._metric_matrix(metric)
        r = values.shape[0]
        t = _t_quantile(r - 1)
        means = values.mean(axis=0)
        stderr = values.std(axis=0, ddof=1) / math.sqrt(r)
        return [
            ReplicatedMeasurement(
                level=int(lvl), mean=float(m), half_width=float(t * se), replications=r
            )
            for lvl, m, se in zip(self.levels, means, stderr)
        ]

    def mean_sweep_values(self, metric: str = "throughput") -> np.ndarray:
        return self._metric_matrix(metric).mean(axis=0)

    def noise_floor(self, metric: str = "throughput") -> float:
        """Largest relative CI half-width across levels — the precision
        below which deviation comparisons are meaningless."""
        return max(m.relative_half_width for m in self.measurements(metric))

    def representative(self) -> LoadTestSweep:
        """The first replication — for APIs that need a live sweep."""
        return self.sweeps[0]

    def predictions(
        self,
        max_population: int | None = None,
        method: str = "mvasd",
        demand_kind: str = "cubic",
        backend: str = "auto",
        workers: int | None = None,
        cache="default",
    ):
        """One model prediction per replication, solved as one batch.

        Fits a demand table from each replication's measurements and
        solves all R resulting scenarios through
        :func:`repro.solvers.solve_stack` — they share the station
        topology, so varying-demand methods run in a single batched
        engine kernel (``backend``/``workers`` select the execution
        backend for very large replication counts).  Re-requesting the
        same predictions is served from the solver result cache
        (``cache="default"``; pass ``None`` to bypass).  The spread of
        the returned :class:`~repro.engine.batched.BatchedMVAResult`
        across its scenario axis is the model-prediction uncertainty
        induced by measurement noise, directly comparable to
        :meth:`noise_floor`.
        """
        # Deferred import: repro.solvers pulls in repro.core, which
        # reaches back into loadtest via interval_mva.  (That is also
        # why cache defaults to the string "default" rather than the
        # USE_DEFAULT_CACHE sentinel — the sentinel lives in solvers.)
        from ..solvers import Scenario, solve_stack

        n_max = (
            int(max_population)
            if max_population is not None
            else int(self.levels[-1])
        )
        scenarios = [
            Scenario(
                self.application.network,
                n_max,
                demand_functions=sweep.demand_table(kind=demand_kind).functions(),
            )
            for sweep in self.sweeps
        ]
        return solve_stack(
            scenarios, method=method, backend=backend, workers=workers, cache=cache
        )


def _replication_task(task, application: Application):
    """Run one replication in a (possibly forked) worker.

    The application rides along as the fork-inherited payload; only the
    picklable pieces of the sweep travel back (the parent re-attaches
    the live application object).
    """
    levels, duration, seed = task
    sweep = run_sweep(application, levels=levels, duration=duration, seed=seed)
    return sweep.levels, sweep.runs


def run_replicated_sweep(
    application: Application,
    replications: int = 3,
    levels: Sequence[int] | None = None,
    duration: float = 200.0,
    seed: int = 0,
    workers: int | None = 1,
    timeout: float | None = None,
) -> ReplicatedSweep:
    """Run R independent sweeps with SeedSequence-derived seeds.

    Per-replication seeds are spawned from ``seed`` via
    :func:`repro.simulation.rng.spawn_seeds` *before* any work is
    dispatched, so the result is bit-identical for every ``workers``
    value — ``workers > 1`` fans the replications out over a process
    pool (:func:`repro.engine.sweep.parallel_map`), ``workers=None``
    uses one worker per CPU core.  ``timeout`` bounds each
    replication's wall-clock seconds in the pool; replications whose
    worker crashes or exceeds the budget are recomputed serially in the
    parent (determinism is unaffected — seeds are fixed up front).
    """
    from ..engine.sweep import parallel_map  # runtime import: engine builds on loadtest

    if replications < 2:
        raise ValueError("need at least 2 replications")
    level_key = tuple(int(l) for l in levels) if levels is not None else None
    tasks = [
        (level_key, duration, s) for s in spawn_seeds(seed, replications)
    ]
    pieces = parallel_map(
        _replication_task, tasks, workers=workers, payload=application, timeout=timeout
    )
    sweeps = tuple(
        LoadTestSweep(application=application, levels=lvls, runs=runs)
        for lvls, runs in pieces
    )
    return ReplicatedSweep(
        application=application, levels=sweeps[0].levels.copy(), sweeps=sweeps
    )
