"""Concurrency sweeps and service-demand extraction.

The paper's methodology (Sections 4-5): run load tests at a grid of
concurrency levels, monitor utilizations, extract per-resource service
demands with the service-demand law ``D = U_total / X``, and fit demand
curves for MVASD.  :func:`run_sweep` automates the grid;
:class:`LoadTestSweep` holds the measurements and turns them into the
paper's artefacts — utilization tables (Tables 2-3), demand curves
(Fig. 5) and fitted :class:`~repro.interpolate.demand_model.DemandTable`
inputs for Algorithm 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..apps.base import Application
from ..interpolate.demand_model import DemandTable
from .grinder import GrinderRun, LoadTest
from .monitor import NetworkMonitorConfig, ServerUtilization, monitor_utilizations
from .properties import GrinderProperties

__all__ = ["LoadTestSweep", "extract_demands", "run_sweep"]


def extract_demands(run: GrinderRun, application: Application) -> dict[str, float]:
    """Service demands of one run via the service-demand law.

    Utilization monitors report *per-server* busy fractions; the law
    needs total utilization, so each station is scaled back by its
    server count: ``D_k = U_k * C_k / X``.
    """
    servers = [st.servers for st in application.network.stations]
    return run.simulation.demand_estimates(servers)


@dataclass(frozen=True)
class LoadTestSweep:
    """Measurements from load tests over a concurrency grid."""

    application: Application
    levels: np.ndarray
    runs: tuple[GrinderRun, ...]

    def __post_init__(self) -> None:
        if len(self.levels) != len(self.runs) or len(self.runs) == 0:
            raise ValueError("levels and runs must be equal-length and non-empty")
        if np.any(np.diff(self.levels) <= 0):
            raise ValueError("levels must be strictly increasing")

    # -- measured series -------------------------------------------------------

    @property
    def throughput(self) -> np.ndarray:
        """Pages/second at each level."""
        return np.array([r.tps for r in self.runs])

    @property
    def response_time(self) -> np.ndarray:
        return np.array([r.mean_response_time for r in self.runs])

    @property
    def cycle_time(self) -> np.ndarray:
        """``R + Z`` at each level — the paper's reported response metric."""
        return np.array([r.mean_cycle_time for r in self.runs])

    def utilization_of(self, station: str) -> np.ndarray:
        return np.array([r.simulation.utilization_of(station) for r in self.runs])

    # -- paper artefacts ---------------------------------------------------------

    def utilization_table(
        self, net_config: NetworkMonitorConfig | None = None
    ) -> list[tuple[int, dict[str, ServerUtilization]]]:
        """Rows of a Tables-2/3-style utilization grid.

        Each row is ``(users, {tier: ServerUtilization})`` with values in
        percent, network columns via the eq. 7 netstat path.
        """
        rows = []
        for level, run in zip(self.levels, self.runs):
            demands = extract_demands(run, self.application)
            rows.append(
                (int(level), monitor_utilizations(run.simulation, demands, net_config))
            )
        return rows

    def demand_samples(self) -> dict[str, np.ndarray]:
        """Measured demand of every station at every swept level (Fig. 5)."""
        samples: dict[str, list[float]] = {
            name: [] for name in self.application.station_names
        }
        for run in self.runs:
            for name, value in extract_demands(run, self.application).items():
                samples[name].append(value)
        return {name: np.array(vals) for name, vals in samples.items()}

    def demand_table(
        self, kind: str = "cubic", axis: str = "concurrency", lam: float = 1.0
    ) -> DemandTable:
        """Fit per-station demand curves for MVASD (Algorithm 3 input).

        ``axis="concurrency"`` fits against the swept user counts;
        ``axis="throughput"`` against the measured throughputs
        (Section 7 / Fig. 11).
        """
        if axis == "concurrency":
            x = self.levels.astype(float)
        elif axis == "throughput":
            x = self.throughput
            if np.any(np.diff(x) <= 0):
                # Throughput can plateau under saturation; nudge ties so the
                # interpolation abscissa stay strictly increasing.
                x = x + np.arange(len(x)) * 1e-9
        else:
            raise ValueError(f"axis must be 'concurrency' or 'throughput', got {axis!r}")
        return DemandTable.fit(x, self.demand_samples(), kind=kind, axis=axis, lam=lam)

    def subset(self, levels: Sequence[int]) -> "LoadTestSweep":
        """Restrict the sweep to a subset of its levels (sampling studies)."""
        wanted = set(int(l) for l in levels)
        pairs = [
            (lvl, run)
            for lvl, run in zip(self.levels, self.runs)
            if int(lvl) in wanted
        ]
        if len(pairs) != len(wanted):
            missing = wanted - {int(l) for l in self.levels}
            raise KeyError(f"levels not in sweep: {sorted(missing)}")
        return LoadTestSweep(
            application=self.application,
            levels=np.array([p[0] for p in pairs]),
            runs=tuple(p[1] for p in pairs),
        )


def run_sweep(
    application: Application,
    levels: Sequence[int] | None = None,
    duration: float = 200.0,
    seed: int = 0,
    properties: GrinderProperties | None = None,
    warmup_fraction: float = 0.1,
) -> LoadTestSweep:
    """Run one load test per concurrency level and collect the sweep.

    ``levels`` defaults to the application's paper-documented sample
    levels.  Each level uses a distinct derived seed so runs are
    independent but the whole sweep is reproducible from ``seed``.
    """
    if levels is None:
        levels = application.default_sample_levels
    levels = sorted(int(l) for l in levels)
    if not levels or levels[0] < 1:
        raise ValueError("levels must be positive integers")
    test = LoadTest(application, properties=properties, warmup_fraction=warmup_fraction)
    runs = [
        test.fire(virtual_users=lvl, seed=seed * 10_007 + i, duration=duration)
        for i, lvl in enumerate(levels)
    ]
    return LoadTestSweep(
        application=application,
        levels=np.array(levels),
        runs=tuple(runs),
    )
