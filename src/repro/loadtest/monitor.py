"""Resource monitors — the vmstat / iostat / netstat equivalents.

During a load test the paper samples CPU utilization with ``vmstat``,
disk with ``iostat`` and network with ``netstat`` packet counters,
converting the latter to utilization with eq. 7:

    ``Util% = (#packets_TxRx * packet_size) / (t * bandwidth) * 100``

The simulation testbed knows busy-time utilizations directly, so the
CPU/disk monitors simply report them in percent; the network monitor
goes the long way round — it reconstructs packet counts from page
completions and per-page transfer volumes and applies eq. 7 — so the
whole measurement path of the paper, including its quantization, is
exercised.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from ..simulation.closednet import SimulationResult

__all__ = ["NetworkMonitorConfig", "ServerUtilization", "monitor_utilizations"]

#: Canonical resource order of the paper's Tables 2-3.
_RESOURCES = ("cpu", "disk", "net_tx", "net_rx")


@dataclass(frozen=True)
class NetworkMonitorConfig:
    """netstat-equivalent parameters (eq. 7).

    ``bandwidth_bps`` is the link speed (1 GBps switch in the paper's
    testbed); ``packet_bytes`` the accounting packet size.  Per-page
    transfer volumes are derived from the station's service demand:
    a network "service" of ``D`` seconds at bandwidth ``B`` moves
    ``D * B`` bytes, i.e. ``ceil(D * B / packet)`` packets per page.
    """

    bandwidth_bps: float = 1e9
    packet_bytes: int = 1500

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        if self.packet_bytes <= 0:
            raise ValueError("packet_bytes must be positive")

    def packets_for_demand(self, demand_seconds: float) -> int:
        """Packets a single page transfer of the given demand produces."""
        if demand_seconds < 0:
            raise ValueError("demand must be non-negative")
        return math.ceil(demand_seconds * self.bandwidth_bps / self.packet_bytes)

    def utilization_percent(
        self, packets: float, elapsed_seconds: float
    ) -> float:
        """Eq. 7: packet count over a window -> utilization percent."""
        if elapsed_seconds <= 0:
            raise ValueError("elapsed_seconds must be positive")
        return (
            packets * self.packet_bytes / (elapsed_seconds * self.bandwidth_bps) * 100.0
        )


@dataclass(frozen=True)
class ServerUtilization:
    """One server's row fragment in a Tables-2/3-style utilization grid."""

    server: str
    cpu: float
    disk: float
    net_tx: float
    net_rx: float

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.cpu, self.disk, self.net_tx, self.net_rx)


def monitor_utilizations(
    sim: SimulationResult,
    demands: Mapping[str, float],
    net_config: NetworkMonitorConfig | None = None,
) -> dict[str, ServerUtilization]:
    """Produce per-server utilization percentages from a simulation run.

    Parameters
    ----------
    sim:
        The finished run (stations named ``"<tier>.<resource>"``).
    demands:
        Per-station demands at the run's concurrency — needed by the
        netstat path to reconstruct bytes-per-page.
    net_config:
        netstat parameters (defaults to the paper's 1 GBps / 1500 B).

    Returns
    -------
    dict
        ``{tier: ServerUtilization}`` with percentages, network entries
        computed via eq. 7 from reconstructed packet counts.
    """
    cfg = net_config or NetworkMonitorConfig()
    window = sim.duration - sim.warmup
    by_station = dict(zip(sim.station_names, sim.utilizations))
    tiers = sorted({name.split(".", 1)[0] for name in sim.station_names})

    out: dict[str, ServerUtilization] = {}
    for tier in tiers:
        values = {}
        for resource in _RESOURCES:
            key = f"{tier}.{resource}"
            if key not in by_station:
                values[resource] = 0.0
                continue
            if resource.startswith("net"):
                # netstat path: page completions x packets-per-page -> eq. 7.
                pages = sim.throughput * window
                packets = pages * cfg.packets_for_demand(demands.get(key, 0.0))
                values[resource] = cfg.utilization_percent(packets, window)
            else:
                # vmstat / iostat read busy percentages directly.
                values[resource] = float(by_station[key]) * 100.0
        out[tier] = ServerUtilization(server=tier, **values)
    return out
