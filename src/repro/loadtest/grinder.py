"""The load-test driver — a Grinder work-alike over the DES testbed.

One :class:`LoadTest` corresponds to one Grinder firing: a fixed
virtual-user count ramped up per the properties file, run for the
configured duration against an application's network, with transient
behaviour visible in windowed output (Fig. 1) and steady-state means
reported after a warm-up cut.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..apps.base import Application
from ..simulation.closednet import SimulationResult, simulate_closed_network
from .properties import GrinderProperties

__all__ = ["GrinderRun", "LoadTest", "steady_state_window"]


def steady_state_window(
    times: np.ndarray,
    values: np.ndarray,
    window: float,
    tolerance: float = 0.10,
) -> float:
    """Estimate when a windowed series settles (transient cutoff).

    Scans window means from the start and returns the first window start
    whose mean stays within ``tolerance`` (relative) of the overall mean
    of the remaining series — a pragmatic version of the paper's
    "run long enough to remove transient behavior".  Returns 0.0 when
    the series is stationary from the start, or the last window start
    when it never settles.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if len(times) != len(values) or len(times) == 0:
        raise ValueError("times and values must be equal-length non-empty")
    order = np.argsort(times)
    times = np.asarray(times, float)[order]
    values = np.asarray(values, float)[order]
    edges = np.arange(times[0], times[-1] + window, window)
    if len(edges) < 3:
        return float(times[0])
    means = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (times >= lo) & (times < hi)
        means.append(values[mask].mean() if mask.any() else np.nan)
    means = np.asarray(means)
    for i in range(len(means) - 1):
        tail = means[i:]
        tail = tail[~np.isnan(tail)]
        if tail.size == 0:
            continue
        ref = tail.mean()
        if ref == 0:
            continue
        if np.all(np.abs(tail - ref) <= tolerance * abs(ref)):
            return float(edges[i])
    return float(edges[-2])


@dataclass(frozen=True)
class GrinderRun:
    """Summary of one load-test firing.

    ``tps`` is pages/second and ``mean_response_time`` the page time in
    seconds — the Grinder console's two headline numbers.
    """

    application: str
    virtual_users: int
    duration: float
    warmup: float
    tps: float
    mean_response_time: float
    mean_cycle_time: float
    pages_served: int
    simulation: SimulationResult

    def windowed(self, window: float = 10.0) -> dict[str, np.ndarray]:
        """Transient view (Fig. 1): per-window TPS and response time."""
        return self.simulation.windowed_series(window)

    def summary_line(self) -> str:
        return (
            f"{self.application} @ {self.virtual_users} users: "
            f"{self.tps:.2f} pages/s, RT {self.mean_response_time * 1000:.0f} ms, "
            f"{self.pages_served} pages in {self.duration:.0f}s"
        )


class LoadTest:
    """Fire Grinder-style load tests against an application model.

    Parameters
    ----------
    application:
        The application under test.
    properties:
        Grinder configuration; ``virtual_users`` defines concurrency
        unless overridden per-run.
    warmup_fraction:
        Fraction of the duration discarded as transient (the paper runs
        30-60-minute tests for the same reason).  Ramp-up time from the
        properties is always added to the cut.
    """

    def __init__(
        self,
        application: Application,
        properties: GrinderProperties | None = None,
        warmup_fraction: float = 0.1,
    ) -> None:
        if not 0 <= warmup_fraction < 0.9:
            raise ValueError("warmup_fraction must be in [0, 0.9)")
        self.application = application
        self.properties = properties or GrinderProperties()
        self.warmup_fraction = warmup_fraction

    def fire(
        self,
        virtual_users: int | None = None,
        seed: int = 0,
        duration: float | None = None,
    ) -> GrinderRun:
        """Run one test and return its summary.

        ``virtual_users`` defaults to the properties' product; ``duration``
        (seconds) overrides ``grinder.duration``.
        """
        props = self.properties
        users = virtual_users if virtual_users is not None else props.virtual_users
        if users < 1:
            raise ValueError(f"virtual_users must be >= 1, got {users}")
        run_seconds = duration if duration is not None else props.duration_seconds

        if virtual_users is None:
            start = props.start_times(seed=seed)
        else:
            # Explicit override: scale the configured ramp to the new count.
            try:
                start = props.with_concurrency(users).start_times(seed=seed)
            except ValueError:
                start = [0.0] * users
        ramp_end = max(start) if start else 0.0
        if ramp_end >= run_seconds:
            raise ValueError(
                f"ramp-up ({ramp_end:.1f}s) exceeds test duration ({run_seconds:.1f}s)"
            )
        warmup = min(
            ramp_end + self.warmup_fraction * run_seconds, 0.9 * run_seconds
        )

        sim = simulate_closed_network(
            self.application.network,
            population=users,
            duration=run_seconds,
            warmup=warmup,
            seed=seed,
            start_times=start,
        )
        return GrinderRun(
            application=self.application.name,
            virtual_users=users,
            duration=run_seconds,
            warmup=warmup,
            tps=sim.throughput,
            mean_response_time=sim.response_time,
            mean_cycle_time=sim.cycle_time,
            pages_served=sim.cycles_completed,
            simulation=sim,
        )
