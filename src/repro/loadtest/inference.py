"""Service-demand inference from noisy monitoring data.

The paper extracts demands point-by-point with the service-demand law
``D = U / X`` (Tables 2-3).  Its related work explores sturdier
estimators when monitoring is noisy or demands must be assumed locally
constant — utilization regression (ref. [21]-style) being the standard
one: over a window where the demand is constant,

    ``U_k(t) = U0_k + D_k * X(t) + noise``

so regressing monitored utilization on measured throughput yields the
demand as the slope, an idle-utilization intercept ``U0_k`` (monitoring
agents, OS background work — something the raw law mistakes for demand),
and a confidence interval from the residuals.

:func:`regress_demands` applies this to a set of (X, U) observations per
station; :func:`windowed_observations` chops one load-test run into
windows to produce those observations from a single test — demand
estimation *without a concurrency sweep*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..simulation.closednet import SimulationResult

__all__ = ["DemandEstimate", "regress_demands", "windowed_observations"]


@dataclass(frozen=True)
class DemandEstimate:
    """Regression estimate of one station's demand.

    ``demand`` is the regression slope (seconds per job); ``idle_util``
    the intercept (background utilization not attributable to load);
    ``stderr`` the slope's standard error and ``r_squared`` the fit
    quality.  The half-width of the 95 % confidence interval is
    ``1.96 * stderr``.
    """

    station: str
    demand: float
    idle_util: float
    stderr: float
    r_squared: float
    observations: int

    @property
    def confidence_95(self) -> tuple[float, float]:
        half = 1.96 * self.stderr
        return (self.demand - half, self.demand + half)

    def summary(self) -> str:
        lo, hi = self.confidence_95
        return (
            f"{self.station}: D = {self.demand * 1000:.3f} ms "
            f"[{lo * 1000:.3f}, {hi * 1000:.3f}], idle {self.idle_util:.1%}, "
            f"R^2 {self.r_squared:.3f} ({self.observations} obs)"
        )


def regress_demands(
    throughput: Sequence[float],
    utilizations: Mapping[str, Sequence[float]],
    servers: Mapping[str, int] | None = None,
) -> dict[str, DemandEstimate]:
    """Least-squares demand estimation ``U = U0 + D X`` per station.

    Parameters
    ----------
    throughput:
        Observed system throughput per observation window (jobs/s).
    utilizations:
        Per-station *per-server* utilization observations (0..1), same
        length as ``throughput``.
    servers:
        Optional server counts ``C_k``; utilizations are scaled to total
        busy-server terms so the slope is the full demand ``D_k`` (as in
        the service-demand law).  Default 1 per station.

    Returns
    -------
    dict
        ``station -> DemandEstimate``; demands are clipped at 0 (a
        negative slope estimate means noise dominated, and the stderr
        says so).
    """
    x = np.asarray(throughput, dtype=float)
    if x.ndim != 1 or x.size < 3:
        raise ValueError("need at least 3 throughput observations")
    if np.any(x < 0):
        raise ValueError("throughput must be non-negative")
    if np.ptp(x) <= 0:
        raise ValueError("throughput observations must vary for regression")

    out: dict[str, DemandEstimate] = {}
    design = np.column_stack([np.ones_like(x), x])
    for name, series in utilizations.items():
        u = np.asarray(series, dtype=float)
        if u.shape != x.shape:
            raise ValueError(
                f"station {name!r}: got {u.shape[0] if u.ndim else 0} utilization "
                f"observations for {x.size} throughput points"
            )
        c = int(servers.get(name, 1)) if servers else 1
        y = u * c
        coeffs, residuals, *_ = np.linalg.lstsq(design, y, rcond=None)
        intercept, slope = float(coeffs[0]), float(coeffs[1])
        fitted = design @ coeffs
        ss_res = float(((y - fitted) ** 2).sum())
        ss_tot = float(((y - y.mean()) ** 2).sum())
        r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
        dof = x.size - 2
        sigma2 = ss_res / dof if dof > 0 else 0.0
        sxx = float(((x - x.mean()) ** 2).sum())
        stderr = float(np.sqrt(sigma2 / sxx)) if sxx > 0 else float("inf")
        out[name] = DemandEstimate(
            station=name,
            demand=max(slope, 0.0),
            idle_util=max(intercept, 0.0) / c,
            stderr=stderr,
            r_squared=max(r2, 0.0),
            observations=x.size,
        )
    return out


def windowed_observations(
    sim: SimulationResult,
    window: float,
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Split one run into windows of (throughput, utilization) pairs.

    Utilization monitors in the real world report per-interval busy
    percentages; the simulator stores only run-level integrals, so the
    per-window utilization is reconstructed from the stationary relation
    ``U_k = X_w * D_k`` using the run-level demand — plus the natural
    sampling noise carried by the per-window throughput ``X_w`` itself.
    The windows therefore vary because load varies, which is exactly the
    signal regression needs.

    Returns ``(throughputs, {station: utilizations})`` over the
    post-warm-up windows with at least one completion.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    series = sim.windowed_series(window)
    t = series["time"]
    x = series["throughput"]
    keep = (t > sim.warmup) & (x > 0)
    x = x[keep]
    if x.size == 0:
        raise ValueError("no post-warmup windows with completions")
    # run-level demand per station: U_total / X
    if sim.throughput <= 0:
        raise ValueError("run has no completions")
    utils = {}
    for idx, name in enumerate(sim.station_names):
        d_over_c = float(sim.utilizations[idx]) / sim.throughput
        utils[name] = x * d_over_c
    return x, utils
