"""Archiving measurements and demand tables as JSON.

A load-test campaign is expensive; its distilled outputs — the measured
operating points and the fitted demand curves — should outlive the
session.  This module round-trips both through plain JSON so campaigns
can be versioned, diffed and re-used as MVASD inputs months later
(the paper's "statistical analysis of log access files" workflow).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

import numpy as np

from ..interpolate.demand_model import DemandTable, ServiceDemandModel
from .runner import LoadTestSweep

__all__ = [
    "MeasurementArchive",
    "archive_sweep",
    "demand_table_from_dict",
    "demand_table_to_dict",
]

_SCHEMA_VERSION = 1


def demand_table_to_dict(table: DemandTable) -> dict:
    """Serializable representation of a fitted demand table."""
    return {
        "schema": _SCHEMA_VERSION,
        "axis": table.axis,
        "stations": {
            name: {
                "levels": model.levels.tolist(),
                "demands": model.demands.tolist(),
                "kind": model.kind,
                "lam": model.lam,
            }
            for name, model in table.models.items()
        },
    }


def demand_table_from_dict(data: Mapping) -> DemandTable:
    """Rebuild a demand table from :func:`demand_table_to_dict` output."""
    if data.get("schema") != _SCHEMA_VERSION:
        raise ValueError(f"unsupported schema {data.get('schema')!r}")
    axis = data["axis"]
    models = {
        name: ServiceDemandModel(
            entry["levels"],
            entry["demands"],
            kind=entry["kind"],
            axis=axis,
            lam=entry.get("lam", 1.0),
        )
        for name, entry in data["stations"].items()
    }
    return DemandTable(models=models, axis=axis)


@dataclass(frozen=True)
class MeasurementArchive:
    """The distilled, re-usable outputs of one campaign.

    Carries everything MVASD and the deviation metrics need — measured
    operating points and per-station demand samples — without the
    simulator-internal state of a live :class:`LoadTestSweep`.
    """

    application: str
    workflow: str
    levels: np.ndarray
    throughput: np.ndarray
    response_time: np.ndarray
    cycle_time: np.ndarray
    demand_samples: dict[str, np.ndarray]

    def __post_init__(self) -> None:
        n = len(self.levels)
        for name in ("throughput", "response_time", "cycle_time"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} must have {n} entries")
        for station, values in self.demand_samples.items():
            if len(values) != n:
                raise ValueError(f"demand samples for {station!r} must have {n} entries")

    def demand_table(
        self, kind: str = "cubic", axis: str = "concurrency", lam: float = 1.0
    ) -> DemandTable:
        """Fit demand curves from the archived samples (as a live sweep would)."""
        x = self.levels.astype(float) if axis == "concurrency" else self.throughput
        if axis not in ("concurrency", "throughput"):
            raise ValueError(f"axis must be 'concurrency' or 'throughput', got {axis!r}")
        return DemandTable.fit(x, self.demand_samples, kind=kind, axis=axis, lam=lam)

    def to_dict(self) -> dict:
        return {
            "schema": _SCHEMA_VERSION,
            "application": self.application,
            "workflow": self.workflow,
            "levels": self.levels.tolist(),
            "throughput": self.throughput.tolist(),
            "response_time": self.response_time.tolist(),
            "cycle_time": self.cycle_time.tolist(),
            "demand_samples": {k: v.tolist() for k, v in self.demand_samples.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MeasurementArchive":
        if data.get("schema") != _SCHEMA_VERSION:
            raise ValueError(f"unsupported schema {data.get('schema')!r}")
        return cls(
            application=data["application"],
            workflow=data["workflow"],
            levels=np.asarray(data["levels"]),
            throughput=np.asarray(data["throughput"], dtype=float),
            response_time=np.asarray(data["response_time"], dtype=float),
            cycle_time=np.asarray(data["cycle_time"], dtype=float),
            demand_samples={
                k: np.asarray(v, dtype=float) for k, v in data["demand_samples"].items()
            },
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "MeasurementArchive":
        return cls.from_dict(json.loads(Path(path).read_text()))


def archive_sweep(sweep: LoadTestSweep) -> MeasurementArchive:
    """Distill a live sweep into an archive."""
    return MeasurementArchive(
        application=sweep.application.name,
        workflow=sweep.application.workflow,
        levels=sweep.levels.copy(),
        throughput=sweep.throughput,
        response_time=sweep.response_time,
        cycle_time=sweep.cycle_time,
        demand_samples=sweep.demand_samples(),
    )
