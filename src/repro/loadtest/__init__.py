"""Grinder-style load testing over the simulation testbed.

Fires fixed-concurrency tests (ramp-up, warm-up, steady-state means),
monitors utilization the way vmstat/iostat/netstat do (eq. 7 for the
network path), sweeps concurrency grids and extracts service demands
via the service-demand law.
"""

from .grinder import GrinderRun, LoadTest, steady_state_window
from .inference import DemandEstimate, regress_demands, windowed_observations
from .monitor import NetworkMonitorConfig, ServerUtilization, monitor_utilizations
from .properties import GrinderProperties
from .replication import ReplicatedMeasurement, ReplicatedSweep, run_replicated_sweep
from .report import sweep_summary_text, utilization_table_text
from .runner import LoadTestSweep, extract_demands, run_sweep
from .serialize import (
    MeasurementArchive,
    archive_sweep,
    demand_table_from_dict,
    demand_table_to_dict,
)

__all__ = [
    "DemandEstimate",
    "GrinderProperties",
    "GrinderRun",
    "LoadTest",
    "LoadTestSweep",
    "MeasurementArchive",
    "NetworkMonitorConfig",
    "ReplicatedMeasurement",
    "ReplicatedSweep",
    "ServerUtilization",
    "archive_sweep",
    "demand_table_from_dict",
    "demand_table_to_dict",
    "extract_demands",
    "monitor_utilizations",
    "regress_demands",
    "run_replicated_sweep",
    "run_sweep",
    "steady_state_window",
    "sweep_summary_text",
    "utilization_table_text",
    "windowed_observations",
]
