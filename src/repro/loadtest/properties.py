"""Grinder-style load-test configuration.

The Grinder drives load from *agents* (machines), each spawning worker
*processes*, each running worker *threads*; the simulated concurrency
is ``agents x processes x threads`` (Section 4.1).  A ``grinder.
properties`` file controls ramp-up and duration; this module models the
subset of keys the paper lists, with the same semantics and (where the
Grinder uses them) the same millisecond units, and can parse/serialize
the Java-properties format so example configs stay copy-pasteable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

__all__ = ["GrinderProperties"]

_KEY_MAP = {
    "grinder.script": ("script", str),
    "grinder.processes": ("processes", int),
    "grinder.threads": ("threads", int),
    "grinder.runs": ("runs", int),
    "grinder.duration": ("duration_ms", int),
    "grinder.initialSleepTime": ("initial_sleep_time_ms", int),
    "grinder.sleepTimeVariation": ("sleep_time_variation", float),
    "grinder.processIncrement": ("process_increment", int),
    "grinder.processIncrementInterval": ("process_increment_interval_ms", int),
}


@dataclass(frozen=True)
class GrinderProperties:
    """The ``grinder.properties`` keys used by the paper's tests.

    Attributes
    ----------
    script:
        Jython/Clojure script name (informational here).
    processes / threads:
        Worker processes per agent and threads per process.
    agents:
        Number of load-injector machines (not a properties key — agents
        are separate Grinder installations — but part of the product).
    runs:
        Iterations per thread; 0 means "run for the duration".
    duration_ms:
        Maximum test length per worker process (milliseconds).
    initial_sleep_time_ms:
        Maximum random sleep before each thread starts (ramp-up jitter).
    sleep_time_variation:
        Normal-distribution variation applied to think-time sleeps.
    process_increment / process_increment_interval_ms:
        Start processes in batches of ``process_increment`` every
        interval — the Grinder's load ramp.  0 increment starts all at
        once.
    """

    script: str = "workload.py"
    processes: int = 1
    threads: int = 1
    agents: int = 1
    runs: int = 0
    duration_ms: int = 300_000
    initial_sleep_time_ms: int = 0
    sleep_time_variation: float = 0.0
    process_increment: int = 0
    process_increment_interval_ms: int = 60_000

    def __post_init__(self) -> None:
        for name in ("processes", "threads", "agents"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.runs < 0:
            raise ValueError(f"runs must be non-negative, got {self.runs}")
        if self.duration_ms <= 0:
            raise ValueError(f"duration_ms must be positive, got {self.duration_ms}")
        if self.initial_sleep_time_ms < 0:
            raise ValueError("initial_sleep_time_ms must be non-negative")
        if not 0.0 <= self.sleep_time_variation <= 1.0:
            raise ValueError("sleep_time_variation must be in [0, 1]")
        if self.process_increment < 0:
            raise ValueError("process_increment must be non-negative")
        if self.process_increment_interval_ms <= 0:
            raise ValueError("process_increment_interval_ms must be positive")

    @property
    def virtual_users(self) -> int:
        """Simulated users = threads x processes x agents (Section 4.1)."""
        return self.threads * self.processes * self.agents

    @property
    def duration_seconds(self) -> float:
        return self.duration_ms / 1000.0

    def with_concurrency(self, users: int) -> "GrinderProperties":
        """Scale processes/threads to hit a target user count.

        Keeps threads-per-process near the current ratio; raises if the
        target is not factorable across the configured agents.
        """
        if users < 1:
            raise ValueError(f"users must be >= 1, got {users}")
        if users % self.agents:
            raise ValueError(f"{users} users not divisible across {self.agents} agents")
        per_agent = users // self.agents
        threads = min(self.threads, per_agent)
        while per_agent % threads:
            threads -= 1
        return replace(self, threads=threads, processes=per_agent // threads)

    def start_times(self, seed: int = 0) -> list[float]:
        """Per-virtual-user start offsets (seconds) implementing the ramp.

        Processes start in ``process_increment`` batches every
        ``process_increment_interval_ms``; each thread then waits a
        uniform random sleep up to ``initial_sleep_time_ms`` (the
        Grinder's documented behaviour).  Ordering is process-major.
        """
        import numpy as np

        rng = np.random.default_rng(seed)
        times: list[float] = []
        total_processes = self.processes * self.agents
        increment = self.process_increment or total_processes
        interval = self.process_increment_interval_ms / 1000.0
        for proc in range(total_processes):
            batch = proc // increment
            base = batch * interval
            sleeps = rng.uniform(0.0, self.initial_sleep_time_ms / 1000.0, self.threads)
            times.extend(base + sleeps)
        return times

    # -- properties-file round trip -------------------------------------------

    def to_properties(self) -> str:
        """Serialize to ``grinder.properties`` format (sorted keys)."""
        values = {
            "grinder.script": self.script,
            "grinder.processes": self.processes,
            "grinder.threads": self.threads,
            "grinder.runs": self.runs,
            "grinder.duration": self.duration_ms,
            "grinder.initialSleepTime": self.initial_sleep_time_ms,
            "grinder.sleepTimeVariation": self.sleep_time_variation,
            "grinder.processIncrement": self.process_increment,
            "grinder.processIncrementInterval": self.process_increment_interval_ms,
        }
        return "\n".join(f"{k} = {v}" for k, v in sorted(values.items())) + "\n"

    @classmethod
    def from_properties(cls, text: str, agents: int = 1) -> "GrinderProperties":
        """Parse Java-properties text (``#``/``!`` comments, ``=`` or ``:``)."""
        kwargs: dict = {"agents": agents}
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith(("#", "!")):
                continue
            for sep in ("=", ":"):
                if sep in line:
                    key, _, value = line.partition(sep)
                    key = key.strip()
                    value = value.strip()
                    if key in _KEY_MAP:
                        attr, typ = _KEY_MAP[key]
                        try:
                            kwargs[attr] = typ(value)
                        except ValueError as exc:
                            raise ValueError(
                                f"bad value for {key}: {value!r}"
                            ) from exc
                    break
        return cls(**kwargs)

    @classmethod
    def load(cls, path: str | Path, agents: int = 1) -> "GrinderProperties":
        return cls.from_properties(Path(path).read_text(), agents=agents)
