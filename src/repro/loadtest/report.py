"""Report rendering for load-test sweeps.

Formats the artefacts of a :class:`~repro.loadtest.runner.LoadTestSweep`
as the paper presents them: the Tables-2/3 utilization grid (one row
per concurrency, tiers x CPU|Disk|Net-Tx|Net-Rx columns) and a
throughput/response summary.
"""

from __future__ import annotations

from ..analysis.tables import format_table
from .monitor import NetworkMonitorConfig
from .runner import LoadTestSweep

__all__ = ["utilization_table_text", "sweep_summary_text"]

_TIER_ORDER = ("load", "app", "db")
_TIER_LABELS = {"load": "Load Server", "app": "Application Server", "db": "Database Server"}


def utilization_table_text(
    sweep: LoadTestSweep, net_config: NetworkMonitorConfig | None = None
) -> str:
    """Render the Tables-2/3-style utilization grid in percent.

    Tier columns follow the canonical load | app | db order when those
    tiers exist; any other tier names (custom applications) are appended
    alphabetically with title-cased labels.
    """
    rows_raw = sweep.utilization_table(net_config)
    present = set(rows_raw[0][1]) if rows_raw else set()
    tiers = [t for t in _TIER_ORDER if t in present] + sorted(present - set(_TIER_ORDER))
    headers = ["Users"]
    for tier in tiers:
        label = _TIER_LABELS.get(tier, f"{tier.title()} Server")
        headers += [f"{label} CPU", f"{label} Disk", f"{label} Net-Tx", f"{label} Net-Rx"]
    rows = []
    for users, by_tier in rows_raw:
        row: list = [users]
        for tier in tiers:
            util = by_tier[tier]
            row += [util.cpu, util.disk, util.net_tx, util.net_rx]
        rows.append(row)
    return format_table(
        headers,
        rows,
        precision=2,
        title=f"Utilization % observed during load testing — {sweep.application.name}",
    )


def sweep_summary_text(sweep: LoadTestSweep) -> str:
    """Throughput / response-time summary per concurrency level."""
    rows = [
        (int(lvl), run.tps, run.mean_response_time, run.mean_cycle_time, run.pages_served)
        for lvl, run in zip(sweep.levels, sweep.runs)
    ]
    return format_table(
        ("Users", "Pages/s", "Response (s)", "Cycle R+Z (s)", "Pages served"),
        rows,
        precision=3,
        title=f"Load-test sweep — {sweep.application.name} ({sweep.application.workflow})",
    )
