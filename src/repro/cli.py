"""Command-line interface.

Exposes the library's main flows without writing Python::

    python -m repro list-apps
    python -m repro sweep   --app vins --levels 1,51,203 --duration 120
    python -m repro sweep   --app vins --replications 4 --workers 4
    python -m repro predict --app jpetstore --nodes 5 --max-population 280
    python -m repro compare --app jpetstore --mva-levels 28,140
    python -m repro solve   --demands 0.05,0.08 --servers 4,1 --think 1 --population 100
    python -m repro sweep-grid --demands 0.05,0.08 --servers 4,1 --think 1 \
        --population 100 --scales 0.5,0.75,1.0,1.25
    python -m repro sweep-grid ... --backend process-sharded --workers 8
    python -m repro compose --demands 0.012,0.03,0.02,0.025 --servers 2,4,1,1 \
        --think 1 --population 100 --aggregate 2,3:disks --aggregate 1,2:server \
        --flat-check
    python -m repro cache --demo --path /var/tmp/repro-cache.sqlite
    python -m repro serve --port 7173 --cache-path /var/tmp/repro-cache.sqlite
    python -m repro query '{"op": "ping"}'

Every command prints the same ASCII tables the benches produce.
``sweep --replications R --workers W`` fans R independent load tests
over W processes (bit-identical to serial); ``sweep-grid`` solves a
whole scenario grid through a selectable execution backend (batched
kernel or process-sharded fan-out, :mod:`repro.engine`); ``cache``
inspects the process-global solver result cache (optionally with its
persistent sqlite tier); ``serve``/``query`` run and talk to the
always-on capacity-planning service of :mod:`repro.serve`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from .analysis import compare_models, format_series
from .apps import jpetstore_application, vins_application
from .core import ClosedNetwork, Station
from .loadtest import run_sweep, sweep_summary_text, utilization_table_text
from .solvers import (
    Scenario,
    SolverInputError,
    capability_matrix,
    get_solver,
    list_solvers,
    solve,
    solve_stack,
    solver_names,
)
from .workflow import predict_performance

__all__ = ["main"]

_APPS = {"vins": vins_application, "jpetstore": jpetstore_application}


def _parse_int_list(text: str) -> list[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"expected comma-separated integers, got {text!r}") from exc


def _parse_float_list(text: str) -> list[float]:
    try:
        return [float(part) for part in text.split(",") if part.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"expected comma-separated numbers, got {text!r}") from exc


def _get_app(name: str):
    try:
        return _APPS[name]()
    except KeyError:
        raise SystemExit(f"unknown application {name!r}; choose from {sorted(_APPS)}")


def _cmd_list_apps(_args) -> int:
    for name, factory in sorted(_APPS.items()):
        app = factory()
        print(f"{name}: {app.name} — {app.workflow} workflow, {app.pages} pages")
        print(f"    {app.description}")
    return 0


def _cmd_sweep(args) -> int:
    app = _get_app(args.app)
    if args.replications > 1:
        from .analysis.tables import format_table
        from .loadtest.replication import run_replicated_sweep

        replicated = run_replicated_sweep(
            app,
            replications=args.replications,
            levels=args.levels,
            duration=args.duration,
            seed=args.seed,
            workers=args.workers,
        )
        rows = [
            (m.level, f"{m.mean:.2f} ± {m.half_width:.2f}",
             f"{c.mean:.3f} ± {c.half_width:.3f}")
            for m, c in zip(
                replicated.measurements("throughput"),
                replicated.measurements("cycle_time"),
            )
        ]
        print(
            format_table(
                ["Users", "X (pages/s, 95% CI)", "R+Z (s, 95% CI)"],
                rows,
                title=(
                    f"{app.name} — {replicated.replications} replications, "
                    f"noise floor {replicated.noise_floor('throughput'):.1%}"
                ),
            )
        )
        sweep = replicated.representative()
    else:
        sweep = run_sweep(
            app, levels=args.levels, duration=args.duration, seed=args.seed
        )
    print(sweep_summary_text(sweep))
    print()
    print(utilization_table_text(sweep))
    return 0


def _cmd_predict(args) -> int:
    app = _get_app(args.app)
    high = args.max_population or app.max_tested_concurrency
    report = predict_performance(
        app,
        n_design_points=args.nodes,
        max_population=high,
        concurrency_range=(1, app.max_tested_concurrency),
        strategy=args.strategy,
        duration=args.duration,
        seed=args.seed,
    )
    print(f"Design points ({args.strategy}): {report.design.tolist()}")
    print(report.prediction.summary())
    levels = np.unique(np.linspace(1, high, 12).round().astype(int))
    print()
    print(
        format_series(
            "Users",
            levels,
            {
                "X (pages/s)": report.prediction.interpolate_throughput(levels.astype(float)).round(2),
                "R+Z (s)": report.prediction.interpolate_cycle_time(levels.astype(float)).round(3),
            },
            title=f"MVASD prediction — {app.name}",
        )
    )
    return 0


def _cmd_compare(args) -> int:
    app = _get_app(args.app)
    sweep = run_sweep(app, duration=args.duration, seed=args.seed)
    comparison = compare_models(
        sweep,
        max_population=args.max_population,
        mva_levels=args.mva_levels,
        include_throughput_axis=args.throughput_axis,
    )
    print(comparison.table())
    print(f"\nBest model (throughput): {comparison.best('throughput')}")
    return 0


def _adhoc_network(args) -> ClosedNetwork:
    demands = args.demands
    servers = args.servers or [1] * len(demands)
    if len(servers) != len(demands):
        raise SystemExit("--servers must match --demands in length")
    stations = [
        Station(f"station-{i}", d, servers=c)
        for i, (d, c) in enumerate(zip(demands, servers))
    ]
    return ClosedNetwork(stations, think_time=args.think)


def _cmd_solve(args) -> int:
    net = _adhoc_network(args)
    scenario = Scenario(net, args.population)
    try:
        result = solve(scenario, method=args.method)
    except SolverInputError as exc:
        raise SystemExit(str(exc)) from None
    levels = np.unique(np.linspace(1, args.population, 12).round().astype(int))
    spec = get_solver(args.method) if args.method != "auto" else None
    if spec is not None and spec.returns == "bounds":
        from .analysis.tables import format_table

        idx = levels - 1
        rows = [
            (
                int(n),
                round(float(result.throughput_lower[i]), 3),
                round(float(result.throughput_upper[i]), 3),
                round(float(result.cycle_time_lower[i]), 4),
                round(float(result.cycle_time_upper[i]), 4),
            )
            for n, i in zip(levels, idx)
        ]
        print(
            format_table(
                ["N", "X lower", "X upper", "R+Z lower", "R+Z upper"],
                rows,
                title=f"{args.method} envelope (knee N* = {result.knee:.1f})",
            )
        )
        return 0
    print(result.summary())
    print()
    print(
        format_series(
            "N",
            levels,
            {
                "X": result.interpolate_throughput(levels.astype(float)).round(3),
                "R+Z": result.interpolate_cycle_time(levels.astype(float)).round(4),
            },
            title=f"{result.solver} trajectory",
        )
    )
    return 0


def _parse_aggregate_spec(text: str) -> tuple[list[str], str | None]:
    """Parse one ``--aggregate`` value: ``members[:name]``.

    Members are comma-separated station indices or names; the optional
    ``:name`` names the resulting flow-equivalent station.
    """
    group, _, name = text.partition(":")
    members = [tok.strip() for tok in group.split(",") if tok.strip()]
    if not members:
        raise SystemExit(f"--aggregate {text!r}: needs at least one station")
    return members, (name.strip() or None)


def _cmd_compose(args) -> int:
    from .solvers import aggregate as fes_aggregate
    from .solvers import compose as fes_compose

    net = _adhoc_network(args)
    base = Scenario(net, args.population)
    current = base
    built = []
    try:
        for spec_text in args.aggregate:
            tokens, name = _parse_aggregate_spec(spec_text)
            names = []
            for tok in tokens:
                if tok.isdigit():
                    idx = int(tok)
                    if idx >= len(current.station_names):
                        raise SystemExit(
                            f"--aggregate {spec_text!r}: station index {idx} out of "
                            f"range; current stations: {list(current.station_names)}"
                        )
                    names.append(current.station_names[idx])
                else:
                    names.append(tok)
            fes = fes_aggregate(current, names, name=name, method=args.method)
            current = fes_compose(current, [fes])
            built.append(fes)
        result = solve(current)
    except SolverInputError as exc:
        raise SystemExit(str(exc)) from None

    for fes in built:
        print(
            f"aggregated {'+'.join(fes.members)} -> {fes.name} "
            f"[{fes.solver}, N<={fes.max_population}]"
        )
    print(f"composed stations: {', '.join(current.station_names)}")
    print()
    print(result.summary())
    levels = np.unique(np.linspace(1, args.population, 12).round().astype(int))
    print()
    print(
        format_series(
            "N",
            levels,
            {
                "X": result.interpolate_throughput(levels.astype(float)).round(3),
                "R+Z": result.interpolate_cycle_time(levels.astype(float)).round(4),
            },
            title=f"{result.solver} trajectory (composed)",
        )
    )
    if args.flat_check:
        flat = solve(base, method=args.method)
        diff = float(np.abs(result.throughput - flat.throughput).max())
        print()
        print(f"flat-check: max |X_composed - X_flat| = {diff:.3e} "
              f"(tolerance {args.flat_tolerance:.0e})")
        if diff > args.flat_tolerance:
            raise SystemExit(
                f"composition diverged from the flat solve by {diff:.3e} > "
                f"{args.flat_tolerance:.0e}"
            )
    return 0


def _cmd_solvers(_args) -> int:
    print(capability_matrix())
    print()
    for spec in list_solvers():
        if spec.legacy:
            print(f"  {spec.name}: wraps {spec.legacy}")
    kernel_less = [
        s.name
        for s in list_solvers()
        if s.batched_kernel is None and s.returns in ("trajectory", "multiclass")
    ]
    if kernel_less:
        print()
        print(
            "  note: stacks solved with "
            + ", ".join(kernel_less)
            + " fall back to a scalar per-scenario loop (solver label"
            " 'stacked-<name>') — no batched kernel is registered for them."
        )
    return 0


#: Back-compat aliases for historical ``--solver`` spellings.
_SOLVER_ALIASES = {"mva": "exact-mva", "amva": "schweitzer-amva"}


def _cmd_sweep_grid(args) -> int:
    import contextlib

    from .analysis.tables import format_table
    from .engine import ScenarioGrid
    from .engine.faults import FaultPlan, injected

    net = _adhoc_network(args)
    grid = ScenarioGrid.product(
        demand_scale=args.scales, think_time=args.think_times or [args.think]
    )
    combos = grid.combinations()
    base = Scenario(net, args.population)
    method = _SOLVER_ALIASES.get(args.solver, args.solver)
    plan_ctx = contextlib.nullcontext()
    if args.inject_faults:
        try:
            plan_ctx = injected(FaultPlan.parse(args.inject_faults))
        except ValueError as exc:
            raise SystemExit(f"--inject-faults: {exc}") from None
    hosts = getattr(args, "hosts", None)
    fleet = getattr(args, "fleet", None)
    if fleet is not None:
        # A bare integer means "launch an ephemeral supervised fleet of N
        # local workers"; anything else is a `repro fleet up` state file.
        try:
            fleet = int(fleet)
        except ValueError:
            pass
    if (hosts or fleet is not None) and args.backend == "auto":
        args.backend = "remote"
    try:
        with plan_ctx:
            result = solve_stack(
                grid.scenarios(base),
                method=method,
                backend=args.backend,
                workers=args.workers,
                errors=args.errors,
                checkpoint=args.checkpoint,
                hosts=hosts,
                fleet=fleet,
            )
    except SolverInputError as exc:
        raise SystemExit(str(exc)) from None

    n = args.population
    failed = set(result.failed_indices)
    rows = [
        (
            label,
            "FAILED" if i in failed else round(float(result.peak_throughput()[i]), 3),
            "-" if i in failed else round(float(result.cycle_time[i, -1]), 4),
            "-" if i in failed else f"{float(result.utilizations[i, -1].max()):.0%}",
        )
        for i, label in enumerate(grid.labels())
    ]
    print(
        format_table(
            ["Scenario", "X_max (/s)", f"R+Z @ N={n} (s)", "peak util"],
            rows,
            title=(
                f"{result.solver}: {len(combos)} scenarios solved in one batch "
                f"[{result.backend}]"
            ),
        )
    )
    for f in result.failures:
        print(
            f"  failed scenario {f.index} [{f.solver}] "
            f"after {f.retries} retries: {f.error}"
        )
    return 0


def _cmd_cache(args) -> int:
    from .analysis.tables import format_table
    from .solvers import (
        DEFAULT_MAXSIZE,
        SolverCache,
        cache_stats,
        default_cache,
        set_default_cache,
    )

    if args.maxsize is not None or args.path is not None:
        set_default_cache(
            SolverCache(
                maxsize=args.maxsize if args.maxsize is not None else DEFAULT_MAXSIZE,
                persistent=args.path,
            )
        )
    if args.clear:
        default_cache().clear()
    if args.demo:
        net = ClosedNetwork(
            [Station("web", demand=0.02), Station("db", demand=0.05)], think_time=1.0
        )
        scenario = Scenario(net, max_population=50)
        solve(scenario)  # cold: computes and stores
        solve(scenario)  # warm: served from the cache
    s = cache_stats()
    rows = [
        ("entries", f"{s.size}/{s.maxsize}"),
        ("hits", s.hits),
        ("misses", s.misses),
        ("hit rate", f"{s.hit_rate:.0%}"),
        ("evictions", s.evictions),
        ("uncacheable", s.uncacheable),
        ("errors", s.errors),
        ("trajectory prefix hits", s.trajectory_hits),
        ("trajectory extends", s.trajectory_extends),
    ]
    if s.persistent is not None:
        rows += [
            ("persistent hits (this process)", s.persistent_hits),
            ("persistent entries", s.persistent.entries),
            ("persistent bytes on disk", s.persistent.bytes),
            ("persistent errors", s.persistent.errors),
            ("persistent path", s.persistent.path),
        ]
    print(format_table(["Counter", "Value"], rows, title="solver result cache"))
    return 0


def _serve_fault_context(spec):
    import contextlib

    from .engine.faults import FaultPlan, injected

    if not spec:
        return contextlib.nullcontext()
    try:
        return injected(FaultPlan.parse(spec))
    except ValueError as exc:
        raise SystemExit(f"--inject-faults: {exc}") from None


def _cmd_serve(args) -> int:
    from .serve.server import run_server

    try:
        with _serve_fault_context(args.inject_faults):
            run_server(
                host=args.host,
                port=args.port,
                cache_path=args.cache_path,
                maxsize=args.maxsize,
                timeout=args.timeout,
                max_concurrent=args.max_concurrent,
                admission_queue=args.admission_queue,
            )
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    return 0


def _cmd_worker(args) -> int:
    from .serve.server import run_server

    try:
        with _serve_fault_context(args.inject_faults):
            run_server(
                host=args.host,
                port=args.port,
                cache_path=args.cache_path,
                maxsize=args.maxsize,
                timeout=args.timeout,
                max_concurrent=args.max_concurrent,
                admission_queue=args.admission_queue,
                banner="repro-worker",
            )
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    return 0


def _cmd_fleet(args) -> int:
    import os
    import signal
    import time

    from .analysis.tables import format_table
    from .engine.supervisor import (
        FleetSupervisor,
        LocalLauncher,
        load_fleet_state,
        save_fleet_state,
    )
    from .serve.client import ServeClient, ServeError

    if args.fleet_command == "up":
        extra = []
        if args.cache_path:
            extra += ["--cache-path", args.cache_path]
        if args.max_concurrent is not None:
            extra += ["--max-concurrent", str(args.max_concurrent)]
        if args.admission_queue is not None:
            extra += ["--admission-queue", str(args.admission_queue)]
        if args.inject_faults:
            extra += ["--inject-faults", args.inject_faults]
        supervisor = FleetSupervisor(
            workers=args.workers, launcher=LocalLauncher(extra_args=extra)
        )
        supervisor.start()
        up = supervisor.hosts()
        if not up:
            supervisor.stop(graceful=False)
            for kind, slot, detail in supervisor.events:
                print(f"[fleet] {kind} slot={slot} {detail}", file=sys.stderr)
            raise SystemExit("fleet up: no worker came up")
        save_fleet_state(args.state, supervisor, cache_path=args.cache_path)
        for host, port in up:
            print(f"worker listening on {host}:{port}")
        print(f"fleet of {len(up)} worker(s) up; state in {args.state}")
        if not args.supervise:
            # Detached: leave the worker processes running as orphans —
            # findable via the state file — but unsupervised (no relaunch
            # on crash).
            supervisor.detach()
            return 0
        print("supervising; ctrl-c drains the fleet and exits")
        seen = 0
        try:
            while True:
                time.sleep(0.5)
                events = supervisor.events[seen:]
                seen += len(events)
                for kind, slot, detail in events:
                    print(f"[fleet] {kind} slot={slot} {detail}", flush=True)
                if events:
                    # Relaunches move workers to new ports; keep attachers fresh.
                    save_fleet_state(args.state, supervisor, cache_path=args.cache_path)
        except KeyboardInterrupt:
            clean = supervisor.drain()
            supervisor.stop(graceful=False)
            try:
                os.unlink(args.state)
            except OSError:
                pass
            print(f"fleet drained {'cleanly' if clean else 'with casualties'}")
            return 0 if clean else 1

    state = load_fleet_state(args.state)
    workers = state["workers"]

    if args.fleet_command == "status":
        rows = []
        n_up = 0
        for w in workers:
            endpoint = f"{w['host']}:{w['port']}"
            try:
                with ServeClient(w["host"], w["port"], timeout=args.timeout) as client:
                    h = client.health()
            except (ServeError, ConnectionError, OSError):
                rows.append((endpoint, w.get("pid", "-"), "down", "-", "-", "-"))
                continue
            n_up += 1
            rows.append(
                (
                    endpoint,
                    h.get("pid", w.get("pid", "-")),
                    "draining" if h.get("draining") else "up",
                    h.get("in_flight", "-"),
                    h.get("requests_handled", "-"),
                    f"{h.get('uptime', 0.0):.0f}s",
                )
            )
        print(
            format_table(
                ["Worker", "pid", "state", "in flight", "handled", "uptime"],
                rows,
                title=f"fleet: {n_up}/{len(workers)} worker(s) answering",
            )
        )
        return 0 if n_up == len(workers) else 1

    if args.fleet_command == "drain":
        for w in workers:
            try:
                with ServeClient(w["host"], w["port"], timeout=args.timeout) as client:
                    client.drain()
                print(f"draining {w['host']}:{w['port']}")
            except (ServeError, ConnectionError, OSError) as exc:
                print(f"{w['host']}:{w['port']}: unreachable ({exc})")
        def pid_running(pid):
            try:
                # Reap if it is our own child (fleet up in this process)
                # — a zombie would otherwise still answer os.kill(pid, 0).
                if os.waitpid(pid, os.WNOHANG)[0] == pid:
                    return False
            except (ChildProcessError, OSError):
                pass
            try:
                os.kill(pid, 0)
            except (OSError, ProcessLookupError):
                return False
            return True

        deadline = time.monotonic() + args.timeout
        clean = True
        for w in workers:
            pid = w.get("pid")
            if pid is None:
                continue
            while time.monotonic() < deadline:
                if not pid_running(int(pid)):
                    break  # exited
                time.sleep(0.05)
            else:
                clean = False
                print(f"pid {pid} still running after {args.timeout:.0f}s")
        if clean:
            try:
                os.unlink(args.state)
            except OSError:
                pass
        print(f"fleet drained {'cleanly' if clean else 'with stragglers'}")
        return 0 if clean else 1

    if args.fleet_command == "down":
        for w in workers:
            stopped = False
            try:
                with ServeClient(w["host"], w["port"], timeout=args.timeout) as client:
                    client.shutdown()
                stopped = True
            except (ServeError, ConnectionError, OSError):
                pass
            pid = w.get("pid")
            if not stopped and pid is not None:
                try:
                    os.kill(int(pid), signal.SIGTERM)
                    stopped = True
                except (OSError, ProcessLookupError):
                    stopped = True  # already gone
            print(f"{w['host']}:{w['port']}: {'stopped' if stopped else 'not reachable'}")
        try:
            os.unlink(args.state)
        except OSError:
            pass
        return 0

    raise SystemExit(f"unknown fleet command {args.fleet_command!r}")


def _cmd_query(args) -> int:
    import json

    from .serve.client import ServeClient

    if args.request == "-":
        raw = sys.stdin.read()
    elif args.request.startswith("@"):
        with open(args.request[1:], encoding="utf-8") as fh:
            raw = fh.read()
    else:
        raw = args.request
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"request is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise SystemExit("request must be a JSON object, e.g. '{\"op\": \"ping\"}'")
    try:
        with ServeClient(args.host, args.port, timeout=args.timeout) as client:
            envelope = client.request(payload)
    except (ConnectionError, OSError) as exc:
        raise SystemExit(
            f"cannot reach repro-serve at {args.host}:{args.port}: {exc}"
        ) from None
    print(json.dumps(envelope, indent=2, sort_keys=True))
    return 0 if envelope.get("ok") else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MVASD performance modeling of multi-tier web applications",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="list bundled applications").set_defaults(
        fn=_cmd_list_apps
    )

    p = sub.add_parser("sweep", help="run a load-test sweep on the simulated testbed")
    p.add_argument("--app", required=True, choices=sorted(_APPS))
    p.add_argument("--levels", type=_parse_int_list, default=None,
                   help="comma-separated concurrency levels (default: the app's)")
    p.add_argument("--duration", type=float, default=150.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--replications", type=int, default=1,
                   help="run R independent replications with confidence intervals")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool size for replications (default serial)")
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser("predict", help="run the Fig. 17 design->measure->predict workflow")
    p.add_argument("--app", required=True, choices=sorted(_APPS))
    p.add_argument("--nodes", type=int, default=5, help="number of Chebyshev design points")
    p.add_argument("--strategy", choices=("chebyshev", "uniform", "random"), default="chebyshev")
    p.add_argument("--max-population", type=int, default=None)
    p.add_argument("--duration", type=float, default=150.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_predict)

    p = sub.add_parser("compare", help="Tables-4/5 model comparison against measurements")
    p.add_argument("--app", required=True, choices=sorted(_APPS))
    p.add_argument("--mva-levels", type=_parse_int_list, default=None)
    p.add_argument("--max-population", type=int, default=None)
    p.add_argument("--throughput-axis", action="store_true")
    p.add_argument("--duration", type=float, default=150.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_compare)

    p = sub.add_parser("solve", help="solve an ad-hoc closed network with any registered solver")
    p.add_argument("--demands", type=_parse_float_list, required=True,
                   help="comma-separated station demands (seconds)")
    p.add_argument("--servers", type=_parse_int_list, default=None,
                   help="comma-separated server counts (default all 1)")
    p.add_argument("--think", type=float, default=0.0)
    p.add_argument("--population", type=int, required=True)
    p.add_argument("--method", choices=("auto", *solver_names()), default="auto",
                   help="registered solver name (default: cheapest capable)")
    p.set_defaults(fn=_cmd_solve)

    sub.add_parser(
        "solvers", help="list registered solvers with their capability flags"
    ).set_defaults(fn=_cmd_solvers)

    p = sub.add_parser(
        "compose",
        help="hierarchical composition: aggregate station groups into "
             "flow-equivalent stations and solve the reduced model",
    )
    p.add_argument("--demands", type=_parse_float_list, required=True,
                   help="comma-separated station demands (seconds)")
    p.add_argument("--servers", type=_parse_int_list, default=None,
                   help="comma-separated server counts (default all 1)")
    p.add_argument("--think", type=float, default=0.0)
    p.add_argument("--population", type=int, required=True)
    p.add_argument("--aggregate", action="append", required=True, metavar="GROUP[:NAME]",
                   help="station group to aggregate, e.g. '1,2:server-tier'; "
                        "members are indices or names of the scenario as reduced "
                        "by earlier --aggregate flags (repeatable, applied in order)")
    p.add_argument("--method", choices=("auto", *solver_names()), default="auto",
                   help="solver for the subsystem and flat solves")
    p.add_argument("--flat-check", action="store_true",
                   help="also solve the flat model and gate on the throughput parity")
    p.add_argument("--flat-tolerance", type=float, default=1e-8,
                   help="max |X_composed - X_flat| allowed by --flat-check")
    p.set_defaults(fn=_cmd_compose)

    p = sub.add_parser(
        "sweep-grid",
        help="solve a scenario grid (demand scalings x think times) in one batched kernel",
    )
    p.add_argument("--demands", type=_parse_float_list, required=True,
                   help="comma-separated base station demands (seconds)")
    p.add_argument("--servers", type=_parse_int_list, default=None,
                   help="comma-separated server counts (default all 1)")
    p.add_argument("--think", type=float, default=0.0)
    p.add_argument("--population", type=int, required=True)
    p.add_argument("--scales", type=_parse_float_list, default=[1.0],
                   help="demand-scaling axis of the grid (e.g. 0.5,0.75,1.0,1.25)")
    p.add_argument("--think-times", type=_parse_float_list, default=None,
                   help="think-time axis of the grid (default: just --think)")
    p.add_argument(
        "--solver",
        choices=("auto", *sorted(_SOLVER_ALIASES), *solver_names()),
        default="auto",
        help="registered solver name ('mva'/'amva' remain as aliases)",
    )
    p.add_argument(
        "--backend",
        choices=("auto", "serial", "batched", "process-sharded", "resilient", "remote"),
        default="auto",
        help="execution backend (auto: batched kernel, sharded for large grids; "
             "resilient: sharded with retries + degradation; remote: shard over "
             "repro worker hosts)",
    )
    p.add_argument("--workers", type=int, default=None,
                   help="process count for the sharded backend (default: one per core)")
    p.add_argument("--hosts", default=None, metavar="HOST:PORT,...",
                   help="comma-separated repro worker addresses; implies "
                        "--backend remote")
    p.add_argument("--fleet", default=None, metavar="N|STATE",
                   help="shard over a supervised fleet; N launches an ephemeral "
                        "local fleet of N workers, a path attaches to a "
                        "'repro fleet up' state file (implies --backend remote)")
    p.add_argument("--errors", choices=("raise", "isolate"), default="raise",
                   help="isolate: failed scenarios become FAILED rows instead of aborting")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="journal completed shards here; re-running resumes after a crash")
    p.add_argument("--inject-faults", default=None, metavar="SPEC",
                   help="deterministic fault plan for resilience testing, e.g. "
                        "'crash-worker@shard=0;raise-in-kernel@scenario=2'")
    p.set_defaults(fn=_cmd_sweep_grid)

    p = sub.add_parser(
        "cache", help="inspect or manage the process-global solver result cache"
    )
    p.add_argument("--clear", action="store_true",
                   help="drop all entries and counters (every tier, including "
                        "the persistent store when --path is given)")
    p.add_argument("--maxsize", type=int, default=None,
                   help="install a fresh cache with this capacity")
    p.add_argument("--path", default=None, metavar="PATH",
                   help="attach a persistent sqlite store at PATH (shared "
                        "across processes and restarts)")
    p.add_argument("--demo", action="store_true",
                   help="solve a small scenario twice to demonstrate a warm hit")
    p.set_defaults(fn=_cmd_cache)

    p = sub.add_parser(
        "serve",
        help="run the always-on capacity-planning service (JSON lines over TCP)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7173,
                   help="TCP port (0 = let the OS pick; the bound port is printed)")
    p.add_argument("--cache-path", default=None, metavar="PATH",
                   help="persistent sqlite store warming the service across restarts")
    p.add_argument("--maxsize", type=int, default=1024,
                   help="in-memory result cache capacity")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="per-request solve timeout in seconds")
    p.add_argument("--max-concurrent", type=int, default=1,
                   help="solver requests executed concurrently (admission "
                        "control; 1 keeps cache provenance exact)")
    p.add_argument("--admission-queue", type=int, default=16,
                   help="solver requests allowed to wait for a slot before "
                        "the server sheds load with an 'overloaded' error")
    p.add_argument("--inject-faults", default=None, metavar="SPEC",
                   help="deterministic fault plan armed inside the server, "
                        "e.g. 'reject-admission' to shed one request")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "worker",
        help="run one execution-fabric worker (a solver server tuned for "
             "solve_shard traffic from sweep-grid --backend remote)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default 0 = let the OS pick; the bound port "
                        "is printed on the 'listening on' line)")
    p.add_argument("--cache-path", default=None, metavar="PATH",
                   help="persistent sqlite store warming the worker across restarts")
    p.add_argument("--maxsize", type=int, default=4096,
                   help="in-memory result cache capacity")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="per-shard solve timeout in seconds")
    p.add_argument("--max-concurrent", type=int, default=1,
                   help="solver requests executed concurrently (admission control)")
    p.add_argument("--admission-queue", type=int, default=16,
                   help="waiting requests before the worker sheds load with an "
                        "'overloaded' error (the transport retries elsewhere)")
    p.add_argument("--inject-faults", default=None, metavar="SPEC",
                   help="deterministic fault plan armed inside the worker, "
                        "e.g. 'reject-admission' for the chaos drill")
    p.set_defaults(fn=_cmd_worker)

    p = sub.add_parser(
        "fleet",
        help="manage a supervised fleet of local repro workers",
    )
    fleet_sub = p.add_subparsers(dest="fleet_command", required=True)

    fp = fleet_sub.add_parser("up", help="launch N workers and write a state file")
    fp.add_argument("--workers", type=int, default=2,
                    help="worker processes to launch (default 2)")
    fp.add_argument("--state", default=".repro-fleet.json", metavar="PATH",
                    help="fleet state file for status/drain/down and "
                         "sweep-grid --fleet (default .repro-fleet.json)")
    fp.add_argument("--cache-path", default=None, metavar="PATH",
                    help="persistent sqlite store shared by every worker")
    fp.add_argument("--max-concurrent", type=int, default=None,
                    help="per-worker admission control (see repro worker)")
    fp.add_argument("--admission-queue", type=int, default=None,
                    help="per-worker admission queue depth (see repro worker)")
    fp.add_argument("--inject-faults", default=None, metavar="SPEC",
                    help="fault plan armed inside every worker (chaos drills)")
    fp.add_argument("--supervise", action="store_true",
                    help="stay in the foreground: heartbeat the workers, "
                         "relaunch crashes, print membership events; ctrl-c "
                         "drains the fleet (default: detach, leaving the "
                         "workers running unsupervised)")
    fp.set_defaults(fn=_cmd_fleet)

    fp = fleet_sub.add_parser("status", help="ping every worker in the state file")
    fp.add_argument("--state", default=".repro-fleet.json", metavar="PATH")
    fp.add_argument("--timeout", type=float, default=5.0)
    fp.set_defaults(fn=_cmd_fleet)

    fp = fleet_sub.add_parser(
        "drain", help="finish in-flight work, then stop every worker"
    )
    fp.add_argument("--state", default=".repro-fleet.json", metavar="PATH")
    fp.add_argument("--timeout", type=float, default=30.0,
                    help="seconds to wait for the workers to exit")
    fp.set_defaults(fn=_cmd_fleet)

    fp = fleet_sub.add_parser("down", help="stop every worker immediately")
    fp.add_argument("--state", default=".repro-fleet.json", metavar="PATH")
    fp.add_argument("--timeout", type=float, default=5.0)
    fp.set_defaults(fn=_cmd_fleet)

    p = sub.add_parser(
        "query", help="send one JSON request to a running repro serve instance"
    )
    p.add_argument("request",
                   help="JSON request object, @file, or '-' for stdin, e.g. "
                        "'{\"op\": \"ping\"}'")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7173)
    p.add_argument("--timeout", type=float, default=60.0,
                   help="socket timeout waiting for the response")
    p.set_defaults(fn=_cmd_query)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
