"""The asyncio capacity-planning server behind ``repro serve``.

One long-lived process owns a :class:`~repro.solvers.cache.SolverCache`
(optionally backed by the persistent sqlite tier) and answers JSON-lines
requests over TCP.  Every solve routes through the ordinary
facade → cache → backend stack — the server adds no solver logic of its
own, only:

* **per-request timeouts** — a solve that exceeds ``timeout`` seconds
  answers with a structured error envelope instead of wedging the
  connection (the worker thread finishes in the background; subsequent
  requests queue behind it);
* **cache-tier provenance** — each response reports where its answer
  came from (``memory`` / ``persistent`` / ``trajectory-prefix`` /
  ``trajectory-extend`` / ``cold``), measured as a counter diff around
  the solve.  Solves are serialized by a lock to keep that diff exact;
  the protocol layer stays fully concurrent, so slow clients do not
  block fast ones — only concurrent *solves* queue.

The server binds ``127.0.0.1:7173`` by default; pass ``port=0`` to let
the OS pick (the chosen port is printed on the ``listening`` line and
available as ``server.port`` — how the bench and CI smoke find it).
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
from typing import Any, Mapping

from ..engine.backends import scenario_offset
from ..solvers import solve, solve_stack
from ..solvers.cache import SolverCache
from .protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_request,
    decode_scenario,
    encode_result,
    encode_stack_result,
    error_envelope,
    ok_envelope,
)

__all__ = ["DEFAULT_PORT", "SolverServer", "run_server"]

DEFAULT_PORT = 7173
DEFAULT_TIMEOUT = 30.0

#: Priority order for collapsing a single-solve counter diff to a label.
_TIERS = (
    ("memory", "hits"),
    ("persistent", "persistent_hits"),
    ("trajectory-prefix", "trajectory_hits"),
    ("trajectory-extend", "trajectory_extends"),
)


def _provenance_counts(before, after) -> dict:
    """Per-tier request counts between two cache snapshots.

    A trajectory-served request first misses the key-value tiers (one
    ``misses`` tick) and then hits the trajectory store, so true cold
    solves are the misses *not* explained by trajectory serving.
    """
    counts = {
        label: getattr(after, field) - getattr(before, field) for label, field in _TIERS
    }
    counts["cold"] = max(
        0,
        (after.misses - before.misses)
        - counts["trajectory-prefix"]
        - counts["trajectory-extend"],
    )
    counts["uncacheable"] = after.uncacheable - before.uncacheable
    return counts


def _provenance_label(counts: Mapping[str, int]) -> str:
    for label, _ in _TIERS:
        if counts.get(label, 0) > 0:
            return label
    if counts.get("cold", 0) > 0:
        return "cold"
    return "uncached"


class SolverServer:
    """Asyncio JSON-lines solver service around one :class:`SolverCache`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        cache: SolverCache | None = None,
        cache_path: str | None = None,
        maxsize: int = 1024,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        self.host = host
        self.port = int(port)
        if cache is None:
            cache = SolverCache(maxsize=maxsize, persistent=cache_path)
        self.cache = cache
        self.timeout = float(timeout)
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        #: Serializes solves so provenance counter-diffs are unambiguous.
        self._solve_lock = threading.Lock()
        self.requests_handled = 0

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        # the default StreamReader limit (64 KB) would reject the large
        # solve_shard request lines the protocol explicitly allows
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=MAX_LINE_BYTES + 1024
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._shutdown.wait()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    # -- connection handling --------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._dispatch(line)
                shutdown_after = bool(response.pop("_shutdown", False))
                writer.write(json.dumps(response).encode() + b"\n")
                try:
                    await writer.drain()
                except ConnectionResetError:
                    break
                self.requests_handled += 1
                if shutdown_after:
                    self.request_shutdown()
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _dispatch(self, line: bytes) -> dict:
        request_id = None
        try:
            request = decode_request(line)
            request_id = request.get("id")
            op = request["op"]
            if op == "ping":
                return ok_envelope(request_id, {"pong": True, "pid": os.getpid()})
            if op == "cache_stats":
                return ok_envelope(request_id, self._cache_stats())
            if op == "shutdown":
                envelope = ok_envelope(request_id, {"stopping": True})
                envelope["_shutdown"] = True
                return envelope
            # solver ops run in a worker thread under the request timeout
            loop = asyncio.get_running_loop()
            future = loop.run_in_executor(None, self._execute, op, request)
            try:
                result, provenance = await asyncio.wait_for(future, self.timeout)
            except asyncio.TimeoutError:
                return error_envelope(
                    request_id,
                    TimeoutError(
                        f"{op} exceeded the {self.timeout:g}s request timeout"
                    ),
                )
            return ok_envelope(request_id, result, provenance)
        except Exception as exc:  # every failure answers; none kills the server
            return error_envelope(request_id, exc)

    # -- op execution (worker thread) -----------------------------------------

    def _classified(self, fn):
        """Run ``fn`` under the solve lock, classifying its cache traffic."""
        with self._solve_lock:
            before = self.cache.stats()
            out = fn()
            after = self.cache.stats()
        return out, _provenance_counts(before, after)

    def _execute(self, op: str, request: Mapping[str, Any]):
        if op == "solve":
            return self._op_solve(request)
        if op == "solve_stack":
            return self._op_solve_stack(request)
        if op == "solve_shard":
            return self._op_solve_shard(request)
        if op == "whatif":
            return self._op_whatif(request)
        if op == "bottlenecks":
            return self._op_bottlenecks(request)
        if op == "compose":
            return self._op_compose(request)
        raise ProtocolError(f"unhandled op {op!r}")  # pragma: no cover

    def _op_solve(self, request):
        scenario = decode_scenario(request.get("scenario"))
        method = str(request.get("method", "auto"))
        options = dict(request.get("options") or {})
        at = request.get("at")

        result, counts = self._classified(
            lambda: solve(scenario, method=method, cache=self.cache, **options)
        )
        payload = encode_result(result)
        if at is not None:
            payload = {"kind": "at", "solver": result.solver, **result.at(int(at))}
        return payload, _provenance_label(counts)

    def _op_solve_stack(self, request):
        raw = request.get("scenarios")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError("solve_stack needs a non-empty scenarios list")
        scenarios = [decode_scenario(item) for item in raw]
        method = str(request.get("method", "auto"))
        options = dict(request.get("options") or {})
        errors = str(request.get("errors", "isolate"))

        result, counts = self._classified(
            lambda: solve_stack(
                scenarios, method=method, cache=self.cache, errors=errors, **options
            )
        )
        payload = {
            "kind": "batched",
            "solver": result.solver,
            "count": result.n_scenarios,
            "peak_throughput": result.peak_throughput().tolist(),
            "failures": [
                {
                    "index": f.index,
                    "fingerprint": f.fingerprint,
                    "solver": f.solver,
                    "error": f.error,
                    "retries": f.retries,
                }
                for f in result.failures
            ],
        }
        return payload, _provenance_label(counts)

    def _op_solve_shard(self, request):
        """One fabric shard: solve a sub-stack and ship the full arrays back.

        The remote-sweep workhorse.  Unlike ``solve_stack`` (a summary
        view for interactive clients) this returns every trajectory
        array bit-exactly, plus the shard's ``start`` offset so the
        dispatcher can re-assemble ``_concat_results`` order.  Each
        scenario's wire fingerprint is verified against the
        ``fingerprints`` list the client computed from its *original*
        scenarios — a mismatch means the codec could not express the
        demand model exactly, and the shard must be solved locally.
        """
        raw = request.get("scenarios")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError("solve_shard needs a non-empty scenarios list")
        scenarios = [decode_scenario(item) for item in raw]
        expected = request.get("fingerprints")
        if expected is not None:
            if not isinstance(expected, list) or len(expected) != len(scenarios):
                raise ProtocolError(
                    "solve_shard fingerprints must parallel the scenarios list"
                )
            for idx, (sc, fp) in enumerate(zip(scenarios, expected)):
                if sc.fingerprint() != fp:
                    raise ProtocolError(
                        f"scenario #{idx} fingerprint mismatch after decode "
                        f"({sc.fingerprint()[:12]} != {str(fp)[:12]}): the wire "
                        "codec cannot express this demand model exactly; "
                        "solve this shard locally"
                    )
        method = str(request.get("method", "auto"))
        backend = str(request.get("backend", "auto"))
        if backend not in ("auto", "serial", "batched"):
            raise ProtocolError(
                f"solve_shard backend must be auto/serial/batched, got {backend!r}"
            )
        start = int(request.get("start", 0))
        options = dict(request.get("options") or {})

        def run():
            with scenario_offset(start):
                return solve_stack(
                    scenarios, method=method, backend=backend, cache=self.cache, **options
                )

        result, counts = self._classified(run)
        return (
            {**encode_stack_result(result), "start": start},
            _provenance_label(counts),
        )

    def _op_whatif(self, request):
        """One snapshot per requested population — the capacity question.

        Each population is its own ``solve()`` at ``N' = n``; with the
        trajectory store active, one deep solve answers the whole sweep
        (prefix slices below the deepest N seen, one resume above it).
        """
        scenario = decode_scenario(request.get("scenario"))
        raw_pops = request.get("populations")
        if not isinstance(raw_pops, list) or not raw_pops:
            raise ProtocolError("whatif needs a non-empty populations list")
        populations = [int(n) for n in raw_pops]
        if any(n < 1 for n in populations):
            raise ProtocolError("whatif populations must be >= 1")
        method = str(request.get("method", "auto"))
        options = dict(request.get("options") or {})

        def sweep():
            snapshots = []
            for n in populations:
                sc = (
                    scenario
                    if n == scenario.max_population
                    else scenario.with_overrides(max_population=n)
                )
                result = solve(sc, method=method, cache=self.cache, **options)
                snapshots.append({"solver": result.solver, **result.at(n)})
            return snapshots

        snapshots, counts = self._classified(sweep)
        return {"kind": "whatif", "snapshots": snapshots}, counts

    def _op_compose(self, request):
        """Hierarchical composition: aggregate station groups, solve reduced.

        ``aggregates`` is a list of ``{"stations": [...], "name": ...}``
        groups applied **in sequence** — each group aggregates stations
        of the scenario as reduced by the groups before it, so a later
        group may fold an earlier flow-equivalent station into a deeper
        level of the hierarchy.  The subsystem solves ride the server's
        cache like any other request (re-composing an unchanged
        subsystem is a cache hit).  ``flat_check: true`` additionally
        solves the flat scenario and reports the max throughput
        divergence.
        """
        from ..solvers.fes import aggregate as fes_aggregate
        from ..solvers.fes import compose as fes_compose

        scenario = decode_scenario(request.get("scenario"))
        raw_groups = request.get("aggregates")
        if not isinstance(raw_groups, list) or not raw_groups:
            raise ProtocolError("compose needs a non-empty aggregates list")
        method = str(request.get("method", "auto"))
        options = dict(request.get("options") or {})
        flat_check = bool(request.get("flat_check", False))

        def run():
            current = scenario
            built = []
            for idx, group in enumerate(raw_groups):
                if not isinstance(group, Mapping) or "stations" not in group:
                    raise ProtocolError(f"aggregate #{idx} needs a stations list")
                members = [str(name) for name in group["stations"]]
                fes = fes_aggregate(
                    current,
                    members,
                    name=group.get("name"),
                    method=method,
                    cache=self.cache,
                    **options,
                )
                current = fes_compose(current, [fes])
                built.append(fes)
            result = solve(current, method="auto", cache=self.cache, **options)
            flat_parity = None
            if flat_check:
                flat = solve(scenario, method=method, cache=self.cache, **options)
                import numpy as np

                flat_parity = float(
                    np.abs(
                        np.asarray(result.throughput) - np.asarray(flat.throughput)
                    ).max()
                )
            return current, built, result, flat_parity

        (current, built, result, flat_parity), counts = self._classified(run)
        payload = {
            **encode_result(result),
            "composition": {
                "stations": list(current.station_names),
                "aggregates": [
                    {
                        "name": fes.name,
                        "members": list(fes.members),
                        "solver": fes.solver,
                        "source_fingerprint": fes.source_fingerprint,
                        "max_population": fes.max_population,
                    }
                    for fes in built
                ],
            },
        }
        if flat_parity is not None:
            payload["flat_parity"] = flat_parity
        return payload, _provenance_label(counts)

    def _op_bottlenecks(self, request):
        from ..analysis.bottlenecks import solved_bottleneck_ranking

        scenario = decode_scenario(request.get("scenario"))
        method = str(request.get("method", "auto"))

        def rank():
            return solved_bottleneck_ranking(
                scenario.resolved_network(),
                scenario.max_population,
                method=method,
                cache=self.cache,
            )

        ranking, counts = self._classified(rank)
        payload = {
            "kind": "bottlenecks",
            "population": ranking.population,
            "solver": ranking.solver,
            "stations": list(ranking.stations),
            "utilizations": ranking.utilizations.tolist(),
        }
        return payload, _provenance_label(counts)

    def _cache_stats(self) -> dict:
        stats = self.cache.stats()
        payload = {
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "uncacheable": stats.uncacheable,
            "errors": stats.errors,
            "size": stats.size,
            "maxsize": stats.maxsize,
            "persistent_hits": stats.persistent_hits,
            "trajectory_hits": stats.trajectory_hits,
            "trajectory_extends": stats.trajectory_extends,
            "requests_handled": self.requests_handled,
        }
        if stats.persistent is not None:
            payload["persistent"] = {
                "hits": stats.persistent.hits,
                "misses": stats.persistent.misses,
                "errors": stats.persistent.errors,
                "writes": stats.persistent.writes,
                "entries": stats.persistent.entries,
                "bytes": stats.persistent.bytes,
                "path": stats.persistent.path,
            }
        if self.cache.trajectory is not None:
            payload["trajectory"] = self.cache.trajectory.stats()
        return payload


async def _amain(server: SolverServer, announce, banner: str = "repro-serve") -> None:
    await server.start()
    if announce is not None:
        announce(f"{banner} listening on {server.host}:{server.port}")
    loop = asyncio.get_running_loop()
    try:
        import signal

        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, server.request_shutdown)
    except (ImportError, NotImplementedError, RuntimeError):  # pragma: no cover
        pass
    await server.serve_until_shutdown()


def run_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    cache_path: str | None = None,
    maxsize: int = 1024,
    timeout: float = DEFAULT_TIMEOUT,
    announce=None,
    banner: str = "repro-serve",
) -> SolverServer:
    """Blocking entry point used by ``repro serve`` and ``repro worker``.

    Builds the server, prints the ``listening`` line (flushed, so a
    parent process can scrape the bound port), and runs until a client
    sends ``shutdown`` or the process receives SIGINT/SIGTERM.  The
    ``banner`` prefix distinguishes interactive service processes from
    fabric workers in logs; the ``listening on`` suffix is stable either
    way, so port-scraping launchers work for both.
    """
    server = SolverServer(
        host=host, port=port, cache_path=cache_path, maxsize=maxsize, timeout=timeout
    )
    if announce is None:
        def announce(message: str) -> None:
            print(message, flush=True)

    asyncio.run(_amain(server, announce, banner))
    return server
