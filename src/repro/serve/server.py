"""The asyncio capacity-planning server behind ``repro serve``.

One long-lived process owns a :class:`~repro.solvers.cache.SolverCache`
(optionally backed by the persistent sqlite tier) and answers JSON-lines
requests over TCP.  Every solve routes through the ordinary
facade → cache → backend stack — the server adds no solver logic of its
own, only:

* **per-request timeouts** — a solve that exceeds ``timeout`` seconds
  answers with a structured error envelope instead of wedging the
  connection (the worker thread finishes in the background; subsequent
  requests queue behind it);
* **cache-tier provenance** — each response reports where its answer
  came from (``memory`` / ``persistent`` / ``trajectory-prefix`` /
  ``trajectory-extend`` / ``cold``), measured as a counter diff around
  the solve.  Solves are serialized by a lock to keep that diff exact;
  the protocol layer stays fully concurrent, so slow clients do not
  block fast ones — only concurrent *solves* queue.
* **admission control** — at most ``max_concurrent`` solves run at
  once (default 1, which is also what keeps provenance diffs exact;
  raising it trades exact provenance for parallelism) and at most
  ``admission_queue`` more may wait.  Beyond that the server answers
  immediately with a structured ``Overloaded`` error envelope instead
  of queueing unboundedly — the fabric transport treats that as
  *retry-later*, not host death, which is what lets an overloaded
  worker shed shards to its peers instead of being retired.
* **graceful drain** — SIGTERM (or the ``drain`` op) closes the
  listener, lets every in-flight request finish and answer, then exits
  cleanly; SIGINT remains an immediate shutdown.  The ``health`` op
  reports in-flight/queue-depth/uptime/cache counters for supervisors'
  heartbeats.

The server binds ``127.0.0.1:7173`` by default; pass ``port=0`` to let
the OS pick (the chosen port is printed on the ``listening`` line and
available as ``server.port`` — how the bench and CI smoke find it).
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from typing import Any, Mapping

from ..engine import faults
from ..engine.backends import scenario_offset
from ..solvers import solve, solve_stack
from ..solvers.cache import SolverCache
from .protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_request,
    decode_scenario,
    encode_result,
    encode_stack_result,
    error_envelope,
    ok_envelope,
)

__all__ = ["DEFAULT_PORT", "Overloaded", "SolverServer", "run_server"]

DEFAULT_PORT = 7173
DEFAULT_TIMEOUT = 30.0
DEFAULT_MAX_CONCURRENT = 1
DEFAULT_ADMISSION_QUEUE = 16


class Overloaded(RuntimeError):
    """The server's admission queue is full — retry later, host is healthy.

    The envelope ``type`` clients key on: the fabric transport re-queues
    the shard instead of retiring the worker, and the supervisor's
    heartbeat does *not* count it as a health-probe failure.
    """

#: Priority order for collapsing a single-solve counter diff to a label.
_TIERS = (
    ("memory", "hits"),
    ("persistent", "persistent_hits"),
    ("trajectory-prefix", "trajectory_hits"),
    ("trajectory-extend", "trajectory_extends"),
)


def _provenance_counts(before, after) -> dict:
    """Per-tier request counts between two cache snapshots.

    A trajectory-served request first misses the key-value tiers (one
    ``misses`` tick) and then hits the trajectory store, so true cold
    solves are the misses *not* explained by trajectory serving.
    """
    counts = {
        label: getattr(after, field) - getattr(before, field) for label, field in _TIERS
    }
    counts["cold"] = max(
        0,
        (after.misses - before.misses)
        - counts["trajectory-prefix"]
        - counts["trajectory-extend"],
    )
    counts["uncacheable"] = after.uncacheable - before.uncacheable
    return counts


def _provenance_label(counts: Mapping[str, int]) -> str:
    for label, _ in _TIERS:
        if counts.get(label, 0) > 0:
            return label
    if counts.get("cold", 0) > 0:
        return "cold"
    return "uncached"


class SolverServer:
    """Asyncio JSON-lines solver service around one :class:`SolverCache`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        cache: SolverCache | None = None,
        cache_path: str | None = None,
        maxsize: int = 1024,
        timeout: float = DEFAULT_TIMEOUT,
        max_concurrent: int = DEFAULT_MAX_CONCURRENT,
        admission_queue: int = DEFAULT_ADMISSION_QUEUE,
    ) -> None:
        self.host = host
        self.port = int(port)
        if cache is None:
            cache = SolverCache(maxsize=maxsize, persistent=cache_path)
        self.cache = cache
        self.timeout = float(timeout)
        self.max_concurrent = int(max_concurrent)
        self.admission_queue = int(admission_queue)
        if self.max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        if self.admission_queue < 0:
            raise ValueError(f"admission_queue must be >= 0, got {admission_queue}")
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        #: Serializes solves so provenance counter-diffs are unambiguous.
        self._solve_lock = threading.Lock()
        #: Bounds concurrent solver-op executions (event-loop side).
        self._solve_slots: asyncio.Semaphore | None = None
        #: Solver ops admitted and not yet answered (running or queued).
        self._admitted = 0
        #: Requests currently being dispatched or having their response
        #: written — what SIGTERM drain waits on (``wait_closed`` alone
        #: does not wait for handler coroutines on py3.10/3.11).
        self._active_requests = 0
        self._draining = False
        self._started_at: float | None = None
        self.requests_handled = 0
        self.overload_rejections = 0

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        # the default StreamReader limit (64 KB) would reject the large
        # solve_shard request lines the protocol explicitly allows
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=MAX_LINE_BYTES + 1024
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._solve_slots = asyncio.Semaphore(self.max_concurrent)
        self._started_at = time.monotonic()

    async def serve_until_shutdown(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._shutdown.wait()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    def request_drain(self) -> None:
        """Graceful stop: refuse new work, finish in-flight, then shut down.

        Safe to call from a signal handler on the event loop (SIGTERM) or
        from the ``drain`` op.  Idempotent.
        """
        if self._draining:
            return
        self._draining = True
        asyncio.get_running_loop().create_task(self._drain())

    async def _drain(self) -> None:
        if self._server is not None:
            self._server.close()  # stop accepting new connections
        # The request that carried the `drain` op is itself active until
        # its response is written; poll until every handler has answered.
        while self._active_requests > 0:
            await asyncio.sleep(0.005)
        self._shutdown.set()

    # -- connection handling --------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                self._active_requests += 1
                try:
                    response = await self._dispatch(line)
                    shutdown_after = bool(response.pop("_shutdown", False))
                    writer.write(json.dumps(response).encode() + b"\n")
                    try:
                        await writer.drain()
                    except ConnectionResetError:
                        break
                finally:
                    self._active_requests -= 1
                self.requests_handled += 1
                if shutdown_after:
                    self.request_shutdown()
                    break
                if self._draining:
                    break  # answered; no further requests on this connection
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _dispatch(self, line: bytes) -> dict:
        request_id = None
        try:
            try:
                request = decode_request(line)
            except ProtocolError:
                # Salvage the id so the client can still correlate the
                # error envelope with the request that caused it.
                try:
                    probe = json.loads(line)
                    if isinstance(probe, dict):
                        request_id = probe.get("id")
                except (ValueError, UnicodeDecodeError):
                    pass
                raise
            request_id = request.get("id")
            op = request["op"]
            if op == "ping":
                return ok_envelope(request_id, {"pong": True, "pid": os.getpid()})
            if op == "cache_stats":
                return ok_envelope(request_id, self._cache_stats())
            if op == "health":
                return ok_envelope(request_id, self.health())
            if op == "drain":
                self.request_drain()
                return ok_envelope(request_id, {"draining": True, "pid": os.getpid()})
            if op == "shutdown":
                envelope = ok_envelope(request_id, {"stopping": True})
                envelope["_shutdown"] = True
                return envelope
            # solver ops: admission gate, then a worker thread under the
            # request timeout, at most max_concurrent at once
            if self._draining:
                self.overload_rejections += 1
                return error_envelope(
                    request_id, Overloaded(f"server is draining, cannot admit {op}")
                )
            if (
                self._admitted >= self.max_concurrent + self.admission_queue
                or faults.take_one_shot("admission") is not None
            ):
                self.overload_rejections += 1
                return error_envelope(
                    request_id,
                    Overloaded(
                        f"admission queue full ({self._admitted} admitted, "
                        f"{self.max_concurrent} solving + {self.admission_queue} "
                        f"queued max); retry later"
                    ),
                )
            self._admitted += 1
            try:
                async with self._solve_slots:
                    loop = asyncio.get_running_loop()
                    future = loop.run_in_executor(None, self._execute, op, request)
                    try:
                        result, provenance = await asyncio.wait_for(future, self.timeout)
                    except asyncio.TimeoutError:
                        return error_envelope(
                            request_id,
                            TimeoutError(
                                f"{op} exceeded the {self.timeout:g}s request timeout"
                            ),
                        )
            finally:
                self._admitted -= 1
            return ok_envelope(request_id, result, provenance)
        except Exception as exc:  # every failure answers; none kills the server
            return error_envelope(request_id, exc)

    def health(self) -> dict:
        """The ``health`` op body: load, lifecycle and cache counters."""
        uptime = (
            0.0 if self._started_at is None else time.monotonic() - self._started_at
        )
        stats = self.cache.stats()
        return {
            "pid": os.getpid(),
            "uptime": uptime,
            "draining": self._draining,
            # The health request itself is one of the active requests;
            # report the depth the *other* clients are contributing.
            "in_flight": max(0, self._active_requests - 1),
            "admitted": self._admitted,
            "max_concurrent": self.max_concurrent,
            "admission_queue": self.admission_queue,
            "requests_handled": self.requests_handled,
            "overload_rejections": self.overload_rejections,
            "cache": {"hits": stats.hits, "misses": stats.misses, "size": stats.size},
        }

    # -- op execution (worker thread) -----------------------------------------

    def _classified(self, fn):
        """Run ``fn`` under the solve lock, classifying its cache traffic."""
        with self._solve_lock:
            before = self.cache.stats()
            out = fn()
            after = self.cache.stats()
        return out, _provenance_counts(before, after)

    def _execute(self, op: str, request: Mapping[str, Any]):
        if op == "solve":
            return self._op_solve(request)
        if op == "solve_stack":
            return self._op_solve_stack(request)
        if op == "solve_shard":
            return self._op_solve_shard(request)
        if op == "whatif":
            return self._op_whatif(request)
        if op == "bottlenecks":
            return self._op_bottlenecks(request)
        if op == "compose":
            return self._op_compose(request)
        raise ProtocolError(f"unhandled op {op!r}")  # pragma: no cover

    def _op_solve(self, request):
        scenario = decode_scenario(request.get("scenario"))
        method = str(request.get("method", "auto"))
        options = dict(request.get("options") or {})
        at = request.get("at")

        result, counts = self._classified(
            lambda: solve(scenario, method=method, cache=self.cache, **options)
        )
        payload = encode_result(result)
        if at is not None:
            payload = {"kind": "at", "solver": result.solver, **result.at(int(at))}
        return payload, _provenance_label(counts)

    def _op_solve_stack(self, request):
        raw = request.get("scenarios")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError("solve_stack needs a non-empty scenarios list")
        scenarios = [decode_scenario(item) for item in raw]
        method = str(request.get("method", "auto"))
        options = dict(request.get("options") or {})
        errors = str(request.get("errors", "isolate"))

        result, counts = self._classified(
            lambda: solve_stack(
                scenarios, method=method, cache=self.cache, errors=errors, **options
            )
        )
        payload = {
            "kind": "batched",
            "solver": result.solver,
            "count": result.n_scenarios,
            "peak_throughput": result.peak_throughput().tolist(),
            "failures": [
                {
                    "index": f.index,
                    "fingerprint": f.fingerprint,
                    "solver": f.solver,
                    "error": f.error,
                    "retries": f.retries,
                }
                for f in result.failures
            ],
        }
        return payload, _provenance_label(counts)

    def _op_solve_shard(self, request):
        """One fabric shard: solve a sub-stack and ship the full arrays back.

        The remote-sweep workhorse.  Unlike ``solve_stack`` (a summary
        view for interactive clients) this returns every trajectory
        array bit-exactly, plus the shard's ``start`` offset so the
        dispatcher can re-assemble ``_concat_results`` order.  Each
        scenario's wire fingerprint is verified against the
        ``fingerprints`` list the client computed from its *original*
        scenarios — a mismatch means the codec could not express the
        demand model exactly, and the shard must be solved locally.
        """
        raw = request.get("scenarios")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError("solve_shard needs a non-empty scenarios list")
        scenarios = [decode_scenario(item) for item in raw]
        expected = request.get("fingerprints")
        if expected is not None:
            if not isinstance(expected, list) or len(expected) != len(scenarios):
                raise ProtocolError(
                    "solve_shard fingerprints must parallel the scenarios list"
                )
            for idx, (sc, fp) in enumerate(zip(scenarios, expected)):
                if sc.fingerprint() != fp:
                    raise ProtocolError(
                        f"scenario #{idx} fingerprint mismatch after decode "
                        f"({sc.fingerprint()[:12]} != {str(fp)[:12]}): the wire "
                        "codec cannot express this demand model exactly; "
                        "solve this shard locally"
                    )
        method = str(request.get("method", "auto"))
        backend = str(request.get("backend", "auto"))
        if backend not in ("auto", "serial", "batched"):
            raise ProtocolError(
                f"solve_shard backend must be auto/serial/batched, got {backend!r}"
            )
        start = int(request.get("start", 0))
        options = dict(request.get("options") or {})

        def run():
            with scenario_offset(start):
                return solve_stack(
                    scenarios, method=method, backend=backend, cache=self.cache, **options
                )

        result, counts = self._classified(run)
        return (
            {**encode_stack_result(result), "start": start},
            _provenance_label(counts),
        )

    def _op_whatif(self, request):
        """One snapshot per requested population — the capacity question.

        Each population is its own ``solve()`` at ``N' = n``; with the
        trajectory store active, one deep solve answers the whole sweep
        (prefix slices below the deepest N seen, one resume above it).
        """
        scenario = decode_scenario(request.get("scenario"))
        raw_pops = request.get("populations")
        if not isinstance(raw_pops, list) or not raw_pops:
            raise ProtocolError("whatif needs a non-empty populations list")
        populations = [int(n) for n in raw_pops]
        if any(n < 1 for n in populations):
            raise ProtocolError("whatif populations must be >= 1")
        method = str(request.get("method", "auto"))
        options = dict(request.get("options") or {})

        def sweep():
            snapshots = []
            for n in populations:
                sc = (
                    scenario
                    if n == scenario.max_population
                    else scenario.with_overrides(max_population=n)
                )
                result = solve(sc, method=method, cache=self.cache, **options)
                snapshots.append({"solver": result.solver, **result.at(n)})
            return snapshots

        snapshots, counts = self._classified(sweep)
        return {"kind": "whatif", "snapshots": snapshots}, counts

    def _op_compose(self, request):
        """Hierarchical composition: aggregate station groups, solve reduced.

        ``aggregates`` is a list of ``{"stations": [...], "name": ...}``
        groups applied **in sequence** — each group aggregates stations
        of the scenario as reduced by the groups before it, so a later
        group may fold an earlier flow-equivalent station into a deeper
        level of the hierarchy.  The subsystem solves ride the server's
        cache like any other request (re-composing an unchanged
        subsystem is a cache hit).  ``flat_check: true`` additionally
        solves the flat scenario and reports the max throughput
        divergence.
        """
        from ..solvers.fes import aggregate as fes_aggregate
        from ..solvers.fes import compose as fes_compose

        scenario = decode_scenario(request.get("scenario"))
        raw_groups = request.get("aggregates")
        if not isinstance(raw_groups, list) or not raw_groups:
            raise ProtocolError("compose needs a non-empty aggregates list")
        method = str(request.get("method", "auto"))
        options = dict(request.get("options") or {})
        flat_check = bool(request.get("flat_check", False))

        def run():
            current = scenario
            built = []
            for idx, group in enumerate(raw_groups):
                if not isinstance(group, Mapping) or "stations" not in group:
                    raise ProtocolError(f"aggregate #{idx} needs a stations list")
                members = [str(name) for name in group["stations"]]
                fes = fes_aggregate(
                    current,
                    members,
                    name=group.get("name"),
                    method=method,
                    cache=self.cache,
                    **options,
                )
                current = fes_compose(current, [fes])
                built.append(fes)
            result = solve(current, method="auto", cache=self.cache, **options)
            flat_parity = None
            if flat_check:
                flat = solve(scenario, method=method, cache=self.cache, **options)
                import numpy as np

                flat_parity = float(
                    np.abs(
                        np.asarray(result.throughput) - np.asarray(flat.throughput)
                    ).max()
                )
            return current, built, result, flat_parity

        (current, built, result, flat_parity), counts = self._classified(run)
        payload = {
            **encode_result(result),
            "composition": {
                "stations": list(current.station_names),
                "aggregates": [
                    {
                        "name": fes.name,
                        "members": list(fes.members),
                        "solver": fes.solver,
                        "source_fingerprint": fes.source_fingerprint,
                        "max_population": fes.max_population,
                    }
                    for fes in built
                ],
            },
        }
        if flat_parity is not None:
            payload["flat_parity"] = flat_parity
        return payload, _provenance_label(counts)

    def _op_bottlenecks(self, request):
        from ..analysis.bottlenecks import solved_bottleneck_ranking

        scenario = decode_scenario(request.get("scenario"))
        method = str(request.get("method", "auto"))

        def rank():
            return solved_bottleneck_ranking(
                scenario.resolved_network(),
                scenario.max_population,
                method=method,
                cache=self.cache,
            )

        ranking, counts = self._classified(rank)
        payload = {
            "kind": "bottlenecks",
            "population": ranking.population,
            "solver": ranking.solver,
            "stations": list(ranking.stations),
            "utilizations": ranking.utilizations.tolist(),
        }
        return payload, _provenance_label(counts)

    def _cache_stats(self) -> dict:
        stats = self.cache.stats()
        payload = {
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "uncacheable": stats.uncacheable,
            "errors": stats.errors,
            "size": stats.size,
            "maxsize": stats.maxsize,
            "persistent_hits": stats.persistent_hits,
            "trajectory_hits": stats.trajectory_hits,
            "trajectory_extends": stats.trajectory_extends,
            "requests_handled": self.requests_handled,
        }
        if stats.persistent is not None:
            payload["persistent"] = {
                "hits": stats.persistent.hits,
                "misses": stats.persistent.misses,
                "errors": stats.persistent.errors,
                "writes": stats.persistent.writes,
                "entries": stats.persistent.entries,
                "bytes": stats.persistent.bytes,
                "path": stats.persistent.path,
            }
        if self.cache.trajectory is not None:
            payload["trajectory"] = self.cache.trajectory.stats()
        return payload


async def _amain(server: SolverServer, announce, banner: str = "repro-serve") -> None:
    await server.start()
    if announce is not None:
        announce(f"{banner} listening on {server.host}:{server.port}")
    loop = asyncio.get_running_loop()
    try:
        import signal

        # SIGINT stops immediately; SIGTERM drains — refuse new work,
        # answer everything in flight, then exit 0 (how `repro fleet
        # down`/`drain` and orchestrators stop workers without dropping
        # requests).
        loop.add_signal_handler(signal.SIGINT, server.request_shutdown)
        loop.add_signal_handler(signal.SIGTERM, server.request_drain)
    except (ImportError, NotImplementedError, RuntimeError):  # pragma: no cover
        pass
    await server.serve_until_shutdown()


def run_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    cache_path: str | None = None,
    maxsize: int = 1024,
    timeout: float = DEFAULT_TIMEOUT,
    max_concurrent: int = DEFAULT_MAX_CONCURRENT,
    admission_queue: int = DEFAULT_ADMISSION_QUEUE,
    announce=None,
    banner: str = "repro-serve",
) -> SolverServer:
    """Blocking entry point used by ``repro serve`` and ``repro worker``.

    Builds the server, prints the ``listening`` line (flushed, so a
    parent process can scrape the bound port), and runs until a client
    sends ``shutdown`` or the process receives SIGINT/SIGTERM.  The
    ``banner`` prefix distinguishes interactive service processes from
    fabric workers in logs; the ``listening on`` suffix is stable either
    way, so port-scraping launchers work for both.
    """
    server = SolverServer(
        host=host,
        port=port,
        cache_path=cache_path,
        maxsize=maxsize,
        timeout=timeout,
        max_concurrent=max_concurrent,
        admission_queue=admission_queue,
    )
    if announce is None:
        def announce(message: str) -> None:
            print(message, flush=True)

    asyncio.run(_amain(server, announce, banner))
    return server
