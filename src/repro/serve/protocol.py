"""Wire format of the capacity-planning service.

One request or response per line, UTF-8 JSON (``\\n``-terminated).  A
request names an ``op`` and carries its inputs; a response echoes the
request ``id`` and either ``{"ok": true, "result": ...}`` or
``{"ok": false, "error": {...}}`` — the error envelope reuses the
field vocabulary of :class:`~repro.engine.batched.ScenarioFailure`
(``fingerprint``/``solver``/``error``) so service clients and batch
callers read failures the same way.

Floats ride as JSON numbers, which Python serializes via ``repr`` —
shortest round-trip representation — so a served trajectory compares
**bit-identical** (parity 0.0) to a direct in-process solve; the PERF-04
bench and the CI smoke job assert exactly that.  The bulk arrays of the
execution-fabric ops (``solve_shard`` trajectories, resolved demand
matrices) instead ride as packed buffers — base64 of the raw C-order
IEEE-754 bytes, ``{"__nd__": shape, "dtype": ..., "b64": ...}`` — which
is bit-exact by construction and keeps codec time negligible next to
the solve; decoders accept plain nested lists in the same positions.

Scenario codec
--------------

.. code-block:: json

    {
      "stations": [
        {"name": "cpu",  "demand": 0.005, "servers": 4},
        {"name": "disk", "demand": {"levels": [1, 100], "values": [0.004, 0.003]}},
        {"name": "net",  "demand": 0.002, "kind": "delay"}
      ],
      "think_time": 1.0,
      "max_population": 280,
      "demand_level": 1.0
    }

Station ``demand`` is a number (constant demand) or a
``{"levels": [...], "values": [...]}`` table — linearly interpolated
against population, the service-side equivalent of the paper's measured
demand curves (fit splines client-side and sample them onto a table to
ship them).

An optional top-level ``"rate_tables": {"station": [mu1, mu2, ...]}``
attaches tabulated load-dependent service-rate laws (flow-equivalent
stations, :mod:`repro.solvers.fes`) — each list must cover populations
``1..max_population``.  The ``compose`` op builds such scenarios
server-side from ``{"stations": [...], "name": ...}`` aggregate groups.

An optional top-level ``"demand_matrix"`` (one ``K``-demand row per
population ``1..max_population``, as nested lists or a packed buffer)
ships a *resolved* varying-demand law exactly — this is how the remote sweep
fabric serializes spline/measured demand curves without shipping the
callables: :func:`encode_scenario` resolves the curve onto the integer
population grid, and the decoded scenario hashes to the **same
fingerprint** as the original, which the ``solve_shard`` op verifies
before solving.

Multi-class scenarios replace the single-class demand fields with a
top-level ``"classes"`` list.  A class with constant demands ships them
as a ``{"station": seconds}`` mapping; a class whose demands vary with
the total population ships a packed ``(max_population, K)``
``"demand_matrix"`` — its demand curves sampled at every total
``1..max_population``, in station order — which decodes back into
interpolated curves.  Because :meth:`WorkloadClass.fingerprint` samples
varying demands at exactly those integer totals (and ``np.interp`` is
exact at its own nodes), the decoded class hashes identically to the
original; station-level ``demand`` entries are ignored by multi-class
solvers and fingerprints, so they ride as ``0.0``.
"""

from __future__ import annotations

import base64
import json
from typing import Any, Mapping

import numpy as np

from ..core.network import ClosedNetwork, Station
from ..core.results import MVAResult
from ..engine.batched import (
    BatchedMultiClassResult,
    BatchedMultiClassTrajectory,
    BatchedMVAResult,
    ScenarioFailure,
)
from ..solvers.scenario import Scenario, WorkloadClass
from ..solvers.validation import SolverInputError

__all__ = [
    "ProtocolError",
    "decode_request",
    "decode_scenario",
    "decode_stack_result",
    "encode_result",
    "encode_scenario",
    "encode_stack_result",
    "error_envelope",
    "ok_envelope",
]

#: Hard cap on one request line.  Interactive requests are a few KB, but
#: a ``solve_shard`` of a varying-demand sub-stack legitimately runs to
#: tens of MB (S scenarios × an N×K resolved demand matrix each) — the
#: cap only exists to bound what a malformed or hostile client can make
#: the server buffer.
MAX_LINE_BYTES = 64 * 1024 * 1024

KNOWN_OPS = (
    "ping",
    "solve",
    "solve_stack",
    "solve_shard",
    "whatif",
    "bottlenecks",
    "compose",
    "cache_stats",
    "health",
    "drain",
    "shutdown",
)


class ProtocolError(ValueError):
    """A request the server cannot even begin to execute."""


#: Dtypes a packed array may declare — closed set, so a hostile peer
#: cannot smuggle object arrays through ``np.dtype(...)``.
_PACKED_DTYPES = ("float64", "int64", "int32")


def _pack_array(arr: np.ndarray) -> dict:
    """Binary wire form of an ndarray: base64 of the raw C-order buffer.

    Bit-exact by construction (it *is* the IEEE-754 buffer) and ~50x
    cheaper to encode/decode than nested JSON float lists — the
    difference between a ``solve_shard`` response dominated by codec
    time and one dominated by the solve.
    """
    arr = np.ascontiguousarray(arr)
    if str(arr.dtype) not in _PACKED_DTYPES:
        arr = np.ascontiguousarray(arr, dtype=float)
    return {
        "__nd__": list(arr.shape),
        "dtype": str(arr.dtype),
        "b64": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def _unpack_array(raw, dtype=None) -> np.ndarray:
    """Inverse of :func:`_pack_array`; plain nested lists still decode."""
    if isinstance(raw, Mapping) and "__nd__" in raw:
        declared = str(raw["dtype"])
        if declared not in _PACKED_DTYPES:
            raise ProtocolError(f"packed array dtype {declared!r} not allowed")
        flat = np.frombuffer(base64.b64decode(raw["b64"]), dtype=np.dtype(declared))
        arr = flat.reshape([int(d) for d in raw["__nd__"]]).copy()
        return arr if dtype is None else np.ascontiguousarray(arr, dtype=dtype)
    return np.asarray(raw) if dtype is None else np.asarray(raw, dtype=dtype)


class _InterpTable:
    """Picklable linear-interpolation demand curve from a wire table."""

    __slots__ = ("levels", "values")

    def __init__(self, levels, values) -> None:
        self.levels = np.asarray(levels, dtype=float)
        self.values = np.asarray(values, dtype=float)
        if self.levels.ndim != 1 or self.levels.shape != self.values.shape:
            raise ProtocolError("demand table: levels/values must be equal-length lists")
        if len(self.levels) < 2:
            raise ProtocolError("demand table needs at least two points")
        if not np.all(np.diff(self.levels) > 0):
            raise ProtocolError("demand table levels must be strictly increasing")

    def __call__(self, n):
        return np.interp(np.asarray(n, dtype=float), self.levels, self.values)


def _decode_demand(raw) -> float | _InterpTable:
    if isinstance(raw, (int, float)) and not isinstance(raw, bool):
        return float(raw)
    if isinstance(raw, Mapping) and "levels" in raw and "values" in raw:
        return _InterpTable(raw["levels"], raw["values"])
    raise ProtocolError(
        f"station demand must be a number or {{levels, values}} table, got {raw!r}"
    )


def _encode_class(cls: WorkloadClass, scenario: Scenario) -> dict:
    """Wire form of one :class:`WorkloadClass` (see module docstring)."""
    entry: dict[str, Any] = {
        "name": cls.name,
        "population": int(cls.population),
        "think_time": float(cls.think_time),
    }
    names = scenario.station_names
    if cls.has_varying_demands:
        sampled = np.stack(
            [
                cls.demand_vector(names, float(level))
                for level in range(1, scenario.max_population + 1)
            ]
        )
        entry["demand_matrix"] = _pack_array(sampled)
    else:
        entry["demands"] = {
            name: float(v) for name, v in zip(names, cls.demand_vector(names, 1.0))
        }
    return entry


def _decode_class(
    raw: Mapping[str, Any], station_names: tuple[str, ...], max_population: int
) -> WorkloadClass:
    """Inverse of :func:`_encode_class`."""
    if not isinstance(raw, Mapping) or "name" not in raw or "population" not in raw:
        raise ProtocolError("each class needs at least name and population")
    if "demands" in raw:
        demands_raw = raw["demands"]
        if not isinstance(demands_raw, Mapping):
            raise ProtocolError("class demands must map station names to numbers")
        demands: dict[str, float | _InterpTable] = {
            str(name): float(v) for name, v in demands_raw.items()
        }
    elif "demand_matrix" in raw:
        try:
            matrix = _unpack_array(raw["demand_matrix"], dtype=float)
        except ProtocolError:
            raise
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"class demand_matrix is not numeric: {exc}") from None
        if matrix.shape != (max_population, len(station_names)):
            raise ProtocolError(
                f"class demand_matrix must have shape "
                f"({max_population}, {len(station_names)}), got {matrix.shape}"
            )
        if max_population == 1:
            # One sampled total: the "curve" is a point, so it decodes as
            # a constant (``fingerprint`` then samples at level 1.0 —
            # the same value the matrix row holds).
            demands = {name: float(matrix[0, k]) for k, name in enumerate(station_names)}
        else:
            levels = np.arange(1, max_population + 1, dtype=float)
            demands = {
                name: _InterpTable(levels, matrix[:, k])
                for k, name in enumerate(station_names)
            }
    else:
        raise ProtocolError(
            f"class {raw.get('name')!r} needs demands or a demand_matrix"
        )
    try:
        return WorkloadClass(
            name=str(raw["name"]),
            population=int(raw["population"]),
            demands=demands,
            think_time=float(raw.get("think_time", 0.0)),
        )
    except (SolverInputError, ValueError) as exc:
        raise ProtocolError(f"class rejected: {exc}") from None


def decode_scenario(payload: Mapping[str, Any]) -> Scenario:
    """Build a validated :class:`Scenario` from its wire representation."""
    if not isinstance(payload, Mapping):
        raise ProtocolError(f"scenario must be an object, got {type(payload).__name__}")
    try:
        raw_stations = payload["stations"]
        max_population = payload["max_population"]
    except KeyError as exc:
        raise ProtocolError(f"scenario is missing required key {exc.args[0]!r}") from None
    if not isinstance(raw_stations, list) or not raw_stations:
        raise ProtocolError("scenario.stations must be a non-empty list")
    stations = []
    for idx, st in enumerate(raw_stations):
        if not isinstance(st, Mapping) or "name" not in st or "demand" not in st:
            raise ProtocolError(f"station #{idx} needs at least name and demand")
        stations.append(
            Station(
                str(st["name"]),
                _decode_demand(st["demand"]),
                servers=int(st.get("servers", 1)),
                visits=float(st.get("visits", 1.0)),
                kind=str(st.get("kind", "queue")),
            )
        )
    network = ClosedNetwork(
        stations,
        think_time=float(payload.get("think_time", 0.0)),
        name=str(payload.get("name", "served")),
    )
    rate_tables = payload.get("rate_tables")
    if rate_tables is not None and not isinstance(rate_tables, Mapping):
        raise ProtocolError("scenario.rate_tables must map station names to lists")
    demand_matrix = payload.get("demand_matrix")
    if demand_matrix is not None:
        try:
            demand_matrix = _unpack_array(demand_matrix, dtype=float)
        except ProtocolError:
            raise
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"scenario.demand_matrix is not numeric: {exc}") from None
        if demand_matrix.ndim != 2:
            raise ProtocolError(
                "scenario.demand_matrix must be an (N, K) list of demand rows"
            )
    classes = None
    raw_classes = payload.get("classes")
    if raw_classes is not None:
        if not isinstance(raw_classes, list) or not raw_classes:
            raise ProtocolError("scenario.classes must be a non-empty list")
        if demand_matrix is not None:
            raise ProtocolError(
                "scenario: classes and demand_matrix are mutually exclusive"
            )
        names = tuple(str(st["name"]) for st in raw_stations)
        classes = tuple(
            _decode_class(raw, names, int(max_population)) for raw in raw_classes
        )
    try:
        return Scenario(
            network,
            max_population=int(max_population),
            demand_matrix=demand_matrix,
            demand_level=float(payload.get("demand_level", 1.0)),
            classes=classes,
            rate_tables=rate_tables,
        )
    except ValueError as exc:
        raise ProtocolError(f"scenario rejected: {exc}") from None


def encode_scenario(scenario: Scenario) -> dict:
    """Wire representation of a :class:`Scenario` — inverse of
    :func:`decode_scenario`.

    Varying demand models (splines, measured curves, demand matrices)
    are *resolved* onto the integer population grid and shipped as the
    top-level ``"demand_matrix"``; constant demands ride as plain
    station numbers.  Because :meth:`Scenario.fingerprint` hashes the
    resolved matrix — not the callables — the decoded scenario hashes
    identically whenever ``demand_level`` sits on the population grid,
    which the remote capability probe checks up front and the
    ``solve_shard`` op re-verifies per scenario.

    Multi-class scenarios ship a top-level ``"classes"`` list instead
    of per-station demands (see module docstring): constant class
    demands as mappings, varying ones sampled onto the integer
    total-population grid — fingerprint-identical on decode, because
    class fingerprints hash exactly those samples.
    """
    if scenario.is_multiclass:
        demands = np.zeros(len(scenario.network))
    else:
        demands = scenario.fixed_demands()
    stations = []
    for st, demand in zip(scenario.network.stations, demands):
        entry: dict[str, Any] = {"name": st.name, "demand": float(demand)}
        if st.servers != 1:
            entry["servers"] = int(st.servers)
        if st.visits != 1.0:
            entry["visits"] = float(st.visits)
        if st.kind != "queue":
            entry["kind"] = st.kind
        stations.append(entry)
    payload: dict[str, Any] = {
        "stations": stations,
        "think_time": float(scenario.think),
        "max_population": int(scenario.max_population),
        "demand_level": float(scenario.demand_level),
        "name": scenario.network.name,
    }
    if scenario.is_multiclass:
        payload["classes"] = [_encode_class(c, scenario) for c in scenario.classes]
    elif scenario.has_varying_demands:
        payload["demand_matrix"] = _pack_array(
            np.asarray(scenario.resolved_demand_matrix(), dtype=float)
        )
    if scenario.rate_tables:
        payload["rate_tables"] = {
            name: [float(v) for v in table]
            for name, table in scenario.rate_tables.items()
        }
    return payload


def _encode_failures(result) -> list[dict]:
    return [
        {
            "index": f.index,
            "fingerprint": f.fingerprint,
            "solver": f.solver,
            "error": f.error,
            "retries": f.retries,
        }
        for f in result.failures
    ]


def _decode_failures(payload) -> tuple[ScenarioFailure, ...]:
    return tuple(
        ScenarioFailure(
            index=int(f["index"]),
            fingerprint=str(f["fingerprint"]),
            solver=str(f["solver"]),
            error=str(f["error"]),
            retries=int(f.get("retries", 0)),
        )
        for f in payload["failures"]
    )


def _maybe_pack(arr) -> dict | None:
    return None if arr is None else _pack_array(arr)


def _maybe_unpack(raw) -> np.ndarray | None:
    return None if raw is None else _unpack_array(raw, dtype=float)


def encode_stack_result(result) -> dict:
    """JSON-ready form of a batched sub-stack (the ``solve_shard`` body).

    Every trajectory array is packed via :func:`_pack_array` (the raw
    IEEE-754 buffer, so round-trips are bit-exact and cost memcpy, not
    float parsing), plus the isolated-failure records so a remote shard
    degrades exactly like a local one.  Three container kinds mirror the
    checkpoint containers: ``batched-stack`` (single-class),
    ``multiclass-stack`` (full-population multi-class) and
    ``multiclass-trajectory-stack`` (mix sweeps).
    """
    if isinstance(result, BatchedMVAResult):
        return {
            "kind": "batched-stack",
            "solver": result.solver,
            "backend": result.backend,
            "station_names": list(result.station_names),
            "populations": _pack_array(result.populations),
            "think_times": _pack_array(result.think_times),
            "throughput": _pack_array(result.throughput),
            "response_time": _pack_array(result.response_time),
            "queue_lengths": _pack_array(result.queue_lengths),
            "residence_times": _pack_array(result.residence_times),
            "utilizations": _pack_array(result.utilizations),
            "demands_used": _maybe_pack(result.demands_used),
            "failures": _encode_failures(result),
        }
    if isinstance(result, BatchedMultiClassResult):
        return {
            "kind": "multiclass-stack",
            "solver": result.solver,
            "backend": result.backend,
            "station_names": list(result.station_names),
            "class_names": list(result.class_names),
            "populations": [int(n) for n in result.populations],
            "think_times": _pack_array(result.think_times),
            "throughput": _pack_array(result.throughput),
            "response_time": _pack_array(result.response_time),
            "queue_lengths": _pack_array(result.queue_lengths),
            "queue_lengths_by_class": _pack_array(result.queue_lengths_by_class),
            "utilizations": _pack_array(result.utilizations),
            "demands_used": _maybe_pack(result.demands_used),
            "failures": _encode_failures(result),
        }
    if isinstance(result, BatchedMultiClassTrajectory):
        return {
            "kind": "multiclass-trajectory-stack",
            "solver": result.solver,
            "backend": result.backend,
            "station_names": list(result.station_names),
            "class_names": list(result.class_names),
            "totals": _pack_array(result.totals),
            "populations": _pack_array(result.populations),
            "think_times": _pack_array(result.think_times),
            "throughput": _pack_array(result.throughput),
            "response_time": _pack_array(result.response_time),
            "utilizations": _pack_array(result.utilizations),
            "demands_used": _maybe_pack(result.demands_used),
            "failures": _encode_failures(result),
        }
    raise ProtocolError(
        f"only batched stacks cross the wire, got {type(result).__name__}"
    )


def decode_stack_result(payload: Mapping[str, Any]):
    """Rebuild the batched result a worker shipped back."""
    try:
        kind = payload.get("kind")
        if kind == "batched-stack":
            return BatchedMVAResult(
                populations=_unpack_array(payload["populations"]),
                throughput=_unpack_array(payload["throughput"], dtype=float),
                response_time=_unpack_array(payload["response_time"], dtype=float),
                queue_lengths=_unpack_array(payload["queue_lengths"], dtype=float),
                residence_times=_unpack_array(payload["residence_times"], dtype=float),
                utilizations=_unpack_array(payload["utilizations"], dtype=float),
                station_names=tuple(str(n) for n in payload["station_names"]),
                think_times=_unpack_array(payload["think_times"], dtype=float),
                solver=str(payload["solver"]),
                demands_used=_maybe_unpack(payload["demands_used"]),
                backend=payload.get("backend"),
                failures=_decode_failures(payload),
            )
        if kind == "multiclass-stack":
            return BatchedMultiClassResult(
                populations=tuple(int(n) for n in payload["populations"]),
                class_names=tuple(str(n) for n in payload["class_names"]),
                throughput=_unpack_array(payload["throughput"], dtype=float),
                response_time=_unpack_array(payload["response_time"], dtype=float),
                queue_lengths=_unpack_array(payload["queue_lengths"], dtype=float),
                queue_lengths_by_class=_unpack_array(
                    payload["queue_lengths_by_class"], dtype=float
                ),
                utilizations=_unpack_array(payload["utilizations"], dtype=float),
                station_names=tuple(str(n) for n in payload["station_names"]),
                think_times=_unpack_array(payload["think_times"], dtype=float),
                solver=str(payload["solver"]),
                demands_used=_maybe_unpack(payload["demands_used"]),
                backend=payload.get("backend"),
                failures=_decode_failures(payload),
            )
        if kind == "multiclass-trajectory-stack":
            return BatchedMultiClassTrajectory(
                class_names=tuple(str(n) for n in payload["class_names"]),
                station_names=tuple(str(n) for n in payload["station_names"]),
                totals=_unpack_array(payload["totals"]),
                populations=_unpack_array(payload["populations"]),
                throughput=_unpack_array(payload["throughput"], dtype=float),
                response_time=_unpack_array(payload["response_time"], dtype=float),
                utilizations=_unpack_array(payload["utilizations"], dtype=float),
                think_times=_unpack_array(payload["think_times"], dtype=float),
                solver=str(payload["solver"]),
                demands_used=_maybe_unpack(payload["demands_used"]),
                backend=payload.get("backend"),
                failures=_decode_failures(payload),
            )
        raise ValueError(f"unknown stack-result kind {kind!r}")
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed stack result: {exc}") from None


def decode_request(line: bytes) -> dict:
    """Parse one request line; raises :class:`ProtocolError` on junk."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"request exceeds {MAX_LINE_BYTES} bytes")
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(request, dict):
        raise ProtocolError("request must be a JSON object")
    op = request.get("op")
    if op not in KNOWN_OPS:
        raise ProtocolError(f"unknown op {op!r}; known: {', '.join(KNOWN_OPS)}")
    return request


def encode_result(result) -> dict:
    """JSON-ready representation of a facade result.

    :class:`MVAResult` trajectories serialize as parallel lists (floats
    round-trip exactly); other result kinds fall back to their summary
    line so every op can at least report what it computed.
    """
    if isinstance(result, MVAResult):
        return {
            "kind": "mva",
            "solver": result.solver,
            "station_names": list(result.station_names),
            "think_time": result.think_time,
            "populations": result.populations.tolist(),
            "throughput": result.throughput.tolist(),
            "response_time": result.response_time.tolist(),
            "cycle_time": result.cycle_time.tolist(),
            "queue_lengths": result.queue_lengths.tolist(),
            "utilizations": result.utilizations.tolist(),
        }
    if hasattr(result, "summary"):
        return {"kind": type(result).__name__, "summary": result.summary()}
    return {"kind": type(result).__name__, "repr": repr(result)}


def ok_envelope(request_id, result, provenance=None) -> dict:
    envelope = {"id": request_id, "ok": True, "result": result}
    if provenance is not None:
        envelope["provenance"] = provenance
    return envelope


def error_envelope(
    request_id,
    exc: BaseException,
    *,
    fingerprint: str | None = None,
    solver: str | None = None,
) -> dict:
    """Structured failure mirroring ``ScenarioFailure`` field names."""
    return {
        "id": request_id,
        "ok": False,
        "error": {
            "type": type(exc).__name__,
            "error": str(exc),
            "fingerprint": fingerprint,
            "solver": solver,
        },
    }
