"""Wire format of the capacity-planning service.

One request or response per line, UTF-8 JSON (``\\n``-terminated).  A
request names an ``op`` and carries its inputs; a response echoes the
request ``id`` and either ``{"ok": true, "result": ...}`` or
``{"ok": false, "error": {...}}`` — the error envelope reuses the
field vocabulary of :class:`~repro.engine.batched.ScenarioFailure`
(``fingerprint``/``solver``/``error``) so service clients and batch
callers read failures the same way.

Floats ride as JSON numbers, which Python serializes via ``repr`` —
shortest round-trip representation — so a served trajectory compares
**bit-identical** (parity 0.0) to a direct in-process solve; the PERF-04
bench and the CI smoke job assert exactly that.

Scenario codec
--------------

.. code-block:: json

    {
      "stations": [
        {"name": "cpu",  "demand": 0.005, "servers": 4},
        {"name": "disk", "demand": {"levels": [1, 100], "values": [0.004, 0.003]}},
        {"name": "net",  "demand": 0.002, "kind": "delay"}
      ],
      "think_time": 1.0,
      "max_population": 280,
      "demand_level": 1.0
    }

Station ``demand`` is a number (constant demand) or a
``{"levels": [...], "values": [...]}`` table — linearly interpolated
against population, the service-side equivalent of the paper's measured
demand curves (fit splines client-side and sample them onto a table to
ship them).

An optional top-level ``"rate_tables": {"station": [mu1, mu2, ...]}``
attaches tabulated load-dependent service-rate laws (flow-equivalent
stations, :mod:`repro.solvers.fes`) — each list must cover populations
``1..max_population``.  The ``compose`` op builds such scenarios
server-side from ``{"stations": [...], "name": ...}`` aggregate groups.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

import numpy as np

from ..core.network import ClosedNetwork, Station
from ..core.results import MVAResult
from ..solvers.scenario import Scenario

__all__ = [
    "ProtocolError",
    "decode_request",
    "decode_scenario",
    "encode_result",
    "error_envelope",
    "ok_envelope",
]

#: Hard cap on one request line — a scenario is a few KB; anything
#: larger is a malformed or hostile client.
MAX_LINE_BYTES = 4 * 1024 * 1024

KNOWN_OPS = (
    "ping",
    "solve",
    "solve_stack",
    "whatif",
    "bottlenecks",
    "compose",
    "cache_stats",
    "shutdown",
)


class ProtocolError(ValueError):
    """A request the server cannot even begin to execute."""


class _InterpTable:
    """Picklable linear-interpolation demand curve from a wire table."""

    __slots__ = ("levels", "values")

    def __init__(self, levels, values) -> None:
        self.levels = np.asarray(levels, dtype=float)
        self.values = np.asarray(values, dtype=float)
        if self.levels.ndim != 1 or self.levels.shape != self.values.shape:
            raise ProtocolError("demand table: levels/values must be equal-length lists")
        if len(self.levels) < 2:
            raise ProtocolError("demand table needs at least two points")
        if not np.all(np.diff(self.levels) > 0):
            raise ProtocolError("demand table levels must be strictly increasing")

    def __call__(self, n):
        return np.interp(np.asarray(n, dtype=float), self.levels, self.values)


def _decode_demand(raw) -> float | _InterpTable:
    if isinstance(raw, (int, float)) and not isinstance(raw, bool):
        return float(raw)
    if isinstance(raw, Mapping) and "levels" in raw and "values" in raw:
        return _InterpTable(raw["levels"], raw["values"])
    raise ProtocolError(
        f"station demand must be a number or {{levels, values}} table, got {raw!r}"
    )


def decode_scenario(payload: Mapping[str, Any]) -> Scenario:
    """Build a validated :class:`Scenario` from its wire representation."""
    if not isinstance(payload, Mapping):
        raise ProtocolError(f"scenario must be an object, got {type(payload).__name__}")
    try:
        raw_stations = payload["stations"]
        max_population = payload["max_population"]
    except KeyError as exc:
        raise ProtocolError(f"scenario is missing required key {exc.args[0]!r}") from None
    if not isinstance(raw_stations, list) or not raw_stations:
        raise ProtocolError("scenario.stations must be a non-empty list")
    stations = []
    for idx, st in enumerate(raw_stations):
        if not isinstance(st, Mapping) or "name" not in st or "demand" not in st:
            raise ProtocolError(f"station #{idx} needs at least name and demand")
        stations.append(
            Station(
                str(st["name"]),
                _decode_demand(st["demand"]),
                servers=int(st.get("servers", 1)),
                visits=float(st.get("visits", 1.0)),
                kind=str(st.get("kind", "queue")),
            )
        )
    network = ClosedNetwork(
        stations,
        think_time=float(payload.get("think_time", 0.0)),
        name=str(payload.get("name", "served")),
    )
    rate_tables = payload.get("rate_tables")
    if rate_tables is not None and not isinstance(rate_tables, Mapping):
        raise ProtocolError("scenario.rate_tables must map station names to lists")
    return Scenario(
        network,
        max_population=int(max_population),
        demand_level=float(payload.get("demand_level", 1.0)),
        rate_tables=rate_tables,
    )


def decode_request(line: bytes) -> dict:
    """Parse one request line; raises :class:`ProtocolError` on junk."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"request exceeds {MAX_LINE_BYTES} bytes")
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(request, dict):
        raise ProtocolError("request must be a JSON object")
    op = request.get("op")
    if op not in KNOWN_OPS:
        raise ProtocolError(f"unknown op {op!r}; known: {', '.join(KNOWN_OPS)}")
    return request


def encode_result(result) -> dict:
    """JSON-ready representation of a facade result.

    :class:`MVAResult` trajectories serialize as parallel lists (floats
    round-trip exactly); other result kinds fall back to their summary
    line so every op can at least report what it computed.
    """
    if isinstance(result, MVAResult):
        return {
            "kind": "mva",
            "solver": result.solver,
            "station_names": list(result.station_names),
            "think_time": result.think_time,
            "populations": result.populations.tolist(),
            "throughput": result.throughput.tolist(),
            "response_time": result.response_time.tolist(),
            "cycle_time": result.cycle_time.tolist(),
            "queue_lengths": result.queue_lengths.tolist(),
            "utilizations": result.utilizations.tolist(),
        }
    if hasattr(result, "summary"):
        return {"kind": type(result).__name__, "summary": result.summary()}
    return {"kind": type(result).__name__, "repr": repr(result)}


def ok_envelope(request_id, result, provenance=None) -> dict:
    envelope = {"id": request_id, "ok": True, "result": result}
    if provenance is not None:
        envelope["provenance"] = provenance
    return envelope


def error_envelope(
    request_id,
    exc: BaseException,
    *,
    fingerprint: str | None = None,
    solver: str | None = None,
) -> dict:
    """Structured failure mirroring ``ScenarioFailure`` field names."""
    return {
        "id": request_id,
        "ok": False,
        "error": {
            "type": type(exc).__name__,
            "error": str(exc),
            "fingerprint": fingerprint,
            "solver": solver,
        },
    }
