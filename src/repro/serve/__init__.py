"""`repro.serve` — the always-on capacity-planning service.

The paper's artifact answers "what happens at N users" as a batch
script; this package turns the same facade into a long-lived service:

* :mod:`~repro.serve.protocol` — the JSON-lines wire format: scenario
  codec, result serialization, and the structured error envelope
  (mirroring :class:`~repro.engine.batched.ScenarioFailure` fields);
* :mod:`~repro.serve.server` — the asyncio TCP server behind
  ``repro serve``: every request routes through the existing
  facade → cache → backend → resilience stack, with per-request
  timeouts and cache-tier provenance on each response;
* :mod:`~repro.serve.client` — the thin blocking client behind
  ``repro query`` (and the bench/test harnesses).

The same wire format doubles as the execution fabric's transport:
``repro worker`` runs this server as a fabric worker, and
:class:`~repro.engine.transport.RemoteTransport` ships sub-stacks to it
via the ``solve_shard`` op (:func:`~repro.serve.protocol.encode_scenario`
/ :func:`~repro.serve.protocol.decode_stack_result`).

What makes the service fast is not in this package at all: the
trajectory store and the persistent sqlite tier live under
:class:`~repro.solvers.cache.SolverCache`, so *any* facade caller —
served or direct — gets incremental solves and restart-warm caches.
"""

from .client import ServeClient, ServeError, query  # noqa: F401
from .protocol import (  # noqa: F401
    ProtocolError,
    decode_scenario,
    decode_stack_result,
    encode_result,
    encode_scenario,
    encode_stack_result,
    error_envelope,
)
from .server import Overloaded, SolverServer, run_server  # noqa: F401

__all__ = [
    "Overloaded",
    "ProtocolError",
    "ServeClient",
    "ServeError",
    "SolverServer",
    "decode_scenario",
    "decode_stack_result",
    "encode_result",
    "encode_scenario",
    "encode_stack_result",
    "error_envelope",
    "query",
    "run_server",
]
