"""Blocking JSON-lines client for the capacity-planning service.

Used by ``repro query``, the PERF-04 bench and the CI smoke job.  The
client is deliberately dependency-free (one socket, one file object):
anything that can write a line of JSON can talk to the server, and this
module is the reference for what those lines look like.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Mapping

__all__ = ["ServeClient", "query"]

DEFAULT_CONNECT_TIMEOUT = 10.0


class ServeError(RuntimeError):
    """Raised by :meth:`ServeClient.call` when the server answers ``ok: false``."""

    def __init__(self, envelope: Mapping[str, Any]) -> None:
        error = envelope.get("error") or {}
        super().__init__(
            f"{error.get('type', 'Error')}: {error.get('error', 'unknown failure')}"
        )
        self.envelope = dict(envelope)


class ServeClient:
    """One persistent connection to a :class:`~repro.serve.server.SolverServer`.

    Usable as a context manager.  :meth:`request` returns the raw
    response envelope; :meth:`call` unwraps ``result`` and raises
    :class:`ServeError` on a structured failure.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7173,
        timeout: float | None = 60.0,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
    ) -> None:
        self.host = host
        self.port = int(port)
        self._sock = socket.create_connection((host, self.port), timeout=connect_timeout)
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    def set_timeout(self, timeout: float | None) -> None:
        """Adjust the per-request socket timeout on the live connection.

        The fabric reuses one connection per worker host across rounds
        whose :class:`~repro.engine.resilience.RetryPolicy` shard
        timeouts may differ.
        """
        self._sock.settimeout(timeout)

    # -- the wire -------------------------------------------------------------

    def request(self, payload: Mapping[str, Any]) -> dict:
        """Send one request object, return the response envelope."""
        body = dict(payload)
        if "id" not in body:
            self._next_id += 1
            body["id"] = self._next_id
        self._file.write(json.dumps(body).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def call(self, op: str, **payload: Any):
        """Request ``op`` and return its ``result`` (raises on failure)."""
        envelope = self.request({"op": op, **payload})
        if not envelope.get("ok"):
            raise ServeError(envelope)
        return envelope["result"]

    # -- convenience wrappers -------------------------------------------------

    def ping(self) -> dict:
        return self.call("ping")

    def solve(self, scenario: Mapping[str, Any], **payload: Any) -> dict:
        return self.call("solve", scenario=scenario, **payload)

    def whatif(
        self, scenario: Mapping[str, Any], populations, **payload: Any
    ) -> dict:
        return self.call(
            "whatif", scenario=scenario, populations=list(populations), **payload
        )

    def cache_stats(self) -> dict:
        return self.call("cache_stats")

    def shutdown(self) -> dict:
        return self.call("shutdown")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def query(
    payload: Mapping[str, Any],
    host: str = "127.0.0.1",
    port: int = 7173,
    timeout: float | None = 60.0,
) -> dict:
    """One-shot request: connect, send, return the response envelope."""
    with ServeClient(host, port, timeout=timeout) as client:
        return client.request(payload)
