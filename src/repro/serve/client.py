"""Blocking JSON-lines client for the capacity-planning service.

Used by ``repro query``, the PERF-04 bench and the CI smoke job.  The
client is deliberately dependency-free (one socket, one file object):
anything that can write a line of JSON can talk to the server, and this
module is the reference for what those lines look like.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Mapping

from .protocol import MAX_LINE_BYTES

__all__ = ["ServeClient", "query"]

DEFAULT_CONNECT_TIMEOUT = 10.0


class ServeError(RuntimeError):
    """Raised by :meth:`ServeClient.call` when the server answers ``ok: false``."""

    def __init__(self, envelope: Mapping[str, Any]) -> None:
        error = envelope.get("error") or {}
        super().__init__(
            f"{error.get('type', 'Error')}: {error.get('error', 'unknown failure')}"
        )
        self.envelope = dict(envelope)


class ServeClient:
    """One persistent connection to a :class:`~repro.serve.server.SolverServer`.

    Usable as a context manager.  :meth:`request` returns the raw
    response envelope; :meth:`call` unwraps ``result`` and raises
    :class:`ServeError` on a structured failure.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7173,
        timeout: float | None = 60.0,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
    ) -> None:
        self.host = host
        self.port = int(port)
        self._sock = socket.create_connection((host, self.port), timeout=connect_timeout)
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("wb")
        #: Bytes received but not yet consumed as a full line.  Reads go
        #: through :meth:`_readline_bounded` over the raw socket rather
        #: than ``makefile("rb")``: CPython's ``SocketIO`` permanently
        #: refuses reads after one timeout, which would make recovering a
        #: timed-out request's connection (the late-reply resync below)
        #: impossible.
        self._rbuf = bytearray()
        self._next_id = 0
        #: Request ids sent but never answered (a timed-out request's
        #: reply is still in flight) — how :meth:`request` recognises a
        #: late reply and discards it instead of mis-delivering it.
        self._outstanding: set = set()

    def set_timeout(self, timeout: float | None) -> None:
        """Adjust the per-request socket timeout on the live connection.

        The fabric reuses one connection per worker host across rounds
        whose :class:`~repro.engine.resilience.RetryPolicy` shard
        timeouts may differ.
        """
        self._sock.settimeout(timeout)

    # -- the wire -------------------------------------------------------------

    def request(self, payload: Mapping[str, Any]) -> dict:
        """Send one request object, return the *matching* response envelope.

        Responses are correlated by ``id``: a reply to an *earlier*
        request of this connection (one that timed out client-side while
        the server kept solving) is discarded and the read resumes, so a
        late reply can never be mis-delivered as the answer to the
        current request.  A reply with an id this client never sent
        means the peer is not speaking our protocol — that kills the
        connection.  Reads are bounded by the server's own
        ``MAX_LINE_BYTES`` so a misbehaving peer cannot make the client
        buffer an unbounded line.
        """
        body = dict(payload)
        if "id" not in body:
            self._next_id += 1
            body["id"] = self._next_id
        request_id = body["id"]
        self._outstanding.add(request_id)
        self._file.write(json.dumps(body).encode() + b"\n")
        self._file.flush()
        while True:
            line = self._readline_bounded()
            if not line:
                raise ConnectionError("server closed the connection")
            envelope = json.loads(line)
            response_id = envelope.get("id") if isinstance(envelope, dict) else None
            if response_id == request_id:
                self._outstanding.discard(request_id)
                return envelope
            if response_id in self._outstanding:
                # A late reply to a request we gave up on — drop it and
                # keep reading; the stream is back in sync once the
                # current request's reply arrives.
                self._outstanding.discard(response_id)
                continue
            raise ConnectionError(
                f"response id {response_id!r} matches no outstanding request "
                f"(expected {request_id!r}); desynchronized stream"
            )

    def _readline_bounded(self) -> bytes:
        """One ``\\n``-terminated line, at most ``MAX_LINE_BYTES`` long.

        A socket timeout leaves any partial line in ``_rbuf``, so a later
        read resumes exactly where the stream stopped — no bytes lost, no
        desynchronization.
        """
        while True:
            newline = self._rbuf.find(b"\n")
            if newline >= MAX_LINE_BYTES or (newline < 0 and len(self._rbuf) > MAX_LINE_BYTES):
                raise ConnectionError(
                    f"server response exceeds {MAX_LINE_BYTES} bytes; "
                    f"dropping connection"
                )
            if newline >= 0:
                line = bytes(self._rbuf[: newline + 1])
                del self._rbuf[: newline + 1]
                return line
            chunk = self._sock.recv(65536)
            if not chunk:  # EOF mid-line: surface whatever arrived
                line = bytes(self._rbuf)
                self._rbuf.clear()
                return line
            self._rbuf.extend(chunk)

    def call(self, op: str, **payload: Any):
        """Request ``op`` and return its ``result`` (raises on failure)."""
        envelope = self.request({"op": op, **payload})
        if not envelope.get("ok"):
            raise ServeError(envelope)
        return envelope["result"]

    # -- convenience wrappers -------------------------------------------------

    def ping(self) -> dict:
        return self.call("ping")

    def solve(self, scenario: Mapping[str, Any], **payload: Any) -> dict:
        return self.call("solve", scenario=scenario, **payload)

    def whatif(
        self, scenario: Mapping[str, Any], populations, **payload: Any
    ) -> dict:
        return self.call(
            "whatif", scenario=scenario, populations=list(populations), **payload
        )

    def cache_stats(self) -> dict:
        return self.call("cache_stats")

    def health(self) -> dict:
        return self.call("health")

    def drain(self) -> dict:
        return self.call("drain")

    def shutdown(self) -> dict:
        return self.call("shutdown")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def query(
    payload: Mapping[str, Any],
    host: str = "127.0.0.1",
    port: int = 7173,
    timeout: float | None = 60.0,
) -> dict:
    """One-shot request: connect, send, return the response envelope."""
    with ServeClient(host, port, timeout=timeout) as client:
        return client.request(payload)
