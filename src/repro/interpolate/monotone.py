"""Monotonicity-preserving cubic interpolation (Fritsch-Carlson / PCHIP).

Service-demand curves are physically monotone over most of their range
(decaying toward a warm plateau), yet an interpolating C^2 cubic spline
may overshoot between samples — which MVASD then consumes as spurious
demand wiggle.  The Fritsch-Carlson scheme trades the C^2 property for
a guarantee: the interpolant is monotone on every interval where the
data are, and never overshoots local extrema.

Algorithm (Fritsch & Carlson 1980):

1. secant slopes ``d_i = (y_{i+1} - y_i) / h_i``;
2. endpoint tangents via the shape-preserving three-point rule;
3. interior tangents = average of adjacent secants where they agree in
   sign, 0 at local extrema;
4. clamp ``(m_i/d_i, m_{i+1}/d_i)`` into the circle of radius 3 so each
   Hermite segment stays monotone.

Exposed directly and as the ``kind="pchip"`` option of
:class:`repro.interpolate.demand_model.ServiceDemandModel`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["MonotoneCubicSpline"]


class MonotoneCubicSpline:
    """Shape-preserving piecewise-cubic Hermite interpolant.

    Parameters mirror :class:`repro.interpolate.cubic.CubicSpline`;
    extrapolation is always the paper's eq. 14 clamp (constant boundary
    values), which is itself monotone.
    """

    def __init__(self, x: Sequence[float], y: Sequence[float]) -> None:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 1 or x.shape != y.shape or x.size < 1:
            raise ValueError("x and y must be equal-length non-empty 1-D")
        if np.any(np.diff(x) <= 0):
            raise ValueError("x must be strictly increasing")
        self.x = x
        self.y = y
        self._m = self._tangents(x, y)

    @staticmethod
    def _tangents(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        n = x.size
        if n == 1:
            return np.zeros(1)
        h = np.diff(x)
        d = np.diff(y) / h
        if n == 2:
            return np.array([d[0], d[0]])

        m = np.empty(n)
        # endpoint tangents: non-centered three-point formula, clipped to
        # preserve shape near the boundary (Fritsch-Carlson recommendation)
        m[0] = ((2 * h[0] + h[1]) * d[0] - h[0] * d[1]) / (h[0] + h[1])
        if np.sign(m[0]) != np.sign(d[0]):
            m[0] = 0.0
        elif np.sign(d[0]) != np.sign(d[1]) and abs(m[0]) > 3 * abs(d[0]):
            m[0] = 3 * d[0]
        m[-1] = ((2 * h[-1] + h[-2]) * d[-1] - h[-1] * d[-2]) / (h[-1] + h[-2])
        if np.sign(m[-1]) != np.sign(d[-1]):
            m[-1] = 0.0
        elif np.sign(d[-1]) != np.sign(d[-2]) and abs(m[-1]) > 3 * abs(d[-1]):
            m[-1] = 3 * d[-1]

        # interior: harmonic-style average where secants agree, else 0.
        # Written product-form (no 1/d terms) so a near-zero secant damps
        # the tangent to ~0 instead of overflowing the division.
        for i in range(1, n - 1):
            if d[i - 1] * d[i] <= 0:
                m[i] = 0.0
            else:
                w1 = 2 * h[i] + h[i - 1]
                w2 = h[i] + 2 * h[i - 1]
                denom = w1 * d[i] + w2 * d[i - 1]
                m[i] = (w1 + w2) * d[i - 1] * d[i] / denom if denom != 0 else 0.0

        # monotonicity clamp per segment
        for i in range(n - 1):
            if d[i] == 0.0:
                m[i] = 0.0
                m[i + 1] = 0.0
                continue
            a = m[i] / d[i]
            b = m[i + 1] / d[i]
            r = a * a + b * b
            if r > 9.0:
                tau = 3.0 / np.sqrt(r)
                m[i] = tau * a * d[i]
                m[i + 1] = tau * b * d[i]
        return m

    def __call__(self, xq, deriv: int = 0):
        """Evaluate the interpolant (or its first derivative).

        Outside the sample range: constant boundary values (deriv 0) and
        zero slope (deriv 1) — eq. 14 clamping.
        """
        if deriv not in (0, 1):
            raise ValueError(f"deriv must be 0 or 1, got {deriv}")
        xq_arr = np.asarray(xq, dtype=float)
        scalar = xq_arr.ndim == 0
        q = np.atleast_1d(xq_arr)
        x, y, m = self.x, self.y, self._m

        if x.size == 1:
            out = np.full_like(q, y[0] if deriv == 0 else 0.0)
        else:
            idx = np.clip(np.searchsorted(x, q, side="right") - 1, 0, x.size - 2)
            h = x[idx + 1] - x[idx]
            t = np.clip((q - x[idx]) / h, 0.0, 1.0)
            h00 = 2 * t**3 - 3 * t**2 + 1
            h10 = t**3 - 2 * t**2 + t
            h01 = -2 * t**3 + 3 * t**2
            h11 = t**3 - t**2
            if deriv == 0:
                out = h00 * y[idx] + h10 * h * m[idx] + h01 * y[idx + 1] + h11 * h * m[idx + 1]
                out = np.where(q < x[0], y[0], out)
                out = np.where(q > x[-1], y[-1], out)
            else:
                dh00 = 6 * t**2 - 6 * t
                dh10 = 3 * t**2 - 4 * t + 1
                dh01 = -6 * t**2 + 6 * t
                dh11 = 3 * t**2 - 2 * t
                out = (
                    dh00 * y[idx] / h + dh10 * m[idx] + dh01 * y[idx + 1] / h + dh11 * m[idx + 1]
                )
                out = np.where((q < x[0]) | (q > x[-1]), 0.0, out)
        if scalar:
            return float(out[0])
        return out

    @property
    def tangents(self) -> np.ndarray:
        return self._m
