"""Spline interpolation, smoothing, Chebyshev design and demand curves.

The substrate behind MVASD's ``SS_k^n`` arrays: from-scratch cubic
splines with the paper's eq. 14 boundary pegging, smoothing splines
(eq. 12), Chebyshev test-point design (eqs. 16-19) and the
:class:`~repro.interpolate.demand_model.ServiceDemandModel` /
:class:`~repro.interpolate.demand_model.DemandTable` wrappers that the
solvers consume.
"""

from .chebyshev import (
    chebyshev_error_bound,
    chebyshev_nodes,
    chebyshev_nodes_unit,
    concurrency_test_points,
    exponential_error_bound,
)
from .cubic import CubicSpline
from .demand_model import DemandTable, ServiceDemandModel, UniversalScalabilityLaw
from .monotone import MonotoneCubicSpline
from .smoothing import SmoothingSpline, smoothing_matrices
from .tridiagonal import solve_tridiagonal

__all__ = [
    "CubicSpline",
    "DemandTable",
    "MonotoneCubicSpline",
    "ServiceDemandModel",
    "SmoothingSpline",
    "UniversalScalabilityLaw",
    "chebyshev_error_bound",
    "chebyshev_nodes",
    "chebyshev_nodes_unit",
    "concurrency_test_points",
    "exponential_error_bound",
    "smoothing_matrices",
    "solve_tridiagonal",
]
