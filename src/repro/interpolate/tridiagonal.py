"""Thomas algorithm for tridiagonal linear systems.

The cubic-spline construction in :mod:`repro.interpolate.cubic` reduces
to one tridiagonal solve per fitted curve; the Thomas algorithm does it
in O(n) time and O(n) extra memory.  Implemented with NumPy views and
in-place scratch arrays per the HPC guide (no Python-level inner loops
beyond the unavoidable forward/backward sweeps, no copies of the
inputs).
"""

from __future__ import annotations

import numpy as np

__all__ = ["solve_tridiagonal"]


def solve_tridiagonal(lower, diag, upper, rhs) -> np.ndarray:
    """Solve ``A x = rhs`` for tridiagonal ``A``.

    Parameters
    ----------
    lower:
        Sub-diagonal ``a_1..a_{n-1}`` (length ``n-1``); ``A[i, i-1]``.
    diag:
        Main diagonal ``b_0..b_{n-1}`` (length ``n``).
    upper:
        Super-diagonal ``c_0..c_{n-2}`` (length ``n-1``); ``A[i, i+1]``.
    rhs:
        Right-hand side (length ``n``).

    Returns
    -------
    ndarray
        Solution vector ``x`` (new array; inputs untouched).

    Raises
    ------
    ValueError
        On inconsistent lengths or a numerically singular pivot.

    Notes
    -----
    No pivoting is performed: spline systems are strictly diagonally
    dominant, for which the Thomas algorithm is unconditionally stable.
    """
    b = np.asarray(diag, dtype=float)
    n = b.shape[0]
    if n == 0:
        raise ValueError("empty system")
    a = np.asarray(lower, dtype=float)
    c = np.asarray(upper, dtype=float)
    d = np.asarray(rhs, dtype=float)
    if a.shape != (max(n - 1, 0),) or c.shape != (max(n - 1, 0),):
        raise ValueError(
            f"off-diagonals must have length {n - 1}, got {a.shape} / {c.shape}"
        )
    if d.shape != (n,):
        raise ValueError(f"rhs must have length {n}, got {d.shape}")

    # Forward sweep into scratch arrays (cp: modified upper, dp: modified rhs).
    cp = np.empty(n)
    dp = np.empty(n)
    if b[0] == 0.0:
        raise ValueError("singular pivot at row 0")
    cp[0] = c[0] / b[0] if n > 1 else 0.0
    dp[0] = d[0] / b[0]
    for i in range(1, n):
        denom = b[i] - a[i - 1] * cp[i - 1]
        if denom == 0.0:
            raise ValueError(f"singular pivot at row {i}")
        cp[i] = c[i] / denom if i < n - 1 else 0.0
        dp[i] = (d[i] - a[i - 1] * dp[i - 1]) / denom

    # Backward substitution, reusing dp as the solution buffer.
    for i in range(n - 2, -1, -1):
        dp[i] -= cp[i] * dp[i + 1]
    return dp
