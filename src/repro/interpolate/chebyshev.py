"""Chebyshev nodes and polynomial-interpolation error bounds (Section 8).

Sampling service demands at equi-spaced concurrency levels invites the
Runge phenomenon; the paper instead places load-test points at the
Chebyshev nodes,

    ``x_k = cos((2k - 1) / (2n) * pi)``,  ``k = 1..n``        (eq. 16)

mapped onto the tested concurrency range ``[a, b]`` by

    ``x_k = (a + b)/2 + (b - a)/2 * cos((2k - 1)/(2n) * pi)``  (eq. 17)

and relies on the interpolation error bound

    ``|f(x) - P(x)| <= max |f^(n)| / (2^(n-1) n!)``            (eq. 19)

to size the number of test points (Fig. 13 evaluates it for the family
``f(x) = exp(mu * x)`` on [-1, 1]).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "chebyshev_nodes",
    "chebyshev_nodes_unit",
    "chebyshev_error_bound",
    "exponential_error_bound",
    "concurrency_test_points",
]


def chebyshev_nodes_unit(n: int) -> np.ndarray:
    """The ``n`` Chebyshev nodes in (-1, 1), ascending (eq. 16)."""
    if n < 1:
        raise ValueError(f"need at least one node, got {n}")
    k = np.arange(1, n + 1)
    nodes = np.cos((2 * k - 1) / (2 * n) * np.pi)
    return nodes[::-1].copy()  # ascending order for spline construction


def chebyshev_nodes(n: int, a: float, b: float) -> np.ndarray:
    """Chebyshev nodes mapped to ``[a, b]``, ascending (eq. 17)."""
    if b <= a:
        raise ValueError(f"need a < b, got [{a}, {b}]")
    unit = chebyshev_nodes_unit(n)
    return 0.5 * (a + b) + 0.5 * (b - a) * unit


def chebyshev_error_bound(n: int, deriv_max: float) -> float:
    """Eq. 19 bound: ``max|f - P| <= deriv_max / (2^(n-1) n!)`` on [-1, 1].

    ``deriv_max`` is an upper bound on ``|f^(n)|`` over the interval.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if deriv_max < 0:
        raise ValueError(f"deriv_max must be non-negative, got {deriv_max}")
    return deriv_max / (2.0 ** (n - 1) * math.factorial(n))


def exponential_error_bound(n: int, mu: float) -> float:
    """Eq. 19 specialized to ``f(x) = exp(mu x)`` on [-1, 1] (Fig. 13).

    ``|f^(n)(x)| = |mu|^n exp(mu x) <= |mu|^n exp(|mu|)``, hence the
    bound ``|mu|^n exp(|mu|) / (2^(n-1) n!)``.
    """
    amu = abs(mu)
    return chebyshev_error_bound(n, amu**n * math.exp(amu))


def concurrency_test_points(
    n: int, low: int, high: int, minimum_gap: int = 1
) -> np.ndarray:
    """Integer concurrency levels for load tests at Chebyshev positions.

    Rounds the eq. 17 nodes on ``[low, high]`` to integers, de-duplicates
    while preserving order, and enforces a minimal spacing so tests stay
    distinguishable (the paper's JPetStore designs, e.g. Chebyshev-5 on
    [1, 300] -> {9, 63, 151, 239, 293}).
    """
    if low >= high:
        raise ValueError(f"need low < high, got [{low}, {high}]")
    if minimum_gap < 1:
        raise ValueError(f"minimum_gap must be >= 1, got {minimum_gap}")
    raw = np.rint(chebyshev_nodes(n, float(low), float(high))).astype(int)
    points: list[int] = []
    for value in raw:
        value = max(low, min(high, int(value)))
        if points and value - points[-1] < minimum_gap:
            value = points[-1] + minimum_gap
            if value > high:
                break
        points.append(value)
    return np.array(points, dtype=int)
