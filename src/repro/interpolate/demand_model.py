"""Fitted service-demand curves — the ``SS_k^n`` arrays of Algorithm 3.

MVASD consumes, per station, a function mapping a load level (either
concurrency ``n`` or throughput ``X``, Section 7) to a service demand in
seconds.  :class:`ServiceDemandModel` fits that function through
demands measured at a handful of load-test points, with the paper's
choices baked in:

* cubic-spline interpolation between samples (Scilab ``interp()``
  equivalent; also linear / smoothing / constant-mean alternatives for
  the spline-family ablation);
* eq. 14 constant extrapolation outside the sampled range;
* non-negativity of the evaluated demand (a spline wiggle must never
  produce a negative service time).

Alongside the non-parametric splines, ``kind="usl"`` fits Gunther's
Universal Scalability Law as a **2-parameter demand family**
``D(N) = D1 · (1 + σ(N−1) + κN(N−1))`` — contention (σ) and coherency
(κ) costs growing with concurrency.  Unlike the clamped splines it
*extrapolates* beyond the sampled range, which is exactly what the
EXT-02 extrapolation bench exercises; :class:`UniversalScalabilityLaw`
is the same law on the throughput axis ``X(N) = λN / (1 + σ(N−1) +
κN(N−1))``, used to fit the fabric's throughput-vs-workers scaling in
BENCH perf05.

:class:`DemandTable` bundles one model per station and plugs directly
into :func:`repro.core.mvasd.mvasd` via :meth:`DemandTable.functions`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .cubic import CubicSpline
from .monotone import MonotoneCubicSpline
from .smoothing import SmoothingSpline

__all__ = ["ServiceDemandModel", "DemandTable", "UniversalScalabilityLaw"]

_KINDS = ("cubic", "not-a-knot", "smoothing", "pchip", "linear", "constant", "usl")
_AXES = ("concurrency", "throughput")


def _usl_basis(n: np.ndarray) -> np.ndarray:
    """Design matrix ``[1, N−1, N(N−1)]`` of the Universal Scalability Law."""
    n = np.asarray(n, dtype=float)
    return np.stack([np.ones_like(n), n - 1.0, n * (n - 1.0)], axis=1)


def _usl_fit(n: np.ndarray, y: np.ndarray) -> tuple[float, float, float]:
    """Least-squares USL coefficients ``(a, σ, κ)`` for ``y ≈ a·(1+σ(N−1)+κN(N−1))``.

    The law is linear in ``(a, aσ, aκ)``, so the fit is one ``lstsq``;
    physically σ and κ are costs, so negative coefficients are dropped
    from the basis and the remainder refitted rather than clipped in
    place (clipping alone would bias ``a``).
    """
    n = np.asarray(n, dtype=float)
    y = np.asarray(y, dtype=float)
    active = [0, 1, 2]
    coef = np.zeros(3)
    for _ in range(3):
        basis = _usl_basis(n)[:, active]
        sol, *_ = np.linalg.lstsq(basis, y, rcond=None)
        coef = np.zeros(3)
        coef[active] = sol
        negative = [i for i in active if i != 0 and coef[i] < 0]
        if not negative:
            break
        active = [i for i in active if i not in negative]
    a = float(coef[0])
    if not np.isfinite(a) or a <= 0:
        # degenerate samples (e.g. all-zero demands): constant fallback
        return max(float(np.mean(y)), 0.0), 0.0, 0.0
    return a, float(coef[1] / a), float(coef[2] / a)


class _USLCurve:
    """Gunther's USL demand law ``D1·(1+σ(N−1)+κN(N−1))`` (picklable)."""

    __slots__ = ("d1", "sigma", "kappa")

    def __init__(self, x: np.ndarray, y: np.ndarray) -> None:
        self.d1, self.sigma, self.kappa = _usl_fit(x, y)

    def __call__(self, q, deriv: int = 0):
        q = np.asarray(q, dtype=float)
        if deriv:
            return self.d1 * (self.sigma + self.kappa * (2.0 * q - 1.0))
        return self.d1 * (1.0 + self.sigma * (q - 1.0) + self.kappa * q * (q - 1.0))


class _ConstantCurve:
    """Sample-mean demand curve (picklable, vectorized)."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def __call__(self, q, deriv: int = 0):
        q = np.asarray(q, dtype=float)
        if deriv:
            return np.zeros_like(q)
        return np.full_like(q, self.value)


class _LinearCurve:
    """Piecewise-linear interpolation with clamped ends (picklable, vectorized)."""

    __slots__ = ("x", "y")

    def __init__(self, x: np.ndarray, y: np.ndarray) -> None:
        self.x = x
        self.y = y

    def __call__(self, q, deriv: int = 0):
        q = np.asarray(q, dtype=float)
        if deriv:
            slopes = np.diff(self.y) / np.diff(self.x)
            idx = np.clip(np.searchsorted(self.x, q, side="right") - 1, 0, self.x.size - 2)
            inside = (q > self.x[0]) & (q < self.x[-1])
            return np.where(inside, slopes[idx], 0.0)
        return np.interp(q, self.x, self.y)


class ServiceDemandModel:
    """A demand-vs-load curve fitted through measured samples.

    Parameters
    ----------
    levels:
        Load levels at which demands were measured (concurrency values
        or throughputs, strictly increasing after sorting).
    demands:
        Measured service demands (seconds), one per level, non-negative.
    kind:
        ``"cubic"`` (natural spline, default), ``"not-a-knot"``,
        ``"smoothing"`` (with ``lam``), ``"pchip"``
        (monotonicity-preserving), ``"linear"``, ``"constant"``
        (mean of the samples — the classic what-MVA-does baseline) or
        ``"usl"`` (Gunther's 2-parameter Universal Scalability Law,
        the only family that extrapolates beyond the sampled range).
    axis:
        Label of the independent variable, ``"concurrency"`` or
        ``"throughput"`` — purely informational but checked by
        :class:`DemandTable` so curves are not mixed across axes.
    lam:
        Smoothing parameter for ``kind="smoothing"``.
    """

    def __init__(
        self,
        levels: Sequence[float],
        demands: Sequence[float],
        kind: str = "cubic",
        axis: str = "concurrency",
        lam: float = 1.0,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
        if axis not in _AXES:
            raise ValueError(f"axis must be one of {_AXES}, got {axis!r}")
        levels = np.asarray(levels, dtype=float)
        demands = np.asarray(demands, dtype=float)
        if levels.ndim != 1 or levels.shape != demands.shape or levels.size == 0:
            raise ValueError("levels and demands must be equal-length non-empty 1-D")
        if np.any(demands < 0):
            raise ValueError("measured demands must be non-negative")
        order = np.argsort(levels)
        levels = levels[order]
        demands = demands[order]
        if np.any(np.diff(levels) <= 0):
            raise ValueError("levels must be distinct")
        self.levels = levels
        self.demands = demands
        self.kind = kind
        self.axis = axis
        self.lam = float(lam)
        self._fn = self._build()

    def _build(self):
        x, y = self.levels, self.demands
        if self.kind == "constant" or x.size == 1:
            return _ConstantCurve(float(y.mean()))
        if self.kind == "usl":
            return _USLCurve(x, y)
        if self.kind == "linear" or x.size == 2:
            return _LinearCurve(x, y)
        if self.kind == "smoothing" and x.size >= 3:
            return SmoothingSpline(x, y, lam=self.lam, extrapolation="clamp")
        if self.kind == "pchip":
            return MonotoneCubicSpline(x, y)
        bc = "not-a-knot" if self.kind == "not-a-knot" else "natural"
        return CubicSpline(x, y, bc=bc, extrapolation="clamp")

    def __call__(self, level):
        """Interpolated demand at ``level`` — clipped to be non-negative.

        Scalar in, scalar out; array in, array out (same shape).  The
        array path is a single vectorized spline evaluation — no
        per-level Python round-trips — which is what the demand-matrix
        precomputation of :func:`repro.core.mvasd.precompute_demand_matrix`
        and the batched kernels in :mod:`repro.engine` rely on.
        """
        q = np.asarray(level, dtype=float)
        out = np.maximum(np.atleast_1d(np.asarray(self._fn(q), dtype=float)), 0.0)
        if q.ndim == 0:
            return float(out[0])
        return out.reshape(q.shape)

    def slope(self, level):
        """First derivative of the fitted curve (0 for constant/outside range)."""
        q = np.asarray(level, dtype=float)
        if self.kind == "constant" or self.levels.size == 1:
            return 0.0 if q.ndim == 0 else np.zeros_like(q)
        if self.kind == "linear" or self.levels.size == 2:
            eps = max(1e-6, 1e-6 * float(self.levels[-1]))
            return (self(q + eps) - self(q - eps)) / (2 * eps)
        return self._fn(q, deriv=1)

    def resampled(self, levels: Sequence[float]) -> "ServiceDemandModel":
        """Refit on a subset/superset of levels, reading demands off this model.

        Used by the Chebyshev-design benches: the dense measured sweep is
        the ground truth, and a sparse design is simulated by resampling
        it at the design points.
        """
        levels = np.asarray(levels, dtype=float)
        return ServiceDemandModel(
            levels, self(levels), kind=self.kind, axis=self.axis, lam=self.lam
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServiceDemandModel(kind={self.kind!r}, axis={self.axis!r}, "
            f"{self.levels.size} samples on [{self.levels[0]:g}, {self.levels[-1]:g}])"
        )


@dataclass(frozen=True)
class DemandTable:
    """Per-station demand models for one application / testbed.

    Build with :meth:`fit` from raw measurements, then feed
    :meth:`functions` to :func:`repro.core.mvasd.mvasd`.
    """

    models: Mapping[str, ServiceDemandModel]
    axis: str = "concurrency"

    def __post_init__(self) -> None:
        if not self.models:
            raise ValueError("DemandTable needs at least one station model")
        for name, model in self.models.items():
            if model.axis != self.axis:
                raise ValueError(
                    f"station {name!r} fitted on axis {model.axis!r}, table is {self.axis!r}"
                )

    @classmethod
    def fit(
        cls,
        levels: Sequence[float],
        station_demands: Mapping[str, Sequence[float]],
        kind: str = "cubic",
        axis: str = "concurrency",
        lam: float = 1.0,
    ) -> "DemandTable":
        """Fit one model per station from a shared set of load levels."""
        models = {
            name: ServiceDemandModel(levels, demands, kind=kind, axis=axis, lam=lam)
            for name, demands in station_demands.items()
        }
        return cls(models=models, axis=axis)

    def functions(self) -> dict[str, ServiceDemandModel]:
        """Station-name -> callable mapping for :func:`repro.core.mvasd.mvasd`."""
        return dict(self.models)

    def stations(self) -> tuple[str, ...]:
        return tuple(self.models)

    def demands_at(self, level: float) -> dict[str, float]:
        """Interpolated demand of every station at one level."""
        return {name: model(level) for name, model in self.models.items()}

    def demand_matrix(self, levels: Sequence[float]) -> np.ndarray:
        """Every station's demand over a whole level grid, shape ``(N, K)``.

        Columns follow :meth:`stations` order.  Each station's curve is
        evaluated once, vectorized — the demand-matrix precomputation the
        batched MVASD kernel (:func:`repro.engine.batched.batched_mvasd`)
        consumes directly.
        """
        grid = np.asarray(levels, dtype=float)
        if grid.ndim != 1 or grid.size == 0:
            raise ValueError("levels must be a non-empty 1-D grid")
        return np.stack([model(grid) for model in self.models.values()], axis=1)

    def resampled(self, levels: Sequence[float]) -> "DemandTable":
        """Refit every station on new design points (Chebyshev benches)."""
        return DemandTable(
            models={n: m.resampled(levels) for n, m in self.models.items()},
            axis=self.axis,
        )

    def with_kind(self, kind: str, lam: float = 1.0) -> "DemandTable":
        """Refit every station with a different interpolation family."""
        return DemandTable(
            models={
                n: ServiceDemandModel(m.levels, m.demands, kind=kind, axis=m.axis, lam=lam)
                for n, m in self.models.items()
            },
            axis=self.axis,
        )


@dataclass(frozen=True)
class UniversalScalabilityLaw:
    """Gunther's USL on the throughput axis: ``X(N) = λN / (1+σ(N−1)+κN(N−1))``.

    The capacity-law view of the same 2-parameter family
    ``kind="usl"`` fits on the demand axis: ``λ`` is the single-stream
    rate, ``σ`` the serialization (contention) fraction and ``κ`` the
    pairwise-coherency cost.  κ > 0 gives throughput a genuine peak at
    :attr:`peak_concurrency` followed by *retrograde* scaling — the
    behaviour neither a clamped spline nor plain Amdahl (κ = 0) can
    express.  Used by BENCH perf05 to characterize the execution
    fabric's throughput-vs-workers curve.
    """

    lambda_: float
    sigma: float
    kappa: float

    def __post_init__(self) -> None:
        if self.lambda_ <= 0:
            raise ValueError("lambda_ (single-stream rate) must be positive")
        if self.sigma < 0 or self.kappa < 0:
            raise ValueError("sigma and kappa are costs and must be non-negative")

    @classmethod
    def fit(cls, concurrency, throughput) -> "UniversalScalabilityLaw":
        """Least-squares fit from measured ``(N, X(N))`` samples.

        ``N/X(N)`` is linear in the USL basis ``[1, N−1, N(N−1)]`` with
        intercept ``1/λ``, so the fit reuses the demand-axis machinery;
        negative σ/κ estimates are refitted out, not clipped.
        """
        n = np.asarray(concurrency, dtype=float)
        x = np.asarray(throughput, dtype=float)
        if n.ndim != 1 or n.shape != x.shape or n.size == 0:
            raise ValueError("concurrency and throughput must be equal-length 1-D")
        if np.any(n <= 0) or np.any(x <= 0):
            raise ValueError("concurrency and throughput samples must be positive")
        a, sigma, kappa = _usl_fit(n, n / x)
        return cls(lambda_=1.0 / a, sigma=sigma, kappa=kappa)

    def throughput(self, concurrency):
        """Predicted ``X(N)``; scalar in, scalar out — array in, array out."""
        n = np.asarray(concurrency, dtype=float)
        out = self.lambda_ * n / (
            1.0 + self.sigma * (n - 1.0) + self.kappa * n * (n - 1.0)
        )
        if n.ndim == 0:
            return float(out)
        return out

    def speedup(self, concurrency):
        """``X(N) / X(1)`` — the scaling curve normalized to one worker."""
        n = np.asarray(concurrency, dtype=float)
        out = n / (1.0 + self.sigma * (n - 1.0) + self.kappa * n * (n - 1.0))
        if n.ndim == 0:
            return float(out)
        return out

    @property
    def peak_concurrency(self) -> float:
        """``N* = sqrt((1−σ)/κ)`` where throughput peaks; inf when κ = 0."""
        if self.kappa <= 0:
            return float("inf")
        return float(np.sqrt(max(1.0 - self.sigma, 0.0) / self.kappa))
