"""Fitted service-demand curves — the ``SS_k^n`` arrays of Algorithm 3.

MVASD consumes, per station, a function mapping a load level (either
concurrency ``n`` or throughput ``X``, Section 7) to a service demand in
seconds.  :class:`ServiceDemandModel` fits that function through
demands measured at a handful of load-test points, with the paper's
choices baked in:

* cubic-spline interpolation between samples (Scilab ``interp()``
  equivalent; also linear / smoothing / constant-mean alternatives for
  the spline-family ablation);
* eq. 14 constant extrapolation outside the sampled range;
* non-negativity of the evaluated demand (a spline wiggle must never
  produce a negative service time).

:class:`DemandTable` bundles one model per station and plugs directly
into :func:`repro.core.mvasd.mvasd` via :meth:`DemandTable.functions`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .cubic import CubicSpline
from .monotone import MonotoneCubicSpline
from .smoothing import SmoothingSpline

__all__ = ["ServiceDemandModel", "DemandTable"]

_KINDS = ("cubic", "not-a-knot", "smoothing", "pchip", "linear", "constant")
_AXES = ("concurrency", "throughput")


class _ConstantCurve:
    """Sample-mean demand curve (picklable, vectorized)."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def __call__(self, q, deriv: int = 0):
        q = np.asarray(q, dtype=float)
        if deriv:
            return np.zeros_like(q)
        return np.full_like(q, self.value)


class _LinearCurve:
    """Piecewise-linear interpolation with clamped ends (picklable, vectorized)."""

    __slots__ = ("x", "y")

    def __init__(self, x: np.ndarray, y: np.ndarray) -> None:
        self.x = x
        self.y = y

    def __call__(self, q, deriv: int = 0):
        q = np.asarray(q, dtype=float)
        if deriv:
            slopes = np.diff(self.y) / np.diff(self.x)
            idx = np.clip(np.searchsorted(self.x, q, side="right") - 1, 0, self.x.size - 2)
            inside = (q > self.x[0]) & (q < self.x[-1])
            return np.where(inside, slopes[idx], 0.0)
        return np.interp(q, self.x, self.y)


class ServiceDemandModel:
    """A demand-vs-load curve fitted through measured samples.

    Parameters
    ----------
    levels:
        Load levels at which demands were measured (concurrency values
        or throughputs, strictly increasing after sorting).
    demands:
        Measured service demands (seconds), one per level, non-negative.
    kind:
        ``"cubic"`` (natural spline, default), ``"not-a-knot"``,
        ``"smoothing"`` (with ``lam``), ``"pchip"``
        (monotonicity-preserving), ``"linear"`` or ``"constant"``
        (mean of the samples — the classic what-MVA-does baseline).
    axis:
        Label of the independent variable, ``"concurrency"`` or
        ``"throughput"`` — purely informational but checked by
        :class:`DemandTable` so curves are not mixed across axes.
    lam:
        Smoothing parameter for ``kind="smoothing"``.
    """

    def __init__(
        self,
        levels: Sequence[float],
        demands: Sequence[float],
        kind: str = "cubic",
        axis: str = "concurrency",
        lam: float = 1.0,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
        if axis not in _AXES:
            raise ValueError(f"axis must be one of {_AXES}, got {axis!r}")
        levels = np.asarray(levels, dtype=float)
        demands = np.asarray(demands, dtype=float)
        if levels.ndim != 1 or levels.shape != demands.shape or levels.size == 0:
            raise ValueError("levels and demands must be equal-length non-empty 1-D")
        if np.any(demands < 0):
            raise ValueError("measured demands must be non-negative")
        order = np.argsort(levels)
        levels = levels[order]
        demands = demands[order]
        if np.any(np.diff(levels) <= 0):
            raise ValueError("levels must be distinct")
        self.levels = levels
        self.demands = demands
        self.kind = kind
        self.axis = axis
        self.lam = float(lam)
        self._fn = self._build()

    def _build(self):
        x, y = self.levels, self.demands
        if self.kind == "constant" or x.size == 1:
            return _ConstantCurve(float(y.mean()))
        if self.kind == "linear" or x.size == 2:
            return _LinearCurve(x, y)
        if self.kind == "smoothing" and x.size >= 3:
            return SmoothingSpline(x, y, lam=self.lam, extrapolation="clamp")
        if self.kind == "pchip":
            return MonotoneCubicSpline(x, y)
        bc = "not-a-knot" if self.kind == "not-a-knot" else "natural"
        return CubicSpline(x, y, bc=bc, extrapolation="clamp")

    def __call__(self, level):
        """Interpolated demand at ``level`` — clipped to be non-negative.

        Scalar in, scalar out; array in, array out (same shape).  The
        array path is a single vectorized spline evaluation — no
        per-level Python round-trips — which is what the demand-matrix
        precomputation of :func:`repro.core.mvasd.precompute_demand_matrix`
        and the batched kernels in :mod:`repro.engine` rely on.
        """
        q = np.asarray(level, dtype=float)
        out = np.maximum(np.atleast_1d(np.asarray(self._fn(q), dtype=float)), 0.0)
        if q.ndim == 0:
            return float(out[0])
        return out.reshape(q.shape)

    def slope(self, level):
        """First derivative of the fitted curve (0 for constant/outside range)."""
        q = np.asarray(level, dtype=float)
        if self.kind == "constant" or self.levels.size == 1:
            return 0.0 if q.ndim == 0 else np.zeros_like(q)
        if self.kind == "linear" or self.levels.size == 2:
            eps = max(1e-6, 1e-6 * float(self.levels[-1]))
            return (self(q + eps) - self(q - eps)) / (2 * eps)
        return self._fn(q, deriv=1)

    def resampled(self, levels: Sequence[float]) -> "ServiceDemandModel":
        """Refit on a subset/superset of levels, reading demands off this model.

        Used by the Chebyshev-design benches: the dense measured sweep is
        the ground truth, and a sparse design is simulated by resampling
        it at the design points.
        """
        levels = np.asarray(levels, dtype=float)
        return ServiceDemandModel(
            levels, self(levels), kind=self.kind, axis=self.axis, lam=self.lam
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServiceDemandModel(kind={self.kind!r}, axis={self.axis!r}, "
            f"{self.levels.size} samples on [{self.levels[0]:g}, {self.levels[-1]:g}])"
        )


@dataclass(frozen=True)
class DemandTable:
    """Per-station demand models for one application / testbed.

    Build with :meth:`fit` from raw measurements, then feed
    :meth:`functions` to :func:`repro.core.mvasd.mvasd`.
    """

    models: Mapping[str, ServiceDemandModel]
    axis: str = "concurrency"

    def __post_init__(self) -> None:
        if not self.models:
            raise ValueError("DemandTable needs at least one station model")
        for name, model in self.models.items():
            if model.axis != self.axis:
                raise ValueError(
                    f"station {name!r} fitted on axis {model.axis!r}, table is {self.axis!r}"
                )

    @classmethod
    def fit(
        cls,
        levels: Sequence[float],
        station_demands: Mapping[str, Sequence[float]],
        kind: str = "cubic",
        axis: str = "concurrency",
        lam: float = 1.0,
    ) -> "DemandTable":
        """Fit one model per station from a shared set of load levels."""
        models = {
            name: ServiceDemandModel(levels, demands, kind=kind, axis=axis, lam=lam)
            for name, demands in station_demands.items()
        }
        return cls(models=models, axis=axis)

    def functions(self) -> dict[str, ServiceDemandModel]:
        """Station-name -> callable mapping for :func:`repro.core.mvasd.mvasd`."""
        return dict(self.models)

    def stations(self) -> tuple[str, ...]:
        return tuple(self.models)

    def demands_at(self, level: float) -> dict[str, float]:
        """Interpolated demand of every station at one level."""
        return {name: model(level) for name, model in self.models.items()}

    def demand_matrix(self, levels: Sequence[float]) -> np.ndarray:
        """Every station's demand over a whole level grid, shape ``(N, K)``.

        Columns follow :meth:`stations` order.  Each station's curve is
        evaluated once, vectorized — the demand-matrix precomputation the
        batched MVASD kernel (:func:`repro.engine.batched.batched_mvasd`)
        consumes directly.
        """
        grid = np.asarray(levels, dtype=float)
        if grid.ndim != 1 or grid.size == 0:
            raise ValueError("levels must be a non-empty 1-D grid")
        return np.stack([model(grid) for model in self.models.values()], axis=1)

    def resampled(self, levels: Sequence[float]) -> "DemandTable":
        """Refit every station on new design points (Chebyshev benches)."""
        return DemandTable(
            models={n: m.resampled(levels) for n, m in self.models.items()},
            axis=self.axis,
        )

    def with_kind(self, kind: str, lam: float = 1.0) -> "DemandTable":
        """Refit every station with a different interpolation family."""
        return DemandTable(
            models={
                n: ServiceDemandModel(m.levels, m.demands, kind=kind, axis=m.axis, lam=lam)
                for n, m in self.models.items()
            },
            axis=self.axis,
        )
