"""From-scratch cubic spline interpolation.

Reimplements the piecewise-cubic interpolation the paper performs with
Scilab's ``interp()``: a C^2 piecewise cubic through the data points,
with the paper's eq. 14 boundary behaviour — outside the sampled
abscissa range the curve is **pegged to the boundary ordinate values**
(constant extrapolation), because an extrapolated service demand should
never overshoot what was actually measured.

The spline is built in the classical second-derivative ("moment")
formulation: on ``[x_i, x_{i+1}]`` with ``h_i = x_{i+1} - x_i``,

    ``s(x) = M_i (x_{i+1}-x)^3 / (6 h_i) + M_{i+1} (x-x_i)^3 / (6 h_i)
             + (y_i/h_i - M_i h_i/6)(x_{i+1}-x)
             + (y_{i+1}/h_i - M_{i+1} h_i/6)(x-x_i)``

and the moments ``M_i = s''(x_i)`` solve a tridiagonal system (Thomas
algorithm, :mod:`repro.interpolate.tridiagonal`) under one of three
boundary conditions:

* ``"natural"`` — ``M_0 = M_{n-1} = 0`` (default; matches the smoothing
  spline limit and is the most robust for monotone demand data);
* ``"clamped"`` — prescribed end slopes;
* ``"not-a-knot"`` — third-derivative continuity at the first/last
  interior knots (Scilab/MATLAB default; solved densely since the
  boundary rows break tridiagonality and knot counts here are tiny).

Evaluation is fully vectorized (``searchsorted`` + polynomial forms).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .tridiagonal import solve_tridiagonal

__all__ = ["CubicSpline"]

_EXTRAPOLATIONS = ("clamp", "linear", "cubic")
_BC_TYPES = ("natural", "clamped", "not-a-knot")


class CubicSpline:
    """Interpolating cubic spline with selectable boundary handling.

    Parameters
    ----------
    x:
        Strictly increasing knot abscissae (at least 1 point).
    y:
        Ordinates, same length as ``x``.
    bc:
        Boundary condition: ``"natural"``, ``"clamped"`` or
        ``"not-a-knot"``.
    end_slopes:
        Required for ``bc="clamped"``: ``(s'(x_0), s'(x_{n-1}))``.
    extrapolation:
        Behaviour outside ``[x_0, x_{n-1}]``: ``"clamp"`` (paper
        eq. 14 — constant boundary values, the default), ``"linear"``
        (continue with the boundary slope) or ``"cubic"`` (evaluate the
        end polynomials).

    Notes
    -----
    With one knot the spline is the constant ``y_0``; with two knots it
    is the straight line through them regardless of ``bc``.
    """

    def __init__(
        self,
        x: Sequence[float],
        y: Sequence[float],
        bc: str = "natural",
        end_slopes: tuple[float, float] | None = None,
        extrapolation: str = "clamp",
    ) -> None:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 1 or x.shape != y.shape:
            raise ValueError(f"x and y must be 1-D of equal length, got {x.shape}/{y.shape}")
        if x.size < 1:
            raise ValueError("need at least one knot")
        if np.any(np.diff(x) <= 0):
            raise ValueError("x must be strictly increasing")
        if bc not in _BC_TYPES:
            raise ValueError(f"bc must be one of {_BC_TYPES}, got {bc!r}")
        if bc == "clamped" and end_slopes is None:
            raise ValueError("bc='clamped' requires end_slopes")
        if extrapolation not in _EXTRAPOLATIONS:
            raise ValueError(
                f"extrapolation must be one of {_EXTRAPOLATIONS}, got {extrapolation!r}"
            )
        self.x = x
        self.y = y
        self.bc = bc
        self.extrapolation = extrapolation
        self._moments = self._solve_moments(x, y, bc, end_slopes)

    # -- construction ---------------------------------------------------------

    @staticmethod
    def _solve_moments(x, y, bc, end_slopes) -> np.ndarray:
        n = x.size
        if n == 1:
            return np.zeros(1)
        if n == 2:
            if bc == "clamped":
                # Single Hermite segment; the 2x2 clamped moment system is
                #   (h/3) M0 + (h/6) M1 = slope - s0
                #   (h/6) M0 + (h/3) M1 = s1 - slope
                h = x[1] - x[0]
                slope = (y[1] - y[0]) / h
                s0, s1 = end_slopes
                a = np.array([[h / 3.0, h / 6.0], [h / 6.0, h / 3.0]])
                b = np.array([slope - s0, s1 - slope])
                return np.linalg.solve(a, b)
            return np.zeros(2)

        h = np.diff(x)
        slopes = np.diff(y) / h
        rhs_interior = slopes[1:] - slopes[:-1]  # length n-2

        if bc == "natural":
            # Interior unknowns M_1..M_{n-2}; M_0 = M_{n-1} = 0.
            diag = (h[:-1] + h[1:]) / 3.0
            lower = h[1:-1] / 6.0
            upper = h[1:-1] / 6.0
            interior = solve_tridiagonal(lower, diag, upper, rhs_interior)
            return np.concatenate(([0.0], interior, [0.0]))

        if bc == "clamped":
            s0, s1 = end_slopes
            diag = np.empty(n)
            lower = np.empty(n - 1)
            upper = np.empty(n - 1)
            rhs = np.empty(n)
            diag[0] = h[0] / 3.0
            upper[0] = h[0] / 6.0
            rhs[0] = slopes[0] - s0
            diag[1:-1] = (h[:-1] + h[1:]) / 3.0
            lower[:-1] = h[:-1] / 6.0
            upper[1:] = h[1:] / 6.0
            rhs[1:-1] = rhs_interior
            diag[-1] = h[-1] / 3.0
            lower[-1] = h[-1] / 6.0
            rhs[-1] = s1 - slopes[-1]
            return solve_tridiagonal(lower, diag, upper, rhs)

        # not-a-knot: dense solve (boundary rows have three entries).
        a = np.zeros((n, n))
        rhs = np.zeros(n)
        for i in range(1, n - 1):
            a[i, i - 1] = h[i - 1] / 6.0
            a[i, i] = (h[i - 1] + h[i]) / 3.0
            a[i, i + 1] = h[i] / 6.0
            rhs[i] = rhs_interior[i - 1]
        # s'''.continuity: (M_1 - M_0)/h_0 = (M_2 - M_1)/h_1 and mirrored.
        a[0, 0] = -1.0 / h[0]
        a[0, 1] = 1.0 / h[0] + 1.0 / h[1]
        a[0, 2] = -1.0 / h[1]
        a[-1, -3] = -1.0 / h[-2]
        a[-1, -2] = 1.0 / h[-2] + 1.0 / h[-1]
        a[-1, -1] = -1.0 / h[-1]
        return np.linalg.solve(a, rhs)

    # -- evaluation -----------------------------------------------------------

    def _segment_eval(self, xq: np.ndarray, deriv: int) -> np.ndarray:
        """Evaluate the piecewise cubic (or a derivative) inside the range."""
        x, y, m = self.x, self.y, self._moments
        if x.size == 1:
            return np.full_like(xq, y[0] if deriv == 0 else 0.0)
        idx = np.clip(np.searchsorted(x, xq, side="right") - 1, 0, x.size - 2)
        h = x[idx + 1] - x[idx]
        left = x[idx + 1] - xq
        right = xq - x[idx]
        if deriv == 0:
            return (
                m[idx] * left**3 / (6.0 * h)
                + m[idx + 1] * right**3 / (6.0 * h)
                + (y[idx] / h - m[idx] * h / 6.0) * left
                + (y[idx + 1] / h - m[idx + 1] * h / 6.0) * right
            )
        if deriv == 1:
            return (
                -m[idx] * left**2 / (2.0 * h)
                + m[idx + 1] * right**2 / (2.0 * h)
                + (y[idx + 1] - y[idx]) / h
                - (m[idx + 1] - m[idx]) * h / 6.0
            )
        if deriv == 2:
            return (m[idx] * left + m[idx + 1] * right) / h
        if deriv == 3:
            return (m[idx + 1] - m[idx]) / h
        raise ValueError(f"deriv must be 0..3, got {deriv}")

    def __call__(self, xq, deriv: int = 0):
        """Evaluate the spline (or derivative ``deriv`` in 0..3) at ``xq``.

        Scalars in, scalar out; arrays in, array out.  Extrapolation
        follows the mode chosen at construction; derivatives outside the
        range are 0 for ``"clamp"``, the boundary slope (then 0) for
        ``"linear"``, and the end-polynomial value for ``"cubic"``.
        """
        xq_arr = np.asarray(xq, dtype=float)
        scalar = xq_arr.ndim == 0
        xq_flat = np.atleast_1d(xq_arr)
        out = self._segment_eval(xq_flat, deriv)

        lo, hi = self.x[0], self.x[-1]
        below = xq_flat < lo
        above = xq_flat > hi
        if self.extrapolation == "clamp":
            if deriv == 0:
                out = np.where(below, self.y[0], out)
                out = np.where(above, self.y[-1], out)
            else:
                out = np.where(below | above, 0.0, out)
        elif self.extrapolation == "linear":
            s_lo = float(self._segment_eval(np.array([lo]), 1)[0])
            s_hi = float(self._segment_eval(np.array([hi]), 1)[0])
            if deriv == 0:
                out = np.where(below, self.y[0] + s_lo * (xq_flat - lo), out)
                out = np.where(above, self.y[-1] + s_hi * (xq_flat - hi), out)
            elif deriv == 1:
                out = np.where(below, s_lo, out)
                out = np.where(above, s_hi, out)
            else:
                out = np.where(below | above, 0.0, out)
        # "cubic": _segment_eval already extends the end polynomials.

        if scalar:
            return float(out[0])
        return out

    def derivative(self, xq, order: int = 1):
        """Convenience wrapper: ``spline(xq, deriv=order)``."""
        return self(xq, deriv=order)

    @property
    def knots(self) -> np.ndarray:
        return self.x

    @property
    def second_derivatives(self) -> np.ndarray:
        """The moments ``M_i = s''(x_i)``."""
        return self._moments

    def interp(self, xq):
        """Scilab ``interp()``-style evaluation (paper eq. 13).

        Returns ``(yq, yq1, yq2, yq3)`` — the value and first three
        derivatives at ``xq`` — exactly the tuple the paper's Scilab
        implementation consumes.
        """
        return tuple(self(xq, deriv=d) for d in range(4))
