"""Smoothing splines (paper eq. 12, Reinsch / Green-Silverman form).

The paper's spline estimate minimizes

    ``sum_i (y_i - h(x_i))^2 + lambda * integral h''(x)^2 dx``

over natural cubic splines with knots at the data.  ``lambda = 0``
reproduces the interpolating natural spline; ``lambda -> inf`` tends to
the least-squares straight line.

Implementation (Green & Silverman 1994, ch. 2): with knot spacings
``h_i``, let ``Q`` be the ``n x (n-2)`` second-difference matrix and
``R`` the ``(n-2) x (n-2)`` tridiagonal Gram matrix of the natural
spline basis,

    ``Q[i-1, i-1] = 1/h_{i-1}``,  ``Q[i, i-1] = -(1/h_{i-1} + 1/h_i)``,
    ``Q[i+1, i-1] = 1/h_i``
    ``R[i, i] = (h_i + h_{i+1}) / 3``, ``R[i, i+1] = R[i+1, i] = h_{i+1} / 6``

then the fitted values solve ``(R + lambda Q^T Q) gamma = Q^T y``,
``f = y - lambda Q gamma`` and ``gamma`` holds the interior second
derivatives — exactly the natural-spline moments, so evaluation reuses
:class:`repro.interpolate.cubic.CubicSpline` on ``(x, f)``.

The system is pentadiagonal; data sets here are small (a handful of
load-test points), so a dense solve keeps the code transparent.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .cubic import CubicSpline

__all__ = ["SmoothingSpline", "smoothing_matrices"]


def smoothing_matrices(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Build the ``Q`` (n x n-2) and ``R`` (n-2 x n-2) matrices for knots ``x``."""
    n = x.size
    if n < 3:
        raise ValueError("smoothing spline needs at least 3 points")
    h = np.diff(x)
    q = np.zeros((n, n - 2))
    r = np.zeros((n - 2, n - 2))
    for j in range(n - 2):
        q[j, j] = 1.0 / h[j]
        q[j + 1, j] = -(1.0 / h[j] + 1.0 / h[j + 1])
        q[j + 2, j] = 1.0 / h[j + 1]
        r[j, j] = (h[j] + h[j + 1]) / 3.0
        if j + 1 < n - 2:
            r[j, j + 1] = h[j + 1] / 6.0
            r[j + 1, j] = h[j + 1] / 6.0
    return q, r


class SmoothingSpline:
    """Penalized natural cubic spline through noisy data (eq. 12).

    Parameters
    ----------
    x:
        Strictly increasing abscissae, at least 3 points.
    y:
        Noisy ordinates.
    lam:
        Smoothing parameter ``lambda >= 0``; 0 interpolates exactly.
    extrapolation:
        Passed through to the underlying :class:`CubicSpline`
        (``"clamp"`` by default — eq. 14 boundary pegging).

    Attributes
    ----------
    fitted_values:
        ``h(x_i)`` at the knots.
    roughness:
        The penalty term ``integral h''^2 = gamma^T R gamma``.
    residual_sum_of_squares:
        ``sum (y_i - h(x_i))^2``.
    """

    def __init__(
        self,
        x: Sequence[float],
        y: Sequence[float],
        lam: float = 0.0,
        extrapolation: str = "clamp",
    ) -> None:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 1 or x.shape != y.shape:
            raise ValueError("x and y must be 1-D of equal length")
        if np.any(np.diff(x) <= 0):
            raise ValueError("x must be strictly increasing")
        if lam < 0:
            raise ValueError(f"lambda must be non-negative, got {lam}")
        if x.size < 3:
            raise ValueError("smoothing spline needs at least 3 points")
        self.x = x
        self.y = y
        self.lam = float(lam)

        q, r = smoothing_matrices(x)
        gamma = np.linalg.solve(r + self.lam * (q.T @ q), q.T @ y)
        fitted = y - self.lam * (q @ gamma)
        self.fitted_values = fitted
        self.roughness = float(gamma @ (r @ gamma))
        self.residual_sum_of_squares = float(((y - fitted) ** 2).sum())
        self._spline = CubicSpline(x, fitted, bc="natural", extrapolation=extrapolation)

    def __call__(self, xq, deriv: int = 0):
        """Evaluate the smoothed curve (or derivative) at ``xq``."""
        return self._spline(xq, deriv=deriv)

    def objective(self) -> float:
        """The eq. 12 objective value at the fitted solution."""
        return self.residual_sum_of_squares + self.lam * self.roughness
