"""Transports: where a shard of scenarios physically gets solved.

The execution fabric (:mod:`repro.engine.fabric`) separates *planning*
(shard partitioning, checkpoint keys), *dispatch* (retry/backoff,
degradation, journaling) and *transport* (moving a shard to compute and
its result back).  This module holds the transport layer: everything a
:class:`~repro.engine.fabric.Dispatcher` needs to know about worker
processes or worker hosts is behind the small :class:`Transport`
protocol, so local process pools and remote socket workers are
interchangeable underneath the same retry/checkpoint machinery.

:class:`LocalProcessTransport`
    Shards fan out over :func:`repro.engine.sweep.parallel_map` fork
    workers — the scenario list rides as the fork-inherited payload, so
    nothing but shard bounds and result arrays crosses the process
    boundary.  This is the transport under both ``process-sharded`` and
    ``resilient``.
:class:`RemoteTransport`
    Shards are serialized over the ``repro serve`` JSON-lines protocol
    to a fleet of ``repro worker`` processes (one persistent socket per
    host, one pump thread per host draining a shared shard queue).
    Scenario sub-stacks ship fingerprint-verified — a worker refuses a
    shard whose decoded scenarios do not hash to the fingerprints the
    driver computed, so codec drift degrades to a local re-solve
    instead of a silently different answer.  Remote solves run through
    each worker's facade → cache stack, so they ride the worker's LRU
    tier and (when the fleet shares a ``--cache-path``) the common
    sqlite :class:`~repro.solvers.persistent.PersistentCache`.

Failure model of the remote transport: a connection-level failure
(refused, reset, timeout, or an injected ``drop-connection`` fault)
retires that host *for the round* — its pump thread exits, surviving
hosts drain the rest of the queue, and the failed shard surfaces as an
exception for the dispatcher to retry.  Retirement is no longer final
even within a round: while at least one pump is still draining the
queue, a monitor thread re-probes retired hosts (and any host newly
published by an elastic *membership* source, e.g. a
:class:`~repro.engine.supervisor.FleetSupervisor` that relaunched a
crashed worker on a fresh port) and starts a new pump the moment a
probe connects — a rejoining host immediately picks up queued shards.
A *structured* worker error (the solver itself failed) keeps the host
alive; only the shard fails.  An ``Overloaded`` error envelope is
retry-later, not host death: the shard goes back on the queue (once per
round) and the host keeps pumping.  If every host is gone, remaining
shards fail with :class:`WorkerConnectionLost` and the dispatcher's
in-process degradation chain takes over — a dead fleet never wedges or
aborts a sweep that the driver alone could finish.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Protocol, Sequence

from . import faults
from .backends import _solve_shard
from .sweep import parallel_map, resolve_workers

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..serve.client import ServeClient

__all__ = [
    "DEFAULT_SHARDS_PER_HOST",
    "LocalProcessTransport",
    "RemoteTransport",
    "Transport",
    "WorkerConnectionLost",
    "WorkerOverloaded",
    "parse_host",
    "parse_hosts",
]

#: Default oversubscription of the remote shard queue: more shards than
#: hosts keeps fast workers busy while slow ones finish, and bounds how
#: much work one dead host can take down with it.
DEFAULT_SHARDS_PER_HOST = 4

_UNSET = object()


class WorkerConnectionLost(ConnectionError):
    """A worker host vanished (refused/reset/timed out) mid-shard."""


class WorkerOverloaded(RuntimeError):
    """A worker shed the shard with a structured ``Overloaded`` envelope.

    Retry-later, not host death: the transport re-queues the shard for
    another (or the same, later) worker and keeps the connection.
    """


class Transport(Protocol):
    """Moves shards of a scenario stack to compute and results back.

    ``shards`` are the ``(shard_index, start, stop)`` bounds of
    :func:`repro.engine.backends.shard_bounds`; ``payload`` is the
    ``(method, child_backend, scenarios, options)`` tuple every shard
    shares.  ``run_shards`` returns one entry per shard *in order* —
    either the shard's batched result or (``return_exceptions=True``)
    the exception that sank it.
    """

    name: str

    def preferred_shards(self, n_scenarios: int) -> int:
        """How many shards this transport wants a stack cut into."""
        ...  # pragma: no cover - protocol

    def fan_out(self, n_shards: int) -> bool:
        """Whether fanning ``n_shards`` out is worth this transport's setup."""
        ...  # pragma: no cover - protocol

    def run_shards(
        self,
        shards: Sequence[tuple[int, int, int]],
        payload: tuple,
        timeout: float | None = None,
        return_exceptions: bool = True,
    ) -> list:
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        ...  # pragma: no cover - protocol


class LocalProcessTransport:
    """Shards solved by forked :func:`parallel_map` worker processes."""

    name = "local-processes"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = workers

    def preferred_shards(self, n_scenarios: int) -> int:
        return resolve_workers(self.workers)

    def fan_out(self, n_shards: int) -> bool:
        # With one worker (or one shard) there is no pool whose failures
        # a sharded stage would be covering — solve in-process instead.
        return resolve_workers(self.workers) > 1 and n_shards > 1

    def run_shards(self, shards, payload, timeout=None, return_exceptions=True):
        return parallel_map(
            _solve_shard,
            list(shards),
            workers=len(shards),
            payload=payload,
            timeout=timeout,
            return_exceptions=return_exceptions,
        )

    def close(self) -> None:  # nothing persistent: pools are per-call
        pass


def parse_host(spec: str | tuple, default_port: int = 7173) -> tuple[str, int]:
    """``"host:port"`` (or a ``(host, port)`` pair) → ``(host, port)``."""
    if isinstance(spec, tuple):
        host, port = spec
        return str(host), int(port)
    text = str(spec).strip()
    host, sep, port = text.rpartition(":")
    if not sep:
        return text, int(default_port)
    return host, int(port)


def parse_hosts(text: str, default_port: int = 7173) -> list[tuple[str, int]]:
    """Comma-separated ``host:port`` list → ``[(host, port), ...]``."""
    hosts = [
        parse_host(part, default_port)
        for part in (p.strip() for p in text.split(","))
        if part
    ]
    if not hosts:
        raise ValueError(f"host list {text!r} names no hosts")
    return hosts


class RemoteTransport:
    """Shards solved by ``repro worker`` processes over JSON lines.

    One persistent :class:`~repro.serve.client.ServeClient` connection
    per ``(host, port)`` endpoint, reused across dispatcher rounds.
    Membership is **elastic**: pass ``membership=`` (any object with a
    ``hosts()`` method returning the current ``[(host, port), ...]`` —
    a :class:`~repro.engine.supervisor.FleetSupervisor` qualifies) and
    each ``run_shards`` round tracks it live — hosts that join mid-round
    start draining the shared shard queue immediately, retired hosts
    are re-probed every ``reprobe_interval`` seconds while the round is
    still in progress, and hosts the membership dropped (quarantined)
    stop being probed.  Without ``membership`` the initial host list is
    the membership, and in-round re-probe still applies to retired
    hosts.
    """

    name = "remote-sockets"

    def __init__(
        self,
        hosts: Sequence[str | tuple] = (),
        connect_timeout: float = 10.0,
        shards_per_host: int = DEFAULT_SHARDS_PER_HOST,
        membership=None,
        reprobe_interval: float = 0.5,
    ) -> None:
        self._static_hosts = tuple(parse_host(h) for h in hosts)
        self.membership = membership
        if not self._static_hosts and membership is None:
            raise ValueError("RemoteTransport needs worker hosts or a membership")
        self.connect_timeout = float(connect_timeout)
        self.shards_per_host = max(1, int(shards_per_host))
        self.reprobe_interval = float(reprobe_interval)
        self._clients: dict[tuple[str, int], "ServeClient"] = {}
        self._clients_lock = threading.Lock()
        #: Shards re-queued after an ``Overloaded`` answer (all rounds).
        self.overload_retries = 0
        #: Pumps started mid-round for a host that was not reachable (or
        #: not a member) when the round began — joins and re-admissions.
        self.readmissions = 0

    @property
    def hosts(self) -> tuple[tuple[str, int], ...]:
        """The current membership (live when a membership source is set)."""
        if self.membership is not None:
            current = tuple(parse_host(h) for h in self.membership.hosts())
            if current:
                return current
        return self._static_hosts

    def preferred_shards(self, n_scenarios: int) -> int:
        n_hosts = max(1, len(self.hosts))
        return max(1, min(int(n_scenarios), n_hosts * self.shards_per_host))

    def fan_out(self, n_shards: int) -> bool:
        # Even a single remote shard is worth shipping: the worker holds
        # the warm cache tiers the driver process does not.
        return True

    # -- connection management ------------------------------------------------

    def _connect(self, endpoint: tuple[str, int], timeout: float | None):
        with self._clients_lock:
            client = self._clients.get(endpoint)
        if client is not None:
            try:
                client.set_timeout(timeout)
                return client
            except OSError:
                self._drop(endpoint)
        from ..serve.client import ServeClient

        host, port = endpoint
        try:
            client = ServeClient(
                host, port, timeout=timeout, connect_timeout=self.connect_timeout
            )
        except OSError:
            return None
        with self._clients_lock:
            self._clients[endpoint] = client
        return client

    def _drop(self, endpoint: tuple[str, int]) -> None:
        with self._clients_lock:
            client = self._clients.pop(endpoint, None)
        if client is not None:
            try:
                client.close()
            except Exception:
                pass

    def close(self) -> None:
        with self._clients_lock:
            clients = list(self._clients.values())
            self._clients.clear()
        for client in clients:
            try:
                client.close()
            except Exception:
                pass

    # -- shard execution ------------------------------------------------------

    def run_shards(self, shards, payload, timeout=None, return_exceptions=True):
        shards = list(shards)
        results: list[Any] = [_UNSET] * len(shards)
        queue = list(range(len(shards)))
        lock = threading.Lock()
        #: Shards already granted their one in-round overload retry.
        overload_retried: set[int] = set()
        #: Endpoints with a live pump (under ``lock``).
        pumping: set[tuple[str, int]] = set()
        n_active = [0]
        #: Last probe time per endpoint — bounds how hard the monitor
        #: hammers a dead host (one connect per reprobe_interval).
        last_probe: dict[tuple[str, int], float] = {}

        def pump(endpoint: tuple[str, int], rejoin: bool = False) -> None:
            try:
                client = self._connect(endpoint, timeout)
                if client is None:
                    return  # unreachable host consumes no shards this round
                if rejoin:
                    self.readmissions += 1
                while True:
                    with lock:
                        if not queue:
                            return
                        i = queue.pop(0)
                    try:
                        results[i] = self._solve_remote(client, shards[i], payload)
                    except WorkerOverloaded as exc:
                        with lock:
                            if i in overload_retried:
                                # second shed of the same shard: surface it,
                                # the dispatcher's round retry takes over
                                results[i] = exc
                                continue
                            overload_retried.add(i)
                            queue.append(i)  # back of the queue: retry later
                        self.overload_retries += 1
                        time.sleep(min(0.05, self.reprobe_interval))
                    except WorkerConnectionLost as exc:
                        results[i] = exc
                        self._drop(endpoint)
                        return  # host retired; monitor may re-admit it later
                    except Exception as exc:
                        results[i] = exc  # structured worker error: host stays
            finally:
                with lock:
                    pumping.discard(endpoint)
                    n_active[0] -= 1

        def start_pump(endpoint: tuple[str, int], rejoin: bool = False) -> threading.Thread:
            with lock:
                pumping.add(endpoint)
                n_active[0] += 1
            last_probe[endpoint] = time.monotonic()
            t = threading.Thread(target=pump, args=(endpoint, rejoin), daemon=True)
            t.start()
            return t

        threads = [start_pump(endpoint) for endpoint in dict.fromkeys(self.hosts)]

        # Elastic monitor: while at least one pump is draining the queue,
        # watch membership for joins and re-probe retired hosts.  With no
        # pump left alive the round is decided (the queue's remainder
        # fails fast below) — a fully dead fleet must not hang here.
        while True:
            with lock:
                work_left = bool(queue) or any(r is _UNSET for r in results)
                anyone = n_active[0] > 0
                if not work_left or not anyone:
                    break
                now = time.monotonic()
                missing = [
                    ep
                    for ep in dict.fromkeys(self.hosts)
                    if ep not in pumping
                    and now - last_probe.get(ep, float("-inf")) >= self.reprobe_interval
                    and queue
                ]
            for endpoint in missing:
                threads.append(start_pump(endpoint, rejoin=True))
            time.sleep(min(0.02, self.reprobe_interval))

        for t in threads:
            t.join()
        for i, bounds in enumerate(shards):
            if results[i] is _UNSET:
                results[i] = WorkerConnectionLost(
                    f"shard {bounds[0]}: no reachable worker host "
                    f"(tried {max(1, len(self.hosts))})"
                )
        if not return_exceptions:
            for out in results:
                if isinstance(out, BaseException):
                    raise out
        return results

    def _solve_remote(self, client, bounds, payload):
        from ..serve.client import ServeError
        from ..serve.protocol import decode_stack_result, encode_scenario

        method, child_backend, scenarios, options = payload
        shard, start, stop = bounds
        try:
            faults.maybe_inject("transport", shard=shard)
        except faults.InjectedFault as exc:
            raise WorkerConnectionLost(str(exc)) from exc
        # Driver-side chaos: a `reject-admission` fault armed in this
        # process sheds the matching shard exactly as an overloaded
        # worker would (fires once — the retry must succeed).
        if faults.take_one_shot("admission", shard=shard) is not None:
            raise WorkerOverloaded(
                f"injected reject-admission for shard {shard} "
                f"at {client.host}:{client.port}"
            )
        sub = scenarios[start:stop]
        request = {
            "op": "solve_shard",
            "method": method,
            "backend": child_backend,
            "start": start,
            "scenarios": [encode_scenario(sc) for sc in sub],
            "fingerprints": [sc.fingerprint() for sc in sub],
            "options": dict(options),
        }
        try:
            envelope = client.request(request)
        except (OSError, EOFError, ValueError) as exc:
            # socket timeouts and resets are OSErrors; a torn response
            # stream surfaces as a JSON decode error (ValueError).
            raise WorkerConnectionLost(
                f"worker {client.host}:{client.port} lost mid-shard: {exc}"
            ) from exc
        if not envelope.get("ok"):
            error = envelope.get("error") or {}
            if error.get("type") == "Overloaded":
                raise WorkerOverloaded(
                    f"worker {client.host}:{client.port} shed shard {shard}: "
                    f"{error.get('error', 'overloaded')}"
                )
            raise ServeError(envelope)
        return decode_stack_result(envelope["result"])
