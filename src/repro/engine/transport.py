"""Transports: where a shard of scenarios physically gets solved.

The execution fabric (:mod:`repro.engine.fabric`) separates *planning*
(shard partitioning, checkpoint keys), *dispatch* (retry/backoff,
degradation, journaling) and *transport* (moving a shard to compute and
its result back).  This module holds the transport layer: everything a
:class:`~repro.engine.fabric.Dispatcher` needs to know about worker
processes or worker hosts is behind the small :class:`Transport`
protocol, so local process pools and remote socket workers are
interchangeable underneath the same retry/checkpoint machinery.

:class:`LocalProcessTransport`
    Shards fan out over :func:`repro.engine.sweep.parallel_map` fork
    workers — the scenario list rides as the fork-inherited payload, so
    nothing but shard bounds and result arrays crosses the process
    boundary.  This is the transport under both ``process-sharded`` and
    ``resilient``.
:class:`RemoteTransport`
    Shards are serialized over the ``repro serve`` JSON-lines protocol
    to a fleet of ``repro worker`` processes (one persistent socket per
    host, one pump thread per host draining a shared shard queue).
    Scenario sub-stacks ship fingerprint-verified — a worker refuses a
    shard whose decoded scenarios do not hash to the fingerprints the
    driver computed, so codec drift degrades to a local re-solve
    instead of a silently different answer.  Remote solves run through
    each worker's facade → cache stack, so they ride the worker's LRU
    tier and (when the fleet shares a ``--cache-path``) the common
    sqlite :class:`~repro.solvers.persistent.PersistentCache`.

Failure model of the remote transport: a connection-level failure
(refused, reset, timeout, or an injected ``drop-connection`` fault)
retires that host *for the round* — its pump thread exits, surviving
hosts drain the rest of the queue, and the failed shard surfaces as an
exception for the dispatcher to retry (reconnection is attempted at the
next round).  A *structured* worker error (the solver itself failed)
keeps the host alive; only the shard fails.  If every host is gone,
remaining shards fail with :class:`WorkerConnectionLost` and the
dispatcher's in-process degradation chain takes over — a dead fleet
never wedges or aborts a sweep that the driver alone could finish.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Protocol, Sequence

from . import faults
from .backends import _solve_shard
from .sweep import parallel_map, resolve_workers

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..serve.client import ServeClient

__all__ = [
    "DEFAULT_SHARDS_PER_HOST",
    "LocalProcessTransport",
    "RemoteTransport",
    "Transport",
    "WorkerConnectionLost",
    "parse_host",
    "parse_hosts",
]

#: Default oversubscription of the remote shard queue: more shards than
#: hosts keeps fast workers busy while slow ones finish, and bounds how
#: much work one dead host can take down with it.
DEFAULT_SHARDS_PER_HOST = 4

_UNSET = object()


class WorkerConnectionLost(ConnectionError):
    """A worker host vanished (refused/reset/timed out) mid-shard."""


class Transport(Protocol):
    """Moves shards of a scenario stack to compute and results back.

    ``shards`` are the ``(shard_index, start, stop)`` bounds of
    :func:`repro.engine.backends.shard_bounds`; ``payload`` is the
    ``(method, child_backend, scenarios, options)`` tuple every shard
    shares.  ``run_shards`` returns one entry per shard *in order* —
    either the shard's batched result or (``return_exceptions=True``)
    the exception that sank it.
    """

    name: str

    def preferred_shards(self, n_scenarios: int) -> int:
        """How many shards this transport wants a stack cut into."""
        ...  # pragma: no cover - protocol

    def fan_out(self, n_shards: int) -> bool:
        """Whether fanning ``n_shards`` out is worth this transport's setup."""
        ...  # pragma: no cover - protocol

    def run_shards(
        self,
        shards: Sequence[tuple[int, int, int]],
        payload: tuple,
        timeout: float | None = None,
        return_exceptions: bool = True,
    ) -> list:
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        ...  # pragma: no cover - protocol


class LocalProcessTransport:
    """Shards solved by forked :func:`parallel_map` worker processes."""

    name = "local-processes"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = workers

    def preferred_shards(self, n_scenarios: int) -> int:
        return resolve_workers(self.workers)

    def fan_out(self, n_shards: int) -> bool:
        # With one worker (or one shard) there is no pool whose failures
        # a sharded stage would be covering — solve in-process instead.
        return resolve_workers(self.workers) > 1 and n_shards > 1

    def run_shards(self, shards, payload, timeout=None, return_exceptions=True):
        return parallel_map(
            _solve_shard,
            list(shards),
            workers=len(shards),
            payload=payload,
            timeout=timeout,
            return_exceptions=return_exceptions,
        )

    def close(self) -> None:  # nothing persistent: pools are per-call
        pass


def parse_host(spec: str | tuple, default_port: int = 7173) -> tuple[str, int]:
    """``"host:port"`` (or a ``(host, port)`` pair) → ``(host, port)``."""
    if isinstance(spec, tuple):
        host, port = spec
        return str(host), int(port)
    text = str(spec).strip()
    host, sep, port = text.rpartition(":")
    if not sep:
        return text, int(default_port)
    return host, int(port)


def parse_hosts(text: str, default_port: int = 7173) -> list[tuple[str, int]]:
    """Comma-separated ``host:port`` list → ``[(host, port), ...]``."""
    hosts = [
        parse_host(part, default_port)
        for part in (p.strip() for p in text.split(","))
        if part
    ]
    if not hosts:
        raise ValueError(f"host list {text!r} names no hosts")
    return hosts


class RemoteTransport:
    """Shards solved by ``repro worker`` processes over JSON lines.

    One persistent :class:`~repro.serve.client.ServeClient` connection
    per host, reused across dispatcher rounds; a host dropped by a
    connection failure is reconnected at the start of the next round.
    """

    name = "remote-sockets"

    def __init__(
        self,
        hosts: Sequence[str | tuple],
        connect_timeout: float = 10.0,
        shards_per_host: int = DEFAULT_SHARDS_PER_HOST,
    ) -> None:
        self.hosts = tuple(parse_host(h) for h in hosts)
        if not self.hosts:
            raise ValueError("RemoteTransport needs at least one worker host")
        self.connect_timeout = float(connect_timeout)
        self.shards_per_host = max(1, int(shards_per_host))
        self._clients: list["ServeClient | None"] = [None] * len(self.hosts)

    def preferred_shards(self, n_scenarios: int) -> int:
        return max(1, min(int(n_scenarios), len(self.hosts) * self.shards_per_host))

    def fan_out(self, n_shards: int) -> bool:
        # Even a single remote shard is worth shipping: the worker holds
        # the warm cache tiers the driver process does not.
        return True

    # -- connection management ------------------------------------------------

    def _connect(self, host_index: int, timeout: float | None):
        client = self._clients[host_index]
        if client is not None:
            try:
                client.set_timeout(timeout)
                return client
            except OSError:
                self._drop(host_index)
        from ..serve.client import ServeClient

        host, port = self.hosts[host_index]
        try:
            client = ServeClient(
                host, port, timeout=timeout, connect_timeout=self.connect_timeout
            )
        except OSError:
            return None
        self._clients[host_index] = client
        return client

    def _drop(self, host_index: int) -> None:
        client = self._clients[host_index]
        self._clients[host_index] = None
        if client is not None:
            try:
                client.close()
            except Exception:
                pass

    def close(self) -> None:
        for i in range(len(self._clients)):
            self._drop(i)

    # -- shard execution ------------------------------------------------------

    def run_shards(self, shards, payload, timeout=None, return_exceptions=True):
        shards = list(shards)
        results: list[Any] = [_UNSET] * len(shards)
        queue = list(range(len(shards)))
        lock = threading.Lock()

        def pump(host_index: int) -> None:
            client = self._connect(host_index, timeout)
            if client is None:
                return  # unreachable host consumes no shards this round
            while True:
                with lock:
                    if not queue:
                        return
                    i = queue.pop(0)
                try:
                    results[i] = self._solve_remote(client, shards[i], payload)
                except WorkerConnectionLost as exc:
                    results[i] = exc
                    self._drop(host_index)
                    return  # host retired for the round; others drain the queue
                except Exception as exc:
                    results[i] = exc  # structured worker error: host stays up

        threads = [
            threading.Thread(target=pump, args=(i,), daemon=True)
            for i in range(len(self.hosts))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i, bounds in enumerate(shards):
            if results[i] is _UNSET:
                results[i] = WorkerConnectionLost(
                    f"shard {bounds[0]}: no reachable worker host "
                    f"(tried {len(self.hosts)})"
                )
        if not return_exceptions:
            for out in results:
                if isinstance(out, BaseException):
                    raise out
        return results

    def _solve_remote(self, client, bounds, payload):
        from ..serve.client import ServeError
        from ..serve.protocol import decode_stack_result, encode_scenario

        method, child_backend, scenarios, options = payload
        shard, start, stop = bounds
        try:
            faults.maybe_inject("transport", shard=shard)
        except faults.InjectedFault as exc:
            raise WorkerConnectionLost(str(exc)) from exc
        sub = scenarios[start:stop]
        request = {
            "op": "solve_shard",
            "method": method,
            "backend": child_backend,
            "start": start,
            "scenarios": [encode_scenario(sc) for sc in sub],
            "fingerprints": [sc.fingerprint() for sc in sub],
            "options": dict(options),
        }
        try:
            envelope = client.request(request)
        except (OSError, EOFError, ValueError) as exc:
            # socket timeouts and resets are OSErrors; a torn response
            # stream surfaces as a JSON decode error (ValueError).
            raise WorkerConnectionLost(
                f"worker {client.host}:{client.port} lost mid-shard: {exc}"
            ) from exc
        if not envelope.get("ok"):
            raise ServeError(envelope)
        return decode_stack_result(envelope["result"])
