"""The execution fabric: plan → dispatch → transport, as separate layers.

Before this module, shard partitioning, retry/backoff, checkpoint
journaling and result reassembly lived twice — entangled inside
:class:`~repro.engine.backends.ProcessShardedBackend` and
:class:`~repro.engine.resilience.ResilientBackend` — and both were
welded to the local fork pool.  The fabric splits the execution plane
into three layers with one owner each:

:class:`WorkPlan` (*planning*)
    What to solve: the contiguous :class:`WorkShard` slices of a stack
    (via :func:`~repro.engine.backends.shard_bounds`), each carrying its
    content-addressed :meth:`SweepCheckpoint.shard_key` so completed
    work is recognizable across runs.
:class:`Dispatcher` (*dispatch*)
    How failures are survived: the staged
    sharded → batched → serial → isolate degradation chain with
    :class:`~repro.engine.resilience.RetryPolicy` backoff, per-shard
    timeouts, checkpoint journaling as shards land, and
    :func:`~repro.engine.backends._concat_results` reassembly.  The
    attempt counter published to :mod:`repro.engine.faults` stays
    monotone across stages, so deterministic faults fire exactly once.
:class:`~repro.engine.transport.Transport` (*transport*)
    Where a shard physically runs — forked local processes
    (:class:`~repro.engine.transport.LocalProcessTransport`) or a fleet
    of ``repro worker`` hosts over JSON lines
    (:class:`~repro.engine.transport.RemoteTransport`).  The dispatcher
    never knows the difference.

:class:`RemoteBackend` is the user-facing composition: capability
checks (wire-encodability), a :class:`RemoteTransport` over the given
``hosts``, and a :class:`Dispatcher` — which is exactly why remote
sweeps get kill-and-resume journaling and local degradation *for free*:
they are the same code path the ``resilient`` backend runs locally.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from . import faults
from .backends import _concat_results, get_backend, scenario_offset, shard_bounds
from .resilience import (
    RetryPolicy,
    SweepCheckpoint,
    solve_isolated,
    solve_isolated_batched,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..solvers.registry import SolverSpec
    from ..solvers.scenario import Scenario
    from .transport import Transport

__all__ = [
    "Dispatcher",
    "RemoteBackend",
    "WorkPlan",
    "WorkShard",
]


@dataclass(frozen=True)
class WorkShard:
    """One contiguous slice of a scenario stack, with its journal key."""

    index: int
    start: int
    stop: int
    key: str | None = None

    @property
    def bounds(self) -> tuple[int, int, int]:
        """The ``(shard, start, stop)`` tuple transports consume."""
        return (self.index, self.start, self.stop)

    @property
    def n_scenarios(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class WorkPlan:
    """The partitioning of one stack solve, before anything executes."""

    method: str
    child_backend: str
    shards: tuple[WorkShard, ...]
    n_scenarios: int

    @classmethod
    def build(
        cls,
        spec: "SolverSpec",
        scenarios: Sequence["Scenario"],
        options: Mapping[str, Any],
        n_shards: int,
        checkpoint: SweepCheckpoint | None = None,
    ) -> "WorkPlan":
        """Partition ``scenarios`` into at most ``n_shards`` shards.

        When a ``checkpoint`` is given, each shard is stamped with its
        content-addressed journal key (``None`` for uncacheable
        requests) so the dispatcher can recognize completed work.
        """
        scenarios = list(scenarios)
        shards = []
        for i, start, stop in shard_bounds(len(scenarios), n_shards):
            key = None
            if checkpoint is not None:
                key = SweepCheckpoint.shard_key(
                    spec.name,
                    options,
                    [sc.fingerprint() for sc in scenarios[start:stop]],
                )
            shards.append(WorkShard(i, start, stop, key))
        return cls(
            method=spec.name,
            child_backend="batched" if spec.batched_kernel else "serial",
            shards=tuple(shards),
            n_scenarios=len(scenarios),
        )


class Dispatcher:
    """Transport-agnostic staged execution of a :class:`WorkPlan`.

    Execution proceeds in stages, and only *failed* work is ever redone:

    1. **Transport fan-out** — pending shards go to
       ``transport.run_shards`` with the policy's per-shard timeout;
       shards that come back as exceptions are retried with exponential
       backoff up to ``policy.max_retries`` times.  Completed shards are
       journaled to the checkpoint (if any) as they land.  Skipped
       entirely when ``transport.fan_out`` says the fan-out is not worth
       it (e.g. one local worker).
    2. **In-process degradation** — shards that exhaust their retries
       are re-solved in the driver: the method's batched kernel first
       (if registered), then the serial per-scenario loop.
    3. **Per-scenario isolation** — scenarios that still fail are
       raised (``errors="raise"``) or recorded as
       :class:`~repro.engine.batched.ScenarioFailure` entries with NaN
       rows (``errors="isolate"``).

    This is byte-for-byte the recovery behaviour the ``resilient``
    backend always had — :class:`ResilientBackend` now *is* this class
    over a :class:`~repro.engine.transport.LocalProcessTransport`.
    """

    def __init__(
        self,
        transport: "Transport",
        name: str | None = None,
        policy: RetryPolicy | None = None,
        checkpoint: SweepCheckpoint | str | None = None,
        errors: str = "raise",
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if errors not in ("raise", "isolate"):
            raise ValueError(f"errors must be 'raise' or 'isolate', got {errors!r}")
        self.transport = transport
        self.name = name if name is not None else transport.name
        self.policy = policy if policy is not None else RetryPolicy()
        if checkpoint is not None and not isinstance(checkpoint, SweepCheckpoint):
            checkpoint = SweepCheckpoint(checkpoint)
        self.checkpoint = checkpoint
        self.errors = errors
        self._sleep = sleep

    def run(self, spec, scenarios, options):
        policy = self.policy
        scenarios = list(scenarios)
        plan = WorkPlan.build(
            spec,
            scenarios,
            options,
            n_shards=self.transport.preferred_shards(len(scenarios)),
            checkpoint=self.checkpoint,
        )
        parts: dict[int, Any] = {}
        retries: dict[int, int] = {s.index: 0 for s in plan.shards}

        if self.checkpoint is not None:
            completed = self.checkpoint.load()
            for shard in plan.shards:
                part = completed.get(shard.key) if shard.key is not None else None
                if part is not None and part.n_scenarios == shard.n_scenarios:
                    parts[shard.index] = part

        pending = [s for s in plan.shards if s.index not in parts]
        payload = (spec.name, plan.child_backend, scenarios, dict(options))
        attempt = 0
        try:
            # Stage 1: transport fan-out with bounded retry + backoff.
            if self.transport.fan_out(len(plan.shards)):
                while pending and attempt <= policy.max_retries:
                    if attempt:
                        self._sleep(policy.backoff(attempt))
                    faults.set_attempt(attempt)
                    outs = self.transport.run_shards(
                        [s.bounds for s in pending],
                        payload,
                        timeout=policy.shard_timeout,
                        return_exceptions=True,
                    )
                    still_failed = []
                    for shard, out in zip(pending, outs):
                        if isinstance(out, BaseException):
                            retries[shard.index] += 1
                            still_failed.append(shard)
                        else:
                            parts[shard.index] = out
                            if self.checkpoint is not None:
                                self.checkpoint.record(shard.key, out)
                    pending = still_failed
                    attempt += 1

            # Stage 2/3: in-process degradation, then isolation.
            for shard in pending:
                sub = scenarios[shard.start : shard.stop]
                part = None
                last_exc: BaseException | None = None
                chain = ["batched"] if spec.batched_kernel else []
                chain.append("serial")
                with scenario_offset(shard.start):
                    for backend_name in chain:
                        faults.set_attempt(attempt)
                        attempt += 1
                        try:
                            part = get_backend(backend_name).run(spec, sub, options)
                            break
                        except Exception as exc:
                            retries[shard.index] += 1
                            last_exc = exc
                    if part is None:
                        faults.set_attempt(attempt)
                        attempt += 1
                        if self.errors != "isolate":
                            raise last_exc
                        if spec.batched_kernel is not None:
                            part = solve_isolated_batched(
                                spec, sub, options, retries=retries[shard.index]
                            )
                        else:
                            part = solve_isolated(
                                spec, sub, options, retries=retries[shard.index]
                            )
                parts[shard.index] = part
                if self.checkpoint is not None:
                    self.checkpoint.record(shard.key, part)
        finally:
            faults.set_attempt(0)

        ordered = [parts[s.index] for s in plan.shards]
        return _concat_results(ordered, self.name)


def _check_remote_capability(spec, scenarios, options) -> None:
    """Reject stacks the wire codec cannot ship faithfully.

    Remote solves must be *bit-identical* to local ones, so anything the
    JSON codec cannot round-trip fingerprint-exactly is refused up front
    (the worker-side fingerprint verification would reject it anyway —
    this just fails fast with a better message).  Only the first
    scenario is round-trip-probed; per-scenario drift is still caught by
    the worker and degrades to a local re-solve of that shard.
    """
    import json as _json

    from ..solvers.facade import SolverCapabilityError

    first = scenarios[0]
    if first.is_multiclass and first.has_varying_demands:
        level = float(first.demand_level)
        if level != int(level) or not 1 <= level <= first.max_population:
            # Class fingerprints sample integer totals only, so an
            # off-grid freeze level would round-trip fingerprint-equal
            # while the decoded interpolant evaluates differently there.
            raise SolverCapabilityError(
                "remote backend: multi-class stacks with varying demands need "
                "an integer demand_level within 1..max_population to cross "
                "the wire exactly — solve locally"
            )
    if options.get("demand_axis") == "throughput":
        raise SolverCapabilityError(
            "remote backend: demand_axis='throughput' evaluates demand curves "
            "off the integer population grid the wire codec ships — solve "
            "locally (mirrors the cache's uncacheable rule)"
        )
    try:
        _json.dumps(dict(options))
    except (TypeError, ValueError):
        raise SolverCapabilityError(
            "remote backend: options must be JSON-serializable — callable "
            "rates= laws cannot cross the wire (encode them as "
            "Scenario.rate_tables)"
        ) from None
    from ..serve.protocol import ProtocolError, decode_scenario, encode_scenario

    try:
        encoded = encode_scenario(first)
        roundtrip = decode_scenario(encoded).fingerprint()
    except ProtocolError as exc:
        raise SolverCapabilityError(f"remote backend: {exc}") from None
    if roundtrip != first.fingerprint():
        raise SolverCapabilityError(
            "remote backend: scenario does not survive the wire codec "
            "fingerprint-identically (off-grid demand_level on a "
            "varying-demand scenario?) — solve locally"
        )


class RemoteBackend:
    """``backend="remote"``: shards solved by ``repro worker`` hosts.

    Implements the :class:`~repro.engine.backends.ExecutionBackend`
    protocol by composing a :class:`~repro.engine.transport.RemoteTransport`
    over ``hosts`` with a :class:`Dispatcher` — so remote sweeps share
    the ``resilient`` backend's retry/backoff, checkpoint journaling and
    in-process degradation verbatim.  A fleet that dies entirely never
    aborts the sweep: the dispatcher finishes it locally.
    """

    name = "remote"

    def __init__(
        self,
        hosts: Sequence[str | tuple] | str = (),
        policy: RetryPolicy | None = None,
        checkpoint: SweepCheckpoint | str | None = None,
        errors: str = "raise",
        shards_per_host: int | None = None,
        connect_timeout: float = 10.0,
        membership=None,
        reprobe_interval: float = 0.5,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        from .transport import DEFAULT_SHARDS_PER_HOST, parse_hosts

        if isinstance(hosts, str):
            hosts = parse_hosts(hosts)
        self.hosts = tuple(hosts)
        self.membership = membership
        if not self.hosts and membership is None:
            raise ValueError("remote backend needs worker hosts or a membership")
        if errors not in ("raise", "isolate"):
            raise ValueError(f"errors must be 'raise' or 'isolate', got {errors!r}")
        self.policy = policy if policy is not None else RetryPolicy()
        if checkpoint is not None and not isinstance(checkpoint, SweepCheckpoint):
            checkpoint = SweepCheckpoint(checkpoint)
        self.checkpoint = checkpoint
        self.errors = errors
        self.shards_per_host = (
            DEFAULT_SHARDS_PER_HOST if shards_per_host is None else int(shards_per_host)
        )
        self.connect_timeout = float(connect_timeout)
        self.reprobe_interval = float(reprobe_interval)
        self._sleep = sleep
        #: The transport of the most recent run — how callers read the
        #: elastic counters (overload_retries, readmissions) afterwards.
        self.last_transport = None

    def run(self, spec, scenarios, options):
        from .transport import RemoteTransport

        scenarios = list(scenarios)
        _check_remote_capability(spec, scenarios, options)
        transport = RemoteTransport(
            self.hosts,
            connect_timeout=self.connect_timeout,
            shards_per_host=self.shards_per_host,
            membership=self.membership,
            reprobe_interval=self.reprobe_interval,
        )
        self.last_transport = transport
        try:
            dispatcher = Dispatcher(
                transport,
                name=self.name,
                policy=self.policy,
                checkpoint=self.checkpoint,
                errors=self.errors,
                sleep=self._sleep,
            )
            return dispatcher.run(spec, scenarios, options)
        finally:
            transport.close()
