"""Fleet supervision: managed worker lifecycle for the remote fabric.

PR 9's :class:`~repro.engine.transport.RemoteTransport` assumes a
pre-started, static fleet — hosts must already be running ``repro
worker`` and a dead host stays dead.  This module closes the lifecycle
half: a :class:`FleetSupervisor` *starts* N workers through a pluggable
:class:`Launcher`, watches them with a ``ping``-based heartbeat thread,
restarts crashed workers under bounded :class:`RetryPolicy` backoff,
quarantines flapping hosts behind a per-worker circuit breaker, and
publishes the resulting live membership — the ``hosts()`` view the
elastic transport polls mid-sweep, so a relaunched worker (on a fresh
OS-picked port) starts draining queued shards the moment its probe
answers.

Per-worker health state machine (driven by the heartbeat thread)::

    healthy ──ping fails──▶ suspect ──K consecutive──▶ quarantined
       ▲                      │        failures            │
       │                      │ (managed process dead:     │ cooldown
       │ ping ok              │  relaunch w/ backoff)      ▼
       └──────────────────────┴──────────────────────  half-open
                                 probe ok ▲                │
                                          └────probe───────┘
                                               fails: re-open,
                                               cooldown doubles

Only *healthy* workers are members.  A quarantined worker consumes no
probes until its cooldown expires; the half-open probe either re-admits
it (membership event ``readmit``) or re-opens the breaker with a doubled
cooldown.  An ``Overloaded`` answer to a ping never counts as a failure
— load shedding is the server protecting itself, not dying.

Two launchers ship:

:class:`LocalLauncher`
    ``subprocess`` children running ``repro worker --port 0`` with the
    bound port scraped from the ``listening on host:port`` banner — the
    single-machine fleet (tests, CI, laptop sweeps).
:class:`CommandLauncher`
    An arbitrary command template (``{slot}`` substituted) whose stdout
    prints the same banner — which covers SSH (``ssh wk{slot} repro
    worker ...``), container runners, or anything else that can exec a
    worker and forward its stdout.

Chaos hooks: an armed ``kill-worker-process`` fault
(:func:`repro.engine.faults.take_one_shot`, point ``"fleet"``) makes the
heartbeat SIGKILL the matching worker slot exactly once — the
deterministic drill CI runs to prove kill → relaunch → bit-identical
sweep.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Protocol, Sequence

from . import faults
from .resilience import RetryPolicy

__all__ = [
    "CircuitBreaker",
    "CommandLauncher",
    "FLEET_STATE_VERSION",
    "FleetSupervisor",
    "Launcher",
    "LocalLauncher",
    "StaticMembership",
    "WorkerHandle",
    "load_fleet_state",
    "save_fleet_state",
]

FLEET_STATE_VERSION = "repro-fleet-v1"

#: How long a launcher waits for the worker's ``listening`` banner.
DEFAULT_LAUNCH_TIMEOUT = 30.0


@dataclass
class WorkerHandle:
    """One launched worker: where it listens and how to reach its process."""

    slot: int
    host: str
    port: int
    pid: int | None = None
    process: subprocess.Popen | None = None

    @property
    def endpoint(self) -> tuple[str, int]:
        return (self.host, self.port)

    def alive(self) -> bool:
        """Is the underlying process (if managed) still running?"""
        if self.process is not None:
            return self.process.poll() is None
        if self.pid is None:
            return True  # unmanaged: only the ping can tell
        try:
            os.kill(self.pid, 0)
        except (ProcessLookupError, PermissionError):
            return False
        return True


class Launcher(Protocol):
    """Starts and stops one worker per fleet slot."""

    def launch(self, slot: int) -> WorkerHandle:
        """Start the worker for ``slot``; blocks until it is listening."""
        ...  # pragma: no cover - protocol

    def terminate(self, handle: WorkerHandle, graceful: bool = True) -> None:
        """Stop the worker (SIGTERM drain when ``graceful``, else SIGKILL)."""
        ...  # pragma: no cover - protocol


def _scrape_banner(process: subprocess.Popen, timeout: float) -> tuple[str, int]:
    """Read the ``... listening on host:port`` line from a worker's stdout."""
    deadline = time.monotonic() + timeout
    assert process.stdout is not None
    while True:
        if time.monotonic() > deadline:
            process.kill()
            raise TimeoutError("worker did not print its listening banner in time")
        line = process.stdout.readline()
        if not line:
            raise RuntimeError(
                f"worker exited (rc={process.poll()}) before printing its banner"
            )
        text = line.decode(errors="replace").strip()
        if "listening on" in text:
            address = text.rsplit("listening on", 1)[1].strip()
            host, _, port = address.rpartition(":")
            return host, int(port)


def _reap(process: subprocess.Popen, timeout: float) -> None:
    try:
        process.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        try:
            process.wait(timeout=5.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - kernel wedge
            pass


class LocalLauncher:
    """Spawn ``repro worker`` subprocesses on this machine.

    Each worker binds ``--port 0`` (the OS picks a free port — which is
    why a relaunched worker comes back on a *different* endpoint and
    membership must be elastic) and inherits ``extra_args`` such as
    ``--cache-path`` so the fleet shares a persistent cache tier.
    """

    def __init__(
        self,
        extra_args: Sequence[str] = (),
        launch_timeout: float = DEFAULT_LAUNCH_TIMEOUT,
        python: str | None = None,
    ) -> None:
        self.extra_args = tuple(str(a) for a in extra_args)
        self.launch_timeout = float(launch_timeout)
        self.python = python or sys.executable

    def launch(self, slot: int) -> WorkerHandle:
        argv = [
            self.python,
            "-m",
            "repro",
            "worker",
            "--port",
            "0",
            *self.extra_args,
        ]
        process = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env={
                **os.environ,
                "PYTHONPATH": os.pathsep.join(
                    p
                    for p in (
                        os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
                        os.environ.get("PYTHONPATH", ""),
                    )
                    if p
                ),
            },
        )
        host, port = _scrape_banner(process, self.launch_timeout)
        return WorkerHandle(slot=slot, host=host, port=port, pid=process.pid, process=process)

    def terminate(self, handle: WorkerHandle, graceful: bool = True) -> None:
        process = handle.process
        if process is None or process.poll() is not None:
            return
        process.send_signal(signal.SIGTERM if graceful else signal.SIGKILL)
        _reap(process, timeout=10.0 if graceful else 5.0)


class CommandLauncher:
    """Spawn workers through an arbitrary command template.

    ``template`` is a list of argv words; every word is formatted with
    ``{slot}`` before exec.  The command's stdout must forward the
    worker's ``listening on host:port`` banner (SSH does this for free).
    ``advertise_host`` overrides the scraped host per slot — a remote
    worker binds and prints its *loopback* address, but the driver must
    dial the SSH target instead::

        CommandLauncher(
            ["ssh", "wk{slot}", "repro", "worker", "--host", "0.0.0.0",
             "--port", "7173"],
            advertise_host="wk{slot}",
        )
    """

    def __init__(
        self,
        template: Sequence[str],
        advertise_host: str | None = None,
        launch_timeout: float = DEFAULT_LAUNCH_TIMEOUT,
    ) -> None:
        self.template = tuple(str(w) for w in template)
        if not self.template:
            raise ValueError("CommandLauncher needs a non-empty command template")
        self.advertise_host = advertise_host
        self.launch_timeout = float(launch_timeout)

    def launch(self, slot: int) -> WorkerHandle:
        argv = [word.format(slot=slot) for word in self.template]
        process = subprocess.Popen(
            argv, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL
        )
        host, port = _scrape_banner(process, self.launch_timeout)
        if self.advertise_host is not None:
            host = self.advertise_host.format(slot=slot)
        return WorkerHandle(slot=slot, host=host, port=port, pid=process.pid, process=process)

    def terminate(self, handle: WorkerHandle, graceful: bool = True) -> None:
        process = handle.process
        if process is None or process.poll() is not None:
            return
        process.send_signal(signal.SIGTERM if graceful else signal.SIGKILL)
        _reap(process, timeout=10.0 if graceful else 5.0)


@dataclass
class CircuitBreaker:
    """Per-worker quarantine: K consecutive failures open the circuit.

    ``closed`` admits probes; after ``threshold`` consecutive failures
    the circuit opens for ``cooldown`` seconds (no probes at all), then
    half-opens for a single probe — success closes it, failure re-opens
    with the cooldown doubled (capped at ``max_cooldown``).
    """

    threshold: int = 3
    cooldown: float = 2.0
    max_cooldown: float = 60.0
    failures: int = 0
    state: str = "closed"  # closed | open | half-open
    _open_until: float = field(default=0.0, repr=False)
    _current_cooldown: float = field(default=0.0, repr=False)

    def record_success(self) -> None:
        self.failures = 0
        self.state = "closed"
        self._current_cooldown = 0.0

    def record_failure(self, now: float) -> bool:
        """Count one failure; returns True when this opened the circuit."""
        self.failures += 1
        if self.state == "half-open":
            self._current_cooldown = min(
                self.max_cooldown, self._current_cooldown * 2.0 or self.cooldown
            )
            self.state = "open"
            self._open_until = now + self._current_cooldown
            return True
        if self.state == "closed" and self.failures >= self.threshold:
            self.state = "open"
            self._current_cooldown = self.cooldown
            self._open_until = now + self._current_cooldown
            return True
        return False

    def allows_probe(self, now: float) -> bool:
        """May the heartbeat touch this worker right now?"""
        if self.state == "closed":
            return True
        if self.state == "open" and now >= self._open_until:
            self.state = "half-open"
            return True
        return self.state == "half-open"


@dataclass
class _Slot:
    """Supervisor-internal bookkeeping for one fleet slot."""

    handle: WorkerHandle | None = None
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)
    healthy: bool = False
    relaunch_attempt: int = 0
    next_relaunch_at: float = 0.0


class StaticMembership:
    """The trivial membership source: an explicitly managed host list.

    What ``sweep-grid --fleet`` uses when attaching to an already-running
    fleet from its state file, and what tests use to drive mid-sweep
    joins without a supervisor: ``add()`` a host while a sweep is running
    and the elastic transport starts pumping it.
    """

    def __init__(self, hosts: Sequence[tuple[str, int]] = ()) -> None:
        self._hosts = [(str(h), int(p)) for h, p in hosts]
        self._lock = threading.Lock()

    def hosts(self) -> list[tuple[str, int]]:
        with self._lock:
            return list(self._hosts)

    def add(self, host: str, port: int) -> None:
        with self._lock:
            self._hosts.append((str(host), int(port)))

    def remove(self, host: str, port: int) -> None:
        with self._lock:
            self._hosts = [hp for hp in self._hosts if hp != (str(host), int(port))]


class FleetSupervisor:
    """Start, watch, heal and retire a fleet of solver workers.

    ``start()`` launches ``workers`` slots through the ``launcher`` and
    spins up the heartbeat thread; from then on :meth:`hosts` is the
    live membership (healthy workers only) that
    :class:`~repro.engine.transport.RemoteTransport` polls.  Crashed
    workers are relaunched under ``relaunch_policy`` backoff; flapping
    ones are quarantined by their :class:`CircuitBreaker` and re-admitted
    through its half-open probe.  Every transition is appended to
    :attr:`events` as ``(kind, slot, detail)`` and mirrored in the
    counters (``relaunches``, ``quarantines``, ``readmissions``).

    Use as a context manager, or pair :meth:`start` with :meth:`stop`.
    """

    def __init__(
        self,
        workers: int = 2,
        launcher: Launcher | None = None,
        heartbeat_interval: float = 0.5,
        ping_timeout: float = 5.0,
        relaunch_policy: RetryPolicy | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 2.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"fleet needs at least one worker, got {workers}")
        self.n_workers = int(workers)
        self.launcher: Launcher = launcher if launcher is not None else LocalLauncher()
        self.heartbeat_interval = float(heartbeat_interval)
        self.ping_timeout = float(ping_timeout)
        self.relaunch_policy = (
            relaunch_policy
            if relaunch_policy is not None
            else RetryPolicy(max_retries=5, backoff_base=0.2, backoff_max=5.0)
        )
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown = float(breaker_cooldown)
        self._slots: dict[int, _Slot] = {}
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.events: list[tuple[str, int, str]] = []
        self.relaunches = 0
        self.quarantines = 0
        self.readmissions = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "FleetSupervisor":
        with self._lock:
            for slot_index in range(self.n_workers):
                self._slots[slot_index] = self._launch_slot(slot_index)
        self._thread = threading.Thread(
            target=self._heartbeat_loop, name="fleet-heartbeat", daemon=True
        )
        self._thread.start()
        return self

    def _launch_slot(self, slot_index: int) -> _Slot:
        slot = _Slot(
            breaker=CircuitBreaker(
                threshold=self.breaker_threshold, cooldown=self.breaker_cooldown
            )
        )
        try:
            slot.handle = self.launcher.launch(slot_index)
            slot.healthy = True
            self._event("launch", slot_index, f"{slot.handle.host}:{slot.handle.port}")
        except Exception as exc:
            slot.handle = None
            slot.healthy = False
            self._event("launch-failed", slot_index, str(exc))
        return slot

    def add_worker(self) -> int:
        """Grow the fleet by one slot (launched immediately); returns its index."""
        with self._lock:
            slot_index = max(self._slots, default=-1) + 1
            self._slots[slot_index] = self._launch_slot(slot_index)
            self.n_workers = len(self._slots)
            return slot_index

    def detach(self) -> None:
        """Stop supervising without touching the worker processes.

        What detached ``repro fleet up`` uses: the heartbeat (and its
        relaunch machinery) stops, the workers live on as orphans
        findable through the state file.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def stop(self, graceful: bool = True) -> None:
        """Tear the fleet down (SIGTERM drain by default) and stop the loop."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        with self._lock:
            slots = list(self._slots.items())
        for slot_index, slot in slots:
            if slot.handle is not None:
                try:
                    self.launcher.terminate(slot.handle, graceful=graceful)
                except Exception:
                    pass
                self._event("stop", slot_index, f"graceful={graceful}")

    def drain(self, timeout: float = 30.0) -> bool:
        """Ask every worker to drain (finish in-flight, then exit).

        Returns True when every managed worker process exited within
        ``timeout`` — with exit code 0, the no-request-dropped guarantee
        the chaos drill asserts.
        """
        from ..serve.client import ServeClient

        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        with self._lock:
            handles = [s.handle for s in self._slots.values() if s.handle is not None]
        for handle in handles:
            try:
                with ServeClient(
                    handle.host, handle.port, timeout=self.ping_timeout
                ) as client:
                    client.drain()
            except OSError:
                pass  # already gone — nothing in flight to preserve
        deadline = time.monotonic() + timeout
        clean = True
        for handle in handles:
            if handle.process is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                code = handle.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                handle.process.kill()
                clean = False
                continue
            clean = clean and code == 0
        return clean

    def __enter__(self) -> "FleetSupervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- membership -----------------------------------------------------------

    def hosts(self) -> list[tuple[str, int]]:
        """Endpoints of the currently *healthy* workers (the membership)."""
        with self._lock:
            return [
                slot.handle.endpoint
                for slot in self._slots.values()
                if slot.healthy and slot.handle is not None
            ]

    def status(self) -> list[dict]:
        """One row per slot: endpoint, health, breaker state, process pid."""
        with self._lock:
            rows = []
            for slot_index, slot in sorted(self._slots.items()):
                rows.append(
                    {
                        "slot": slot_index,
                        "host": slot.handle.host if slot.handle else None,
                        "port": slot.handle.port if slot.handle else None,
                        "pid": slot.handle.pid if slot.handle else None,
                        "healthy": slot.healthy,
                        "breaker": slot.breaker.state,
                        "consecutive_failures": slot.breaker.failures,
                    }
                )
            return rows

    def _event(self, kind: str, slot_index: int, detail: str = "") -> None:
        with self._lock:
            self.events.append((kind, slot_index, detail))

    # -- heartbeat ------------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            with self._lock:
                slots = list(self._slots.items())
            for slot_index, slot in slots:
                if self._stop.is_set():
                    return
                try:
                    self._check_slot(slot_index, slot)
                except Exception as exc:  # the loop must survive anything
                    self._event("heartbeat-error", slot_index, str(exc))

    def _check_slot(self, slot_index: int, slot: _Slot) -> None:
        now = time.monotonic()
        # Deterministic chaos: an armed kill-worker-process fault for this
        # slot SIGKILLs the worker exactly once — the heartbeat must then
        # detect the death and relaunch.
        fault = faults.take_one_shot("fleet", shard=slot_index)
        if fault is not None and slot.handle is not None and slot.handle.pid:
            try:
                os.kill(slot.handle.pid, signal.SIGKILL)
                self._event("chaos-kill", slot_index, f"pid={slot.handle.pid}")
            except ProcessLookupError:
                pass
        if not slot.breaker.allows_probe(now):
            return  # quarantined: cooldown still running
        half_open = slot.breaker.state == "half-open"
        ok = self._probe(slot)
        if ok:
            was_down = not slot.healthy
            slot.breaker.record_success()
            slot.healthy = True
            slot.relaunch_attempt = 0
            if half_open:
                self.readmissions += 1
                self._event(
                    "readmit",
                    slot_index,
                    f"{slot.handle.host}:{slot.handle.port}" if slot.handle else "",
                )
            elif was_down:
                self._event("recover", slot_index, "")
            return
        slot.healthy = False
        opened = slot.breaker.record_failure(now)
        if opened:
            self.quarantines += 1
            self._event(
                "quarantine",
                slot_index,
                f"{slot.breaker.failures} consecutive failures, "
                f"cooldown {slot.breaker._current_cooldown:g}s",
            )
        self._maybe_relaunch(slot_index, slot, now)

    def _probe(self, slot: _Slot) -> bool:
        """One health probe: process liveness, then a ping over a socket."""
        handle = slot.handle
        if handle is None:
            return False
        if not handle.alive():
            return False
        from ..serve.client import ServeClient, ServeError

        try:
            with ServeClient(
                handle.host, handle.port, timeout=self.ping_timeout,
                connect_timeout=self.ping_timeout,
            ) as client:
                client.ping()
            return True
        except ServeError as exc:
            # A structured answer (even Overloaded) proves the event loop
            # is alive — shedding load is healthy behaviour.
            return "Overloaded" in str(exc)
        except (OSError, ValueError):
            return False

    def _maybe_relaunch(self, slot_index: int, slot: _Slot, now: float) -> None:
        """Relaunch a dead *managed* worker under bounded backoff."""
        handle = slot.handle
        if handle is None or handle.process is None:
            if handle is not None:
                return  # unmanaged worker: nothing to relaunch, probes continue
        elif handle.alive():
            return  # process is up but unresponsive: let the breaker decide
        if now < slot.next_relaunch_at:
            return
        if slot.relaunch_attempt >= self.relaunch_policy.max_retries:
            return  # exhausted: stays quarantined until an operator acts
        slot.relaunch_attempt += 1
        slot.next_relaunch_at = now + self.relaunch_policy.backoff(slot.relaunch_attempt)
        if handle is not None and handle.process is not None:
            try:  # reap the corpse so it cannot zombie
                handle.process.poll()
            except Exception:
                pass
        try:
            slot.handle = self.launcher.launch(slot_index)
        except Exception as exc:
            self._event("relaunch-failed", slot_index, str(exc))
            return
        self.relaunches += 1
        # launch() blocked until the new worker printed its listening
        # banner, so the endpoint is verified-live: admit it right away
        # (queued shards should not wait one extra heartbeat).
        slot.breaker.record_success()
        slot.healthy = True
        self._event(
            "relaunch", slot_index, f"{slot.handle.host}:{slot.handle.port}"
        )


# -- fleet state files ---------------------------------------------------------


def save_fleet_state(path: str, supervisor: FleetSupervisor, cache_path=None) -> None:
    """Persist a running fleet's endpoints for other processes to attach.

    What ``repro fleet up`` writes: enough for ``fleet status``/``drain``/
    ``down`` and ``sweep-grid --fleet`` to find the workers without
    holding the supervisor object.
    """
    workers = [
        {"host": row["host"], "port": row["port"], "pid": row["pid"]}
        for row in supervisor.status()
        if row["port"] is not None
    ]
    state = {"version": FLEET_STATE_VERSION, "workers": workers}
    if cache_path:
        state["cache_path"] = str(cache_path)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(state, fh, indent=2)
    os.replace(tmp, path)


def load_fleet_state(path: str) -> dict:
    """Read and validate a fleet state file."""
    with open(path, encoding="utf-8") as fh:
        state = json.load(fh)
    if not isinstance(state, dict) or state.get("version") != FLEET_STATE_VERSION:
        raise ValueError(
            f"{path}: not a {FLEET_STATE_VERSION} fleet state file"
        )
    workers = state.get("workers")
    if not isinstance(workers, list):
        raise ValueError(f"{path}: fleet state has no workers list")
    return state
