"""Fork-join execution of scenario grids.

The batched kernels (:mod:`repro.engine.batched`) cover sweeps whose
scenarios share one recursion; everything else in the repo — DES
replications, Fig. 17 pipeline validations, what-if grids — is an
*embarrassingly parallel* collection of independent Python tasks.  This
module supplies the fork-join layer for those:

* :class:`ScenarioGrid` — a declarative cartesian-product builder for
  parameter grids (the multi-load-point pattern of queue_flex's
  ``parallel/`` wrapper);
* :func:`parallel_map` — an ordered ``ProcessPoolExecutor`` map with a
  serial fallback (``workers=1``, a single task, pools unavailable, or
  unpicklable tasks) so callers never need two code paths;
* :func:`spawn_seeds` (re-exported from :mod:`repro.simulation.rng`) —
  deterministic per-task seed derivation via
  ``numpy.random.SeedSequence.spawn``, computed *before* any task is
  dispatched so results are bit-identical regardless of worker count.

Determinism contract: a caller that derives all stochastic inputs from
:func:`spawn_seeds` and maps a pure task function over them gets the
same results for every ``workers`` value — the executor only changes
*where* tasks run, never *what* they compute.

:func:`parallel_map` is also the engine underneath the fabric's
:class:`~repro.engine.transport.LocalProcessTransport`: the dispatcher
(:mod:`repro.engine.fabric`) plans and journals shards, and this module
is the process-pool "wire" those shards travel when the transport is
local rather than a fleet of ``repro worker`` hosts.

Implementation note: tasks are shipped to workers by pickle, but large
unpicklable context (e.g. an :class:`~repro.apps.base.Application`,
whose demand profiles are closures) can ride along as the ``payload``
argument — it is published to a module global before the pool forks, so
children inherit it through the process image instead of the pipe.  On
platforms without ``fork`` the payload path transparently degrades to
serial execution.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from ..simulation.rng import spawn_seeds

__all__ = ["ScenarioGrid", "parallel_map", "resolve_workers", "spawn_seeds"]

#: Exceptions that mean "the pool plumbing failed", not "the task failed":
#: unpicklable tasks/results, sandboxed environments, crashed workers.
#: Items that hit these are recomputed serially in the parent.
_INFRA_ERRORS = (
    BrokenProcessPool,
    pickle.PicklingError,
    AttributeError,
    TypeError,
    OSError,
)

#: Fork-inherited context for the currently running :func:`parallel_map`.
_PAYLOAD: Any = None


def _invoke(fn: Callable, item: Any):
    """Worker-side trampoline: re-attach the fork-inherited payload."""
    return fn(item, _PAYLOAD)


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``workers`` request: ``None`` means one per CPU core."""
    if workers is None:
        return os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return int(workers)


def _abandon_pool(pool: ProcessPoolExecutor) -> None:
    """Give up on a pool whose workers may be wedged, without blocking.

    Terminates the worker processes (guarded — ``_processes`` is
    CPython-private) so a hung task cannot keep the interpreter alive,
    then requests a non-blocking shutdown.  Pending futures surface
    ``BrokenProcessPool``/cancellation, which the caller already treats
    as per-item infrastructure failures.
    """
    try:
        for proc in list(getattr(pool, "_processes", {}).values()):
            proc.terminate()
    except Exception:
        pass
    pool.shutdown(wait=False, cancel_futures=True)


def parallel_map(
    fn: Callable,
    items: Sequence,
    workers: int | None = 1,
    payload: Any = None,
    timeout: float | None = None,
    return_exceptions: bool = False,
) -> list:
    """Apply ``fn(item, payload)`` to every item, results in input order.

    With ``workers > 1`` the items are fanned out over a
    ``ProcessPoolExecutor`` (fork start method, so ``payload`` is
    inherited by the children without pickling); with ``workers=1``, a
    single item, or when process pools are unusable (no ``fork`` start
    method, unpicklable tasks/results, sandboxed environments) the map
    runs serially in-process.  ``fn`` must be a module-level callable and
    each ``item``/result picklable for the parallel path; the serial
    fallback has no such requirement.

    Failure handling distinguishes *infrastructure* failures from *task*
    failures:

    * a crashed worker (``BrokenProcessPool`` — the OOM-killer model), an
      unpicklable task/result, or an item exceeding ``timeout`` seconds
      is an infrastructure failure — the item is recomputed serially in
      the parent (a hung pool is abandoned first, so a wedged worker
      cannot stall the run);
    * an exception raised *by* ``fn`` is a task failure and propagates
      unchanged — deterministic errors must not be blindly retried.

    With ``return_exceptions=True`` neither is retried or raised:
    failed items come back as their exception objects in the results
    list, which is how :class:`repro.engine.resilience.ResilientBackend`
    implements its own retry/backoff policy on top of this primitive.
    ``KeyboardInterrupt`` always cancels outstanding work and shuts the
    pool down without waiting before re-raising.

    The function itself introduces no nondeterminism: task inputs are
    fixed before dispatch and outputs are reassembled in input order, so
    any ``workers`` value produces identical results for pure tasks.
    """
    global _PAYLOAD
    items = list(items)
    n_workers = min(resolve_workers(workers), len(items))
    serial = n_workers <= 1
    if not serial:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            serial = True
    if serial:
        if not return_exceptions:
            return [fn(item, payload) for item in items]
        results = []
        for item in items:
            try:
                results.append(fn(item, payload))
            except Exception as exc:
                results.append(exc)
        return results

    previous_payload = _PAYLOAD
    _PAYLOAD = payload
    pool = ProcessPoolExecutor(max_workers=n_workers, mp_context=context)
    abandoned = False
    try:
        try:
            futures = [pool.submit(_invoke, fn, item) for item in items]
        except _INFRA_ERRORS:
            # Submission itself failed (e.g. unpicklable fn): all serial.
            if return_exceptions:
                return parallel_map(fn, items, workers=1, payload=payload,
                                    return_exceptions=True)
            return [fn(item, payload) for item in items]
        results: list = [None] * len(items)
        failed: dict[int, BaseException] = {}
        for i, future in enumerate(futures):
            if abandoned and not future.done():
                failed[i] = TimeoutError(
                    f"task {i} abandoned after a pool timeout"
                )
                continue
            try:
                results[i] = future.result(timeout=timeout)
            except (FuturesTimeoutError, TimeoutError):
                failed[i] = TimeoutError(
                    f"task {i} exceeded the {timeout}s pool timeout"
                )
                # The worker may be wedged; never block on it again.
                _abandon_pool(pool)
                abandoned = True
            except _INFRA_ERRORS as exc:
                failed[i] = exc
            except Exception as exc:
                if return_exceptions:
                    failed[i] = exc
                else:
                    raise  # a task failure: propagate unchanged
        for i, exc in failed.items():
            if return_exceptions:
                results[i] = exc
            else:
                # Infrastructure failure: recompute the item in-parent.
                results[i] = fn(items[i], payload)
        return results
    except KeyboardInterrupt:
        _abandon_pool(pool)
        raise
    finally:
        if not abandoned:
            pool.shutdown(wait=False, cancel_futures=True)
        _PAYLOAD = previous_payload


@dataclass(frozen=True)
class ScenarioGrid:
    """A cartesian product of named parameter axes.

    Build with :meth:`product`, iterate to get one ``dict`` per
    scenario in row-major order (last axis fastest — stable across
    runs, so grid indices are reproducible identifiers)::

        grid = ScenarioGrid.product(
            demand_scale=(0.75, 1.0, 1.25),
            think_time=(0.5, 1.0),
        )
        len(grid)        # 6
        list(grid)[0]    # {"demand_scale": 0.75, "think_time": 0.5}

    The grid is purely declarative — feed the combinations to
    :func:`parallel_map`, to the batched kernels (via a demand-stack
    builder), or to :func:`repro.analysis.whatif.evaluate_scenarios`.
    """

    axes: tuple[tuple[str, tuple], ...]

    @classmethod
    def product(cls, **axes: Sequence) -> "ScenarioGrid":
        """Grid from keyword axes; each value is the axis's points."""
        if not axes:
            raise ValueError("need at least one axis")
        normalized = []
        for name, values in axes.items():
            values = tuple(values)
            if not values:
                raise ValueError(f"axis {name!r} has no points")
            normalized.append((name, values))
        return cls(axes=tuple(normalized))

    @classmethod
    def from_scenarios(cls, scenarios: Sequence[Mapping]) -> list[dict]:
        """Normalize an explicit scenario list (no product) to dicts."""
        return [dict(sc) for sc in scenarios]

    @property
    def axis_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.axes)

    def __len__(self) -> int:
        size = 1
        for _, values in self.axes:
            size *= len(values)
        return size

    def __iter__(self):
        names = self.axis_names
        for combo in itertools.product(*(values for _, values in self.axes)):
            yield dict(zip(names, combo))

    def combinations(self) -> list[dict]:
        """All scenarios as a list (row-major order)."""
        return list(self)

    def labels(self) -> list[str]:
        """One compact ``axis=value`` label per scenario, same order."""
        return [
            ", ".join(f"{name}={value}" for name, value in combo.items())
            for combo in self
        ]

    def scenarios(self, base) -> list:
        """Materialize the grid as solver :class:`~repro.solvers.Scenario`\\ s.

        Each combination is applied to ``base`` via
        :meth:`~repro.solvers.scenario.Scenario.with_overrides`, so the
        grid axes must be override axes (``demand_scale``, ``think_time``,
        ``max_population``).  The resulting stack feeds
        :func:`repro.solvers.solve_stack` directly::

            grid = ScenarioGrid.product(demand_scale=(0.8, 1.0, 1.2))
            batch = solve_stack(grid.scenarios(Scenario(net, 100)))
        """
        supported = {"demand_scale", "think_time", "max_population"}
        unknown = set(self.axis_names) - supported
        if unknown:
            raise ValueError(
                f"scenario grid axes {sorted(unknown)} are not Scenario "
                f"override axes; supported: {sorted(supported)}"
            )
        return [base.with_overrides(**combo) for combo in self]
