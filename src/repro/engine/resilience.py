"""Fault-tolerant execution: retries, degradation, isolation, checkpointing.

A million-scenario sweep dies three ways in practice: a worker process
is OOM-killed mid-shard (the pool breaks), one pathological scenario
poisons a whole vectorized kernel, or the driver itself is killed at
scenario 999,999 and everything is lost.  This module closes all three
holes behind the same :class:`~repro.engine.backends.ExecutionBackend`
protocol the healthy backends implement:

:class:`RetryPolicy`
    Bounded retries with exponential backoff and a per-shard timeout —
    the knobs of every recovery decision in one frozen value object.
:class:`ResilientBackend`
    The graceful-degradation chain *sharded → batched → serial*: shards
    are fanned out with a per-shard timeout; shards that crash or time
    out are retried (new pool, backoff) up to the policy bound; shards
    that still fail are re-solved in-process with the method's batched
    kernel, then the serial loop; scenarios that *still* fail are either
    raised (``errors="raise"``) or isolated into structured
    :class:`~repro.engine.batched.ScenarioFailure` records
    (``errors="isolate"``).  Only failed work is ever redone.
:class:`SweepCheckpoint`
    An append-only journal of completed shards, content-addressed on
    ``Scenario.fingerprint()`` + method + canonical options (the PR 4
    cache keys).  Killing the driver and re-running with the same
    checkpoint resumes exactly where it died — journaled shards are
    byte-exact array round-trips, so the resumed result is bit-identical
    to an uninterrupted run.
:func:`solve_isolated`
    The per-scenario last resort shared with the facade's
    ``solve_stack(errors="isolate")`` path: every scenario is solved
    alone, failures become records, failed rows are NaN.

Every recovery path here is exercised by the deterministic
fault-injection harness (:mod:`repro.engine.faults`) in
``tests/test_faults.py`` — the faulted run must match the fault-free
run to ≤1e-10.
"""

from __future__ import annotations

import base64
import hashlib
import io
import json
import os
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

import numpy as np

from . import faults
from .backends import (
    _kernel_input,
    _kernel_input_shape,
    _run_kernel,
    _scenario_offset,
)
from .batched import (
    BatchedMultiClassResult,
    BatchedMultiClassTrajectory,
    BatchedMVAResult,
    ScenarioFailure,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..solvers.registry import SolverSpec
    from ..solvers.scenario import Scenario

__all__ = [
    "ResilientBackend",
    "RetryPolicy",
    "SweepCheckpoint",
    "solve_isolated",
    "solve_isolated_batched",
]

#: Journal-format version; bumped whenever the record layout changes so
#: stale checkpoints are recomputed instead of misread.
_CHECKPOINT_VERSION = "repro-checkpoint-v1"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry and backoff knobs for the resilient execution path.

    Attributes
    ----------
    max_retries:
        Sharded-stage retries after the first attempt (so the stack is
        tried at most ``max_retries + 1`` times before degrading).
    backoff_base:
        Sleep before the first retry, in seconds.
    backoff_multiplier:
        Exponential growth factor of successive backoffs.
    backoff_max:
        Upper bound on any single backoff sleep.
    shard_timeout:
        Per-shard wall-clock budget in seconds; a shard exceeding it is
        treated like a crashed worker (``None`` disables the timeout).
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max: float = 2.0
    shard_timeout: float | None = 60.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff bounds must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError(
                f"shard_timeout must be positive or None, got {self.shard_timeout}"
            )

    def backoff(self, retry_number: int) -> float:
        """Sleep before retry ``retry_number`` (1-based), capped."""
        if retry_number < 1:
            return 0.0
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_multiplier ** (retry_number - 1),
        )


def _failure_record(
    scenario: "Scenario", index: int, solver: str, exc: BaseException, retries: int
) -> ScenarioFailure:
    try:
        fingerprint = scenario.fingerprint()
    except Exception:
        # A demand model broken enough to fail fingerprinting still gets
        # a record — the index and error keep it actionable.
        fingerprint = "<unavailable>"
    return ScenarioFailure(
        index=index,
        fingerprint=fingerprint,
        solver=solver,
        error=f"{type(exc).__name__}: {exc}",
        retries=retries,
    )


def solve_isolated(
    spec: "SolverSpec",
    scenarios: Sequence["Scenario"],
    options: Mapping[str, Any],
    retries: int = 0,
) -> BatchedMVAResult:
    """Solve each scenario alone, isolating failures instead of aborting.

    The per-scenario last resort behind ``solve_stack(errors="isolate")``
    and the final stage of :class:`ResilientBackend`: successful
    scenarios get exactly the rows the ``serial`` backend would produce
    (same scalar solver, same order); failed scenarios contribute NaN
    rows plus a :class:`ScenarioFailure` record.  ``retries`` stamps the
    records with how many recovery attempts preceded isolation.
    """
    scenarios = list(scenarios)
    offset = _scenario_offset()
    n = scenarios[0].max_population
    k = len(scenarios[0].station_names)
    s = len(scenarios)
    results: dict[int, Any] = {}
    failures: list[ScenarioFailure] = []
    for i, sc in enumerate(scenarios):
        try:
            faults.maybe_inject("kernel", scenario=offset + i)
            results[i] = spec.solve(sc, **dict(options))
        except Exception as exc:
            failures.append(_failure_record(sc, i, spec.name, exc, retries))

    if spec.returns == "multiclass":
        return _isolate_multiclass(spec, scenarios, results, failures)

    populations = np.arange(1, n + 1)
    throughput = np.full((s, n), np.nan)
    response_time = np.full((s, n), np.nan)
    queue_lengths = np.full((s, n, k), np.nan)
    residence_times = np.full((s, n, k), np.nan)
    utilizations = np.full((s, n, k), np.nan)
    demands = np.full((s, n, k), np.nan)
    have_demands = bool(results)
    for i, r in results.items():
        throughput[i] = r.throughput
        response_time[i] = r.response_time
        queue_lengths[i] = r.queue_lengths
        residence_times[i] = r.residence_times
        utilizations[i] = r.utilizations
        if r.demands_used is None:
            have_demands = False
        else:
            demands[i] = r.demands_used
    first = next(iter(results.values()), None)
    return BatchedMVAResult(
        populations=first.populations if first is not None else populations,
        throughput=throughput,
        response_time=response_time,
        queue_lengths=queue_lengths,
        residence_times=residence_times,
        utilizations=utilizations,
        station_names=scenarios[0].station_names,
        think_times=np.array([sc.think for sc in scenarios]),
        solver=f"stacked-{first.solver}" if first is not None else spec.name,
        demands_used=demands if have_demands else None,
        backend="serial",
        failures=tuple(failures),
    )


def _isolate_multiclass(spec, scenarios, results, failures):
    """Assemble the multi-class isolation container (NaN rows for failures)."""
    first_sc = scenarios[0]
    s = len(scenarios)
    k = len(first_sc.station_names)
    c = len(first_sc.classes)
    n = first_sc.max_population
    z = np.asarray(first_sc.class_think_times, dtype=float)
    solver = f"stacked-{spec.name}"
    first = next(iter(results.values()), None)
    trajectory = (
        hasattr(first, "totals")
        if first is not None
        else spec.batched_kernel == "multiclass-mvasd"
    )
    if trajectory:
        throughput = np.full((s, n, c), np.nan)
        response = np.full((s, n, c), np.nan)
        utils = np.full((s, n, k), np.nan)
        for i, r in results.items():
            throughput[i] = r.throughput
            response[i] = r.response_time
            utils[i] = r.utilizations
        if first is not None:
            totals, pops = first.totals, first.populations
        else:
            # No survivor to copy the mix sweep from: recompute the
            # largest-remainder apportionment the solver would have used.
            totals = np.arange(1, n + 1)
            weights = np.array(
                [cl.population for cl in first_sc.classes], dtype=float
            )
            weights = weights / weights.sum()
            pops = np.zeros((n, c), dtype=int)
            for ti, total in enumerate(range(1, n + 1)):
                raw = weights * total
                base = np.floor(raw).astype(int)
                order = np.argsort(-(raw - base))
                base[order[: total - int(base.sum())]] += 1
                pops[ti] = base
        return BatchedMultiClassTrajectory(
            class_names=first_sc.class_names,
            station_names=first_sc.station_names,
            totals=np.asarray(totals),
            populations=np.asarray(pops),
            throughput=throughput,
            response_time=response,
            utilizations=utils,
            think_times=z,
            solver=solver,
            backend="serial",
            failures=tuple(failures),
        )
    throughput = np.full((s, c), np.nan)
    response = np.full((s, c), np.nan)
    queue_lengths = np.full((s, k), np.nan)
    queue_by_class = np.full((s, k, c), np.nan)
    utils = np.full((s, k), np.nan)
    for i, r in results.items():
        throughput[i] = r.throughput
        response[i] = r.response_time
        queue_lengths[i] = r.queue_lengths
        queue_by_class[i] = r.queue_lengths_by_class
        utils[i] = r.utilizations
    return BatchedMultiClassResult(
        populations=first_sc.class_populations,
        class_names=first_sc.class_names,
        throughput=throughput,
        response_time=response,
        queue_lengths=queue_lengths,
        queue_lengths_by_class=queue_by_class,
        utilizations=utils,
        station_names=first_sc.station_names,
        think_times=z,
        solver=solver,
        backend="serial",
        failures=tuple(failures),
    )


def solve_isolated_batched(
    spec: "SolverSpec",
    scenarios: Sequence["Scenario"],
    options: Mapping[str, Any],
    retries: int = 0,
):
    """Masked-kernel isolation: failed rows NaN, healthy rows stay batched.

    Probes every scenario's kernel input independently (the injection
    point and the place bad demand models blow up); scenarios whose
    probe fails are masked out of the single vectorized kernel call
    with a placeholder row.  Surviving scenarios keep batched speed —
    previously one poisoned scenario demoted the whole shard to the
    serial loop.  Falls back to :func:`solve_isolated` if the masked
    kernel call itself still fails.
    """
    scenarios = list(scenarios)
    offset = _scenario_offset()
    rows: list[np.ndarray] = []
    mask = np.ones(len(scenarios), dtype=bool)
    failures: list[ScenarioFailure] = []
    for i, sc in enumerate(scenarios):
        try:
            faults.maybe_inject("kernel", scenario=offset + i)
            row = np.asarray(_kernel_input(spec, sc), dtype=float)
            if not np.isfinite(row).all():
                raise ValueError("non-finite demands")
            rows.append(row)
        except Exception as exc:
            mask[i] = False
            rows.append(np.ones(_kernel_input_shape(spec, sc)))
            failures.append(_failure_record(sc, i, spec.name, exc, retries))
    try:
        result = _run_kernel(
            spec, scenarios, rows, options, mask=None if mask.all() else mask
        )
    except Exception:
        # The kernel failed on the surviving rows too (or the probe
        # missed a poison the full recursion hits) — degrade all the way.
        return solve_isolated(spec, scenarios, options, retries=retries)
    return replace(result, backend="batched", failures=tuple(failures))


class SweepCheckpoint:
    """Append-only journal of completed shards for crash-safe sweeps.

    Each record is one line of JSON holding a content-addressed shard
    key (:meth:`shard_key` — scenario fingerprints + method + canonical
    options, the same identity the solver cache uses), a SHA-256 of the
    payload, and the shard's result arrays (any of the three stack
    containers, tagged by a ``container`` meta field) as a
    base64 ``.npz`` blob.  The array round-trip is lossless, so a
    resumed sweep reassembles *bit-identical* results from journaled
    shards.  Loading tolerates a torn tail (the line a killed driver was
    writing) and corrupted records by skipping anything that fails JSON
    parsing or the checksum — those shards are simply re-solved.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    @staticmethod
    def shard_key(
        method: str,
        options: Mapping[str, Any],
        fingerprints: Sequence[str],
    ) -> str | None:
        """Content hash identifying one shard's solve request.

        ``None`` when the options cannot be canonicalized (callables) —
        such shards are solved but not journaled, exactly mirroring the
        result cache's uncacheable rule.
        """
        from ..solvers.cache import canonical_options

        opts = canonical_options(options)
        if opts is None or options.get("demand_axis") == "throughput":
            return None
        h = hashlib.sha256()
        h.update(_CHECKPOINT_VERSION.encode("ascii"))
        h.update(method.encode("utf-8"))
        h.update(repr(opts).encode("utf-8"))
        for fp in fingerprints:
            h.update(fp.encode("ascii"))
            h.update(b"\x00")
        return h.hexdigest()

    def load(self) -> dict[str, Any]:
        """All valid journaled shards, keyed by shard key (latest wins)."""
        completed: dict[str, Any] = {}
        try:
            lines = self.path.read_text().splitlines()
        except (FileNotFoundError, OSError):
            return completed
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if record.get("version") != _CHECKPOINT_VERSION:
                    continue
                raw = base64.b64decode(record["payload"].encode("ascii"))
                if hashlib.sha256(raw).hexdigest() != record["sha256"]:
                    continue
                completed[record["key"]] = self._decode(record["meta"], raw)
            except Exception:
                continue  # torn tail or corrupted record: re-solve that shard
        return completed

    def record(self, key: str | None, part) -> None:
        """Append one completed shard (no-op for unkeyed/failed parts).

        All three stack containers journal: single-class trajectories
        (:class:`BatchedMVAResult`) and the two multi-class containers
        — each with its own npz array layout, tagged by a ``container``
        field in the record meta.  Parts carrying failures are never
        journaled: a resume after fixing the inputs must recompute them.
        """
        if (
            key is None
            or part.failures
            or not isinstance(
                part,
                (
                    BatchedMVAResult,
                    BatchedMultiClassResult,
                    BatchedMultiClassTrajectory,
                ),
            )
        ):
            return
        meta, raw = self._encode(part)
        record = {
            "version": _CHECKPOINT_VERSION,
            "key": key,
            "sha256": hashlib.sha256(raw).hexdigest(),
            "meta": meta,
            "payload": base64.b64encode(raw).decode("ascii"),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="ascii") as fh:
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
            fh.flush()
            try:
                os.fsync(fh.fileno())
            except OSError:  # pragma: no cover - fsync-less filesystems
                pass

    @staticmethod
    def _encode(part) -> tuple[dict, bytes]:
        meta = {
            "solver": part.solver,
            "backend": part.backend,
            "station_names": list(part.station_names),
        }
        if isinstance(part, BatchedMultiClassTrajectory):
            meta["container"] = "multiclass-trajectory"
            meta["class_names"] = list(part.class_names)
            arrays = {
                "totals": np.asarray(part.totals),
                "populations": np.asarray(part.populations),
                "throughput": part.throughput,
                "response_time": part.response_time,
                "utilizations": part.utilizations,
                "think_times": part.think_times,
            }
        elif isinstance(part, BatchedMultiClassResult):
            meta["container"] = "multiclass"
            meta["class_names"] = list(part.class_names)
            arrays = {
                "populations": np.asarray(part.populations),
                "throughput": part.throughput,
                "response_time": part.response_time,
                "queue_lengths": part.queue_lengths,
                "queue_lengths_by_class": part.queue_lengths_by_class,
                "utilizations": part.utilizations,
                "think_times": part.think_times,
            }
        else:
            # "mva" is the implicit default so v1 single-class records
            # (written before the tag existed) keep decoding unchanged.
            meta["container"] = "mva"
            arrays = {
                "populations": part.populations,
                "throughput": part.throughput,
                "response_time": part.response_time,
                "queue_lengths": part.queue_lengths,
                "residence_times": part.residence_times,
                "utilizations": part.utilizations,
                "think_times": part.think_times,
            }
        if part.demands_used is not None:
            arrays["demands_used"] = part.demands_used
        buf = io.BytesIO()
        np.savez_compressed(buf, **arrays)
        return meta, buf.getvalue()

    @staticmethod
    def _decode(meta: Mapping, raw: bytes):
        container = meta.get("container", "mva")
        with np.load(io.BytesIO(raw), allow_pickle=False) as data:
            demands = data["demands_used"] if "demands_used" in data else None
            if container == "multiclass-trajectory":
                return BatchedMultiClassTrajectory(
                    class_names=tuple(meta["class_names"]),
                    station_names=tuple(meta["station_names"]),
                    totals=data["totals"],
                    populations=data["populations"],
                    throughput=data["throughput"],
                    response_time=data["response_time"],
                    utilizations=data["utilizations"],
                    think_times=data["think_times"],
                    solver=str(meta["solver"]),
                    demands_used=demands,
                    backend=meta.get("backend"),
                )
            if container == "multiclass":
                return BatchedMultiClassResult(
                    populations=tuple(int(n) for n in data["populations"]),
                    class_names=tuple(meta["class_names"]),
                    throughput=data["throughput"],
                    response_time=data["response_time"],
                    queue_lengths=data["queue_lengths"],
                    queue_lengths_by_class=data["queue_lengths_by_class"],
                    utilizations=data["utilizations"],
                    station_names=tuple(meta["station_names"]),
                    think_times=data["think_times"],
                    solver=str(meta["solver"]),
                    demands_used=demands,
                    backend=meta.get("backend"),
                )
            if container != "mva":
                raise ValueError(f"unknown checkpoint container {container!r}")
            return BatchedMVAResult(
                populations=data["populations"],
                throughput=data["throughput"],
                response_time=data["response_time"],
                queue_lengths=data["queue_lengths"],
                residence_times=data["residence_times"],
                utilizations=data["utilizations"],
                station_names=tuple(meta["station_names"]),
                think_times=data["think_times"],
                solver=str(meta["solver"]),
                demands_used=demands,
                backend=meta.get("backend"),
            )


class ResilientBackend:
    """The sharded → batched → serial graceful-degradation chain.

    Implements the :class:`~repro.engine.backends.ExecutionBackend`
    protocol.  Execution proceeds in stages, and only *failed* work is
    ever redone:

    1. **Sharded attempts** — contiguous shards fan out over
       :func:`~repro.engine.sweep.parallel_map` workers with the
       policy's per-shard timeout; shards whose worker crashes
       (``BrokenProcessPool``), wedges (timeout) or errors are retried
       with exponential backoff, in a fresh pool, up to
       ``policy.max_retries`` times.  Completed shards are journaled to
       the checkpoint (if any) as they land.
    2. **In-process degradation** — shards that exhaust their retries
       are re-solved in the driver: first through the method's batched
       kernel (if registered), then through the serial per-scenario
       loop.
    3. **Per-scenario isolation** — scenarios that still fail are
       raised (``errors="raise"``) or recorded as
       :class:`~repro.engine.batched.ScenarioFailure` entries with NaN
       result rows (``errors="isolate"``) via :func:`solve_isolated`.

    The attempt counter published to :mod:`repro.engine.faults` is
    monotone across stages, so a deterministic fault armed for attempt 0
    fires exactly once and every later stage observes a healthy system —
    which is what makes recovery-parity tests exact.
    """

    name = "resilient"

    def __init__(
        self,
        workers: int | None = None,
        policy: RetryPolicy | None = None,
        checkpoint: SweepCheckpoint | str | os.PathLike | None = None,
        errors: str = "raise",
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if errors not in ("raise", "isolate"):
            raise ValueError(f"errors must be 'raise' or 'isolate', got {errors!r}")
        self.workers = workers
        self.policy = policy if policy is not None else RetryPolicy()
        if checkpoint is not None and not isinstance(checkpoint, SweepCheckpoint):
            checkpoint = SweepCheckpoint(checkpoint)
        self.checkpoint = checkpoint
        self.errors = errors
        self._sleep = sleep

    def run(self, spec, scenarios, options):
        # The staged loop itself lives in the transport-agnostic
        # Dispatcher; this backend is its local-process instantiation.
        from .fabric import Dispatcher  # deferred: fabric builds on this module
        from .transport import LocalProcessTransport

        dispatcher = Dispatcher(
            LocalProcessTransport(self.workers),
            name=self.name,
            policy=self.policy,
            checkpoint=self.checkpoint,
            errors=self.errors,
            sleep=self._sleep,
        )
        return dispatcher.run(spec, scenarios, options)
