"""Pluggable execution backends for ``solve_stack``.

The facade decides *what* to solve (method selection, validation,
caching); a backend decides *how* the stack is executed:

``serial``
    The per-scenario scalar loop, stacked into one
    :class:`~repro.engine.batched.BatchedMVAResult`.  Works for every
    trajectory method; the fallback when no batched kernel exists.
``batched``
    One vectorized :mod:`repro.engine.batched` recursion advancing all
    scenarios together.  Requires the method to register a
    ``batched_kernel``.
``process-sharded``
    Splits the stack into contiguous sub-stacks, solves each in a
    :func:`repro.engine.sweep.parallel_map` worker process (each worker
    runs the method's best in-process backend), and reassembles the
    parts into a single result.  The scenario list rides to the workers
    as the fork-inherited payload, so scenarios with unpicklable demand
    callables shard fine; only the chunk *bounds* and the result arrays
    cross the process boundary.

All three produce trajectories that agree to ≤1e-10 — the parity suite
in ``tests/test_backends.py`` pins serial vs batched vs sharded for
every registered method with a kernel.

This module must not import :mod:`repro.solvers` at module scope (the
solvers package imports the engine); worker entry points import the
facade lazily.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Mapping, Protocol, Sequence

import numpy as np

from . import faults
from .batched import (
    BatchedMultiClassResult,
    BatchedMultiClassTrajectory,
    BatchedMVAResult,
    batched_exact_multiclass,
    batched_exact_mva,
    batched_ld_mva,
    batched_multiclass_mvasd,
    batched_mvasd,
    batched_schweitzer_amva,
)
from .sweep import resolve_workers

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids the import cycle
    from ..solvers.registry import SolverSpec
    from ..solvers.scenario import Scenario

__all__ = [
    "BatchedBackend",
    "ExecutionBackend",
    "ProcessShardedBackend",
    "SerialBackend",
    "backend_names",
    "get_backend",
    "scenario_offset",
    "shard_bounds",
]


class ExecutionBackend(Protocol):
    """How a stack of topology-sharing scenarios gets executed."""

    name: str

    def run(
        self,
        spec: "SolverSpec",
        scenarios: Sequence["Scenario"],
        options: Mapping[str, Any],
    ) -> BatchedMVAResult:
        """Solve every scenario with ``spec`` and stack the trajectories."""
        ...  # pragma: no cover - protocol


class SerialBackend:
    """Per-scenario scalar loop, stacked into one batched container."""

    name = "serial"

    def run(self, spec, scenarios, options):
        results = []
        for i, sc in enumerate(scenarios):
            faults.maybe_inject("kernel", scenario=_scenario_offset() + i)
            results.append(spec.solve(sc, **options))
        if spec.returns == "multiclass":
            return self._stack_multiclass(spec, scenarios, results)
        demands = [r.demands_used for r in results]
        return BatchedMVAResult(
            populations=results[0].populations,
            throughput=np.stack([r.throughput for r in results]),
            response_time=np.stack([r.response_time for r in results]),
            queue_lengths=np.stack([r.queue_lengths for r in results]),
            residence_times=np.stack([r.residence_times for r in results]),
            utilizations=np.stack([r.utilizations for r in results]),
            station_names=results[0].station_names,
            think_times=np.array([r.think_time for r in results]),
            # The concrete scalar label ("stacked-linearizer-amva", not the
            # registry alias) — cache keys and bench reports depend on it.
            solver=f"stacked-{results[0].solver}",
            demands_used=None if any(d is None for d in demands) else np.stack(demands),
            backend=self.name,
        )

    def _stack_multiclass(self, spec, scenarios, results):
        # Multi-class scalar results carry no per-result solver label;
        # the registry name is the concrete one.
        solver = f"stacked-{spec.name}"
        first = results[0]
        if hasattr(first, "totals"):  # MultiClassTrajectory
            return BatchedMultiClassTrajectory(
                class_names=first.class_names,
                station_names=first.station_names,
                totals=first.totals,
                populations=first.populations,
                throughput=np.stack([r.throughput for r in results]),
                response_time=np.stack([r.response_time for r in results]),
                utilizations=np.stack([r.utilizations for r in results]),
                think_times=np.asarray(first.think_times, dtype=float),
                solver=solver,
                backend=self.name,
            )
        return BatchedMultiClassResult(
            populations=first.populations,
            class_names=scenarios[0].class_names,
            throughput=np.stack([r.throughput for r in results]),
            response_time=np.stack([r.response_time for r in results]),
            queue_lengths=np.stack([r.queue_lengths for r in results]),
            queue_lengths_by_class=np.stack([r.queue_lengths_by_class for r in results]),
            utilizations=np.stack([r.utilizations for r in results]),
            station_names=first.station_names,
            think_times=np.asarray(first.think_times, dtype=float),
            solver=solver,
            backend=self.name,
        )


def _kernel_input(spec: "SolverSpec", scenario: "Scenario") -> np.ndarray:
    """The per-scenario input row the method's batched kernel consumes.

    Extracting rows one scenario at a time (rather than inside the
    kernel) is what lets the ``errors="isolate"`` path probe each
    scenario independently and substitute a placeholder for poisoned
    rows before the single vectorized call.
    """
    kernel = spec.batched_kernel
    if kernel in ("exact-mva", "schweitzer-amva"):
        return scenario.fixed_demands(spec.name)
    if kernel == "mvasd":
        return scenario.resolved_demand_matrix(spec.name)
    if kernel == "ld-mva":
        # Packed (K, N+1) row: demand column + the mu_k(j) rate matrix.
        return np.concatenate(
            [scenario.fixed_demands(spec.name)[:, None], scenario.ld_rate_matrix(spec.name)],
            axis=1,
        )
    if kernel == "exact-multiclass":
        return scenario.multiclass_demand_matrix(spec.name)
    if kernel == "multiclass-mvasd":
        return scenario.multiclass_demand_tensor(spec.name)
    from ..solvers.validation import SolverInputError

    raise SolverInputError(f"{spec.name}: unknown batched kernel {kernel!r}")


def _kernel_input_shape(spec: "SolverSpec", scenario: "Scenario") -> tuple[int, ...]:
    """Shape of one kernel input row — for masked-out placeholder rows."""
    k = len(scenario.network.stations)
    n = scenario.max_population
    kernel = spec.batched_kernel
    if kernel in ("exact-mva", "schweitzer-amva"):
        return (k,)
    if kernel == "mvasd":
        return (n, k)
    if kernel == "ld-mva":
        return (k, n + 1)
    c = len(scenario.classes) if scenario.is_multiclass else 0
    if kernel == "exact-multiclass":
        return (k, c)
    return (n, k, c)


def _run_kernel(spec, scenarios, rows, options, mask=None):
    """One vectorized kernel call over pre-extracted input ``rows``.

    ``mask`` (optional ``(S,)`` bool, ``True`` = solve) flows straight
    into the kernel's in-recursion NaN masking — masked rows come back
    all-NaN without demoting the healthy rows to a scalar loop.
    """
    first = scenarios[0]
    kernel = spec.batched_kernel
    if kernel in ("exact-multiclass", "multiclass-mvasd"):
        if first.is_multiserver:
            from ..solvers.facade import SolverCapabilityError

            raise SolverCapabilityError(
                f"{spec.name}: multi-class solvers take single-server/delay "
                f"stations only — Seidmann-transform the network first "
                f"(repro.core.amva.seidmann_transform)"
            )
        stack = np.stack(rows)
        kinds = tuple(st.kind for st in first.network.stations)
        if kernel == "exact-multiclass":
            return batched_exact_multiclass(
                stack,
                populations=first.class_populations,
                think_times=first.class_think_times,
                station_names=first.station_names,
                station_kinds=kinds,
                class_names=first.class_names,
                mask=mask,
            )
        return batched_multiclass_mvasd(
            station_names=first.station_names,
            class_names=first.class_names,
            demand_tensors=stack,
            mix=[float(p) for p in first.class_populations],
            max_total_population=first.max_population,
            think_times=first.class_think_times,
            station_kinds=kinds,
            mask=mask,
        )
    network = first.resolved_network()
    n = first.max_population
    think = np.array([sc.think for sc in scenarios])
    stack = np.stack(rows)
    if kernel == "exact-mva":
        return batched_exact_mva(network, n, stack, think_times=think, mask=mask)
    if kernel == "schweitzer-amva":
        return batched_schweitzer_amva(network, n, stack, think_times=think, mask=mask)
    if kernel == "ld-mva":
        return batched_ld_mva(network, n, stack, think_times=think, mask=mask)
    # _kernel_input already rejected unknown kernels; "mvasd" is what's left.
    return batched_mvasd(
        network,
        n,
        stack,
        single_server=bool(options.get("single_server", False)),
        think_times=think,
        mask=mask,
    )


class BatchedBackend:
    """One vectorized engine recursion for the whole stack."""

    name = "batched"

    def run(self, spec, scenarios, options):
        if faults.active_plan() is not None:
            # A poisoned scenario takes the whole vectorized recursion
            # down with it — exactly the failure mode errors="isolate"
            # and the resilient degradation chain exist to contain.
            offset = _scenario_offset()
            for i in range(len(scenarios)):
                faults.maybe_inject("kernel", scenario=offset + i)
        rows = [_kernel_input(spec, sc) for sc in scenarios]
        result = _run_kernel(spec, scenarios, rows, options)
        return replace(result, backend=self.name)


#: Global scenario index of the first scenario the current (sub-)stack
#: solve covers — lets shard workers report fault/failure indices in the
#: coordinates of the full stack.  Worker-local (set after fork) or
#: save/restored around in-parent shard retries.
_SCENARIO_OFFSET = 0


def _scenario_offset() -> int:
    return _SCENARIO_OFFSET


@contextmanager
def scenario_offset(start: int):
    """Publish ``start`` as the stack offset for the enclosed solve."""
    global _SCENARIO_OFFSET
    previous = _SCENARIO_OFFSET
    _SCENARIO_OFFSET = start
    try:
        yield
    finally:
        _SCENARIO_OFFSET = previous


def shard_bounds(n_scenarios: int, workers: int | None) -> list[tuple[int, int, int]]:
    """Contiguous ``(shard_index, start, stop)`` slices of a stack."""
    n_shards = min(resolve_workers(workers), n_scenarios)
    edges = np.linspace(0, n_scenarios, n_shards + 1).astype(int)
    return [
        (i, int(edges[i]), int(edges[i + 1]))
        for i in range(n_shards)
        if edges[i] < edges[i + 1]
    ]


def _solve_shard(bounds, payload):
    """Worker entry point: solve one contiguous slice of the shared stack.

    ``payload`` (method name, child backend, the full scenario list,
    options) is fork-inherited, so only the ``(shard, start, stop)``
    bounds and the result arrays are ever pickled.  Also the injection
    point for shard-level faults (worker crash, wedged worker) and the
    place the shard's scenario offset is published so kernel-level
    faults and failure records use full-stack indices.
    """
    global _SCENARIO_OFFSET
    from ..solvers.facade import solve_stack

    method, child_backend, scenarios, options = payload
    shard, start, stop = bounds
    faults.maybe_inject("shard", shard=shard)
    previous_offset = _SCENARIO_OFFSET
    _SCENARIO_OFFSET = start
    try:
        return solve_stack(
            scenarios[start:stop],
            method=method,
            backend=child_backend,
            cache=None,
            **options,
        )
    finally:
        _SCENARIO_OFFSET = previous_offset


def _concat_results(parts: Sequence[Any], backend: str):
    """Reassemble sharded sub-stack results along the scenario axis."""
    first = parts[0]
    demands = [p.demands_used for p in parts]
    stacked_demands = (
        None if any(d is None for d in demands) else np.concatenate(demands)
    )
    failures = []
    offset = 0
    for p in parts:
        failures.extend(replace(f, index=offset + f.index) for f in p.failures)
        offset += p.n_scenarios
    if isinstance(first, BatchedMultiClassTrajectory):
        return BatchedMultiClassTrajectory(
            class_names=first.class_names,
            station_names=first.station_names,
            totals=first.totals,
            populations=first.populations,
            throughput=np.concatenate([p.throughput for p in parts]),
            response_time=np.concatenate([p.response_time for p in parts]),
            utilizations=np.concatenate([p.utilizations for p in parts]),
            think_times=first.think_times,
            solver=first.solver,
            demands_used=stacked_demands,
            backend=backend,
            failures=tuple(failures),
        )
    if isinstance(first, BatchedMultiClassResult):
        return BatchedMultiClassResult(
            populations=first.populations,
            class_names=first.class_names,
            throughput=np.concatenate([p.throughput for p in parts]),
            response_time=np.concatenate([p.response_time for p in parts]),
            queue_lengths=np.concatenate([p.queue_lengths for p in parts]),
            queue_lengths_by_class=np.concatenate(
                [p.queue_lengths_by_class for p in parts]
            ),
            utilizations=np.concatenate([p.utilizations for p in parts]),
            station_names=first.station_names,
            think_times=first.think_times,
            solver=first.solver,
            demands_used=stacked_demands,
            backend=backend,
            failures=tuple(failures),
        )
    return BatchedMVAResult(
        populations=first.populations,
        throughput=np.concatenate([p.throughput for p in parts]),
        response_time=np.concatenate([p.response_time for p in parts]),
        queue_lengths=np.concatenate([p.queue_lengths for p in parts]),
        residence_times=np.concatenate([p.residence_times for p in parts]),
        utilizations=np.concatenate([p.utilizations for p in parts]),
        station_names=first.station_names,
        think_times=np.concatenate([p.think_times for p in parts]),
        solver=first.solver,
        demands_used=stacked_demands,
        backend=backend,
        failures=tuple(failures),
    )


class ProcessShardedBackend:
    """Contiguous sub-stacks fanned out over a local process transport.

    The no-frills fan-out: one :class:`~repro.engine.transport.
    LocalProcessTransport` round with no retries — a crashed worker is
    retried in-parent by :func:`parallel_map` itself, and a solver error
    propagates.  For retries, degradation and checkpointing, use the
    ``resilient`` backend (a :class:`~repro.engine.fabric.Dispatcher`
    over the same transport).
    """

    name = "process-sharded"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = workers

    def run(self, spec, scenarios, options):
        from .transport import LocalProcessTransport  # deferred: imports us

        child_backend = "batched" if spec.batched_kernel else "serial"
        bounds = shard_bounds(len(scenarios), self.workers)
        parts = LocalProcessTransport(self.workers).run_shards(
            bounds,
            (spec.name, child_backend, list(scenarios), dict(options)),
            return_exceptions=False,
        )
        return _concat_results(parts, self.name)


def backend_names() -> tuple[str, ...]:
    """The selectable execution backends, cheapest-to-set-up first."""
    return ("serial", "batched", "process-sharded", "resilient", "remote")


def get_backend(name: str, workers: int | None = None, **kwargs) -> ExecutionBackend:
    """An :class:`ExecutionBackend` instance by name.

    ``workers`` only affects ``process-sharded`` and ``resilient``; the
    in-process backends ignore it.  ``kwargs`` (retry policy,
    checkpoint, error mode — plus ``hosts`` for ``remote``) are
    forwarded to :class:`~repro.engine.resilience.ResilientBackend` /
    :class:`~repro.engine.fabric.RemoteBackend`.
    """
    if name == "serial":
        return SerialBackend()
    if name == "batched":
        return BatchedBackend()
    if name == "process-sharded":
        return ProcessShardedBackend(workers=workers)
    if name == "resilient":
        from .resilience import ResilientBackend  # deferred: builds on this module

        return ResilientBackend(workers=workers, **kwargs)
    if name == "remote":
        from .fabric import RemoteBackend  # deferred: builds on this module

        return RemoteBackend(**kwargs)
    raise ValueError(f"unknown backend {name!r}; known: {backend_names()}")
