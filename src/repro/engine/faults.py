"""Deterministic fault injection for the execution layer.

Recovery code that is never exercised is broken code: the graceful
degradation chain in :mod:`repro.engine.resilience`, the serial-retry
path of :func:`repro.engine.sweep.parallel_map` and the degrade-to-miss
guard of :class:`repro.solvers.cache.SolverCache` all exist for failure
modes (OOM-killed workers, wedged shards, corrupted cache state) that a
healthy test machine never produces on its own.  This module makes those
failures *reproducible inputs*: a :class:`FaultPlan` names exactly which
shard crashes, which scenario poisons its kernel, and which cache access
is corrupted, so every recovery path can be pinned by a parity test —
the faulted run must match the fault-free run to ≤1e-10.

Design constraints:

* **Deterministic.**  A fault fires when its target (shard index,
  scenario index, injection point) matches *and* the current attempt
  number equals the fault's ``attempt`` — so "crash on the first try,
  succeed on the retry" is expressible without clocks or randomness.
* **Fork-transparent.**  The armed plan and the attempt counter live in
  module globals; pool workers are forked after arming, so they inherit
  the plan through the process image.  ``crash-worker`` additionally
  only fires in a *forked child* (never the driver), which is what lets
  the parent's serial retry of the same shard succeed.
* **Leaf module.**  Imports nothing from the rest of the package, so
  even :mod:`repro.solvers.cache` (which the engine depends on) can call
  :func:`maybe_inject` without an import cycle.

Fault kinds
-----------

``crash-worker``
    ``os._exit(1)`` in a forked worker running the matching shard — the
    ProcessPoolExecutor observes ``BrokenProcessPool``.
``delay-shard``
    Sleep ``delay`` seconds before solving the matching shard (the slow
    / wedged-worker model; pair with a per-shard timeout).
``raise-in-kernel``
    Raise :class:`InjectedFault` while solving the matching scenario
    (the poisoned-scenario model).
``corrupt-cache-entry``
    Raise :class:`InjectedFault` inside ``SolverCache.get``/``put`` —
    the cache must degrade to a counted miss, never propagate.
``drop-connection``
    Raise :class:`InjectedFault` in the remote transport just before the
    matching shard is sent to a worker — the transport must treat it
    like a vanished worker host (retire the connection, let the
    dispatcher retry the shard elsewhere).
``slow-worker``
    Sleep ``delay`` seconds in the remote transport before sending the
    matching shard (the remote twin of ``delay-shard``; pair with a
    per-shard timeout to exercise timeout-driven host retirement).
``kill-worker-process``
    SIGKILL a supervised fleet worker (``shard`` selects the worker
    slot).  Fired by the :class:`~repro.engine.supervisor.FleetSupervisor`
    heartbeat via :func:`take_one_shot` — lifecycle faults live on
    wall-clock threads, not retry attempts, so each armed fault fires
    exactly once per plan instead of matching an attempt counter.
``reject-admission``
    The worker answers the matching shard with a structured
    ``Overloaded`` envelope instead of solving it.  Fires in the remote
    transport just before the shard is sent (driver-side, mirroring
    ``drop-connection``), and in a worker's admission gate when the
    worker process itself armed a plan (``repro worker
    --inject-faults``).  The transport must treat it as retry-later —
    re-queue the shard, keep the host.

CLI spec syntax (``repro sweep-grid --inject-faults``): faults separated
by ``;``, parameters by ``,`` — e.g.
``"crash-worker@shard=0;delay-shard@shard=1,delay=0.2;corrupt-cache-entry"``.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "activate",
    "active_plan",
    "current_attempt",
    "deactivate",
    "fired",
    "injected",
    "maybe_inject",
    "set_attempt",
    "take_one_shot",
]

#: Every recognised fault kind, mapped to the injection point it hooks.
FAULT_KINDS = {
    "crash-worker": "shard",
    "delay-shard": "shard",
    "raise-in-kernel": "kernel",
    "corrupt-cache-entry": "cache",
    "corrupt-persistent-entry": "persistent",
    "drop-connection": "transport",
    "slow-worker": "transport",
    "kill-worker-process": "fleet",
    "reject-admission": "admission",
}


class InjectedFault(RuntimeError):
    """An error raised by the fault-injection harness (never by real code)."""


@dataclass(frozen=True)
class Fault:
    """One deterministic fault: what to break, where, and on which attempt.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    shard:
        Shard index to hit (``None`` = every shard) for the shard-point
        kinds.
    scenario:
        Global scenario index to hit for ``raise-in-kernel`` (``None`` =
        every scenario).
    attempt:
        The fault fires only when the execution layer's attempt counter
        equals this value (0 = the first try), so retries deterministically
        escape it.
    delay:
        Sleep duration in seconds for ``delay-shard``.
    """

    kind: str
    shard: int | None = None
    scenario: int | None = None
    attempt: int = 0
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {sorted(FAULT_KINDS)}"
            )
        if self.attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {self.attempt}")
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")

    @property
    def point(self) -> str:
        return FAULT_KINDS[self.kind]

    def matches(self, point: str, shard: int | None, scenario: int | None) -> bool:
        """Does this fault fire at ``point`` for the given target indices?"""
        if self.point != point or self.attempt != current_attempt():
            return False
        if self.shard is not None and shard != self.shard:
            return False
        if self.scenario is not None and scenario != self.scenario:
            return False
        return True

    def spec(self) -> str:
        """The compact CLI spelling of this fault (inverse of parsing)."""
        params = []
        if self.shard is not None:
            params.append(f"shard={self.shard}")
        if self.scenario is not None:
            params.append(f"scenario={self.scenario}")
        if self.attempt:
            params.append(f"attempt={self.attempt}")
        if self.delay:
            params.append(f"delay={self.delay:g}")
        return self.kind + ("@" + ",".join(params) if params else "")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of deterministic faults to arm together."""

    faults: tuple[Fault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI spec syntax (see module docstring) into a plan."""
        faults = []
        for part in text.split(";"):
            part = part.strip()
            if not part:
                continue
            kind, _, params = part.partition("@")
            kwargs: dict = {"kind": kind.strip()}
            for item in filter(None, (p.strip() for p in params.split(","))):
                key, sep, value = item.partition("=")
                if not sep:
                    raise ValueError(
                        f"fault parameter {item!r} must look like key=value"
                    )
                key = key.strip()
                if key in ("shard", "scenario", "attempt"):
                    kwargs[key] = int(value)
                elif key == "delay":
                    kwargs[key] = float(value)
                else:
                    raise ValueError(
                        f"unknown fault parameter {key!r}; "
                        f"known: shard, scenario, attempt, delay"
                    )
            faults.append(Fault(**kwargs))
        if not faults:
            raise ValueError(f"fault spec {text!r} names no faults")
        return cls(faults=tuple(faults))

    def spec(self) -> str:
        return ";".join(f.spec() for f in self.faults)

    def __len__(self) -> int:
        return len(self.faults)


# -- armed state --------------------------------------------------------------
#
# Module globals, deliberately: pool workers fork after ``activate`` /
# ``set_attempt`` run in the driver, so they see the same plan and
# attempt number through the inherited process image.

_plan: FaultPlan | None = None
_attempt: int = 0
#: PID of the process that armed the plan — ``crash-worker`` only fires
#: in *other* (forked) processes, so driver-side retries survive.
_armed_pid: int | None = None
#: In-process record of fired faults, for assertions in tests.  Faults
#: fired inside forked workers are recorded in the worker and die with
#: it — tests assert on driver-side fires or on recovery parity instead.
_fired: list[tuple[str, str, int | None, int | None, int]] = []


def activate(plan: FaultPlan) -> None:
    """Arm ``plan`` process-wide (replacing any armed plan)."""
    global _plan, _armed_pid
    if not isinstance(plan, FaultPlan):
        raise TypeError(f"expected a FaultPlan, got {type(plan).__name__}")
    _plan = plan
    _armed_pid = os.getpid()
    _fired.clear()
    _consumed.clear()


def deactivate() -> None:
    """Disarm fault injection and reset the attempt counter."""
    global _plan, _attempt, _armed_pid
    _plan = None
    _attempt = 0
    _armed_pid = None


def active_plan() -> FaultPlan | None:
    return _plan


@contextmanager
def injected(plan: FaultPlan):
    """Context manager: arm ``plan`` for the block, disarm on exit."""
    activate(plan)
    try:
        yield plan
    finally:
        deactivate()


def set_attempt(attempt: int) -> None:
    """Publish the execution layer's current attempt number (0-based)."""
    global _attempt
    _attempt = int(attempt)


def current_attempt() -> int:
    return _attempt


def fired() -> list[tuple[str, str, int | None, int | None, int]]:
    """Faults fired *in this process* since the plan was armed."""
    return list(_fired)


#: Faults already consumed by :func:`take_one_shot` — identity-keyed so
#: re-arming the same plan object does not resurrect them (``activate``
#: clears this alongside ``_fired``).
_consumed: set[int] = set()


def take_one_shot(point: str, shard: int | None = None) -> Fault | None:
    """Consume and return an armed fault at ``point``, ignoring attempts.

    Lifecycle consumers (the fleet supervisor's heartbeat thread) live on
    wall-clock time, not the dispatcher's retry-attempt clock: a
    ``kill-worker-process`` fault matched via :meth:`Fault.matches` would
    re-fire on every heartbeat once the dispatcher resets the attempt
    counter.  This helper instead fires each armed fault *exactly once*:
    the first call matching ``point`` (and ``shard``, when the fault pins
    one) returns the fault, records it in :func:`fired`, and marks it
    consumed; later calls skip it.  Returns ``None`` when nothing is
    armed or everything matching is already consumed.
    """
    if _plan is None:
        return None
    for fault in _plan.faults:
        if fault.point != point or id(fault) in _consumed:
            continue
        if fault.shard is not None and shard is not None and shard != fault.shard:
            continue
        _consumed.add(id(fault))
        _fired.append((fault.kind, point, fault.shard, None, _attempt))
        return fault
    return None


def maybe_inject(
    point: str,
    shard: int | None = None,
    scenario: int | None = None,
) -> None:
    """Fire any armed fault matching ``point`` and the target indices.

    Called from the injection points the harness instruments (shard
    entry, per-scenario kernel solve, cache access).  A no-op — one
    ``is None`` check — when no plan is armed, so the hooks cost nothing
    in production runs.
    """
    if _plan is None:
        return
    for fault in _plan.faults:
        if not fault.matches(point, shard, scenario):
            continue
        _fired.append((fault.kind, point, shard, scenario, _attempt))
        if fault.kind in ("delay-shard", "slow-worker"):
            time.sleep(fault.delay)
        elif fault.kind == "crash-worker":
            if _armed_pid is not None and os.getpid() != _armed_pid:
                os._exit(1)  # simulate an OOM-killed / SIGKILLed worker
            # In the arming (driver) process a hard exit would kill the
            # whole run; the crash is only meaningful for forked workers.
        else:  # raise-in-kernel, corrupt-*-entry, drop-connection
            raise InjectedFault(
                f"injected {fault.kind} at {point} "
                f"(shard={shard}, scenario={scenario}, attempt={_attempt})"
            )
