"""High-throughput execution layer for solver and simulation sweeps.

Two complementary strategies for the repo's ubiquitous
grid-of-scenarios pattern:

``repro.engine.batched``
    Vectorized NumPy kernels that advance S scenarios through one MVA /
    AMVA / MVASD population recursion at once — demand stacks of shape
    ``(S, K)`` or ``(S, N, K)``, per-level work amortized over the whole
    grid.  Results match the scalar solvers to 1e-10.
``repro.engine.sweep``
    Fork-join execution of independent tasks (DES replications,
    pipeline validations, what-if solves): :class:`ScenarioGrid`
    builders, an ordered :func:`parallel_map` over a process pool with a
    serial fallback, and :func:`spawn_seeds` for worker-count-invariant
    seeding.
``repro.engine.resilience`` / ``repro.engine.faults``
    Fault tolerance for long sweeps: the :class:`ResilientBackend`
    degradation chain (sharded → batched → serial) with bounded
    :class:`RetryPolicy` retries, crash-safe :class:`SweepCheckpoint`
    journals keyed on scenario fingerprints, per-scenario
    :class:`ScenarioFailure` isolation, and the deterministic
    :class:`FaultPlan` injection harness that proves the recovery paths.
``repro.engine.fabric`` / ``repro.engine.transport``
    The execution fabric: :class:`WorkPlan` partitioning, the
    transport-agnostic :class:`Dispatcher` (the staged recovery loop,
    factored out of the resilient backend), and interchangeable
    :class:`Transport` implementations — forked local process pools
    (:class:`LocalProcessTransport`) or a fleet of ``repro worker``
    hosts over the serve protocol (:class:`RemoteTransport`, behind
    ``backend="remote"`` / :class:`RemoteBackend`).

See ``benchmarks/bench_perf01_batch_speedup.py`` for the measured
speedups and the `repro sweep-grid` CLI subcommand for the command-line
surface.
"""

from .backends import (
    BatchedBackend,
    ExecutionBackend,
    ProcessShardedBackend,
    SerialBackend,
    backend_names,
    get_backend,
    shard_bounds,
)
from .batched import (
    BatchedMultiClassResult,
    BatchedMultiClassTrajectory,
    BatchedMVAResult,
    ScenarioFailure,
    batched_exact_multiclass,
    batched_exact_mva,
    batched_ld_mva,
    batched_multiclass_mvasd,
    batched_mvasd,
    batched_schweitzer_amva,
    demand_matrix_stack,
)
from .fabric import Dispatcher, RemoteBackend, WorkPlan, WorkShard
from .faults import Fault, FaultPlan, InjectedFault
from .resilience import (
    ResilientBackend,
    RetryPolicy,
    SweepCheckpoint,
    solve_isolated,
    solve_isolated_batched,
)
from .supervisor import (
    CircuitBreaker,
    CommandLauncher,
    FleetSupervisor,
    Launcher,
    LocalLauncher,
    StaticMembership,
    WorkerHandle,
)
from .sweep import ScenarioGrid, parallel_map, resolve_workers, spawn_seeds
from .transport import (
    LocalProcessTransport,
    RemoteTransport,
    Transport,
    WorkerConnectionLost,
    WorkerOverloaded,
    parse_hosts,
)

__all__ = [
    "BatchedBackend",
    "BatchedMVAResult",
    "BatchedMultiClassResult",
    "BatchedMultiClassTrajectory",
    "CircuitBreaker",
    "CommandLauncher",
    "Dispatcher",
    "ExecutionBackend",
    "Fault",
    "FaultPlan",
    "FleetSupervisor",
    "InjectedFault",
    "Launcher",
    "LocalLauncher",
    "LocalProcessTransport",
    "ProcessShardedBackend",
    "RemoteBackend",
    "RemoteTransport",
    "ResilientBackend",
    "RetryPolicy",
    "ScenarioFailure",
    "ScenarioGrid",
    "SerialBackend",
    "StaticMembership",
    "SweepCheckpoint",
    "Transport",
    "WorkPlan",
    "WorkShard",
    "WorkerConnectionLost",
    "WorkerHandle",
    "WorkerOverloaded",
    "backend_names",
    "batched_exact_multiclass",
    "batched_exact_mva",
    "batched_ld_mva",
    "batched_multiclass_mvasd",
    "batched_mvasd",
    "batched_schweitzer_amva",
    "demand_matrix_stack",
    "get_backend",
    "parallel_map",
    "parse_hosts",
    "resolve_workers",
    "shard_bounds",
    "solve_isolated",
    "solve_isolated_batched",
    "spawn_seeds",
]
