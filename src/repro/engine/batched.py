"""Batched MVA-family kernels — one recursion, S scenarios.

Every sweep artifact in this repo (deviation tables, what-if grids, the
Fig. 6/7/16 validation loops, the ablation benches) solves the *same*
recursion over a grid of demand vectors, demand scalings or think
times.  Solving the grid one scenario at a time leaves almost all of the
work in Python-level loop overhead: at every population level the
scalar solvers touch K stations with K-element arrays, so the NumPy
call overhead dominates the arithmetic.

The kernels here instead advance **all S scenarios together** through
the population recursion: demands come in as a stack of shape
``(S, K)`` (constant-demand solvers) or ``(S, N, K)`` (MVASD demand
matrices, precomputed once via
:func:`repro.core.mvasd.precompute_demand_matrix`), and every update is
an array operation over the scenario axis.  The per-level Python cost
is then paid once per level instead of once per level *per scenario*,
which is where the order-of-magnitude speedups of
``benchmarks/bench_perf01_batch_speedup.py`` come from.

The batched kernels perform the same floating-point operations in the
same order as their scalar counterparts (elementwise across the
scenario axis), so trajectories agree with
:func:`repro.core.mva.exact_mva`, :func:`repro.core.amva.schweitzer_amva`
and :func:`repro.core.mvasd.mvasd` to rounding — the equivalence suite
pins them to within 1e-10.

Scenarios must share the network *topology* (station kinds, server
counts) — that is what makes the recursion batchable — but may differ
in demands and think times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.mvasd import DemandFn, precompute_demand_matrix
from ..core.network import ClosedNetwork
from ..core.results import MVAResult

__all__ = [
    "BatchedMVAResult",
    "ScenarioFailure",
    "batched_exact_mva",
    "batched_schweitzer_amva",
    "batched_mvasd",
    "demand_matrix_stack",
]

# Mirrors of the scalar Schweitzer fixed-point controls (amva.py).
_MAX_ITER = 10_000
_TOL = 1e-10


@dataclass(frozen=True)
class ScenarioFailure:
    """One scenario a ``solve_stack(errors="isolate")`` run could not solve.

    Carried on :attr:`BatchedMVAResult.failures` instead of aborting the
    stack; the failed scenario's rows in the result arrays are NaN.

    Attributes
    ----------
    index:
        Position of the scenario in the solved stack.
    fingerprint:
        :meth:`Scenario.fingerprint` content hash, so the failure can be
        matched to its scenario across runs (``"<unavailable>"`` when
        the demand model is too broken to fingerprint).
    solver:
        Registry name of the method that rejected the scenario.
    error:
        ``"ExcType: message"`` of the final exception.
    retries:
        How many recovery attempts the execution layer made before
        isolating the scenario.
    """

    index: int
    fingerprint: str
    solver: str
    error: str
    retries: int = 0


@dataclass(frozen=True)
class BatchedMVAResult:
    """Trajectories of S scenarios solved in one batched recursion.

    The arrays carry a leading scenario axis on top of the scalar
    :class:`~repro.core.results.MVAResult` layout: ``throughput`` is
    ``(S, N)``, the per-station trajectories are ``(S, N, K)``.
    :meth:`scenario` slices one scenario back out as a plain
    :class:`MVAResult` for downstream code that expects the scalar
    container.
    """

    populations: np.ndarray
    throughput: np.ndarray
    response_time: np.ndarray
    queue_lengths: np.ndarray
    residence_times: np.ndarray
    utilizations: np.ndarray
    station_names: tuple[str, ...]
    think_times: np.ndarray
    solver: str
    demands_used: np.ndarray | None = None
    #: Execution backend that produced this result ("serial", "batched",
    #: "process-sharded", "resilient"), stamped by the solve_stack facade;
    #: ``None`` for results built by calling a kernel directly.
    backend: str | None = None
    #: Scenarios isolated by ``solve_stack(errors="isolate")`` — their
    #: rows in the trajectory arrays are NaN.  Empty for fault-free runs.
    failures: tuple[ScenarioFailure, ...] = ()

    def __post_init__(self) -> None:
        s, n, k = self.n_scenarios, len(self.populations), len(self.station_names)
        for attr in ("throughput", "response_time"):
            if getattr(self, attr).shape != (s, n):
                raise ValueError(f"{attr} must have shape ({s}, {n})")
        for attr in ("queue_lengths", "residence_times", "utilizations"):
            if getattr(self, attr).shape != (s, n, k):
                raise ValueError(f"{attr} must have shape ({s}, {n}, {k})")
        if self.think_times.shape != (s,):
            raise ValueError(f"think_times must have shape ({s},)")
        if self.demands_used is not None and self.demands_used.shape != (s, n, k):
            raise ValueError(f"demands_used must have shape ({s}, {n}, {k})")
        object.__setattr__(self, "failures", tuple(self.failures))
        for f in self.failures:
            if not 0 <= f.index < s:
                raise ValueError(
                    f"failure index {f.index} out of range for {s} scenarios"
                )

    @property
    def failed_indices(self) -> tuple[int, ...]:
        """Stack positions of the isolated scenarios, ascending."""
        return tuple(sorted(f.index for f in self.failures))

    @property
    def n_scenarios(self) -> int:
        return self.throughput.shape[0]

    def __len__(self) -> int:
        return self.n_scenarios

    @property
    def cycle_time(self) -> np.ndarray:
        """``R^n + Z`` per scenario, shape ``(S, N)``."""
        return self.response_time + self.think_times[:, None]

    def peak_throughput(self) -> np.ndarray:
        """Max throughput over the population sweep, per scenario ``(S,)``."""
        return self.throughput.max(axis=1)

    def scenario(self, index: int) -> MVAResult:
        """One scenario's trajectories as a scalar :class:`MVAResult`."""
        s = self.n_scenarios
        if not -s <= index < s:
            raise IndexError(f"scenario index {index} out of range for {s} scenarios")
        return MVAResult(
            populations=self.populations,
            throughput=self.throughput[index],
            response_time=self.response_time[index],
            queue_lengths=self.queue_lengths[index],
            residence_times=self.residence_times[index],
            utilizations=self.utilizations[index],
            station_names=self.station_names,
            think_time=float(self.think_times[index]),
            solver=self.solver,
            demands_used=(
                np.array(self.demands_used[index])
                if self.demands_used is not None
                else None
            ),
        )


def _demand_stack(network: ClosedNetwork, demands, solver: str = "batched") -> np.ndarray:
    """Validate and shape a ``(S, K)`` stack of constant demand vectors."""
    arr = np.asarray(demands, dtype=float)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2 or arr.shape[1] != len(network):
        raise ValueError(
            f"{solver}: expected a (S, {len(network)}) demand stack, "
            f"got shape {arr.shape}"
        )
    # isfinite before the sign check: NaN compares False against 0, so a
    # plain `arr < 0` guard would let NaN/Inf demands poison the recursion.
    if not np.isfinite(arr).all():
        raise ValueError(
            f"{solver}: demands must be finite, got non-finite values at "
            f"scenario indices {sorted(set(np.nonzero(~np.isfinite(arr))[0].tolist()))}"
        )
    if np.any(arr < 0):
        raise ValueError(f"{solver}: demands must be non-negative")
    return arr


def _think_stack(network: ClosedNetwork, think_times, s: int) -> np.ndarray:
    """Per-scenario think times ``(S,)`` (default: the network's)."""
    if think_times is None:
        return np.full(s, network.think_time)
    z = np.asarray(think_times, dtype=float)
    if z.ndim == 0:
        z = np.full(s, float(z))
    if z.shape != (s,):
        raise ValueError(f"expected {s} think times, got shape {z.shape}")
    if not np.isfinite(z).all():
        raise ValueError("think times must be finite")
    if np.any(z < 0):
        raise ValueError("think times must be non-negative")
    return z


def demand_matrix_stack(
    demand_functions: Sequence[Sequence[DemandFn]],
    max_population: int,
) -> np.ndarray:
    """Precompute the ``(S, N, K)`` demand-matrix stack for S scenarios.

    ``demand_functions`` holds one per-station callable sequence per
    scenario (all the same length K); each is evaluated once over the
    whole population grid via
    :func:`~repro.core.mvasd.precompute_demand_matrix`.
    """
    matrices = [
        precompute_demand_matrix(fns, max_population) for fns in demand_functions
    ]
    if not matrices:
        raise ValueError("need at least one scenario")
    return np.stack(matrices, axis=0)


def batched_exact_mva(
    network: ClosedNetwork,
    max_population: int,
    demands,
    think_times=None,
) -> BatchedMVAResult:
    """Exact single-server MVA (Algorithm 1) over a stack of scenarios.

    Parameters
    ----------
    network:
        Shared topology (station kinds; servers are ignored exactly as in
        the scalar :func:`~repro.core.mva.exact_mva`).
    max_population:
        Largest population ``N``; results cover ``n = 1..N``.
    demands:
        ``(S, K)`` array — one constant demand vector per scenario.  A
        single ``(K,)`` vector is treated as ``S = 1``.
    think_times:
        Optional per-scenario think times ``(S,)`` (default: the
        network's ``Z`` for every scenario).
    """
    if max_population < 1:
        raise ValueError(f"max_population must be >= 1, got {max_population}")
    d = _demand_stack(network, demands, solver="batched-exact-mva")
    s, k = d.shape
    z = _think_stack(network, think_times, s)
    is_queue = np.array([st.kind == "queue" for st in network.stations])
    servers = network.servers().astype(float)

    pops = np.arange(1, max_population + 1)
    n_levels = max_population
    xs = np.empty((s, n_levels))
    rs = np.empty((s, n_levels))
    qs = np.empty((s, n_levels, k))
    rks = np.empty((s, n_levels, k))
    utils = np.empty((s, n_levels, k))

    q = np.zeros((s, k))
    for i, n in enumerate(pops):
        r_k = np.where(is_queue, d * (1.0 + q), d)
        r_total = r_k.sum(axis=1)
        x = n / (r_total + z)
        q = x[:, None] * r_k
        xs[:, i] = x
        rs[:, i] = r_total
        qs[:, i] = q
        rks[:, i] = r_k
        utils[:, i] = x[:, None] * d / servers

    return BatchedMVAResult(
        populations=pops,
        throughput=xs,
        response_time=rs,
        queue_lengths=qs,
        residence_times=rks,
        utilizations=utils,
        station_names=network.station_names,
        think_times=z,
        solver="batched-exact-mva",
        demands_used=np.broadcast_to(d[:, None, :], (s, n_levels, k)),
    )


def batched_schweitzer_amva(
    network: ClosedNetwork,
    max_population: int,
    demands,
    think_times=None,
) -> BatchedMVAResult:
    """Schweitzer approximate MVA over a stack of scenarios.

    Each population level is a fixed point per scenario; scenarios are
    iterated together and *frozen* individually as soon as their own
    convergence criterion (identical to the scalar solver's) fires, so
    every scenario sees exactly the iterates the scalar
    :func:`~repro.core.amva.schweitzer_amva` would produce.
    """
    if max_population < 1:
        raise ValueError(f"max_population must be >= 1, got {max_population}")
    d = _demand_stack(network, demands, solver="batched-schweitzer-amva")
    s, k = d.shape
    z = _think_stack(network, think_times, s)
    is_queue = np.array([st.kind == "queue" for st in network.stations])
    servers = network.servers().astype(float)

    pops = np.arange(1, max_population + 1)
    n_levels = max_population
    xs = np.empty((s, n_levels))
    rs = np.empty((s, n_levels))
    qs = np.empty((s, n_levels, k))
    rks = np.empty((s, n_levels, k))
    utils = np.empty((s, n_levels, k))

    q = np.full((s, k), 1.0 / k)
    x = np.empty(s)
    r_k = np.empty((s, k))
    for i, n in enumerate(pops):
        n = int(n)
        active = np.arange(s)
        for _ in range(_MAX_ITER):
            qa = q[active]
            da = d[active]
            q_arr = (n - 1.0) / n * qa
            r = np.where(is_queue, da * (1.0 + q_arr), da)
            xa = n / (r.sum(axis=1) + z[active])
            q_new = xa[:, None] * r
            x[active] = xa
            r_k[active] = r
            q[active] = q_new
            converged = (
                np.abs(q_new - qa).max(axis=1)
                <= _TOL * np.maximum(1.0, q_new.max(axis=1))
            )
            active = active[~converged]
            if active.size == 0:
                break
        xs[:, i] = x
        rs[:, i] = r_k.sum(axis=1)
        qs[:, i] = q
        rks[:, i] = r_k
        utils[:, i] = x[:, None] * d / servers

    return BatchedMVAResult(
        populations=pops,
        throughput=xs,
        response_time=rs,
        queue_lengths=qs,
        residence_times=rks,
        utilizations=utils,
        station_names=network.station_names,
        think_times=z,
        solver="batched-schweitzer-amva",
        demands_used=np.broadcast_to(d[:, None, :], (s, n_levels, k)),
    )


class _BatchedMultiServerState:
    """S parallel copies of :class:`repro.core.multiserver.MultiServerState`.

    Carries the full marginal vectors ``p(j | n)`` of one multi-server
    station for all S scenarios as a ``(S, N+1)`` array and applies the
    scalar class's residence/update/renormalize steps elementwise along
    the scenario axis — same operations, same order, so the trajectories
    match the scalar recursion to rounding.
    """

    __slots__ = ("servers", "_p", "_weights", "_level")

    def __init__(self, servers: int, max_population: int, n_scenarios: int) -> None:
        self.servers = int(servers)
        self._p = np.zeros((n_scenarios, max_population + 1))
        self._p[:, 0] = 1.0  # empty network, every scenario
        js = np.arange(1, max_population + 1, dtype=float)
        self._weights = js / np.minimum(js, self.servers)
        self._level = 0

    def residence(self, n: int, demand: np.ndarray) -> np.ndarray:
        """``R_k`` per scenario at population ``n``; ``demand`` is ``(S,)``."""
        if n != self._level + 1:
            raise ValueError(
                f"out-of-order recursion: expected n={self._level + 1}, got {n}"
            )
        return demand * (self._weights[:n] * self._p[:, :n]).sum(axis=1)

    def update(self, n: int, x: np.ndarray, demand: np.ndarray) -> None:
        """Advance all scenarios' marginals once ``X^n`` ``(S,)`` is known."""
        if n != self._level + 1:
            raise ValueError(
                f"out-of-order recursion: expected n={self._level + 1}, got {n}"
            )
        mu_scale = x * demand
        js = np.arange(1, n + 1, dtype=float)
        new_tail = (mu_scale[:, None] / np.minimum(js, self.servers)) * self._p[:, :n]
        self._p[:, 1 : n + 1] = new_tail
        self._p[:, 0] = np.maximum(0.0, 1.0 - new_tail.sum(axis=1))
        total = self._p[:, : n + 1].sum(axis=1)
        positive = total > 0
        self._p[positive, : n + 1] /= total[positive, None]
        self._level = n


def batched_mvasd(
    network: ClosedNetwork,
    max_population: int,
    demand_matrices,
    single_server: bool = False,
    think_times=None,
) -> BatchedMVAResult:
    """MVASD (Algorithm 3, population axis) over a stack of scenarios.

    Parameters
    ----------
    network:
        Shared topology; server counts drive the multi-server
        correction exactly as in :func:`~repro.core.mvasd.mvasd`.
    max_population:
        Largest population ``N``.
    demand_matrices:
        ``(S, N, K)`` stack of precomputed ``SS_k^n`` matrices — build
        with :func:`demand_matrix_stack` or by scaling one
        :func:`~repro.core.mvasd.precompute_demand_matrix` output.  A
        single ``(N, K)`` matrix is treated as ``S = 1``.
    single_server:
        The Fig. 8 normalized single-server baseline.
    think_times:
        Optional per-scenario think times ``(S,)``.

    Notes
    -----
    Only ``demand_axis="population"`` is batchable (the demand matrix is
    known before the recursion); for the Section-7 throughput-axis fixed
    point use the scalar :func:`~repro.core.mvasd.mvasd` per scenario.
    Marginal-probability histories are not recorded in batched mode.
    """
    if max_population < 1:
        raise ValueError(f"max_population must be >= 1, got {max_population}")
    matrices = np.asarray(demand_matrices, dtype=float)
    if matrices.ndim == 2:
        matrices = matrices[None, :, :]
    k = len(network)
    if matrices.ndim != 3 or matrices.shape[1:] != (max_population, k):
        raise ValueError(
            f"expected a (S, {max_population}, {k}) demand-matrix stack, "
            f"got shape {matrices.shape}"
        )
    if not np.isfinite(matrices).all():
        raise ValueError(
            "batched-mvasd: demand matrices must be finite, got non-finite "
            f"values at scenario indices "
            f"{sorted(set(np.nonzero(~np.isfinite(matrices))[0].tolist()))}"
        )
    if np.any(matrices < 0):
        raise ValueError("demand matrices must be non-negative")
    s = matrices.shape[0]
    z = _think_stack(network, think_times, s)
    stations = network.stations
    servers = network.servers().astype(float)

    states = (
        None
        if single_server
        else [
            _BatchedMultiServerState(st.servers, max_population, s)
            if st.kind == "queue"
            else None
            for st in stations
        ]
    )

    pops = np.arange(1, max_population + 1)
    n_levels = max_population
    xs = np.empty((s, n_levels))
    rs = np.empty((s, n_levels))
    qs = np.empty((s, n_levels, k))
    rks = np.empty((s, n_levels, k))
    utils = np.empty((s, n_levels, k))

    q = np.zeros((s, k))
    r_k = np.empty((s, k))
    for i, n in enumerate(pops):
        n = int(n)
        d = matrices[:, i, :]
        for idx, st in enumerate(stations):
            col = d[:, idx]
            if st.kind == "delay":
                r_k[:, idx] = col
            elif single_server:
                r_k[:, idx] = (col / st.servers) * (1.0 + q[:, idx])
            else:
                r_k[:, idx] = states[idx].residence(n, col)
        r_total = r_k.sum(axis=1)
        x = n / (r_total + z)
        q = x[:, None] * r_k
        if not single_server:
            for idx, st in enumerate(stations):
                if st.kind == "queue":
                    states[idx].update(n, x, d[:, idx])
        xs[:, i] = x
        rs[:, i] = r_total
        qs[:, i] = q
        rks[:, i] = r_k
        utils[:, i] = x[:, None] * d / servers

    solver = "batched-mvasd-single-server" if single_server else "batched-mvasd"
    return BatchedMVAResult(
        populations=pops,
        throughput=xs,
        response_time=rs,
        queue_lengths=qs,
        residence_times=rks,
        utilizations=utils,
        station_names=network.station_names,
        think_times=z,
        solver=solver,
        demands_used=matrices,
    )
