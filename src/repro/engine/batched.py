"""Batched MVA-family kernels — one recursion, S scenarios.

Every sweep artifact in this repo (deviation tables, what-if grids, the
Fig. 6/7/16 validation loops, the ablation benches) solves the *same*
recursion over a grid of demand vectors, demand scalings or think
times.  Solving the grid one scenario at a time leaves almost all of the
work in Python-level loop overhead: at every population level the
scalar solvers touch K stations with K-element arrays, so the NumPy
call overhead dominates the arithmetic.

The kernels here instead advance **all S scenarios together** through
the population recursion: demands come in as a stack of shape
``(S, K)`` (constant-demand solvers) or ``(S, N, K)`` (MVASD demand
matrices, precomputed once via
:func:`repro.core.mvasd.precompute_demand_matrix`), and every update is
an array operation over the scenario axis.  The per-level Python cost
is then paid once per level instead of once per level *per scenario*,
which is where the order-of-magnitude speedups of
``benchmarks/bench_perf01_batch_speedup.py`` come from.

The batched kernels perform the same floating-point operations in the
same order as their scalar counterparts (elementwise across the
scenario axis), so trajectories agree with
:func:`repro.core.mva.exact_mva`, :func:`repro.core.amva.schweitzer_amva`
and :func:`repro.core.mvasd.mvasd` to rounding — the equivalence suite
pins them to within 1e-10.

Scenarios must share the network *topology* (station kinds, server
counts) — that is what makes the recursion batchable — but may differ
in demands and think times.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Sequence

import numpy as np

from ..core.multiclass import MultiClassResult
from ..core.multiclass_amva import MultiClassTrajectory
from ..core.mvasd import DemandFn, precompute_demand_matrix
from ..core.network import ClosedNetwork
from ..core.results import MVAResult

__all__ = [
    "BatchedMVAResult",
    "BatchedMultiClassResult",
    "BatchedMultiClassTrajectory",
    "ScenarioFailure",
    "batched_exact_mva",
    "batched_exact_multiclass",
    "batched_ld_mva",
    "batched_multiclass_mvasd",
    "batched_schweitzer_amva",
    "batched_mvasd",
    "demand_matrix_stack",
]

# Mirrors of the scalar Schweitzer fixed-point controls (amva.py).
_MAX_ITER = 10_000
_TOL = 1e-10
# Mirror of the scalar Bard-Schweitzer controls (multiclass_amva.py).
_MC_MAX_ITER = 50_000


def _mask_stack(mask, s: int, solver: str) -> np.ndarray | None:
    """Validate an optional ``(S,)`` boolean scenario-validity mask.

    ``True`` rows are solved; ``False`` rows are excluded from input
    validation and the recursion (their inputs are replaced by benign
    placeholders) and come back as all-NaN output rows.  ``None`` keeps
    the strict all-rows-must-be-valid behavior.
    """
    if mask is None:
        return None
    arr = np.asarray(mask, dtype=bool)
    if arr.shape != (s,):
        raise ValueError(f"{solver}: expected a ({s},) scenario mask, got shape {arr.shape}")
    return arr


def _nan_rows(mask: np.ndarray | None, *arrays: np.ndarray) -> None:
    """Overwrite the masked-out scenario rows of each array with NaN."""
    if mask is None or mask.all():
        return
    for arr in arrays:
        arr[~mask] = np.nan


@dataclass(frozen=True)
class ScenarioFailure:
    """One scenario a ``solve_stack(errors="isolate")`` run could not solve.

    Carried on :attr:`BatchedMVAResult.failures` instead of aborting the
    stack; the failed scenario's rows in the result arrays are NaN.

    Attributes
    ----------
    index:
        Position of the scenario in the solved stack.
    fingerprint:
        :meth:`Scenario.fingerprint` content hash, so the failure can be
        matched to its scenario across runs (``"<unavailable>"`` when
        the demand model is too broken to fingerprint).
    solver:
        Registry name of the method that rejected the scenario.
    error:
        ``"ExcType: message"`` of the final exception.
    retries:
        How many recovery attempts the execution layer made before
        isolating the scenario.
    """

    index: int
    fingerprint: str
    solver: str
    error: str
    retries: int = 0


@dataclass(frozen=True)
class BatchedMVAResult:
    """Trajectories of S scenarios solved in one batched recursion.

    The arrays carry a leading scenario axis on top of the scalar
    :class:`~repro.core.results.MVAResult` layout: ``throughput`` is
    ``(S, N)``, the per-station trajectories are ``(S, N, K)``.
    :meth:`scenario` slices one scenario back out as a plain
    :class:`MVAResult` for downstream code that expects the scalar
    container.
    """

    populations: np.ndarray
    throughput: np.ndarray
    response_time: np.ndarray
    queue_lengths: np.ndarray
    residence_times: np.ndarray
    utilizations: np.ndarray
    station_names: tuple[str, ...]
    think_times: np.ndarray
    solver: str
    demands_used: np.ndarray | None = None
    #: Execution backend that produced this result ("serial", "batched",
    #: "process-sharded", "resilient"), stamped by the solve_stack facade;
    #: ``None`` for results built by calling a kernel directly.
    backend: str | None = None
    #: Scenarios isolated by ``solve_stack(errors="isolate")`` — their
    #: rows in the trajectory arrays are NaN.  Empty for fault-free runs.
    failures: tuple[ScenarioFailure, ...] = ()

    def __post_init__(self) -> None:
        s, n, k = self.n_scenarios, len(self.populations), len(self.station_names)
        for attr in ("throughput", "response_time"):
            if getattr(self, attr).shape != (s, n):
                raise ValueError(f"{attr} must have shape ({s}, {n})")
        for attr in ("queue_lengths", "residence_times", "utilizations"):
            if getattr(self, attr).shape != (s, n, k):
                raise ValueError(f"{attr} must have shape ({s}, {n}, {k})")
        if self.think_times.shape != (s,):
            raise ValueError(f"think_times must have shape ({s},)")
        if self.demands_used is not None and self.demands_used.shape != (s, n, k):
            raise ValueError(f"demands_used must have shape ({s}, {n}, {k})")
        object.__setattr__(self, "failures", tuple(self.failures))
        for f in self.failures:
            if not 0 <= f.index < s:
                raise ValueError(
                    f"failure index {f.index} out of range for {s} scenarios"
                )

    @property
    def failed_indices(self) -> tuple[int, ...]:
        """Stack positions of the isolated scenarios, ascending."""
        return tuple(sorted(f.index for f in self.failures))

    @property
    def n_scenarios(self) -> int:
        return self.throughput.shape[0]

    def __len__(self) -> int:
        return self.n_scenarios

    @property
    def cycle_time(self) -> np.ndarray:
        """``R^n + Z`` per scenario, shape ``(S, N)``."""
        return self.response_time + self.think_times[:, None]

    def peak_throughput(self) -> np.ndarray:
        """Max throughput over the population sweep, per scenario ``(S,)``."""
        return self.throughput.max(axis=1)

    def scenario(self, index: int) -> MVAResult:
        """One scenario's trajectories as a scalar :class:`MVAResult`."""
        s = self.n_scenarios
        if not -s <= index < s:
            raise IndexError(f"scenario index {index} out of range for {s} scenarios")
        return MVAResult(
            populations=self.populations,
            throughput=self.throughput[index],
            response_time=self.response_time[index],
            queue_lengths=self.queue_lengths[index],
            residence_times=self.residence_times[index],
            utilizations=self.utilizations[index],
            station_names=self.station_names,
            think_time=float(self.think_times[index]),
            solver=self.solver,
            demands_used=(
                np.array(self.demands_used[index])
                if self.demands_used is not None
                else None
            ),
        )


def _demand_stack(
    network: ClosedNetwork, demands, solver: str = "batched", mask: np.ndarray | None = None
) -> np.ndarray:
    """Validate and shape a ``(S, K)`` stack of constant demand vectors."""
    arr = np.asarray(demands, dtype=float)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2 or arr.shape[1] != len(network):
        raise ValueError(
            f"{solver}: expected a (S, {len(network)}) demand stack, "
            f"got shape {arr.shape}"
        )
    if mask is not None:
        # Masked-out rows may carry arbitrary garbage; neutralize them so
        # the validity checks and the recursion only see the live rows.
        arr = arr.copy()
        arr[~mask] = 1.0
    # isfinite before the sign check: NaN compares False against 0, so a
    # plain `arr < 0` guard would let NaN/Inf demands poison the recursion.
    if not np.isfinite(arr).all():
        raise ValueError(
            f"{solver}: demands must be finite, got non-finite values at "
            f"scenario indices {sorted(set(np.nonzero(~np.isfinite(arr))[0].tolist()))}"
        )
    if np.any(arr < 0):
        raise ValueError(f"{solver}: demands must be non-negative")
    return arr


def _think_stack(
    network: ClosedNetwork, think_times, s: int, mask: np.ndarray | None = None
) -> np.ndarray:
    """Per-scenario think times ``(S,)`` (default: the network's)."""
    if think_times is None:
        return np.full(s, network.think_time)
    z = np.asarray(think_times, dtype=float)
    if z.ndim == 0:
        z = np.full(s, float(z))
    if z.shape != (s,):
        raise ValueError(f"expected {s} think times, got shape {z.shape}")
    if mask is not None:
        # Masked rows keep their (reported) think time when it is usable —
        # the serial isolate path reports the real Z for failed scenarios
        # too — and only garbage values are neutralized.
        z = z.copy()
        with np.errstate(invalid="ignore"):
            dead = ~mask & (~np.isfinite(z) | (z < 0))
        z[dead] = 0.0
    if not np.isfinite(z).all():
        raise ValueError("think times must be finite")
    if np.any(z < 0):
        raise ValueError("think times must be non-negative")
    return z


def demand_matrix_stack(
    demand_functions: Sequence[Sequence[DemandFn]],
    max_population: int,
) -> np.ndarray:
    """Precompute the ``(S, N, K)`` demand-matrix stack for S scenarios.

    ``demand_functions`` holds one per-station callable sequence per
    scenario (all the same length K); each is evaluated once over the
    whole population grid via
    :func:`~repro.core.mvasd.precompute_demand_matrix`.
    """
    matrices = [
        precompute_demand_matrix(fns, max_population) for fns in demand_functions
    ]
    if not matrices:
        raise ValueError("need at least one scenario")
    return np.stack(matrices, axis=0)


def batched_exact_mva(
    network: ClosedNetwork,
    max_population: int,
    demands,
    think_times=None,
    mask=None,
) -> BatchedMVAResult:
    """Exact single-server MVA (Algorithm 1) over a stack of scenarios.

    Parameters
    ----------
    network:
        Shared topology (station kinds; servers are ignored exactly as in
        the scalar :func:`~repro.core.mva.exact_mva`).
    max_population:
        Largest population ``N``; results cover ``n = 1..N``.
    demands:
        ``(S, K)`` array — one constant demand vector per scenario.  A
        single ``(K,)`` vector is treated as ``S = 1``.
    think_times:
        Optional per-scenario think times ``(S,)`` (default: the
        network's ``Z`` for every scenario).
    mask:
        Optional ``(S,)`` boolean validity mask: ``False`` rows are
        skipped by input validation and return all-NaN trajectories
        while the surviving rows keep the batched recursion (the
        ``errors="isolate"`` path).  All masked kernels share this
        contract; survivors see exactly the arithmetic of an unmasked
        run because every update is elementwise along the scenario axis.
    """
    if max_population < 1:
        raise ValueError(f"max_population must be >= 1, got {max_population}")
    arr = np.asarray(demands, dtype=float)
    s0 = arr.shape[0] if arr.ndim > 1 else 1
    mask = _mask_stack(mask, s0, "batched-exact-mva")
    d = _demand_stack(network, demands, solver="batched-exact-mva", mask=mask)
    s, k = d.shape
    z = _think_stack(network, think_times, s, mask=mask)
    is_queue = np.array([st.kind == "queue" for st in network.stations])
    servers = network.servers().astype(float)

    pops = np.arange(1, max_population + 1)
    n_levels = max_population
    xs = np.empty((s, n_levels))
    rs = np.empty((s, n_levels))
    qs = np.empty((s, n_levels, k))
    rks = np.empty((s, n_levels, k))
    utils = np.empty((s, n_levels, k))

    q = np.zeros((s, k))
    for i, n in enumerate(pops):
        r_k = np.where(is_queue, d * (1.0 + q), d)
        r_total = r_k.sum(axis=1)
        x = n / (r_total + z)
        q = x[:, None] * r_k
        xs[:, i] = x
        rs[:, i] = r_total
        qs[:, i] = q
        rks[:, i] = r_k
        utils[:, i] = x[:, None] * d / servers

    demands_used = np.broadcast_to(d[:, None, :], (s, n_levels, k))
    if mask is not None:
        demands_used = demands_used.copy()
        _nan_rows(mask, xs, rs, qs, rks, utils, demands_used)
    return BatchedMVAResult(
        populations=pops,
        throughput=xs,
        response_time=rs,
        queue_lengths=qs,
        residence_times=rks,
        utilizations=utils,
        station_names=network.station_names,
        think_times=z,
        solver="batched-exact-mva",
        demands_used=demands_used,
    )


def batched_ld_mva(
    network: ClosedNetwork,
    max_population: int,
    inputs,
    think_times=None,
    mask=None,
) -> BatchedMVAResult:
    """Exact load-dependent MVA over a stack of scenarios.

    The hot kernel of hierarchical composition: every composed scenario
    (flow-equivalent stations carrying tabulated rate laws) resolves to
    one ``(K, N+1)`` row — column 0 is the constant demand vector,
    columns ``1..N`` the service-rate matrix ``mu_k(j)`` of
    :meth:`Scenario.ld_rate_matrix` — and the marginal-probability
    recursion of :func:`repro.core.ld_mva.exact_load_dependent_mva`
    advances all S scenarios together.  Per level the work is a handful
    of ``(S, K, n)`` array operations, elementwise along the scenario
    axis, so trajectories match the scalar solver to rounding.

    Parameters
    ----------
    network:
        Shared topology (station kinds and server counts; the rate
        matrix already folds the multi-server law in).
    max_population:
        Largest population ``N``; results cover ``n = 1..N``.
    inputs:
        ``(S, K, N+1)`` packed stack; a single ``(K, N+1)`` row is
        treated as ``S = 1``.  Delay stations carry ``+inf`` rate rows.
    think_times:
        Optional per-scenario think times ``(S,)``.
    mask:
        Optional ``(S,)`` validity mask, the
        :func:`batched_exact_mva` isolate contract.
    """
    if max_population < 1:
        raise ValueError(f"max_population must be >= 1, got {max_population}")
    arr = np.asarray(inputs, dtype=float)
    if arr.ndim == 2:
        arr = arr[None, :, :]
    k, big_n = len(network), max_population
    if arr.ndim != 3 or arr.shape[1:] != (k, big_n + 1):
        raise ValueError(
            f"batched-ld-mva: expected a (S, {k}, {big_n + 1}) input stack "
            f"(demand column + rate table), got shape {arr.shape}"
        )
    s = arr.shape[0]
    mask = _mask_stack(mask, s, "batched-ld-mva")
    d = _demand_stack(network, arr[:, :, 0], solver="batched-ld-mva", mask=mask)
    mu = arr[:, :, 1:]
    if mask is not None:
        mu = mu.copy()
        mu[~mask] = 1.0
    if np.any(np.isnan(mu)) or np.any(mu <= 0):
        bad = np.nonzero(np.any(np.isnan(mu) | (mu <= 0), axis=(1, 2)))[0]
        raise ValueError(
            f"batched-ld-mva: service rates must be positive at scenario "
            f"indices {sorted(bad.tolist())}"
        )
    z = _think_stack(network, think_times, s, mask=mask)
    is_queue = np.array([st.kind == "queue" for st in network.stations])
    servers = network.servers().astype(float)

    # Same weight table and update expressions as the scalar recursion,
    # with a leading scenario axis; +inf rates (delay rows) contribute 0.
    weights = np.arange(1, big_n + 1, dtype=float) / mu
    p = np.zeros((s, k, big_n + 1))
    p[:, :, 0] = 1.0

    pops = np.arange(1, big_n + 1)
    xs = np.empty((s, big_n))
    rs = np.empty((s, big_n))
    qs = np.empty((s, big_n, k))
    rks = np.empty((s, big_n, k))
    utils = np.empty((s, big_n, k))

    for i, n in enumerate(pops):
        r_queue = (weights[:, :, :n] * p[:, :, :n]).sum(axis=2)
        r_k = np.where(is_queue, r_queue, d)
        r_total = r_k.sum(axis=1)
        x = n / (r_total + z)

        tail = (x[:, None, None] / mu[:, :, :n]) * p[:, :, :n]
        p[:, :, 1 : n + 1] = tail
        p[:, :, 0] = np.maximum(0.0, 1.0 - tail.sum(axis=2))

        xs[:, i] = x
        rs[:, i] = r_total
        rks[:, i] = r_k
        qs[:, i] = x[:, None] * r_k
        utils[:, i] = x[:, None] * d / servers

    demands_used = np.broadcast_to(d[:, None, :], (s, big_n, k))
    if mask is not None:
        demands_used = demands_used.copy()
        _nan_rows(mask, xs, rs, qs, rks, utils, demands_used)
    return BatchedMVAResult(
        populations=pops,
        throughput=xs,
        response_time=rs,
        queue_lengths=qs,
        residence_times=rks,
        utilizations=utils,
        station_names=network.station_names,
        think_times=z,
        solver="batched-exact-load-dependent-mva",
        demands_used=demands_used,
    )


def batched_schweitzer_amva(
    network: ClosedNetwork,
    max_population: int,
    demands,
    think_times=None,
    mask=None,
) -> BatchedMVAResult:
    """Schweitzer approximate MVA over a stack of scenarios.

    Each population level is a fixed point per scenario; scenarios are
    iterated together and *frozen* individually as soon as their own
    convergence criterion (identical to the scalar solver's) fires, so
    every scenario sees exactly the iterates the scalar
    :func:`~repro.core.amva.schweitzer_amva` would produce.  ``mask``
    follows the :func:`batched_exact_mva` isolate contract.
    """
    if max_population < 1:
        raise ValueError(f"max_population must be >= 1, got {max_population}")
    arr = np.asarray(demands, dtype=float)
    s0 = arr.shape[0] if arr.ndim > 1 else 1
    mask = _mask_stack(mask, s0, "batched-schweitzer-amva")
    d = _demand_stack(network, demands, solver="batched-schweitzer-amva", mask=mask)
    s, k = d.shape
    z = _think_stack(network, think_times, s, mask=mask)
    is_queue = np.array([st.kind == "queue" for st in network.stations])
    servers = network.servers().astype(float)

    pops = np.arange(1, max_population + 1)
    n_levels = max_population
    xs = np.empty((s, n_levels))
    rs = np.empty((s, n_levels))
    qs = np.empty((s, n_levels, k))
    rks = np.empty((s, n_levels, k))
    utils = np.empty((s, n_levels, k))

    q = np.full((s, k), 1.0 / k)
    x = np.empty(s)
    r_k = np.empty((s, k))
    for i, n in enumerate(pops):
        n = int(n)
        active = np.arange(s)
        for _ in range(_MAX_ITER):
            qa = q[active]
            da = d[active]
            q_arr = (n - 1.0) / n * qa
            r = np.where(is_queue, da * (1.0 + q_arr), da)
            xa = n / (r.sum(axis=1) + z[active])
            q_new = xa[:, None] * r
            x[active] = xa
            r_k[active] = r
            q[active] = q_new
            converged = (
                np.abs(q_new - qa).max(axis=1)
                <= _TOL * np.maximum(1.0, q_new.max(axis=1))
            )
            active = active[~converged]
            if active.size == 0:
                break
        xs[:, i] = x
        rs[:, i] = r_k.sum(axis=1)
        qs[:, i] = q
        rks[:, i] = r_k
        utils[:, i] = x[:, None] * d / servers

    demands_used = np.broadcast_to(d[:, None, :], (s, n_levels, k))
    if mask is not None:
        demands_used = demands_used.copy()
        _nan_rows(mask, xs, rs, qs, rks, utils, demands_used)
    return BatchedMVAResult(
        populations=pops,
        throughput=xs,
        response_time=rs,
        queue_lengths=qs,
        residence_times=rks,
        utilizations=utils,
        station_names=network.station_names,
        think_times=z,
        solver="batched-schweitzer-amva",
        demands_used=demands_used,
    )


class _BatchedMultiServerState:
    """S parallel copies of :class:`repro.core.multiserver.MultiServerState`.

    Carries the full marginal vectors ``p(j | n)`` of one multi-server
    station for all S scenarios as a ``(S, N+1)`` array and applies the
    scalar class's residence/update/renormalize steps elementwise along
    the scenario axis — same operations, same order, so the trajectories
    match the scalar recursion to rounding.
    """

    __slots__ = ("servers", "_p", "_weights", "_level")

    def __init__(self, servers: int, max_population: int, n_scenarios: int) -> None:
        self.servers = int(servers)
        self._p = np.zeros((n_scenarios, max_population + 1))
        self._p[:, 0] = 1.0  # empty network, every scenario
        js = np.arange(1, max_population + 1, dtype=float)
        self._weights = js / np.minimum(js, self.servers)
        self._level = 0

    def residence(self, n: int, demand: np.ndarray) -> np.ndarray:
        """``R_k`` per scenario at population ``n``; ``demand`` is ``(S,)``."""
        if n != self._level + 1:
            raise ValueError(
                f"out-of-order recursion: expected n={self._level + 1}, got {n}"
            )
        return demand * (self._weights[:n] * self._p[:, :n]).sum(axis=1)

    def update(self, n: int, x: np.ndarray, demand: np.ndarray) -> None:
        """Advance all scenarios' marginals once ``X^n`` ``(S,)`` is known."""
        if n != self._level + 1:
            raise ValueError(
                f"out-of-order recursion: expected n={self._level + 1}, got {n}"
            )
        mu_scale = x * demand
        js = np.arange(1, n + 1, dtype=float)
        new_tail = (mu_scale[:, None] / np.minimum(js, self.servers)) * self._p[:, :n]
        self._p[:, 1 : n + 1] = new_tail
        self._p[:, 0] = np.maximum(0.0, 1.0 - new_tail.sum(axis=1))
        total = self._p[:, : n + 1].sum(axis=1)
        positive = total > 0
        self._p[positive, : n + 1] /= total[positive, None]
        self._level = n


def batched_mvasd(
    network: ClosedNetwork,
    max_population: int,
    demand_matrices,
    single_server: bool = False,
    think_times=None,
    mask=None,
) -> BatchedMVAResult:
    """MVASD (Algorithm 3, population axis) over a stack of scenarios.

    Parameters
    ----------
    network:
        Shared topology; server counts drive the multi-server
        correction exactly as in :func:`~repro.core.mvasd.mvasd`.
    max_population:
        Largest population ``N``.
    demand_matrices:
        ``(S, N, K)`` stack of precomputed ``SS_k^n`` matrices — build
        with :func:`demand_matrix_stack` or by scaling one
        :func:`~repro.core.mvasd.precompute_demand_matrix` output.  A
        single ``(N, K)`` matrix is treated as ``S = 1``.
    single_server:
        The Fig. 8 normalized single-server baseline.
    think_times:
        Optional per-scenario think times ``(S,)``.

    Notes
    -----
    Only ``demand_axis="population"`` is batchable (the demand matrix is
    known before the recursion); for the Section-7 throughput-axis fixed
    point use the scalar :func:`~repro.core.mvasd.mvasd` per scenario.
    Marginal-probability histories are not recorded in batched mode.
    """
    if max_population < 1:
        raise ValueError(f"max_population must be >= 1, got {max_population}")
    matrices = np.asarray(demand_matrices, dtype=float)
    if matrices.ndim == 2:
        matrices = matrices[None, :, :]
    k = len(network)
    if matrices.ndim != 3 or matrices.shape[1:] != (max_population, k):
        raise ValueError(
            f"expected a (S, {max_population}, {k}) demand-matrix stack, "
            f"got shape {matrices.shape}"
        )
    mask = _mask_stack(mask, matrices.shape[0], "batched-mvasd")
    if mask is not None:
        matrices = matrices.copy()
        matrices[~mask] = 1.0
    if not np.isfinite(matrices).all():
        raise ValueError(
            "batched-mvasd: demand matrices must be finite, got non-finite "
            f"values at scenario indices "
            f"{sorted(set(np.nonzero(~np.isfinite(matrices))[0].tolist()))}"
        )
    if np.any(matrices < 0):
        raise ValueError("demand matrices must be non-negative")
    s = matrices.shape[0]
    z = _think_stack(network, think_times, s, mask=mask)
    stations = network.stations
    servers = network.servers().astype(float)

    states = (
        None
        if single_server
        else [
            _BatchedMultiServerState(st.servers, max_population, s)
            if st.kind == "queue"
            else None
            for st in stations
        ]
    )

    pops = np.arange(1, max_population + 1)
    n_levels = max_population
    xs = np.empty((s, n_levels))
    rs = np.empty((s, n_levels))
    qs = np.empty((s, n_levels, k))
    rks = np.empty((s, n_levels, k))
    utils = np.empty((s, n_levels, k))

    q = np.zeros((s, k))
    r_k = np.empty((s, k))
    for i, n in enumerate(pops):
        n = int(n)
        d = matrices[:, i, :]
        for idx, st in enumerate(stations):
            col = d[:, idx]
            if st.kind == "delay":
                r_k[:, idx] = col
            elif single_server:
                r_k[:, idx] = (col / st.servers) * (1.0 + q[:, idx])
            else:
                r_k[:, idx] = states[idx].residence(n, col)
        r_total = r_k.sum(axis=1)
        x = n / (r_total + z)
        q = x[:, None] * r_k
        if not single_server:
            for idx, st in enumerate(stations):
                if st.kind == "queue":
                    states[idx].update(n, x, d[:, idx])
        xs[:, i] = x
        rs[:, i] = r_total
        qs[:, i] = q
        rks[:, i] = r_k
        utils[:, i] = x[:, None] * d / servers

    if mask is not None:
        _nan_rows(mask, xs, rs, qs, rks, utils, matrices)
    solver = "batched-mvasd-single-server" if single_server else "batched-mvasd"
    return BatchedMVAResult(
        populations=pops,
        throughput=xs,
        response_time=rs,
        queue_lengths=qs,
        residence_times=rks,
        utilizations=utils,
        station_names=network.station_names,
        think_times=z,
        solver=solver,
        demands_used=matrices,
    )


@dataclass(frozen=True)
class BatchedMultiClassResult:
    """Full-population multi-class solutions of S scenarios in one batch.

    The multi-class analogue of :class:`BatchedMVAResult`: the arrays
    carry a leading scenario axis on top of the scalar
    :class:`~repro.core.multiclass.MultiClassResult` layout —
    ``throughput`` is ``(S, C)``, ``queue_lengths_by_class`` is
    ``(S, K, C)``.  Scenarios share the population vector, class names
    and per-class think times (that is what makes the class-lattice
    recursion batchable) but differ in their demand matrices.
    """

    populations: tuple[int, ...]
    class_names: tuple[str, ...]
    throughput: np.ndarray
    response_time: np.ndarray
    queue_lengths: np.ndarray
    queue_lengths_by_class: np.ndarray
    utilizations: np.ndarray
    station_names: tuple[str, ...]
    think_times: np.ndarray
    solver: str
    demands_used: np.ndarray | None = None
    backend: str | None = None
    failures: tuple[ScenarioFailure, ...] = ()

    def __post_init__(self) -> None:
        s = self.n_scenarios
        c = len(self.class_names)
        k = len(self.station_names)
        if len(self.populations) != c:
            raise ValueError(f"populations must have {c} entries")
        for attr in ("throughput", "response_time"):
            if getattr(self, attr).shape != (s, c):
                raise ValueError(f"{attr} must have shape ({s}, {c})")
        for attr, shape in (
            ("queue_lengths", (s, k)),
            ("queue_lengths_by_class", (s, k, c)),
            ("utilizations", (s, k)),
        ):
            if getattr(self, attr).shape != shape:
                raise ValueError(f"{attr} must have shape {shape}")
        if self.think_times.shape != (c,):
            raise ValueError(f"think_times must have shape ({c},)")
        if self.demands_used is not None and self.demands_used.shape != (s, k, c):
            raise ValueError(f"demands_used must have shape ({s}, {k}, {c})")
        object.__setattr__(self, "failures", tuple(self.failures))
        for f in self.failures:
            if not 0 <= f.index < s:
                raise ValueError(
                    f"failure index {f.index} out of range for {s} scenarios"
                )

    @property
    def failed_indices(self) -> tuple[int, ...]:
        """Stack positions of the isolated scenarios, ascending."""
        return tuple(sorted(f.index for f in self.failures))

    @property
    def n_scenarios(self) -> int:
        return self.throughput.shape[0]

    def __len__(self) -> int:
        return self.n_scenarios

    @property
    def total_throughput(self) -> np.ndarray:
        """``sum_c X_c`` per scenario, shape ``(S,)``."""
        return self.throughput.sum(axis=1)

    def scenario(self, index: int) -> MultiClassResult:
        """One scenario's solution as a scalar :class:`MultiClassResult`."""
        s = self.n_scenarios
        if not -s <= index < s:
            raise IndexError(f"scenario index {index} out of range for {s} scenarios")
        return MultiClassResult(
            populations=self.populations,
            throughput=np.array(self.throughput[index]),
            response_time=np.array(self.response_time[index]),
            queue_lengths=np.array(self.queue_lengths[index]),
            queue_lengths_by_class=np.array(self.queue_lengths_by_class[index]),
            utilizations=np.array(self.utilizations[index]),
            station_names=self.station_names,
            think_times=tuple(float(z) for z in self.think_times),
        )


@dataclass(frozen=True)
class BatchedMultiClassTrajectory:
    """Mix-sweep trajectories of S multi-class scenarios in one batch.

    Batched analogue of
    :class:`~repro.core.multiclass_amva.MultiClassTrajectory`:
    ``throughput``/``response_time`` are ``(S, T, C)`` over the shared
    total-population sweep ``totals`` with the shared realized integer
    mixes ``populations`` ``(T, C)``; ``utilizations`` is ``(S, T, K)``.
    """

    class_names: tuple[str, ...]
    station_names: tuple[str, ...]
    totals: np.ndarray
    populations: np.ndarray
    throughput: np.ndarray
    response_time: np.ndarray
    utilizations: np.ndarray
    think_times: np.ndarray
    solver: str
    demands_used: np.ndarray | None = None
    backend: str | None = None
    failures: tuple[ScenarioFailure, ...] = ()

    def __post_init__(self) -> None:
        s = self.n_scenarios
        t = len(self.totals)
        c = len(self.class_names)
        k = len(self.station_names)
        if self.populations.shape != (t, c):
            raise ValueError(f"populations must have shape ({t}, {c})")
        for attr in ("throughput", "response_time"):
            if getattr(self, attr).shape != (s, t, c):
                raise ValueError(f"{attr} must have shape ({s}, {t}, {c})")
        if self.utilizations.shape != (s, t, k):
            raise ValueError(f"utilizations must have shape ({s}, {t}, {k})")
        if self.think_times.shape != (c,):
            raise ValueError(f"think_times must have shape ({c},)")
        if self.demands_used is not None and self.demands_used.shape != (s, t, k, c):
            raise ValueError(f"demands_used must have shape ({s}, {t}, {k}, {c})")
        object.__setattr__(self, "failures", tuple(self.failures))
        for f in self.failures:
            if not 0 <= f.index < s:
                raise ValueError(
                    f"failure index {f.index} out of range for {s} scenarios"
                )

    @property
    def failed_indices(self) -> tuple[int, ...]:
        """Stack positions of the isolated scenarios, ascending."""
        return tuple(sorted(f.index for f in self.failures))

    @property
    def n_scenarios(self) -> int:
        return self.throughput.shape[0]

    def __len__(self) -> int:
        return self.n_scenarios

    @property
    def total_throughput(self) -> np.ndarray:
        """``sum_c X_c`` per scenario and step, shape ``(S, T)``."""
        return self.throughput.sum(axis=2)

    def scenario(self, index: int) -> MultiClassTrajectory:
        """One scenario's sweep as a scalar :class:`MultiClassTrajectory`."""
        s = self.n_scenarios
        if not -s <= index < s:
            raise IndexError(f"scenario index {index} out of range for {s} scenarios")
        return MultiClassTrajectory(
            class_names=self.class_names,
            station_names=self.station_names,
            totals=self.totals,
            populations=self.populations,
            throughput=np.array(self.throughput[index]),
            response_time=np.array(self.response_time[index]),
            utilizations=np.array(self.utilizations[index]),
            think_times=tuple(float(z) for z in self.think_times),
        )


def _class_axes(
    class_names, think_times, station_names, station_kinds, k: int, solver: str
):
    """Validate the shared class/station structure of a multi-class batch."""
    names = (
        tuple(station_names)
        if station_names
        else tuple(f"station-{i}" for i in range(k))
    )
    if len(names) != k:
        raise ValueError(f"{solver}: expected {k} station names")
    kinds = tuple(station_kinds) if station_kinds else ("queue",) * k
    if len(kinds) != k or any(kd not in ("queue", "delay") for kd in kinds):
        raise ValueError(f"{solver}: station_kinds must be 'queue'/'delay' per station")
    z = np.asarray(think_times, dtype=float)
    c = z.shape[0] if z.ndim == 1 else 0
    if z.ndim != 1 or c == 0 or not np.isfinite(z).all() or np.any(z < 0):
        raise ValueError(f"{solver}: think_times must be finite non-negative per class")
    cls = (
        tuple(class_names)
        if class_names
        else tuple(f"class-{i}" for i in range(c))
    )
    if len(cls) != c:
        raise ValueError(f"{solver}: expected {c} class names")
    is_queue = np.array([kd == "queue" for kd in kinds])
    return names, kinds, is_queue, z, cls


def _multiclass_demand_stack(
    demands, trailing: tuple[int, ...], solver: str, mask
) -> tuple[np.ndarray, np.ndarray | None]:
    """Validate a per-scenario multi-class demand stack ``(S, *trailing)``."""
    arr = np.asarray(demands, dtype=float)
    if arr.ndim == len(trailing):
        arr = arr[None]
    if arr.ndim != len(trailing) + 1 or arr.shape[1:] != trailing:
        raise ValueError(
            f"{solver}: expected a (S, {', '.join(map(str, trailing))}) "
            f"demand stack, got shape {arr.shape}"
        )
    mask = _mask_stack(mask, arr.shape[0], solver)
    if mask is not None:
        arr = arr.copy()
        arr[~mask] = 1.0
    if not np.isfinite(arr).all():
        raise ValueError(
            f"{solver}: demands must be finite, got non-finite values at "
            f"scenario indices {sorted(set(np.nonzero(~np.isfinite(arr))[0].tolist()))}"
        )
    if np.any(arr < 0):
        raise ValueError(f"{solver}: demands must be non-negative")
    return arr, mask


def batched_exact_multiclass(
    demands,
    populations,
    think_times,
    station_names=None,
    station_kinds=None,
    class_names=None,
    mask=None,
) -> BatchedMultiClassResult:
    """Exact multi-class MVA over a stack of scenarios.

    Vectorizes the class-lattice recursion of
    :func:`~repro.core.multiclass.exact_multiclass_mva` over the
    scenario axis: the ``Q_k(n)`` lattice table gains a leading
    scenario dimension and every update is an array operation across
    all S scenarios, so the ``O(K * prod_c (N_c + 1))`` Python-level
    lattice walk is paid once for the whole stack instead of once per
    scenario.  Operations are elementwise along the scenario axis in
    the scalar solver's order, so each row matches the scalar result
    to rounding (pinned at 1e-10 by the equivalence suite).

    Parameters
    ----------
    demands:
        ``(S, K, C)`` stack — one ``(K, C)`` class-demand matrix per
        scenario.  A single ``(K, C)`` matrix is treated as ``S = 1``.
    populations / think_times:
        Shared class populations ``(N_1, ..., N_C)`` and per-class
        think times.
    station_names / station_kinds / class_names:
        Optional shared labels and ``"queue"``/``"delay"`` flags.
    mask:
        Optional ``(S,)`` validity mask (the ``errors="isolate"``
        path); see :func:`batched_exact_mva`.

    Notes
    -----
    The lattice table costs ``S`` times the scalar solver's memory —
    ``prod_c (N_c + 1) * S * K`` floats — so keep class populations
    modest (the facade's ``EXACT_MULTICLASS_LATTICE_LIMIT`` guards
    this).
    """
    arr = np.asarray(demands, dtype=float)
    if arr.ndim not in (2, 3):
        raise ValueError(
            f"batched-exact-multiclass: demands must be (S, K, C), got shape {arr.shape}"
        )
    k, c = (arr.shape[1], arr.shape[2]) if arr.ndim == 3 else arr.shape
    d, mask = _multiclass_demand_stack(demands, (k, c), "batched-exact-multiclass", mask)
    s = d.shape[0]
    pops = tuple(int(p) for p in populations)
    if len(pops) != c or any(p < 0 for p in pops):
        raise ValueError(
            f"batched-exact-multiclass: populations must be {c} non-negative "
            f"integers, got {populations}"
        )
    names, _kinds, is_queue, z, cls = _class_axes(
        class_names, think_times, station_names, station_kinds, k,
        "batched-exact-multiclass",
    )
    if z.shape != (c,):
        raise ValueError(f"batched-exact-multiclass: think_times must be {c} values")

    if sum(pops) == 0:
        zero_sc = np.zeros((s, c))
        return BatchedMultiClassResult(
            populations=pops,
            class_names=cls,
            throughput=zero_sc,
            response_time=zero_sc.copy(),
            queue_lengths=np.zeros((s, k)),
            queue_lengths_by_class=np.zeros((s, k, c)),
            utilizations=np.zeros((s, k)),
            station_names=names,
            think_times=z,
            solver="batched-exact-multiclass",
            demands_used=d,
        )

    # Station queue lengths Q_k(n) over the lattice, for all S scenarios.
    shape = tuple(p + 1 for p in pops)
    q_table = np.zeros(shape + (s, k))
    last_x = np.zeros((s, c))
    last_r = np.zeros((s, c))
    last_qkc = np.zeros((s, k, c))

    for n in product(*(range(p + 1) for p in pops)):
        if sum(n) == 0:
            continue
        r_kc = np.zeros((s, k, c))
        x_c = np.zeros((s, c))
        for ci in range(c):
            if n[ci] == 0:
                continue
            prev = list(n)
            prev[ci] -= 1
            q_prev = q_table[tuple(prev)]
            r_kc[:, :, ci] = np.where(is_queue, d[:, :, ci] * (1.0 + q_prev), d[:, :, ci])
            x_c[:, ci] = n[ci] / (z[ci] + r_kc[:, :, ci].sum(axis=1))
        q_kc = r_kc * x_c[:, None, :]
        q_table[n] = q_kc.sum(axis=2)
        if n == pops:
            last_x = x_c
            last_r = r_kc.sum(axis=1)
            last_qkc = q_kc

    util = (d * last_x[:, None, :]).sum(axis=2)
    queue_lengths = last_qkc.sum(axis=2)
    if mask is not None:
        _nan_rows(mask, last_x, last_r, last_qkc, queue_lengths, util, d)
    return BatchedMultiClassResult(
        populations=pops,
        class_names=cls,
        throughput=last_x,
        response_time=last_r,
        queue_lengths=queue_lengths,
        queue_lengths_by_class=last_qkc,
        utilizations=util,
        station_names=names,
        think_times=z,
        solver="batched-exact-multiclass",
        demands_used=d,
    )


def batched_multiclass_mvasd(
    station_names,
    class_names,
    demand_tensors,
    mix,
    max_total_population,
    think_times,
    station_kinds=None,
    mask=None,
) -> BatchedMultiClassTrajectory:
    """Multi-class MVASD mix sweep over a stack of scenarios.

    Vectorizes :func:`~repro.core.multiclass_amva.multiclass_mvasd`
    over the scenario axis: at every total population the shared
    largest-remainder mix apportionment is computed once, and the
    Bard-Schweitzer fixed point iterates all S scenarios together —
    each scenario is *frozen* individually the moment its own
    convergence criterion (identical to the scalar solver's) fires, so
    every row reproduces the scalar iterates exactly.

    Parameters
    ----------
    station_names / class_names:
        Shared labels (stations in order; classes in order).
    demand_tensors:
        ``(S, T, K, C)`` stack of per-total class-demand matrices for
        totals ``1..T`` — the multi-class analogue of the precomputed
        MVASD demand matrix, evaluated from the per-class ``SS_{k,c}(n)``
        curves.  A single ``(T, K, C)`` tensor is treated as ``S = 1``.
    mix:
        Shared relative class weights (normalized internally; realized
        integer populations follow largest-remainder rounding, exactly
        as in the scalar sweep).
    max_total_population:
        Sweep 1..N total users (``T = N``).
    think_times:
        Per-class think times, shared across scenarios.
    station_kinds:
        Optional ``"queue"``/``"delay"`` per station.
    mask:
        Optional ``(S,)`` validity mask (the ``errors="isolate"``
        path); see :func:`batched_exact_mva`.
    """
    names = tuple(station_names)
    k = len(names)
    cls = tuple(class_names)
    c = len(cls)
    if not c:
        raise ValueError("batched-multiclass-mvasd: need at least one class")
    t = int(max_total_population)
    if t < 1:
        raise ValueError("batched-multiclass-mvasd: max_total_population must be >= 1")
    d, mask = _multiclass_demand_stack(
        demand_tensors, (t, k, c), "batched-multiclass-mvasd", mask
    )
    s = d.shape[0]
    weights = np.asarray(mix, dtype=float)
    if weights.shape != (c,) or np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError(
            "batched-multiclass-mvasd: mix weights must be non-negative with positive sum"
        )
    weights = weights / weights.sum()
    _names, _kinds, is_queue, z, cls = _class_axes(
        cls, think_times, names, station_kinds, k, "batched-multiclass-mvasd"
    )
    if z.shape != (c,):
        raise ValueError(f"batched-multiclass-mvasd: think_times must be {c} values")

    steps = np.arange(1, t + 1)
    pops = np.zeros((t, c), dtype=int)
    xs = np.zeros((s, t, c))
    rs = np.zeros((s, t, c))
    utils = np.zeros((s, t, k))

    for i, total in enumerate(steps):
        # Shared largest-remainder apportionment of the mix at this total.
        raw = weights * total
        base = np.floor(raw).astype(int)
        remainder = int(total) - int(base.sum())
        order = np.argsort(-(raw - base))
        base[order[:remainder]] += 1
        pops[i] = base

        n_c = base.astype(float)
        active_cls = n_c > 0
        d_step = d[:, i, :, :]

        # Bard-Schweitzer fixed point, all scenarios together; rows are
        # frozen individually on the scalar convergence criterion.
        q = np.zeros((s, k, c))
        if active_cls.any():
            q[:, :, active_cls] = n_c[active_cls] / k  # even initial spread
        x = np.zeros((s, c))
        r_c_out = np.zeros((s, c))
        alive = np.arange(s)
        for _ in range(_MC_MAX_ITER):
            qa = q[alive]
            da = d_step[alive]
            a = alive.size
            q_total = qa.sum(axis=2)
            r = np.empty((a, k, c))
            for ci in range(c):
                if not active_cls[ci]:
                    r[:, :, ci] = 0.0
                    continue
                # arrival-theorem queue with one class-ci customer removed
                removed = qa[:, :, ci] / n_c[ci]
                q_arr = np.maximum(q_total - removed, 0.0)
                r[:, :, ci] = np.where(is_queue, da[:, :, ci] * (1.0 + q_arr), da[:, :, ci])
            r_c = r.sum(axis=1)
            with np.errstate(divide="ignore", invalid="ignore"):
                xa = np.where(active_cls, n_c / (z + r_c), 0.0)
            q_new = r * xa[:, None, :]
            x[alive] = xa
            r_c_out[alive] = r_c
            q[alive] = q_new
            converged = (
                np.abs(q_new - qa).reshape(a, -1).max(axis=1)
                <= _TOL * np.maximum(1.0, q_new.reshape(a, -1).max(axis=1))
            )
            alive = alive[~converged]
            if alive.size == 0:
                break

        xs[:, i] = x
        rs[:, i] = r_c_out
        utils[:, i] = (d_step * x[:, None, :]).sum(axis=2)

    if mask is not None:
        _nan_rows(mask, xs, rs, utils, d)
    return BatchedMultiClassTrajectory(
        class_names=cls,
        station_names=names,
        totals=steps,
        populations=pops,
        throughput=xs,
        response_time=rs,
        utilizations=utils,
        think_times=z,
        solver="batched-multiclass-mvasd",
        demands_used=d,
    )
