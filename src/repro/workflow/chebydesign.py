"""Load-test design-point selection strategies (Section 8).

The paper's recommendation: place the few load tests a budget allows at
Chebyshev positions over the concurrency range, rather than uniformly
or at ad-hoc ("random") points, because splines through Chebyshev
samples avoid Runge oscillation (Figs. 14-15).  The alternative
strategies exist to reproduce that comparison.
"""

from __future__ import annotations

import numpy as np

from ..interpolate.chebyshev import concurrency_test_points

__all__ = ["design_points", "knee_guided_design_points", "STRATEGIES"]

STRATEGIES = ("chebyshev", "uniform", "random")


def design_points(
    n: int,
    low: int,
    high: int,
    strategy: str = "chebyshev",
    seed: int = 0,
    minimum_gap: int = 1,
) -> np.ndarray:
    """Pick ``n`` integer concurrency levels in ``[low, high]``.

    ``"chebyshev"`` uses eq. 17 node placement; ``"uniform"`` equal
    spacing including both endpoints; ``"random"`` a seeded sorted
    uniform draw (the arbitrary-points baseline of Fig. 15).  All
    strategies return strictly increasing levels.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
    if n < 2:
        raise ValueError(f"need at least 2 design points, got {n}")
    if low >= high:
        raise ValueError(f"need low < high, got [{low}, {high}]")
    if strategy == "chebyshev":
        return concurrency_test_points(n, low, high, minimum_gap=minimum_gap)
    if strategy == "uniform":
        pts = np.unique(np.rint(np.linspace(low, high, n)).astype(int))
        return pts
    rng = np.random.default_rng(seed)
    # Random interior points plus pinned endpoints, so extrapolation
    # clamping does not dominate the comparison unfairly.
    interior = rng.choice(
        np.arange(low + 1, high), size=max(n - 2, 0), replace=False
    )
    return np.unique(np.concatenate(([low], np.sort(interior), [high])))


def knee_guided_design_points(
    network,
    n: int,
    low: int,
    high: int,
    minimum_gap: int = 1,
) -> np.ndarray:
    """Chebyshev design points re-centred on the asymptotic knee ``N*``.

    The operating-point regions that matter most to the spline fit are
    the rise and the saturation shoulder around the knee
    ``N* = (Z + sum D_k) / max D_k`` (eq. 6).  This helper solves the
    asymptotic-bounds model through the :func:`repro.solvers.solve`
    facade, then splits the budget between ``[low, knee]`` and
    ``[knee, high]`` proportionally to each side's width, guaranteeing
    at least two points on the rising side when the knee is interior.
    Falls back to plain :func:`design_points` when the knee is outside
    the test range.
    """
    if n < 2:
        raise ValueError(f"need at least 2 design points, got {n}")
    if low >= high:
        raise ValueError(f"need low < high, got [{low}, {high}]")
    from ..solvers import Scenario, solve

    bounds = solve(Scenario(network, high), method="bounds")
    knee = int(np.clip(np.rint(bounds.knee), low, high))
    if knee <= low + minimum_gap or knee >= high - minimum_gap or n < 4:
        return design_points(n, low, high, strategy="chebyshev", minimum_gap=minimum_gap)
    n_rise = max(2, int(np.rint(n * (knee - low) / (high - low))))
    n_rise = min(n_rise, n - 2)
    rise = concurrency_test_points(n_rise, low, knee, minimum_gap=minimum_gap)
    shoulder = concurrency_test_points(n - n_rise, knee, high, minimum_gap=minimum_gap)
    return np.unique(np.concatenate((rise, shoulder)))
