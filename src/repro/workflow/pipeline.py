"""The Fig. 17 end-to-end prediction workflow.

The paper's recommended practice for accurate performance prediction:

1. **Design** — generate the load-testing concurrency points from
   Chebyshev Nodes over the range of interest (Section 8);
2. **Measure** — run load tests at those points and extract service
   demands with the service-demand law (Section 4);
3. **Predict** — spline-interpolate the demand samples and feed them to
   MVASD to obtain throughput and cycle time over the whole range
   (Section 6).

:func:`predict_performance` executes the three steps against the
simulated testbed and returns a :class:`PipelineReport`; its
:meth:`~PipelineReport.validate` scores the prediction against an
independent dense measurement sweep — the "compare with measured load
testing data" loop the paper closes in Figs. 6/7/16.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..analysis.deviation import DeviationReport, deviation_against_sweep
from ..apps.base import Application
from ..core.results import MVAResult
from ..interpolate.demand_model import DemandTable
from ..loadtest.runner import LoadTestSweep, run_sweep
from ..solvers import USE_DEFAULT_CACHE, Scenario, solve
from .chebydesign import design_points

__all__ = ["PipelineReport", "predict_performance", "predict_performance_grid"]


@dataclass(frozen=True)
class PipelineReport:
    """Everything the Fig. 17 workflow produced."""

    application: str
    design: np.ndarray
    sweep: LoadTestSweep
    demand_table: DemandTable
    prediction: MVAResult

    def validate(
        self,
        reference: LoadTestSweep,
        stations_for_utilization: Sequence[str] = (),
    ) -> DeviationReport:
        """Eq. 15 deviations of the prediction against a reference sweep."""
        return deviation_against_sweep(
            self.prediction,
            reference,
            stations_for_utilization=stations_for_utilization,
        )

    def predicted_at(self, level: int) -> dict:
        """Scalar prediction snapshot at one concurrency level."""
        return self.prediction.at(level)


def predict_performance(
    application: Application,
    n_design_points: int = 5,
    max_population: int | None = None,
    concurrency_range: tuple[int, int] | None = None,
    strategy: str = "chebyshev",
    duration: float = 200.0,
    seed: int = 0,
    demand_kind: str = "cubic",
    single_server: bool = False,
    cache=USE_DEFAULT_CACHE,
) -> PipelineReport:
    """Run the three-step workflow of Fig. 17.

    Parameters
    ----------
    application:
        The application under test.
    n_design_points:
        Number of load tests the budget allows (the paper shows 3
        Chebyshev points already predict well — Fig. 16).
    max_population:
        Population range of the final prediction (default: top of the
        concurrency range).
    concurrency_range:
        ``(low, high)`` test range; defaults to
        ``(1, application.max_tested_concurrency)``.
    strategy:
        Design strategy — ``"chebyshev"`` (recommended), ``"uniform"``
        or ``"random"``.
    duration:
        Simulated seconds per load test.
    seed:
        Reproducibility seed for tests and design randomness.
    demand_kind:
        Spline family for step 3.
    single_server:
        Use the normalized single-server MVASD variant (ablation).
    cache:
        Solver result cache for the final prediction (default: the
        process-global cache); ``None`` bypasses.
    """
    low, high = concurrency_range or (1, application.max_tested_concurrency)
    design = design_points(n_design_points, low, high, strategy=strategy, seed=seed)
    sweep = run_sweep(application, levels=[int(d) for d in design], duration=duration, seed=seed)
    table = sweep.demand_table(kind=demand_kind)
    n_max = int(max_population) if max_population is not None else high
    scenario = Scenario(
        application.network, n_max, demand_functions=table.functions()
    )
    prediction = solve(scenario, method="mvasd", single_server=single_server, cache=cache)
    return PipelineReport(
        application=application.name,
        design=design,
        sweep=sweep,
        demand_table=table,
        prediction=prediction,
    )


def _pipeline_task(variant: Mapping, payload):
    """One workflow run in a worker; returns only picklable pieces."""
    application, common = payload
    kwargs = {**common, **variant}
    report = predict_performance(application, **kwargs)
    return (
        report.design,
        report.sweep.levels,
        report.sweep.runs,
        report.demand_table,
        report.prediction,
    )


def predict_performance_grid(
    application: Application,
    variants: Sequence[Mapping],
    workers: int | None = 1,
    timeout: float | None = None,
    **common,
) -> list[PipelineReport]:
    """Run the Fig. 17 workflow for many configurations, fork-join style.

    ``variants`` holds one keyword-override mapping per run (e.g. a
    :class:`repro.engine.ScenarioGrid` over ``n_design_points`` and
    ``strategy``), merged over the shared ``common`` keyword arguments
    of :func:`predict_performance`.  Reports come back in variant order;
    ``workers > 1`` distributes the runs over a process pool, with
    results identical to the serial execution (each variant fixes its
    own seed inputs up front).  ``timeout`` bounds each variant's
    seconds in the pool; crashed or timed-out workers are recomputed
    serially in the parent.
    """
    from ..engine.sweep import parallel_map  # runtime import: engine layering

    variants = [dict(v) for v in variants]
    if not variants:
        raise ValueError("need at least one variant")
    pieces = parallel_map(
        _pipeline_task,
        variants,
        workers=workers,
        payload=(application, common),
        timeout=timeout,
    )
    return [
        PipelineReport(
            application=application.name,
            design=design,
            sweep=LoadTestSweep(application=application, levels=levels, runs=runs),
            demand_table=table,
            prediction=prediction,
        )
        for design, levels, runs, table, prediction in pieces
    ]
