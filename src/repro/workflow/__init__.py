"""End-to-end prediction workflow (Fig. 17) and test-point design."""

from .chebydesign import STRATEGIES, design_points
from .pipeline import PipelineReport, predict_performance, predict_performance_grid

__all__ = [
    "PipelineReport",
    "STRATEGIES",
    "design_points",
    "predict_performance",
    "predict_performance_grid",
]
