"""Service-time distribution shapes and the product-form sensitivity."""

import numpy as np
import pytest

from repro.core import ClosedNetwork, Station, exact_mva
from repro.simulation import (
    Deterministic,
    Erlang,
    Exponential,
    HyperExponential,
    LogNormal,
    simulate_closed_network,
)


def _moments(shape, n=40_000, seed=0):
    gen = np.random.default_rng(seed)
    draw = shape.sampler(gen, 1.0)
    x = np.array([draw() for _ in range(n)])
    return x.mean(), x.std() / x.mean()


class TestShapes:
    @pytest.mark.parametrize(
        "shape",
        [Exponential(), Deterministic(), Erlang(3), HyperExponential(2.0), LogNormal(1.5)],
        ids=lambda s: type(s).__name__,
    )
    def test_unit_mean(self, shape):
        mean, _ = _moments(shape)
        assert mean == pytest.approx(1.0, rel=0.05)

    @pytest.mark.parametrize(
        "shape",
        [Exponential(), Deterministic(), Erlang(4), HyperExponential(2.5), LogNormal(0.6)],
        ids=lambda s: type(s).__name__,
    )
    def test_cv_matches_declared(self, shape):
        _, cv = _moments(shape)
        assert cv == pytest.approx(shape.cv, abs=0.1)

    def test_scaling_by_mean(self):
        gen = np.random.default_rng(1)
        draw = Erlang(2).sampler(gen, 0.25)
        x = np.array([draw() for _ in range(20_000)])
        assert x.mean() == pytest.approx(0.25, rel=0.05)

    def test_non_negative(self):
        for shape in (Exponential(), Erlang(2), HyperExponential(3.0), LogNormal(2.0)):
            gen = np.random.default_rng(2)
            draw = shape.sampler(gen, 1.0)
            assert all(draw() >= 0 for _ in range(1000))

    def test_zero_mean_shortcut(self):
        draw = LogNormal(1.0).sampler(np.random.default_rng(0), 0.0)
        assert draw() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Erlang(0)
        with pytest.raises(ValueError):
            HyperExponential(1.0)
        with pytest.raises(ValueError):
            LogNormal(0.0)
        with pytest.raises(ValueError):
            Exponential().sampler(np.random.default_rng(0), -1.0)


class TestProductFormSensitivity:
    """How the simulated system reacts when service stops being exponential."""

    @pytest.fixture
    def net(self):
        return ClosedNetwork([Station("cpu", 0.1)], think_time=0.5)

    def test_exponential_matches_mva(self, net):
        mva = exact_mva(net, 10)
        sim = simulate_closed_network(
            net, 10, duration=400.0, warmup=40.0, seed=1, service_shape=Exponential()
        )
        assert sim.throughput == pytest.approx(mva.throughput[-1], rel=0.03)

    def test_deterministic_service_beats_mva_prediction(self, net):
        # CV 0 removes queueing variance -> higher throughput than the
        # exponential model predicts (PASTA no longer applies).
        mva = exact_mva(net, 10)
        sim = simulate_closed_network(
            net, 10, duration=400.0, warmup=40.0, seed=1, service_shape=Deterministic()
        )
        assert sim.throughput > mva.throughput[-1]

    def test_hyperexponential_underperforms_mva(self, net):
        # CV > 1 adds queueing variance -> lower mean throughput than
        # predicted (averaged over seeds: bursty runs are noisy).
        mva = exact_mva(net, 10)
        xs = [
            simulate_closed_network(
                net, 10, duration=600.0, warmup=60.0, seed=s,
                service_shape=HyperExponential(3.0),
            ).throughput
            for s in (2, 3, 4, 5)
        ]
        assert np.mean(xs) < mva.throughput[-1]

    def test_per_station_mapping(self, net):
        sim = simulate_closed_network(
            net, 5, duration=100.0, seed=0, service_shape={"cpu": Erlang(4)}
        )
        assert sim.throughput > 0

    def test_unlisted_station_stays_exponential(self):
        net = ClosedNetwork(
            [Station("cpu", 0.1), Station("disk", 0.05)], think_time=0.5
        )
        a = simulate_closed_network(
            net, 5, duration=200.0, seed=3, service_shape={"disk": Exponential()}
        )
        b = simulate_closed_network(net, 5, duration=200.0, seed=3)
        # identical streams for cpu; same shape for disk -> identical runs
        assert a.throughput == pytest.approx(b.throughput, rel=0.05)


class TestThinkTimeInsensitivity:
    """Delay stations are insensitive to the think-time distribution
    (BCMP insensitivity for IS stations) — verifiable on the testbed."""

    def test_deterministic_think_matches_exponential_mean(self):
        from repro.core import ClosedNetwork, Station, exact_mva

        net = ClosedNetwork([Station("cpu", 0.08)], think_time=1.0)
        mva = exact_mva(net, 8)
        xs = []
        for shape in (None, Deterministic(), Erlang(4)):
            sims = [
                simulate_closed_network(
                    net, 8, duration=400.0, warmup=40.0, seed=s, think_shape=shape
                ).throughput
                for s in (1, 2)
            ]
            xs.append(np.mean(sims))
        for x in xs:
            assert x == pytest.approx(mva.throughput[-1], rel=0.04)

    def test_think_shape_preserves_mean(self):
        from repro.core import ClosedNetwork, Station

        net = ClosedNetwork([Station("cpu", 0.01)], think_time=2.0)
        sim = simulate_closed_network(
            net, 5, duration=300.0, warmup=30.0, seed=0, think_shape=Deterministic()
        )
        # nearly idle station: cycle time ~ Z + D
        assert sim.cycle_time == pytest.approx(2.01, rel=0.05)
