"""Page-level workflow simulation."""

import numpy as np
import pytest

from repro.apps import jpetstore_application, vins_application
from repro.core import ClosedNetwork, Station
from repro.simulation import simulate_closed_network, simulate_workflow


@pytest.fixture
def net():
    return ClosedNetwork(
        [Station("cpu", 0.06, servers=2), Station("disk", 0.04)], think_time=0.5
    )


class TestSimulateWorkflow:
    def test_uniform_weights_match_aggregate_simulator(self, net):
        wf = simulate_workflow(net, 8, [1.0, 1.0, 1.0], duration=300.0, warmup=30.0, seed=4)
        agg = simulate_closed_network(net, 8, duration=300.0, warmup=30.0, seed=5)
        assert wf.aggregate.throughput == pytest.approx(agg.throughput, rel=0.05)
        assert wf.aggregate.response_time == pytest.approx(agg.response_time, rel=0.08)

    def test_page_counts_balanced_round_robin(self, net):
        wf = simulate_workflow(net, 6, [1.0, 2.0], duration=200.0, warmup=20.0, seed=1)
        counts = [p.completions for p in wf.pages]
        assert abs(counts[0] - counts[1]) <= 6  # one per in-flight user

    def test_heavier_page_has_higher_response_time(self, net):
        wf = simulate_workflow(
            net, 10, {"light": 0.5, "heavy": 2.0}, duration=300.0, warmup=30.0, seed=2
        )
        assert wf.page("heavy").mean_response_time > wf.page("light").mean_response_time

    def test_weights_normalized_to_mean_one(self, net):
        # Scaling all weights by 10 must not change the system.
        a = simulate_workflow(net, 6, [1.0, 3.0], duration=200.0, warmup=20.0, seed=3)
        b = simulate_workflow(net, 6, [10.0, 30.0], duration=200.0, warmup=20.0, seed=3)
        assert a.aggregate.throughput == pytest.approx(b.aggregate.throughput, rel=1e-9)

    def test_p95_at_least_mean(self, net):
        wf = simulate_workflow(net, 8, [1.0, 1.5], duration=200.0, warmup=20.0, seed=6)
        for p in wf.pages:
            assert p.p95_response_time >= p.mean_response_time

    def test_mapping_names_used(self, net):
        wf = simulate_workflow(net, 4, {"a": 1.0, "b": 1.0}, duration=100.0, seed=0)
        assert wf.page_names == ("a", "b")
        with pytest.raises(KeyError):
            wf.page("c")

    def test_workflow_time(self, net):
        wf = simulate_workflow(net, 4, [1.0, 1.0], duration=150.0, warmup=15.0, seed=0)
        assert wf.workflow_time == pytest.approx(2 * wf.aggregate.cycle_time)

    def test_validation(self, net):
        with pytest.raises(ValueError, match="at least one"):
            simulate_workflow(net, 4, [], duration=100.0)
        with pytest.raises(ValueError, match="positive"):
            simulate_workflow(net, 4, [1.0, -1.0], duration=100.0)
        with pytest.raises(ValueError, match="population"):
            simulate_workflow(net, 0, [1.0], duration=100.0)


class TestBundledApplications:
    def test_vins_pages_defined(self):
        app = vins_application()
        weights = app.workflow_weights()
        assert len(weights) == 7
        assert "premium-calculation" in weights

    def test_jpetstore_pages_defined(self):
        app = jpetstore_application()
        assert len(app.workflow_weights()) == 14

    def test_vins_heavy_page_dominates(self):
        app = vins_application()
        wf = simulate_workflow(
            app.network, 50, app.workflow_weights(), duration=120.0, warmup=12.0, seed=9
        )
        heavy = wf.page("premium-calculation").mean_response_time
        light = wf.page("confirmation").mean_response_time
        assert heavy > light

    def test_aggregate_close_to_flat_model(self):
        # Page weights are mean-1, so pages/second stays comparable to the
        # aggregate model MVA sees (mild skew -> small drift allowed).
        app = jpetstore_application()
        wf = simulate_workflow(
            app.network, 70, app.workflow_weights(), duration=150.0, warmup=15.0, seed=9
        )
        flat = simulate_closed_network(app.network, 70, duration=150.0, warmup=15.0, seed=9)
        assert wf.aggregate.throughput == pytest.approx(flat.throughput, rel=0.06)
