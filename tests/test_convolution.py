"""Log-domain Buzen convolution solver."""

import numpy as np
import pytest

from repro.core import ClosedNetwork, Station, exact_mva
from repro.core.convolution import (
    convolution_mva,
    log_convolve,
    log_station_coefficients,
)


class TestLogStationCoefficients:
    def test_single_server_is_geometric(self):
        lf = log_station_coefficients(0.5, 1, 4)
        np.testing.assert_allclose(np.exp(lf), [1, 0.5, 0.25, 0.125, 0.0625])

    def test_multiserver_divides_by_min_j_c(self):
        lf = log_station_coefficients(1.0, 2, 3)
        # f = [1, 1/1, 1/(1*2), 1/(1*2*2)]
        np.testing.assert_allclose(np.exp(lf), [1, 1, 0.5, 0.25])

    def test_delay_is_poisson_like(self):
        lf = log_station_coefficients(2.0, 1, 3, kind="delay")
        np.testing.assert_allclose(np.exp(lf), [1, 2, 2, 4 / 3])

    def test_zero_demand_is_identity(self):
        lf = log_station_coefficients(0.0, 1, 3)
        assert lf[0] == 0.0
        assert np.all(np.isinf(lf[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            log_station_coefficients(-1.0, 1, 3)
        with pytest.raises(ValueError):
            log_station_coefficients(1.0, 0, 3)


class TestLogConvolve:
    def test_matches_linear_convolution(self):
        rng = np.random.default_rng(0)
        a = rng.uniform(0.1, 2.0, 8)
        b = rng.uniform(0.1, 2.0, 8)
        out = np.exp(log_convolve(np.log(a), np.log(b)))
        expected = np.convolve(a, b)[:8]
        np.testing.assert_allclose(out, expected, rtol=1e-12)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            log_convolve(np.zeros(3), np.zeros(4))


class TestConvolutionMVA:
    def test_matches_exact_mva_single_server(self, two_station_net):
        conv = convolution_mva(two_station_net, 80)
        mva = exact_mva(two_station_net, 80)
        np.testing.assert_allclose(conv.throughput, mva.throughput, rtol=1e-9)
        np.testing.assert_allclose(conv.response_time, mva.response_time, rtol=1e-9)

    def test_queue_lengths_match_exact_mva(self, two_station_net):
        conv = convolution_mva(two_station_net, 60)
        mva = exact_mva(two_station_net, 60)
        np.testing.assert_allclose(
            conv.queue_lengths, mva.queue_lengths, rtol=1e-8, atol=1e-12
        )

    def test_known_16_core_values(self, manycore_net):
        # Verified independently against DES (93.91 +/- 0.03 at N=120).
        conv = convolution_mva(manycore_net, 140)
        assert conv.throughput[119] == pytest.approx(93.94, rel=2e-3)
        assert conv.throughput[99] == pytest.approx(82.90, rel=2e-3)

    def test_multiserver_queue_lengths_conserve_jobs(self, manycore_net):
        conv = convolution_mva(manycore_net, 100)
        thinking = conv.throughput * 1.0
        np.testing.assert_allclose(
            conv.queue_lengths.sum(axis=1) + thinking,
            conv.populations,
            rtol=1e-9,
        )

    def test_station_detail_false_keeps_system_metrics(self, manycore_net):
        full = convolution_mva(manycore_net, 100, station_detail=True)
        lean = convolution_mva(manycore_net, 100, station_detail=False)
        np.testing.assert_allclose(full.throughput, lean.throughput, rtol=1e-12)
        np.testing.assert_allclose(full.utilizations, lean.utilizations, rtol=1e-12)

    def test_zero_think_time(self):
        net = ClosedNetwork([Station("a", 0.2), Station("b", 0.1)], think_time=0.0)
        conv = convolution_mva(net, 30)
        mva = exact_mva(net, 30)
        np.testing.assert_allclose(conv.throughput, mva.throughput, rtol=1e-9)

    def test_delay_station(self):
        net = ClosedNetwork(
            [Station("cpu", 0.1), Station("lag", 0.7, kind="delay")], think_time=0.5
        )
        conv = convolution_mva(net, 40)
        mva = exact_mva(net, 40)
        np.testing.assert_allclose(conv.throughput, mva.throughput, rtol=1e-9)

    def test_utilization_never_exceeds_one(self, manycore_net):
        conv = convolution_mva(manycore_net, 300)
        assert conv.utilizations.max() <= 1 + 1e-9

    def test_rejects_bad_population(self, two_station_net):
        with pytest.raises(ValueError):
            convolution_mva(two_station_net, 0)
