"""Deterministic fault injection: every recovery path earns its keep.

The acceptance bar of the resilience work: for each fault kind the
harness can arm (crashed worker, wedged/slow shard, poisoned scenario,
corrupted cache entry), the faulted run must *recover* and match the
fault-free run to ≤1e-10.  A separate group pins the harness itself —
spec parsing, attempt scoping, arming/disarming — since a fault plan
that silently never fires would make every parity test vacuous.
"""

import numpy as np
import pytest

from repro.core.network import ClosedNetwork, Station
from repro.engine import FaultPlan, InjectedFault, RetryPolicy
from repro.engine import faults
from repro.engine.faults import Fault
from repro.solvers import Scenario, SolverCache, solve_stack

ATOL = 1e-10


@pytest.fixture(autouse=True)
def _disarm():
    """No fault plan may leak across tests."""
    yield
    faults.deactivate()


@pytest.fixture
def net():
    return ClosedNetwork(
        [Station("web", demand=0.02), Station("db", demand=0.05)], think_time=1.0
    )


@pytest.fixture
def stack(net):
    return [Scenario(net, 15, think_time=0.5 + 0.1 * i) for i in range(8)]


@pytest.fixture
def baseline(stack):
    return solve_stack(stack, method="exact-mva", backend="serial", cache=None)


def assert_parity(result, baseline):
    assert not result.failures
    np.testing.assert_allclose(result.throughput, baseline.throughput, atol=ATOL)
    np.testing.assert_allclose(result.response_time, baseline.response_time, atol=ATOL)
    np.testing.assert_allclose(result.queue_lengths, baseline.queue_lengths, atol=ATOL)
    np.testing.assert_allclose(result.utilizations, baseline.utilizations, atol=ATOL)


class TestFaultPlanParsing:
    def test_parse_roundtrip(self):
        spec = "crash-worker@shard=0;delay-shard@shard=1,delay=0.2;corrupt-cache-entry"
        plan = FaultPlan.parse(spec)
        assert len(plan) == 3
        assert plan.faults[0] == Fault(kind="crash-worker", shard=0)
        assert plan.faults[1].delay == pytest.approx(0.2)
        assert plan.spec() == spec

    def test_parse_attempt_and_scenario(self):
        plan = FaultPlan.parse("raise-in-kernel@scenario=3,attempt=1")
        (fault,) = plan.faults
        assert fault.scenario == 3 and fault.attempt == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("set-cpu-on-fire")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown fault parameter"):
            FaultPlan.parse("crash-worker@core=2")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="names no faults"):
            FaultPlan.parse(" ; ")


class TestHarness:
    def test_noop_when_disarmed(self):
        faults.maybe_inject("kernel", scenario=0)  # must not raise

    def test_fires_only_on_matching_attempt(self):
        with faults.injected(FaultPlan.parse("raise-in-kernel@scenario=0")):
            faults.set_attempt(1)
            faults.maybe_inject("kernel", scenario=0)  # attempt mismatch: no-op
            faults.set_attempt(0)
            with pytest.raises(InjectedFault):
                faults.maybe_inject("kernel", scenario=0)

    def test_fires_only_on_matching_index(self):
        with faults.injected(FaultPlan.parse("raise-in-kernel@scenario=2")):
            faults.maybe_inject("kernel", scenario=1)
            with pytest.raises(InjectedFault):
                faults.maybe_inject("kernel", scenario=2)

    def test_context_manager_disarms(self):
        with faults.injected(FaultPlan.parse("raise-in-kernel")):
            assert faults.active_plan() is not None
        assert faults.active_plan() is None
        faults.maybe_inject("kernel", scenario=0)

    def test_fired_log_records_driver_side_fires(self):
        with faults.injected(FaultPlan.parse("delay-shard@shard=1,delay=0")):
            faults.maybe_inject("shard", shard=1)
            assert faults.fired() == [("delay-shard", "shard", 1, None, 0)]

    def test_crash_worker_is_noop_in_driver(self):
        # In the arming process the crash must NOT fire (os._exit would
        # kill the test run) — that is exactly what lets in-parent
        # retries of a crashed shard succeed.
        with faults.injected(FaultPlan.parse("crash-worker@shard=0")):
            faults.maybe_inject("shard", shard=0)


class TestRecoveryParity:
    """Each injected fault recovers with ≤1e-10 deviation from fault-free."""

    def test_crashed_shard_process_sharded(self, stack, baseline):
        with faults.injected(FaultPlan.parse("crash-worker@shard=0")):
            result = solve_stack(
                stack, method="exact-mva", backend="process-sharded",
                workers=2, cache=None,
            )
        assert_parity(result, baseline)

    def test_crashed_shard_resilient(self, stack, baseline):
        with faults.injected(FaultPlan.parse("crash-worker@shard=1")):
            result = solve_stack(
                stack, method="exact-mva", backend="resilient",
                workers=2, cache=None,
                retry_policy=RetryPolicy(backoff_base=0.01, shard_timeout=30),
            )
        assert_parity(result, baseline)

    def test_slow_shard_times_out_and_recovers(self, stack, baseline):
        with faults.injected(FaultPlan.parse("delay-shard@shard=0,delay=5")):
            result = solve_stack(
                stack, method="exact-mva", backend="resilient",
                workers=2, cache=None,
                retry_policy=RetryPolicy(backoff_base=0.01, shard_timeout=0.4),
            )
        assert_parity(result, baseline)

    def test_poisoned_scenario_resilient_retry(self, stack, baseline):
        # The fault is armed for attempt 0 only: the sharded attempt
        # fails, the retry escapes it — no degradation needed.
        with faults.injected(FaultPlan.parse("raise-in-kernel@scenario=5")):
            result = solve_stack(
                stack, method="exact-mva", backend="resilient",
                workers=2, cache=None,
                retry_policy=RetryPolicy(backoff_base=0.01, shard_timeout=30),
            )
        assert_parity(result, baseline)

    def test_corrupted_cache_entry_degrades_to_miss(self, stack, baseline):
        store = SolverCache()
        with faults.injected(FaultPlan.parse("corrupt-cache-entry")):
            result = solve_stack(
                stack, method="exact-mva", backend="batched", cache=store
            )
        assert_parity(result, baseline)
        assert store.stats().errors > 0

    def test_multiple_simultaneous_faults(self, stack, baseline):
        spec = "crash-worker@shard=0;raise-in-kernel@scenario=7"
        with faults.injected(FaultPlan.parse(spec)):
            result = solve_stack(
                stack, method="exact-mva", backend="resilient",
                workers=2, cache=None,
                retry_policy=RetryPolicy(backoff_base=0.01, shard_timeout=30),
            )
        assert_parity(result, baseline)

    def test_persistent_fault_degrades_through_chain(self, stack, baseline):
        # Armed for attempts 0..2 the poisoned scenario survives the
        # sharded retries; the batched in-process attempt fails too, and
        # the serial loop (a later attempt) finally clears it.
        spec = ";".join(f"raise-in-kernel@scenario=3,attempt={a}" for a in range(3))
        with faults.injected(FaultPlan.parse(spec)):
            result = solve_stack(
                stack, method="exact-mva", backend="resilient",
                workers=2, cache=None,
                retry_policy=RetryPolicy(
                    max_retries=1, backoff_base=0.01, shard_timeout=30
                ),
            )
        assert_parity(result, baseline)

    def test_mvasd_stack_recovers_too(self, baseline):
        # Varying-demand scenarios shard with fork-inherited callables;
        # the crash/retry path must preserve that property.
        net = ClosedNetwork(
            [Station("cpu", demand=lambda n: 0.02 + 0.001 * n), Station("db", demand=0.05)],
            think_time=1.0,
        )
        stack = [Scenario(net, 12, think_time=0.5 + 0.2 * i) for i in range(6)]
        clean = solve_stack(stack, method="mvasd", backend="serial", cache=None)
        with faults.injected(FaultPlan.parse("crash-worker@shard=1")):
            result = solve_stack(
                stack, method="mvasd", backend="resilient",
                workers=2, cache=None,
                retry_policy=RetryPolicy(backoff_base=0.01, shard_timeout=30),
            )
        assert_parity(result, clean)
