"""Cross-module integration: the paper's claims end-to-end (scaled down)."""

import numpy as np
import pytest

from repro.analysis import compare_models, deviation_against_sweep
from repro.core import exact_multiserver_mva, mvasd
from repro.loadtest import run_sweep
from repro.loadtest.runner import extract_demands
from repro.workflow import predict_performance


class TestPaperShapeClaims:
    """DESIGN.md section 5: the qualitative results that must reproduce."""

    def test_claim1_mvasd_beats_all_mva_i(self, mini_sweep):
        cmp_ = compare_models(mini_sweep, mva_levels=(1, 10, 35))
        for metric in ("throughput", "cycle_time"):
            best = cmp_.deviations["MVASD"][metric]
            for lvl in (1, 10, 35):
                assert best <= cmp_.deviations[f"MVA {lvl}"][metric] + 0.5

    def test_claim3_mva_i_improves_with_higher_i(self, mini_sweep):
        # Demands measured near saturation predict the saturated region
        # better than single-user demands do (Fig. 4 ordering).
        cmp_ = compare_models(mini_sweep, mva_levels=(1, 35))
        assert (
            cmp_.deviations["MVA 35"]["throughput"]
            < cmp_.deviations["MVA 1"]["throughput"]
        )

    def test_claim6_demand_decreases_and_bottleneck_saturates(self, mini_sweep):
        samples = mini_sweep.demand_samples()
        assert samples["db.disk"][-1] < samples["db.disk"][0]
        last_run = mini_sweep.runs[-1]
        assert last_run.simulation.utilization_of("db.disk") > 0.85

    def test_prediction_tracks_measured_utilization(self, mini_sweep):
        # Fig. 9: MVASD-predicted bottleneck utilization follows measured.
        table = mini_sweep.demand_table()
        result = mvasd(
            mini_sweep.application.network, 50, demand_functions=table.functions()
        )
        report = deviation_against_sweep(
            result, mini_sweep, stations_for_utilization=["db.disk", "db.cpu"]
        )
        assert report["utilization:db.disk"] < 12.0
        assert report["utilization:db.cpu"] < 15.0


class TestChebyshevWorkflow:
    def test_chebyshev_design_matches_dense_reference(self, mini_sweep):
        # Fig. 16: a 3-point Chebyshev design already predicts well.
        rep = predict_performance(
            mini_sweep.application,
            n_design_points=3,
            max_population=50,
            concurrency_range=(1, 50),
            duration=60.0,
            seed=7,
        )
        dev = rep.validate(mini_sweep)
        assert dev["throughput"] < 12.0

    def test_more_nodes_do_not_hurt_much(self, mini_sweep):
        devs = {}
        for n in (3, 5):
            rep = predict_performance(
                mini_sweep.application,
                n_design_points=n,
                max_population=50,
                concurrency_range=(1, 50),
                duration=60.0,
                seed=7,
            )
            devs[n] = rep.validate(mini_sweep)["throughput"]
        assert devs[5] < devs[3] + 5.0


class TestMeasurementPipelineConsistency:
    def test_extracted_demands_feed_back_exactly(self, mini_sweep):
        # Forced-flow sanity: every station's simulated throughput equals
        # the page rate (visit ratio 1 in the folded-demand model).
        run = mini_sweep.runs[3]
        sim = run.simulation
        for idx, name in enumerate(sim.station_names):
            if sim.utilizations[idx] > 0:
                assert sim.station_throughputs[idx] == pytest.approx(
                    sim.throughput, rel=0.02
                )

    def test_mva_of_extracted_demands_reproduces_that_level(self, mini_sweep):
        # Solving with demands extracted at level i must reproduce the
        # measured operating point AT level i (self-consistency of the
        # service-demand law + MVA).
        app = mini_sweep.application
        lvl = 20
        run = dict(zip(mini_sweep.levels.tolist(), mini_sweep.runs))[lvl]
        demands = extract_demands(run, app)
        vector = [demands[n] for n in app.network.station_names]
        result = exact_multiserver_mva(app.network, lvl, demands=vector)
        assert result.throughput[-1] == pytest.approx(run.tps, rel=0.08)
