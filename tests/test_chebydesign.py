"""Design-point strategies."""

import numpy as np
import pytest

from repro.workflow import design_points


class TestDesignPoints:
    def test_chebyshev_matches_interpolate_module(self):
        from repro.interpolate import concurrency_test_points

        np.testing.assert_array_equal(
            design_points(5, 1, 300, strategy="chebyshev"),
            concurrency_test_points(5, 1, 300),
        )

    def test_uniform_includes_endpoints(self):
        pts = design_points(5, 1, 100, strategy="uniform")
        assert pts[0] == 1 and pts[-1] == 100
        assert np.all(np.diff(pts) > 0)

    def test_random_pins_endpoints(self):
        pts = design_points(6, 1, 100, strategy="random", seed=4)
        assert pts[0] == 1 and pts[-1] == 100
        assert np.all(np.diff(pts) > 0)

    def test_random_is_seeded(self):
        a = design_points(6, 1, 100, strategy="random", seed=4)
        b = design_points(6, 1, 100, strategy="random", seed=4)
        np.testing.assert_array_equal(a, b)
        c = design_points(6, 1, 100, strategy="random", seed=5)
        assert not np.array_equal(a, c)

    def test_all_strategies_in_range(self):
        for strat in ("chebyshev", "uniform", "random"):
            pts = design_points(7, 3, 50, strategy=strat, seed=0)
            assert pts.min() >= 3 and pts.max() <= 50

    def test_validation(self):
        with pytest.raises(ValueError, match="strategy"):
            design_points(5, 1, 100, strategy="grid")
        with pytest.raises(ValueError, match="at least 2"):
            design_points(1, 1, 100)
        with pytest.raises(ValueError, match="low < high"):
            design_points(3, 100, 100)


class TestKneeGuidedDesign:
    def _net(self):
        from repro.core import ClosedNetwork, Station

        return ClosedNetwork(
            [Station("web", 0.02), Station("db", 0.08)], think_time=1.0
        )

    def test_concentrates_points_below_the_knee(self):
        from repro.workflow.chebydesign import knee_guided_design_points

        net = self._net()  # knee N* = (1 + 0.1) / 0.08 = 13.75
        pts = knee_guided_design_points(net, 8, 1, 100)
        assert pts[0] >= 1 and pts[-1] <= 100
        assert np.all(np.diff(pts) > 0)
        # at least two points on the rising side of the knee
        assert np.sum(pts <= 14) >= 2

    def test_falls_back_to_chebyshev_when_knee_outside_range(self):
        from repro.workflow.chebydesign import knee_guided_design_points

        net = self._net()
        pts = knee_guided_design_points(net, 5, 20, 100)  # knee < low
        np.testing.assert_array_equal(
            pts, design_points(5, 20, 100, strategy="chebyshev")
        )

    def test_validation(self):
        from repro.workflow.chebydesign import knee_guided_design_points

        net = self._net()
        with pytest.raises(ValueError, match="at least 2"):
            knee_guided_design_points(net, 1, 1, 100)
        with pytest.raises(ValueError, match="low < high"):
            knee_guided_design_points(net, 4, 50, 50)
