"""Multi-class AMVA / multi-class MVASD, validated against multi-class DES."""

import numpy as np
import pytest

from repro.core import exact_multiclass_mva
from repro.core.multiclass_amva import bard_schweitzer, multiclass_mvasd
from repro.simulation.multiclass import ClassSpec, simulate_multiclass


class TestBardSchweitzer:
    def test_close_to_exact_small_lattice(self):
        demands = [[0.08, 0.05], [0.04, 0.09]]
        exact = exact_multiclass_mva(demands, [6, 5], [1.0, 0.5])
        x, r, q = bard_schweitzer(np.array(demands), [6, 5], [1.0, 0.5])
        # Bard-Schweitzer's typical accuracy band at small populations.
        np.testing.assert_allclose(x, exact.throughput, rtol=0.06)
        np.testing.assert_allclose(r, exact.response_time, rtol=0.12)

    def test_single_class_matches_schweitzer(self, two_station_net):
        from repro.core import schweitzer_amva

        x, r, _ = bard_schweitzer(np.array([[0.05], [0.08]]), [20], [1.0])
        ref = schweitzer_amva(two_station_net, 20)
        assert x[0] == pytest.approx(ref.throughput[-1], rel=1e-6)

    def test_empty_class_contributes_nothing(self):
        x, r, q = bard_schweitzer(np.array([[0.1, 0.2]]), [5, 0], [1.0, 1.0])
        assert x[1] == 0.0
        x_solo, _, _ = bard_schweitzer(np.array([[0.1]]), [5], [1.0])
        assert x[0] == pytest.approx(x_solo[0], rel=1e-8)

    def test_delay_station_kind(self):
        x_q, r_q, _ = bard_schweitzer(np.array([[0.1]]), [10], [1.0])
        x_d, r_d, _ = bard_schweitzer(
            np.array([[0.1]]), [10], [1.0], station_kinds=["delay"]
        )
        assert x_d[0] == pytest.approx(10 / 1.1, rel=1e-8)
        assert x_d[0] > x_q[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            bard_schweitzer(np.array([[-0.1]]), [1], [1.0])
        with pytest.raises(ValueError):
            bard_schweitzer(np.array([[0.1]]), [1, 2], [1.0])


class TestMulticlassMVASD:
    STATIONS = ("cpu", "disk")

    def _demands(self):
        return {
            "writer": {"cpu": 0.03, "disk": lambda n: 0.05 + 0.02 * np.exp(-n / 20)},
            "reader": {"cpu": 0.03, "disk": 0.01},
        }

    def test_trajectory_shapes(self):
        traj = multiclass_mvasd(
            self.STATIONS,
            self._demands(),
            mix={"writer": 1, "reader": 3},
            max_total_population=40,
            think_times={"writer": 1.0, "reader": 1.0},
        )
        assert traj.throughput.shape == (40, 2)
        assert traj.populations.sum(axis=1).tolist() == list(range(1, 41))

    def test_mix_apportionment(self):
        traj = multiclass_mvasd(
            self.STATIONS,
            self._demands(),
            mix={"writer": 1, "reader": 3},
            max_total_population=40,
            think_times={"writer": 1.0, "reader": 1.0},
        )
        assert traj.populations[-1].tolist() == [10, 30]

    def test_varying_demand_consumed(self):
        # demand decay must raise the writer ceiling vs frozen-at-1 demands
        frozen = {
            "writer": {"cpu": 0.03, "disk": 0.07},
            "reader": {"cpu": 0.03, "disk": 0.01},
        }
        kw = dict(
            mix={"writer": 1, "reader": 1},
            max_total_population=60,
            think_times={"writer": 1.0, "reader": 1.0},
        )
        varying = multiclass_mvasd(self.STATIONS, self._demands(), **kw)
        static = multiclass_mvasd(self.STATIONS, frozen, **kw)
        assert varying.total_throughput[-1] > static.total_throughput[-1]

    def test_against_multiclass_des(self):
        demands = {
            "writer": {"cpu": 0.030, "disk": 0.050},
            "reader": {"cpu": 0.030, "disk": 0.010},
        }
        traj = multiclass_mvasd(
            self.STATIONS,
            demands,
            mix={"writer": 1, "reader": 1},
            max_total_population=16,
            think_times={"writer": 1.0, "reader": 1.0},
        )
        sim = simulate_multiclass(
            self.STATIONS,
            servers={"cpu": 1, "disk": 1},
            classes=[
                ClassSpec("writer", 8, 1.0, demands["writer"]),
                ClassSpec("reader", 8, 1.0, demands["reader"]),
            ],
            duration=400.0,
            warmup=40.0,
            seed=3,
        )
        np.testing.assert_allclose(traj.throughput[-1], sim.throughput, rtol=0.08)

    def test_cycle_time_accessor(self):
        traj = multiclass_mvasd(
            self.STATIONS,
            self._demands(),
            mix={"writer": 1, "reader": 1},
            max_total_population=10,
            think_times={"writer": 1.0, "reader": 0.5},
        )
        assert traj.cycle_time("reader")[0] >= 0.5
        with pytest.raises(KeyError):
            traj.cycle_time("admin")

    def test_validation(self):
        with pytest.raises(ValueError, match="cover"):
            multiclass_mvasd(
                self.STATIONS,
                self._demands(),
                mix={"writer": 1},
                max_total_population=5,
                think_times={"writer": 1.0, "reader": 1.0},
            )
        with pytest.raises(ValueError, match="missing demands"):
            multiclass_mvasd(
                self.STATIONS,
                {"writer": {"cpu": 0.1}},
                mix={"writer": 1},
                max_total_population=5,
                think_times={"writer": 1.0},
            )


class TestMulticlassDES:
    def test_single_class_matches_exact_theory(self, two_station_net):
        from repro.core import exact_mva

        xs = [
            simulate_multiclass(
                ("cpu", "disk"),
                servers={"cpu": 1, "disk": 1},
                classes=[ClassSpec("only", 10, 1.0, {"cpu": 0.05, "disk": 0.08})],
                duration=300.0,
                warmup=30.0,
                seed=s,
            ).total_throughput
            for s in (4, 5, 6)
        ]
        exact = exact_mva(two_station_net, 10).throughput[-1]
        assert np.mean(xs) == pytest.approx(exact, rel=0.04)

    def test_class_isolation_of_light_class(self):
        # the reader class (tiny disk demand) must see far lower response
        # times than the writer class at the same station set
        sim = simulate_multiclass(
            ("disk",),
            servers={"disk": 1},
            classes=[
                ClassSpec("writer", 6, 1.0, {"disk": 0.08}),
                ClassSpec("reader", 6, 1.0, {"disk": 0.01}),
            ],
            duration=300.0,
            warmup=30.0,
            seed=1,
        )
        w = sim.of_class("writer")
        r = sim.of_class("reader")
        assert r["response_time"] < w["response_time"]

    def test_validation(self):
        with pytest.raises(ValueError, match="total population"):
            simulate_multiclass(("a",), {"a": 1}, [ClassSpec("x", 0, 1.0, {"a": 0.1})], 10.0)
        with pytest.raises(ValueError, match="duplicate"):
            simulate_multiclass(
                ("a",),
                {"a": 1},
                [ClassSpec("x", 1, 1.0, {"a": 0.1}), ClassSpec("x", 1, 1.0, {"a": 0.1})],
                10.0,
            )
        with pytest.raises(ValueError, match="nothing to do"):
            simulate_multiclass(("a",), {"a": 1}, [ClassSpec("x", 1, 0.0, {})], 10.0)
