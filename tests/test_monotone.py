"""Fritsch-Carlson monotone interpolation."""

import numpy as np
import pytest

from repro.interpolate import MonotoneCubicSpline, ServiceDemandModel


@pytest.fixture
def decaying():
    x = np.array([1.0, 14, 28, 70, 140, 210])
    y = 0.05 + 0.1 * np.exp(-x / 60.0)
    return x, y


class TestMonotoneCubicSpline:
    def test_interpolates_knots(self, decaying):
        x, y = decaying
        s = MonotoneCubicSpline(x, y)
        np.testing.assert_allclose(s(x), y, rtol=1e-12)

    def test_monotone_between_monotone_data(self, decaying):
        x, y = decaying
        s = MonotoneCubicSpline(x, y)
        dense = s(np.linspace(1, 210, 1000))
        assert np.all(np.diff(dense) <= 1e-12)

    def test_matches_scipy_pchip_shape(self, decaying):
        from scipy.interpolate import PchipInterpolator

        x, y = decaying
        ours = MonotoneCubicSpline(x, y)
        ref = PchipInterpolator(x, y)
        q = np.linspace(1, 210, 101)
        # different boundary rules allowed; interiors must agree closely
        np.testing.assert_allclose(ours(q), ref(q), rtol=0.02)

    def test_no_overshoot_at_plateau(self):
        # step-like data: classical splines overshoot, PCHIP must not.
        x = np.array([0.0, 1, 2, 3, 4, 5])
        y = np.array([0.0, 0.0, 0.0, 1.0, 1.0, 1.0])
        s = MonotoneCubicSpline(x, y)
        dense = s(np.linspace(0, 5, 500))
        assert dense.min() >= -1e-12
        assert dense.max() <= 1 + 1e-12

    def test_local_extremum_gets_zero_tangent(self):
        s = MonotoneCubicSpline([0.0, 1.0, 2.0], [0.0, 1.0, 0.0])
        assert s.tangents[1] == 0.0

    def test_clamped_extrapolation(self, decaying):
        x, y = decaying
        s = MonotoneCubicSpline(x, y)
        assert s(-5.0) == pytest.approx(y[0])
        assert s(1e5) == pytest.approx(y[-1])
        assert s(1e5, deriv=1) == 0.0

    def test_first_derivative_consistent(self, decaying):
        x, y = decaying
        s = MonotoneCubicSpline(x, y)
        q = np.linspace(5, 200, 17)
        h = 1e-6
        fd = (s(q + h) - s(q - h)) / (2 * h)
        np.testing.assert_allclose(s(q, deriv=1), fd, rtol=1e-4, atol=1e-9)

    def test_degenerate_sizes(self):
        s1 = MonotoneCubicSpline([2.0], [5.0])
        assert s1(0.0) == 5.0
        s2 = MonotoneCubicSpline([0.0, 1.0], [1.0, 3.0])
        assert s2(0.5) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MonotoneCubicSpline([1.0, 1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            MonotoneCubicSpline([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            MonotoneCubicSpline([1.0, 2.0], [1.0, 2.0])(1.5, deriv=2)


class TestPchipDemandModel:
    def test_kind_pchip(self, decaying):
        x, y = decaying
        m = ServiceDemandModel(x, y, kind="pchip")
        np.testing.assert_allclose(m(x), y, rtol=1e-9)
        dense = m(np.linspace(1, 210, 300))
        assert np.all(np.diff(dense) <= 1e-12)
