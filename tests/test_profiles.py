"""Demand profiles."""

import numpy as np
import pytest

from repro.apps import DemandProfile


class TestFactories:
    def test_constant(self):
        p = DemandProfile.constant(0.1)
        assert p(1) == 0.1
        assert p(1000) == 0.1

    def test_exp_decay_limits(self):
        p = DemandProfile.exp_decay(0.4, 0.2, 50.0)
        assert p(0) == pytest.approx(0.4)
        assert p(10_000) == pytest.approx(0.2, rel=1e-6)

    def test_exp_decay_monotone_decreasing(self):
        p = DemandProfile.exp_decay(0.4, 0.2, 50.0)
        n = np.arange(1, 500)
        assert np.all(np.diff(p(n)) < 0)

    def test_power_decay(self):
        p = DemandProfile.power_decay(0.5, 0.1, exponent=1.0)
        assert p(1) == pytest.approx(0.5)
        assert p(4) == pytest.approx(0.2)

    def test_array_and_scalar(self):
        p = DemandProfile.exp_decay(0.4, 0.2, 50.0)
        assert isinstance(p(5.0), float)
        assert p(np.array([1.0, 2.0])).shape == (2,)

    def test_validation(self):
        with pytest.raises(ValueError):
            DemandProfile.constant(-0.1)
        with pytest.raises(ValueError):
            DemandProfile.exp_decay(0.4, 0.2, 0.0)
        with pytest.raises(ValueError):
            DemandProfile.power_decay(0.4, 0.2, exponent=0.0)


class TestCombinators:
    def test_bump_peaks_at_center(self):
        base = DemandProfile.constant(0.1)
        p = base.with_bump(center=100, width=10, amplitude=0.05)
        assert p(100) == pytest.approx(0.15)
        assert p(100) > p(80) > p(50)
        assert p(1) == pytest.approx(0.1, rel=1e-4)

    def test_negative_bump_is_dip(self):
        p = DemandProfile.constant(0.1).with_bump(50, 5, -0.02)
        assert p(50) == pytest.approx(0.08)

    def test_bump_never_negative_output(self):
        p = DemandProfile.constant(0.01).with_bump(50, 5, -0.5)
        assert p(50) == 0.0  # clipped

    def test_scaled(self):
        p = DemandProfile.constant(0.1).scaled(2.0)
        assert p(1) == pytest.approx(0.2)

    def test_floor(self):
        p = DemandProfile.exp_decay(0.4, 0.0, 10.0).floor(0.05)
        assert p(10_000) == pytest.approx(0.05)

    def test_validation(self):
        base = DemandProfile.constant(0.1)
        with pytest.raises(ValueError):
            base.with_bump(10, 0.0, 0.1)
        with pytest.raises(ValueError):
            base.scaled(-1.0)
        with pytest.raises(ValueError):
            base.floor(-0.1)
