"""ServiceDemandModel / DemandTable."""

import numpy as np
import pytest

from repro.interpolate import (
    DemandTable,
    ServiceDemandModel,
    UniversalScalabilityLaw,
)


@pytest.fixture
def samples():
    levels = np.array([1.0, 14, 28, 70, 140, 210])
    demands = 0.08 + 0.08 * np.exp(-levels / 60.0)
    return levels, demands


class TestServiceDemandModel:
    def test_interpolates_through_samples(self, samples):
        levels, demands = samples
        m = ServiceDemandModel(levels, demands)
        np.testing.assert_allclose(m(levels), demands, rtol=1e-9)

    def test_clamped_outside_range(self, samples):
        levels, demands = samples
        m = ServiceDemandModel(levels, demands)
        assert m(0.0) == pytest.approx(demands[0])
        assert m(10_000.0) == pytest.approx(demands[-1])

    def test_never_negative(self):
        # A wiggly spline through near-zero data must clip at 0.
        m = ServiceDemandModel([1, 2, 3, 4, 5], [0.0, 0.5, 0.0, 0.5, 0.0])
        q = np.linspace(1, 5, 101)
        assert np.all(m(q) >= 0)

    def test_sorts_unsorted_input(self):
        m = ServiceDemandModel([30, 1, 10], [0.1, 0.3, 0.2])
        assert m(1.0) == pytest.approx(0.3)
        assert m(30.0) == pytest.approx(0.1)

    def test_duplicate_levels_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            ServiceDemandModel([1, 1, 2], [0.1, 0.1, 0.2])

    def test_negative_demands_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ServiceDemandModel([1, 2], [0.1, -0.2])

    def test_kind_constant_is_mean(self, samples):
        levels, demands = samples
        m = ServiceDemandModel(levels, demands, kind="constant")
        assert m(50.0) == pytest.approx(demands.mean())

    def test_kind_linear(self):
        m = ServiceDemandModel([0, 10], [0.0, 1.0], kind="linear")
        assert m(5.0) == pytest.approx(0.5)

    def test_kind_smoothing(self, samples):
        levels, demands = samples
        m = ServiceDemandModel(levels, demands, kind="smoothing", lam=0.0)
        np.testing.assert_allclose(m(levels), demands, atol=1e-8)

    def test_single_sample_behaves_constant(self):
        m = ServiceDemandModel([10.0], [0.2])
        assert m(1.0) == 0.2
        assert m(100.0) == 0.2
        assert m.slope(50.0) == 0.0

    def test_two_samples_fall_back_to_linear(self):
        m = ServiceDemandModel([0.0, 10.0], [0.0, 1.0], kind="cubic")
        assert m(5.0) == pytest.approx(0.5)

    def test_slope_negative_for_decaying_demand(self, samples):
        levels, demands = samples
        m = ServiceDemandModel(levels, demands)
        assert m.slope(30.0) < 0

    def test_resampled_reads_off_the_model(self, samples):
        levels, demands = samples
        dense = ServiceDemandModel(levels, demands)
        sparse = dense.resampled([1, 100, 210])
        assert sparse.levels.size == 3
        np.testing.assert_allclose(sparse(np.array([1.0, 210.0])),
                                   dense(np.array([1.0, 210.0])), rtol=1e-9)

    def test_invalid_kind_and_axis(self, samples):
        levels, demands = samples
        with pytest.raises(ValueError, match="kind"):
            ServiceDemandModel(levels, demands, kind="quintic")
        with pytest.raises(ValueError, match="axis"):
            ServiceDemandModel(levels, demands, axis="users")


class TestVectorizedCall:
    @pytest.mark.parametrize("kind", ["cubic", "pchip", "linear", "constant", "smoothing"])
    def test_array_call_matches_scalar_loop(self, samples, kind):
        levels, demands = samples
        model = ServiceDemandModel(levels, demands, kind=kind)
        query = np.linspace(0.5, 250.0, 40)
        vectorized = model(query)
        assert vectorized.shape == query.shape
        scalars = np.array([float(model(float(q))) for q in query])
        np.testing.assert_array_equal(vectorized, scalars)

    def test_scalar_call_stays_scalar(self, samples):
        levels, demands = samples
        model = ServiceDemandModel(levels, demands)
        assert np.isscalar(model(10.0)) or np.ndim(model(10.0)) == 0

    def test_array_shape_preserved(self, samples):
        levels, demands = samples
        model = ServiceDemandModel(levels, demands)
        grid = np.arange(1.0, 13.0).reshape(3, 4)
        assert model(grid).shape == (3, 4)

    @pytest.mark.parametrize("kind", ["cubic", "pchip", "linear", "constant", "smoothing"])
    def test_model_is_picklable(self, samples, kind):
        import pickle

        levels, demands = samples
        model = ServiceDemandModel(levels, demands, kind=kind)
        clone = pickle.loads(pickle.dumps(model))
        query = np.linspace(1.0, 210.0, 17)
        np.testing.assert_array_equal(clone(query), model(query))
        assert clone.slope(35.0) == pytest.approx(model.slope(35.0))


class TestDemandTable:
    def test_fit_and_lookup(self, samples):
        levels, demands = samples
        table = DemandTable.fit(levels, {"cpu": demands, "disk": demands * 0.1})
        at50 = table.demands_at(50.0)
        assert set(at50) == {"cpu", "disk"}
        assert at50["disk"] == pytest.approx(at50["cpu"] * 0.1, rel=0.05)

    def test_functions_are_callables(self, samples):
        levels, demands = samples
        table = DemandTable.fit(levels, {"cpu": demands})
        fn = table.functions()["cpu"]
        assert fn(1.0) == pytest.approx(demands[0], rel=1e-6)

    def test_axis_mismatch_rejected(self, samples):
        levels, demands = samples
        m_conc = ServiceDemandModel(levels, demands, axis="concurrency")
        with pytest.raises(ValueError, match="axis"):
            DemandTable(models={"cpu": m_conc}, axis="throughput")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            DemandTable(models={})

    def test_resampled_all_stations(self, samples):
        levels, demands = samples
        table = DemandTable.fit(levels, {"cpu": demands, "disk": demands * 0.5})
        sparse = table.resampled([1, 70, 210])
        assert all(m.levels.size == 3 for m in sparse.models.values())

    def test_with_kind_refits(self, samples):
        levels, demands = samples
        table = DemandTable.fit(levels, {"cpu": demands})
        const = table.with_kind("constant")
        assert const.models["cpu"](5.0) == pytest.approx(demands.mean())

    def test_demand_matrix_matches_per_station_calls(self, samples):
        levels, demands = samples
        table = DemandTable.fit(levels, {"cpu": demands, "disk": demands * 0.5})
        query = np.arange(1.0, 31.0)
        matrix = table.demand_matrix(query)
        assert matrix.shape == (30, 2)
        for j, name in enumerate(table.stations()):
            np.testing.assert_array_equal(matrix[:, j], table.models[name](query))


class TestUniversalScalabilityLaw:
    def test_exact_parameter_recovery(self):
        lam, sigma, kappa = 25.0, 0.03, 4e-4
        n = np.array([1.0, 5, 10, 25, 50, 100, 200])
        x = lam * n / (1 + sigma * (n - 1) + kappa * n * (n - 1))
        usl = UniversalScalabilityLaw.fit(n, x)
        assert usl.lambda_ == pytest.approx(lam, rel=1e-8)
        assert usl.sigma == pytest.approx(sigma, rel=1e-6)
        assert usl.kappa == pytest.approx(kappa, rel=1e-6)
        np.testing.assert_allclose(usl.throughput(n), x, rtol=1e-8)

    def test_linear_scaling_collapses_to_zero_coefficients(self):
        n = np.array([1.0, 2, 4, 8, 16])
        usl = UniversalScalabilityLaw.fit(n, 3.0 * n)
        assert usl.sigma == 0.0 and usl.kappa == 0.0
        assert usl.peak_concurrency == np.inf
        assert usl.speedup(16.0) == pytest.approx(16.0)

    def test_peak_concurrency_formula(self):
        usl = UniversalScalabilityLaw(lambda_=10.0, sigma=0.04, kappa=1e-4)
        assert usl.peak_concurrency == pytest.approx(np.sqrt(0.96 / 1e-4))
        # throughput is maximal in the neighbourhood of N*
        star = usl.peak_concurrency
        assert usl.throughput(star) >= usl.throughput(star * 0.5)
        assert usl.throughput(star) >= usl.throughput(star * 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            UniversalScalabilityLaw(lambda_=0.0, sigma=0.1, kappa=0.0)
        with pytest.raises(ValueError):
            UniversalScalabilityLaw(lambda_=1.0, sigma=-0.1, kappa=0.0)
        with pytest.raises(ValueError, match="equal-length"):
            UniversalScalabilityLaw.fit([1, 2, 3], [1, 2])
        with pytest.raises(ValueError, match="positive"):
            UniversalScalabilityLaw.fit([1, 2, 0], [1, 2, 3])

    def test_usl_kind_in_demand_model(self):
        # demand-axis flavour: D(N) grows with contention and coherency
        n = np.array([1.0, 10, 50, 100, 200])
        d = 0.05 * (1 + 0.02 * (n - 1) + 1e-4 * n * (n - 1))
        m = ServiceDemandModel(n, d, kind="usl")
        np.testing.assert_allclose(m(n), d, rtol=1e-8)
        # extrapolates the parametric form, not a clamp
        assert m(400.0) == pytest.approx(
            0.05 * (1 + 0.02 * 399 + 1e-4 * 400 * 399), rel=1e-6
        )
