"""MVAResult container."""

import numpy as np
import pytest

from repro.core import exact_mva


@pytest.fixture
def result(two_station_net):
    return exact_mva(two_station_net, 30)


class TestMVAResult:
    def test_cycle_time_adds_think(self, result):
        np.testing.assert_allclose(result.cycle_time, result.response_time + 1.0)

    def test_at_snapshot(self, result):
        snap = result.at(10)
        assert snap["population"] == 10
        assert snap["throughput"] == pytest.approx(result.throughput[9])
        assert set(snap["utilizations"]) == {"cpu", "disk"}

    def test_at_missing_population(self, result):
        with pytest.raises(KeyError):
            result.at(31)

    def test_interpolation(self, result):
        x = result.interpolate_throughput([1.5])
        assert result.throughput[0] < x[0] < result.throughput[1]
        ct = result.interpolate_cycle_time([1.0, 30.0])
        assert ct[0] == pytest.approx(result.cycle_time[0])

    def test_station_lookup(self, result):
        np.testing.assert_array_equal(
            result.utilization_of("disk"), result.utilizations[:, 1]
        )
        np.testing.assert_array_equal(
            result.queue_length_of("cpu"), result.queue_lengths[:, 0]
        )
        with pytest.raises(KeyError):
            result.utilization_of("gpu")

    def test_summary_mentions_solver(self, result):
        assert "exact-mva" in result.summary()

    def test_shape_validation(self, result):
        from repro.core.results import MVAResult

        with pytest.raises(ValueError, match="shape"):
            MVAResult(
                populations=result.populations,
                throughput=result.throughput[:-1],
                response_time=result.response_time,
                queue_lengths=result.queue_lengths,
                residence_times=result.residence_times,
                utilizations=result.utilizations,
                station_names=result.station_names,
                think_time=1.0,
                solver="x",
            )

    def test_max_population(self, result):
        assert result.max_population == 30
