"""GrinderProperties configuration."""

import pytest

from repro.loadtest import GrinderProperties


class TestVirtualUsers:
    def test_product(self):
        p = GrinderProperties(processes=4, threads=25, agents=2)
        assert p.virtual_users == 200

    def test_with_concurrency_scales(self):
        p = GrinderProperties(processes=2, threads=10, agents=1)
        p2 = p.with_concurrency(60)
        assert p2.virtual_users == 60
        assert p2.agents == 1

    def test_with_concurrency_indivisible_agents(self):
        p = GrinderProperties(agents=3)
        with pytest.raises(ValueError, match="divisible"):
            p.with_concurrency(10)

    def test_with_concurrency_small_target(self):
        p = GrinderProperties(processes=4, threads=25)
        assert p.with_concurrency(1).virtual_users == 1


class TestStartTimes:
    def test_all_at_once_without_ramp(self):
        p = GrinderProperties(processes=2, threads=3)
        times = p.start_times(seed=0)
        assert len(times) == 6
        assert max(times) == 0.0

    def test_process_increment_batches(self):
        p = GrinderProperties(
            processes=4,
            threads=2,
            process_increment=2,
            process_increment_interval_ms=10_000,
        )
        times = p.start_times(seed=0)
        # first 2 processes (4 threads) at 0, next 2 at 10s
        assert times[0] == 0.0 and times[3] == 0.0
        assert times[4] == 10.0 and times[-1] == 10.0

    def test_initial_sleep_jitter(self):
        p = GrinderProperties(processes=1, threads=50, initial_sleep_time_ms=5000)
        times = p.start_times(seed=1)
        assert 0.0 <= min(times) and max(times) <= 5.0
        assert max(times) > 0.0

    def test_deterministic_per_seed(self):
        p = GrinderProperties(processes=1, threads=5, initial_sleep_time_ms=1000)
        assert p.start_times(seed=2) == p.start_times(seed=2)


class TestPropertiesFileRoundTrip:
    def test_serialize_parse(self):
        p = GrinderProperties(
            processes=3, threads=7, runs=100, duration_ms=120_000,
            initial_sleep_time_ms=500, process_increment=1,
        )
        text = p.to_properties()
        q = GrinderProperties.from_properties(text)
        assert q == p

    def test_parse_comments_and_colons(self):
        text = """
# a comment
! another
grinder.processes : 5
grinder.threads = 9
"""
        p = GrinderProperties.from_properties(text)
        assert (p.processes, p.threads) == (5, 9)

    def test_parse_bad_value(self):
        with pytest.raises(ValueError, match="grinder.threads"):
            GrinderProperties.from_properties("grinder.threads = many")

    def test_unknown_keys_ignored(self):
        p = GrinderProperties.from_properties("grinder.script = x.py\ngrinder.logDirectory = /tmp")
        assert p.script == "x.py"

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "grinder.properties"
        path.write_text("grinder.processes = 2\ngrinder.threads = 4\n")
        p = GrinderProperties.load(path, agents=3)
        assert p.virtual_users == 24


class TestValidation:
    def test_bad_counts(self):
        with pytest.raises(ValueError):
            GrinderProperties(processes=0)
        with pytest.raises(ValueError):
            GrinderProperties(threads=0)
        with pytest.raises(ValueError):
            GrinderProperties(duration_ms=0)
        with pytest.raises(ValueError):
            GrinderProperties(sleep_time_variation=2.0)
        with pytest.raises(ValueError):
            GrinderProperties(runs=-1)
