"""Operational laws (eqs. 1-6)."""

import numpy as np
import pytest

from repro.core import laws


class TestUtilizationLaw:
    def test_scalar(self):
        assert laws.utilization(10.0, 0.05) == pytest.approx(0.5)

    def test_array_broadcast(self):
        u = laws.utilization(np.array([1.0, 2.0]), 0.25)
        np.testing.assert_allclose(u, [0.25, 0.5])

    def test_negative_throughput_rejected(self):
        with pytest.raises(ValueError, match="throughput"):
            laws.utilization(-1.0, 0.1)

    def test_inverse_throughput(self):
        assert laws.throughput_from_utilization(0.5, 0.05) == pytest.approx(10.0)

    def test_inverse_service_time(self):
        assert laws.service_time_from_utilization(0.5, 10.0) == pytest.approx(0.05)

    def test_inverse_rejects_zero_service_time(self):
        with pytest.raises(ValueError, match="service_time"):
            laws.throughput_from_utilization(0.5, 0.0)


class TestForcedFlow:
    def test_forced_flow(self):
        assert laws.forced_flow(10.0, 7) == pytest.approx(70.0)

    def test_visit_count_inverse(self):
        assert laws.visit_count(70.0, 10.0) == pytest.approx(7.0)

    def test_roundtrip(self):
        x, v = 12.5, 3.0
        assert laws.visit_count(laws.forced_flow(x, v), x) == pytest.approx(v)


class TestServiceDemandLaw:
    def test_visits_times_service(self):
        assert laws.service_demand(7, 0.01) == pytest.approx(0.07)

    def test_from_utilization(self):
        # The Tables 2-3 extraction path: D = U / X.
        assert laws.service_demand_from_utilization(0.93, 100.0) == pytest.approx(0.0093)

    def test_both_forms_agree(self):
        v, s, x = 4.0, 0.02, 25.0
        u = laws.utilization(laws.forced_flow(x, v), s)
        assert laws.service_demand(v, s) == pytest.approx(
            laws.service_demand_from_utilization(u, x)
        )


class TestLittlesLaw:
    def test_population(self):
        assert laws.littles_law_population(10.0, 0.5, 1.0) == pytest.approx(15.0)

    def test_throughput(self):
        assert laws.littles_law_throughput(15, 0.5, 1.0) == pytest.approx(10.0)

    def test_response_time(self):
        assert laws.littles_law_response_time(15, 10.0, 1.0) == pytest.approx(0.5)

    def test_three_way_consistency(self):
        n = laws.littles_law_population(8.0, 0.25, 1.0)
        assert laws.littles_law_throughput(n, 0.25, 1.0) == pytest.approx(8.0)
        assert laws.littles_law_response_time(n, 8.0, 1.0) == pytest.approx(0.25)

    def test_zero_cycle_time_rejected(self):
        with pytest.raises(ValueError):
            laws.littles_law_throughput(5, 0.0, 0.0)


class TestBottleneckBounds:
    def test_throughput_bound(self):
        assert laws.bottleneck_throughput_bound([0.1, 0.25, 0.05]) == pytest.approx(4.0)

    def test_all_zero_demands_unbounded(self):
        assert laws.bottleneck_throughput_bound([0.0, 0.0]) == np.inf

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            laws.bottleneck_throughput_bound([])

    def test_response_lower_bound_light_load(self):
        # At N=1 the bound is the zero-contention sum of demands.
        assert laws.response_time_lower_bound(1, [0.1, 0.2], 1.0) == pytest.approx(0.3)

    def test_response_lower_bound_heavy_load(self):
        # At large N the N*Dmax - Z branch dominates.
        assert laws.response_time_lower_bound(100, [0.1, 0.2], 1.0) == pytest.approx(19.0)

    def test_knee_location(self):
        # knee = (sum(D) + Z) / Dmax
        assert laws.asymptotic_knee([0.1, 0.2], 1.0) == pytest.approx(1.3 / 0.2)
