"""Load-test sweeps and demand extraction."""

import numpy as np
import pytest

from repro.loadtest import run_sweep
from repro.loadtest.runner import LoadTestSweep, extract_demands


class TestRunSweep:
    def test_default_levels_from_app(self, mini_sweep):
        np.testing.assert_array_equal(mini_sweep.levels, [1, 5, 10, 20, 35, 50])

    def test_throughput_grows_then_saturates(self, mini_sweep):
        x = mini_sweep.throughput
        assert x[1] > x[0]
        # beyond saturation, growth flattens: last step gains < 20%
        assert x[-1] / x[-2] < 1.2

    def test_cycle_time_nondecreasing_after_knee(self, mini_sweep):
        ct = mini_sweep.cycle_time
        assert ct[-1] > ct[0]

    def test_levels_sorted_and_validated(self, mini_app):
        sweep = run_sweep(mini_app, levels=[10, 1, 5], duration=30.0, seed=0)
        np.testing.assert_array_equal(sweep.levels, [1, 5, 10])
        with pytest.raises(ValueError):
            run_sweep(mini_app, levels=[0, 5], duration=30.0)

    def test_reproducible(self, mini_app):
        a = run_sweep(mini_app, levels=[1, 5], duration=30.0, seed=9)
        b = run_sweep(mini_app, levels=[1, 5], duration=30.0, seed=9)
        np.testing.assert_array_equal(a.throughput, b.throughput)


class TestDemandExtraction:
    def test_extracted_close_to_truth(self, mini_sweep):
        # service-demand law recovers the profile's demands at each level
        app = mini_sweep.application
        for lvl, run in zip(mini_sweep.levels, mini_sweep.runs):
            est = extract_demands(run, app)
            truth = app.true_demands_at(int(lvl))
            # Single-user runs see few completions, so the utilization
            # estimate is noisy there — exactly the real-world situation.
            tol = 0.3 if lvl <= 1 else 0.15
            for name in ("db.disk", "db.cpu", "app.cpu"):
                assert est[name] == pytest.approx(truth[name], rel=tol)

    def test_demand_samples_decrease(self, mini_sweep):
        samples = mini_sweep.demand_samples()
        # measured demands must mirror the decaying profile (first vs last)
        assert samples["db.disk"][-1] < samples["db.disk"][0]

    def test_demand_table_concurrency_axis(self, mini_sweep):
        table = mini_sweep.demand_table()
        assert table.axis == "concurrency"
        truth = mini_sweep.application.true_demands_at(20)
        assert table.demands_at(20.0)["db.disk"] == pytest.approx(
            truth["db.disk"], rel=0.15
        )

    def test_demand_table_throughput_axis(self, mini_sweep):
        table = mini_sweep.demand_table(axis="throughput")
        assert table.axis == "throughput"
        # abscissa are measured throughputs -> interpolation at X works
        x_mid = float(mini_sweep.throughput[2])
        assert table.demands_at(x_mid)["db.disk"] > 0

    def test_demand_table_invalid_axis(self, mini_sweep):
        with pytest.raises(ValueError):
            mini_sweep.demand_table(axis="users")


class TestSubset:
    def test_subset_picks_levels(self, mini_sweep):
        sub = mini_sweep.subset([1, 20, 50])
        np.testing.assert_array_equal(sub.levels, [1, 20, 50])
        assert sub.runs[0] is mini_sweep.runs[0]

    def test_subset_missing_level(self, mini_sweep):
        with pytest.raises(KeyError, match="7"):
            mini_sweep.subset([1, 7])


class TestUtilizationTable:
    def test_rows_per_level(self, mini_sweep):
        rows = mini_sweep.utilization_table()
        assert len(rows) == len(mini_sweep.levels)
        users, by_tier = rows[-1]
        assert users == 50
        assert 0 <= by_tier["db"].cpu <= 100

    def test_bottleneck_saturates_in_table(self, mini_sweep):
        rows = mini_sweep.utilization_table()
        _, by_tier = rows[-1]
        assert by_tier["db"].disk > 85.0
