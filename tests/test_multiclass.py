"""Exact multi-class MVA (extension)."""

import numpy as np
import pytest

from repro.core import ClosedNetwork, Station, exact_multiclass_mva, exact_mva


class TestMultiClassMVA:
    def test_single_class_matches_exact_mva(self, two_station_net):
        res = exact_multiclass_mva(
            demands=[[0.05], [0.08]], populations=[20], think_times=[1.0]
        )
        ref = exact_mva(two_station_net, 20)
        assert res.throughput[0] == pytest.approx(ref.throughput[-1], rel=1e-10)
        assert res.response_time[0] == pytest.approx(ref.response_time[-1], rel=1e-10)

    def test_symmetric_classes_get_equal_shares(self):
        res = exact_multiclass_mva(
            demands=[[0.1, 0.1], [0.05, 0.05]],
            populations=[5, 5],
            think_times=[1.0, 1.0],
        )
        assert res.throughput[0] == pytest.approx(res.throughput[1], rel=1e-12)
        np.testing.assert_allclose(
            res.queue_lengths_by_class[:, 0], res.queue_lengths_by_class[:, 1], rtol=1e-12
        )

    def test_two_identical_classes_equal_one_merged_class(self):
        # Splitting a class in two must not change totals (BCMP insensitivity).
        merged = exact_multiclass_mva([[0.1], [0.06]], [8], [1.0])
        split = exact_multiclass_mva(
            [[0.1, 0.1], [0.06, 0.06]], [4, 4], [1.0, 1.0]
        )
        assert split.total_throughput == pytest.approx(merged.total_throughput, rel=1e-10)

    def test_littles_law_per_class(self):
        res = exact_multiclass_mva(
            demands=[[0.1, 0.2], [0.05, 0.02]],
            populations=[4, 3],
            think_times=[1.0, 0.5],
        )
        for c, n_c in enumerate(res.populations):
            reconstructed = res.throughput[c] * (res.response_time[c] + res.think_times[c])
            assert reconstructed == pytest.approx(n_c, rel=1e-10)

    def test_job_conservation(self):
        res = exact_multiclass_mva(
            demands=[[0.1, 0.2], [0.05, 0.02]],
            populations=[4, 3],
            think_times=[1.0, 0.5],
        )
        thinking = (res.throughput * np.array(res.think_times)).sum()
        assert res.queue_lengths.sum() + thinking == pytest.approx(7.0, rel=1e-10)

    def test_zero_population_class(self):
        res = exact_multiclass_mva(
            demands=[[0.1, 0.2]], populations=[5, 0], think_times=[1.0, 1.0]
        )
        assert res.throughput[1] == 0.0
        ref = exact_multiclass_mva([[0.1]], [5], [1.0])
        assert res.throughput[0] == pytest.approx(ref.throughput[0], rel=1e-12)

    def test_all_empty(self):
        res = exact_multiclass_mva([[0.1]], [0], [1.0])
        assert res.total_throughput == 0.0
        assert res.queue_lengths.sum() == 0.0

    def test_delay_station_kind(self):
        res_q = exact_multiclass_mva([[0.1]], [10], [1.0], station_kinds=["queue"])
        res_d = exact_multiclass_mva([[0.1]], [10], [1.0], station_kinds=["delay"])
        # Delay station never queues -> strictly higher throughput at load.
        assert res_d.throughput[0] > res_q.throughput[0]
        # Delay network closed form: X = N / (Z + D)
        assert res_d.throughput[0] == pytest.approx(10 / 1.1, rel=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError, match="matrix"):
            exact_multiclass_mva([0.1, 0.2], [1], [1.0])
        with pytest.raises(ValueError, match="populations"):
            exact_multiclass_mva([[0.1]], [-1], [1.0])
        with pytest.raises(ValueError, match="think_times"):
            exact_multiclass_mva([[0.1]], [1], [-1.0])
        with pytest.raises(ValueError, match="station names"):
            exact_multiclass_mva([[0.1]], [1], [1.0], station_names=["a", "b"])

    def test_utilization(self):
        res = exact_multiclass_mva(
            demands=[[0.1, 0.05]], populations=[3, 3], think_times=[1.0, 1.0]
        )
        expected = res.throughput[0] * 0.1 + res.throughput[1] * 0.05
        assert res.utilizations[0] == pytest.approx(expected, rel=1e-12)
