"""From-scratch cubic splines."""

import numpy as np
import pytest

from repro.interpolate import CubicSpline


@pytest.fixture
def demand_like_data():
    x = np.array([1.0, 14, 28, 70, 140, 168, 210])
    y = 0.05 + 0.1 * np.exp(-x / 80.0)
    return x, y


class TestInterpolationProperty:
    def test_passes_through_knots(self, demand_like_data):
        x, y = demand_like_data
        for bc in ("natural", "not-a-knot"):
            s = CubicSpline(x, y, bc=bc)
            np.testing.assert_allclose(s(x), y, rtol=1e-10)

    def test_clamped_passes_through_knots(self, demand_like_data):
        x, y = demand_like_data
        s = CubicSpline(x, y, bc="clamped", end_slopes=(0.0, 0.0))
        np.testing.assert_allclose(s(x), y, rtol=1e-10)

    def test_scalar_in_scalar_out(self, demand_like_data):
        x, y = demand_like_data
        s = CubicSpline(x, y)
        assert isinstance(s(50.0), float)
        assert s(np.array([50.0, 60.0])).shape == (2,)

    def test_reproduces_cubic_polynomial_with_notaknot(self):
        # Not-a-knot on >= 4 points reproduces any cubic exactly.
        x = np.array([0.0, 1.0, 2.5, 3.0, 4.5])
        y = 2 - x + 0.5 * x**2 - 0.25 * x**3
        s = CubicSpline(x, y, bc="not-a-knot", extrapolation="cubic")
        xq = np.linspace(0, 4.5, 31)
        np.testing.assert_allclose(s(xq), 2 - xq + 0.5 * xq**2 - 0.25 * xq**3, atol=1e-10)

    def test_reproduces_line_with_natural(self):
        x = np.array([0.0, 1.0, 3.0, 5.0])
        y = 3 * x + 1
        s = CubicSpline(x, y)  # straight line has zero curvature: natural fits
        xq = np.linspace(0, 5, 11)
        np.testing.assert_allclose(s(xq), 3 * xq + 1, atol=1e-10)

    def test_natural_boundary_second_derivative_zero(self, demand_like_data):
        x, y = demand_like_data
        s = CubicSpline(x, y, bc="natural")
        assert s(x[0], deriv=2) == pytest.approx(0.0, abs=1e-12)
        assert s(x[-1], deriv=2) == pytest.approx(0.0, abs=1e-12)

    def test_clamped_end_slopes_honoured(self, demand_like_data):
        x, y = demand_like_data
        s = CubicSpline(x, y, bc="clamped", end_slopes=(-0.001, 0.0))
        assert s(x[0], deriv=1) == pytest.approx(-0.001, abs=1e-10)
        assert s(x[-1], deriv=1) == pytest.approx(0.0, abs=1e-10)

    def test_matches_scipy_natural(self, demand_like_data):
        from scipy.interpolate import CubicSpline as SciPySpline

        x, y = demand_like_data
        ours = CubicSpline(x, y, bc="natural", extrapolation="cubic")
        ref = SciPySpline(x, y, bc_type="natural")
        xq = np.linspace(x[0], x[-1], 101)
        np.testing.assert_allclose(ours(xq), ref(xq), rtol=1e-9)

    def test_matches_scipy_notaknot(self, demand_like_data):
        from scipy.interpolate import CubicSpline as SciPySpline

        x, y = demand_like_data
        ours = CubicSpline(x, y, bc="not-a-knot", extrapolation="cubic")
        ref = SciPySpline(x, y, bc_type="not-a-knot")
        xq = np.linspace(x[0], x[-1], 101)
        np.testing.assert_allclose(ours(xq), ref(xq), rtol=1e-8)


class TestDerivatives:
    def test_first_derivative_finite_difference(self, demand_like_data):
        x, y = demand_like_data
        s = CubicSpline(x, y)
        xq = np.linspace(5, 200, 23)
        h = 1e-6
        fd = (s(xq + h) - s(xq - h)) / (2 * h)
        np.testing.assert_allclose(s(xq, deriv=1), fd, rtol=1e-4, atol=1e-9)

    def test_c2_continuity_at_knots(self, demand_like_data):
        x, y = demand_like_data
        s = CubicSpline(x, y)
        eps = 1e-9
        for xi in x[1:-1]:
            for d in (0, 1, 2):
                left = s(xi - eps, deriv=d)
                right = s(xi + eps, deriv=d)
                assert left == pytest.approx(right, abs=1e-4)

    def test_third_derivative_piecewise_constant(self, demand_like_data):
        x, y = demand_like_data
        s = CubicSpline(x, y)
        assert s(20.0, deriv=3) == pytest.approx(s(25.0, deriv=3), rel=1e-9)

    def test_invalid_deriv_order(self, demand_like_data):
        x, y = demand_like_data
        with pytest.raises(ValueError, match="deriv"):
            CubicSpline(x, y)(5.0, deriv=4)


class TestExtrapolation:
    def test_clamp_pegs_boundary_values(self, demand_like_data):
        # The paper's eq. 14 behaviour.
        x, y = demand_like_data
        s = CubicSpline(x, y, extrapolation="clamp")
        assert s(-100.0) == pytest.approx(y[0])
        assert s(1e6) == pytest.approx(y[-1])
        assert s(-5.0, deriv=1) == 0.0

    def test_linear_extension(self, demand_like_data):
        x, y = demand_like_data
        s = CubicSpline(x, y, extrapolation="linear")
        slope_hi = s(x[-1], deriv=1)
        assert s(x[-1] + 10) == pytest.approx(y[-1] + 10 * slope_hi, rel=1e-9)

    def test_cubic_extension_continues_polynomial(self, demand_like_data):
        x, y = demand_like_data
        s = CubicSpline(x, y, extrapolation="cubic")
        # smooth across the boundary: values just in/out nearly equal
        assert s(x[-1] - 1e-9) == pytest.approx(s(x[-1] + 1e-9), abs=1e-6)


class TestDegenerateInputs:
    def test_single_point_constant(self):
        s = CubicSpline([5.0], [2.0])
        assert s(0.0) == 2.0
        assert s(100.0) == 2.0
        assert s(5.0, deriv=1) == 0.0

    def test_two_points_linear(self):
        s = CubicSpline([0.0, 2.0], [1.0, 3.0])
        assert s(1.0) == pytest.approx(2.0)
        assert s(0.5, deriv=1) == pytest.approx(1.0)

    def test_three_points(self):
        s = CubicSpline([0.0, 1.0, 2.0], [0.0, 1.0, 4.0])
        np.testing.assert_allclose(s([0.0, 1.0, 2.0]), [0, 1, 4], atol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError, match="increasing"):
            CubicSpline([0.0, 0.0, 1.0], [1, 2, 3])
        with pytest.raises(ValueError, match="equal length"):
            CubicSpline([0.0, 1.0], [1.0])
        with pytest.raises(ValueError, match="bc"):
            CubicSpline([0.0, 1.0], [1.0, 2.0], bc="periodic")
        with pytest.raises(ValueError, match="end_slopes"):
            CubicSpline([0.0, 1.0], [1.0, 2.0], bc="clamped")
        with pytest.raises(ValueError, match="extrapolation"):
            CubicSpline([0.0, 1.0], [1.0, 2.0], extrapolation="wild")
        with pytest.raises(ValueError, match="at least one"):
            CubicSpline([], [])


class TestScilabInterp:
    def test_eq13_tuple(self, demand_like_data):
        x, y = demand_like_data
        s = CubicSpline(x, y)
        yq, yq1, yq2, yq3 = s.interp(50.0)
        assert yq == pytest.approx(s(50.0))
        assert yq1 == pytest.approx(s(50.0, deriv=1))
        assert yq2 == pytest.approx(s(50.0, deriv=2))
        assert yq3 == pytest.approx(s(50.0, deriv=3))

    def test_array_form(self, demand_like_data):
        x, y = demand_like_data
        s = CubicSpline(x, y)
        out = s.interp(np.array([10.0, 60.0]))
        assert len(out) == 4
        assert out[0].shape == (2,)
