"""Eq. 15 deviation metric and sweep scoring."""

import numpy as np
import pytest

from repro.analysis import deviation_against_sweep, mean_percent_deviation
from repro.core import mvasd


class TestMeanPercentDeviation:
    def test_exact_match_is_zero(self):
        assert mean_percent_deviation([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_hand_computed(self):
        # |1.1-1|/1 = 10%, |1.8-2|/2 = 10% -> mean 10%
        assert mean_percent_deviation([1.1, 1.8], [1.0, 2.0]) == pytest.approx(10.0)

    def test_symmetric_in_sign_of_error(self):
        a = mean_percent_deviation([1.1], [1.0])
        b = mean_percent_deviation([0.9], [1.0])
        assert a == pytest.approx(b)

    def test_scale_invariant(self):
        d1 = mean_percent_deviation([1.1, 2.2], [1.0, 2.0])
        d2 = mean_percent_deviation([110, 220], [100, 200])
        assert d1 == pytest.approx(d2)

    def test_validation(self):
        with pytest.raises(ValueError, match="equal-length"):
            mean_percent_deviation([1.0], [1.0, 2.0])
        with pytest.raises(ValueError, match="positive"):
            mean_percent_deviation([1.0], [0.0])
        with pytest.raises(ValueError, match="equal-length"):
            mean_percent_deviation([], [])


class TestDeviationAgainstSweep:
    def test_mvasd_scores_well_on_mini_app(self, mini_sweep):
        table = mini_sweep.demand_table()
        result = mvasd(
            mini_sweep.application.network, 50, demand_functions=table.functions()
        )
        report = deviation_against_sweep(result, mini_sweep)
        assert report["throughput"] < 8.0
        assert report["cycle_time"] < 8.0

    def test_explicit_levels(self, mini_sweep):
        table = mini_sweep.demand_table()
        result = mvasd(
            mini_sweep.application.network, 50, demand_functions=table.functions()
        )
        r_all = deviation_against_sweep(result, mini_sweep)
        r_some = deviation_against_sweep(result, mini_sweep, levels=[10, 35])
        assert set(r_some) == set(r_all)

    def test_levels_beyond_result_rejected(self, mini_sweep):
        table = mini_sweep.demand_table()
        result = mvasd(
            mini_sweep.application.network, 20, demand_functions=table.functions()
        )
        with pytest.raises(ValueError, match="only covers"):
            deviation_against_sweep(result, mini_sweep, levels=[35])

    def test_utilization_stations(self, mini_sweep):
        table = mini_sweep.demand_table()
        result = mvasd(
            mini_sweep.application.network, 50, demand_functions=table.functions()
        )
        report = deviation_against_sweep(
            result, mini_sweep, stations_for_utilization=["db.disk"]
        )
        assert "utilization:db.disk" in report
        assert report["utilization:db.disk"] < 15.0

    def test_rows_order(self, mini_sweep):
        table = mini_sweep.demand_table()
        result = mvasd(
            mini_sweep.application.network, 50, demand_functions=table.functions()
        )
        report = deviation_against_sweep(result, mini_sweep)
        keys = [k for k, _ in report.rows()]
        assert keys[0] == "throughput"
        assert keys[1] == "cycle_time"
