"""Load-test report rendering."""

import pytest

from repro.loadtest import sweep_summary_text, utilization_table_text


class TestUtilizationTableText:
    def test_contains_all_tiers_and_resources(self, mini_sweep):
        text = utilization_table_text(mini_sweep)
        for label in ("Load Server", "Application Server", "Database Server"):
            assert label in text
        for col in ("CPU", "Disk", "Net-Tx", "Net-Rx"):
            assert col in text

    def test_one_row_per_level(self, mini_sweep):
        text = utilization_table_text(mini_sweep)
        data_lines = [
            l for l in text.splitlines() if l and l.lstrip()[0].isdigit()
        ]
        assert len(data_lines) == len(mini_sweep.levels)

    def test_title_names_application(self, mini_sweep):
        assert "MiniApp" in utilization_table_text(mini_sweep)


class TestSweepSummaryText:
    def test_columns(self, mini_sweep):
        text = sweep_summary_text(mini_sweep)
        assert "Pages/s" in text and "Cycle R+Z (s)" in text

    def test_values_present(self, mini_sweep):
        text = sweep_summary_text(mini_sweep)
        assert f"{mini_sweep.runs[-1].tps:.3f}" in text
