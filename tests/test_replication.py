"""Replicated sweeps and confidence intervals."""

import numpy as np
import pytest

from repro.loadtest.replication import (
    ReplicatedMeasurement,
    ReplicatedSweep,
    run_replicated_sweep,
)


@pytest.fixture(scope="module")
def replicated(request):
    import tests.conftest as c

    return run_replicated_sweep(
        c._mini_app(), replications=3, levels=[1, 10, 35], duration=60.0, seed=5
    )


class TestReplicatedSweep:
    def test_shapes(self, replicated):
        assert replicated.replications == 3
        np.testing.assert_array_equal(replicated.levels, [1, 10, 35])

    def test_replications_differ(self, replicated):
        xs = [s.throughput for s in replicated.sweeps]
        assert not np.array_equal(xs[0], xs[1])

    def test_ci_covers_replication_means(self, replicated):
        for metric in ("throughput", "cycle_time"):
            for m in replicated.measurements(metric):
                lo, hi = m.interval
                assert lo <= m.mean <= hi
                assert m.half_width >= 0

    def test_mean_sweep_values(self, replicated):
        means = replicated.mean_sweep_values("throughput")
        stacked = np.vstack([s.throughput for s in replicated.sweeps])
        np.testing.assert_allclose(means, stacked.mean(axis=0))

    def test_noise_floor_dominated_by_light_load(self, replicated):
        # single-user runs see few completions -> the widest interval;
        # loaded levels are precise to ~10 % even with 3 short replications
        ms = replicated.measurements("throughput")
        assert ms[0].relative_half_width == max(m.relative_half_width for m in ms)
        assert all(m.relative_half_width < 0.15 for m in ms[1:])
        assert replicated.noise_floor("throughput") == ms[0].relative_half_width

    def test_unknown_metric(self, replicated):
        with pytest.raises(ValueError, match="metric"):
            replicated.measurements("latency")

    def test_representative_is_live_sweep(self, replicated):
        rep = replicated.representative()
        assert rep is replicated.sweeps[0]
        table = rep.demand_table()  # usable downstream
        assert table.stations()

    def test_validation(self, mini_app):
        with pytest.raises(ValueError, match="replications"):
            run_replicated_sweep(mini_app, replications=1, duration=20.0)

    def test_mismatched_grids_rejected(self, replicated, mini_app):
        from repro.loadtest import run_sweep

        other = run_sweep(mini_app, levels=[1, 10], duration=20.0, seed=1)
        with pytest.raises(ValueError, match="grid"):
            ReplicatedSweep(
                application=mini_app,
                levels=replicated.levels,
                sweeps=(replicated.sweeps[0], other),
            )


class TestParallelReplication:
    def test_workers_bit_identical_to_serial(self, mini_app):
        kwargs = dict(replications=3, levels=[1, 10], duration=40.0, seed=5)
        serial = run_replicated_sweep(mini_app, workers=1, **kwargs)
        parallel = run_replicated_sweep(mini_app, workers=2, **kwargs)
        for a, b in zip(serial.sweeps, parallel.sweeps):
            np.testing.assert_array_equal(a.throughput, b.throughput)
            np.testing.assert_array_equal(a.cycle_time, b.cycle_time)
            np.testing.assert_array_equal(a.response_time, b.response_time)

    def test_parallel_sweeps_usable_downstream(self, mini_app):
        parallel = run_replicated_sweep(
            mini_app, replications=2, levels=[1, 10], duration=40.0, seed=5, workers=2
        )
        # Workers return picklable pieces; the reassembled sweeps must be
        # live (application re-attached) for demand fitting.
        table = parallel.representative().demand_table()
        assert table.stations()

    def test_pinned_replication_output(self, mini_app):
        # Regression pin: SeedSequence-spawned streams fix each
        # replication's trajectory for all time.  If this fails, seed
        # derivation changed and every recorded experiment shifts.
        r = run_replicated_sweep(
            mini_app, replications=2, levels=[1, 10], duration=40.0, seed=5
        )
        np.testing.assert_allclose(
            r.sweeps[0].throughput,
            [0.6944444444444444, 7.083333333333333],
            rtol=0,
            atol=1e-12,
        )
        np.testing.assert_allclose(
            r.sweeps[0].cycle_time,
            [1.3604713462605011, 1.3928876304288274],
            rtol=0,
            atol=1e-12,
        )


class TestMeasurement:
    def test_relative_half_width(self):
        m = ReplicatedMeasurement(level=10, mean=20.0, half_width=1.0, replications=3)
        assert m.relative_half_width == pytest.approx(0.05)
        assert m.interval == (19.0, 21.0)


class TestPredictions:
    def test_one_prediction_per_replication_in_one_batch(self, replicated):
        batch = replicated.predictions(max_population=40)
        assert batch.solver == "batched-mvasd"
        assert batch.throughput.shape == (3, 40)
        # replications differ, so their fitted models must too
        assert not np.array_equal(batch.throughput[0], batch.throughput[1])

    def test_defaults_to_top_swept_level(self, replicated):
        batch = replicated.predictions()
        assert batch.throughput.shape[1] == int(replicated.levels[-1])

    def test_matches_per_replication_pipeline_solves(self, replicated):
        from repro.solvers import Scenario, solve

        batch = replicated.predictions(max_population=30)
        ref = solve(
            Scenario(
                replicated.application.network,
                30,
                demand_functions=replicated.sweeps[0].demand_table(kind="cubic").functions(),
            ),
            method="mvasd",
        )
        np.testing.assert_allclose(batch.throughput[0], ref.throughput, atol=1e-10)
