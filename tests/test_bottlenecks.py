"""Bottleneck ranking, migration, upgrade leverage."""

import numpy as np
import pytest

from repro.analysis.bottlenecks import (
    bottleneck_migration,
    bottleneck_ranking,
    upgrade_leverage,
)
from repro.apps import DemandProfile
from repro.core import ClosedNetwork, Station


@pytest.fixture
def net():
    return ClosedNetwork(
        [
            Station("cpu", 0.4, servers=8),    # 0.05/server, ceiling 20
            Station("disk", 0.08),             # ceiling 12.5  <- primary
            Station("net", 0.06),              # ceiling 16.7  <- secondary
        ],
        think_time=1.0,
    )


class TestRanking:
    def test_orders_by_per_server_demand(self, net):
        r = bottleneck_ranking(net)
        assert r.primary == "disk"
        assert r.secondary == "net"
        assert r.stations[-1] == "cpu"

    def test_system_ceiling(self, net):
        r = bottleneck_ranking(net)
        assert r.system_ceiling == pytest.approx(12.5)

    def test_criticality_relative_to_primary(self, net):
        r = bottleneck_ranking(net)
        assert r.criticality("disk") == 1.0
        assert r.criticality("net") == pytest.approx(0.06 / 0.08)
        with pytest.raises(KeyError):
            r.criticality("gpu")

    def test_delay_stations_excluded(self):
        net = ClosedNetwork(
            [Station("cpu", 0.1), Station("lag", 9.0, kind="delay")]
        )
        r = bottleneck_ranking(net)
        assert r.stations == ("cpu",)

    def test_table_renders(self, net):
        assert "disk" in bottleneck_ranking(net).table()

    def test_no_queueing_stations(self):
        net = ClosedNetwork([Station("lag", 1.0, kind="delay")])
        with pytest.raises(ValueError):
            bottleneck_ranking(net)


class TestMigration:
    def test_static_network_never_migrates(self, net):
        path = bottleneck_migration(net, [1, 100, 1000])
        assert all(name == "disk" for _, name in path)

    def test_varying_demands_can_migrate(self):
        # disk demand decays fast; cpu demand decays slowly -> the
        # bottleneck migrates from disk to cpu as concurrency grows.
        net = ClosedNetwork(
            [
                Station("cpu", DemandProfile.exp_decay(0.09, 0.085, 500.0)),
                Station("disk", DemandProfile.exp_decay(0.20, 0.04, 50.0)),
            ],
            think_time=1.0,
        )
        path = bottleneck_migration(net, [1, 50, 200, 500])
        names = [name for _, name in path]
        assert names[0] == "disk"
        assert names[-1] == "cpu"

    def test_empty_levels_rejected(self, net):
        with pytest.raises(ValueError):
            bottleneck_migration(net, [])


class TestUpgradeLeverage:
    def test_bottleneck_upgrade_pays(self, net):
        gains = upgrade_leverage(net, speedup=2.0)
        # disk x2 -> new ceiling min(20, 25, 16.7) = 16.7 -> gain 1.33
        assert gains["disk"] == pytest.approx(16.7 / 12.5, rel=0.01)

    def test_non_bottleneck_upgrade_buys_nothing(self, net):
        gains = upgrade_leverage(net, speedup=2.0)
        assert gains["cpu"] == pytest.approx(1.0)
        assert gains["net"] == pytest.approx(1.0)

    def test_gain_capped_by_migration(self, net):
        # even a 10x disk leaves the net ceiling in charge
        gains = upgrade_leverage(net, speedup=10.0)
        assert gains["disk"] == pytest.approx(16.7 / 12.5, rel=0.01)

    def test_validation(self, net):
        with pytest.raises(ValueError):
            upgrade_leverage(net, speedup=1.0)


class TestSolvedRanking:
    def test_primary_matches_demand_ranking_at_saturation(self, net):
        from repro.analysis.bottlenecks import solved_bottleneck_ranking

        r = solved_bottleneck_ranking(net, 100)
        assert r.primary == "disk"
        assert r.utilizations[0] > 0.95
        assert np.all(np.diff(r.utilizations) <= 1e-12)

    def test_headroom_and_unknown_station(self, net):
        from repro.analysis.bottlenecks import solved_bottleneck_ranking

        r = solved_bottleneck_ranking(net, 50)
        assert 0.0 <= r.headroom("cpu") <= 1.0
        with pytest.raises(KeyError):
            r.headroom("nope")

    def test_explicit_method_recorded(self, net):
        from repro.analysis.bottlenecks import solved_bottleneck_ranking

        r = solved_bottleneck_ranking(net, 30, method="approx-multiserver-mva")
        assert r.solver == "approx-multiserver-mva"

    def test_table_renders(self, net):
        from repro.analysis.bottlenecks import solved_bottleneck_ranking

        text = solved_bottleneck_ranking(net, 40).table()
        assert "disk" in text and "%" in text
