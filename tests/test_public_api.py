"""Public API surface and packaging hygiene."""

import importlib
import inspect

import pytest

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_from_docstring_runs(self):
        # The __init__ docstring example must actually work.
        from repro import jpetstore_application, predict_performance

        app = jpetstore_application()
        report = predict_performance(
            app,
            n_design_points=3,
            max_population=40,
            concurrency_range=(1, 40),
            duration=20.0,
            seed=0,
        )
        assert "mvasd" in report.prediction.summary()

    def test_subpackages_importable(self):
        for sub in (
            "repro.core",
            "repro.interpolate",
            "repro.simulation",
            "repro.apps",
            "repro.loadtest",
            "repro.workflow",
            "repro.analysis",
        ):
            mod = importlib.import_module(sub)
            assert mod.__doc__, f"{sub} missing module docstring"

    def test_all_public_functions_documented(self):
        missing = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not inspect.getdoc(obj):
                missing.append(name)
        assert not missing, f"undocumented public callables: {missing}"

    def test_solver_functions_share_result_type(self):
        from repro.core import (
            MVAResult,
            ClosedNetwork,
            Station,
            exact_multiserver_mva,
            exact_mva,
            mvasd,
            schweitzer_amva,
        )

        net = ClosedNetwork([Station("s", 0.1)], think_time=1.0)
        for solver in (exact_mva, exact_multiserver_mva, mvasd, schweitzer_amva):
            assert isinstance(solver(net, 3), MVAResult)
