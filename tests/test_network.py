"""Station / ClosedNetwork model objects."""

import numpy as np
import pytest

from repro.core import ClosedNetwork, Station


class TestStation:
    def test_constant_demand(self):
        st = Station("cpu", 0.1)
        assert st.demand_at(1) == 0.1
        assert st.demand_at(500) == 0.1
        assert not st.is_load_varying

    def test_callable_demand(self):
        st = Station("cpu", lambda n: 0.2 / n)
        assert st.is_load_varying
        assert st.demand_at(4) == pytest.approx(0.05)

    def test_service_time_divides_visits(self):
        st = Station("cpu", 0.21, visits=7)
        assert st.service_time_at(1) == pytest.approx(0.03)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError, match="demand"):
            Station("cpu", -0.1)

    def test_negative_callable_demand_rejected_at_eval(self):
        st = Station("cpu", lambda n: -1.0)
        with pytest.raises(ValueError, match="negative"):
            st.demand_at(1)

    def test_invalid_servers(self):
        with pytest.raises(ValueError, match="servers"):
            Station("cpu", 0.1, servers=0)

    def test_invalid_kind(self):
        with pytest.raises(ValueError, match="kind"):
            Station("cpu", 0.1, kind="weird")

    def test_with_demand_preserves_rest(self):
        st = Station("cpu", 0.1, servers=4, visits=2, kind="queue")
        st2 = st.with_demand(0.3)
        assert st2.demand == 0.3
        assert (st2.servers, st2.visits, st2.kind) == (4, 2, "queue")


class TestClosedNetwork:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ClosedNetwork([Station("a", 0.1), Station("a", 0.2)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ClosedNetwork([])

    def test_negative_think_time_rejected(self):
        with pytest.raises(ValueError, match="think_time"):
            ClosedNetwork([Station("a", 0.1)], think_time=-1)

    def test_lookup_by_name_and_index(self, two_station_net):
        assert two_station_net["cpu"].name == "cpu"
        assert two_station_net[1].name == "disk"
        with pytest.raises(KeyError):
            two_station_net["nope"]

    def test_vectors(self, multiserver_net):
        np.testing.assert_array_equal(multiserver_net.servers(), [4, 1])
        np.testing.assert_allclose(multiserver_net.demands_at(1), [0.4, 0.05])

    def test_bottleneck_uses_per_server_demand(self):
        # CPU demand 0.4 over 4 servers (0.1/server) loses to disk 0.2.
        net = ClosedNetwork(
            [Station("cpu", 0.4, servers=4), Station("disk", 0.2)]
        )
        assert net.bottleneck().name == "disk"

    def test_max_throughput(self, multiserver_net):
        # min(4/0.4, 1/0.05) = min(10, 20) = 10
        assert multiserver_net.max_throughput() == pytest.approx(10.0)

    def test_varying_demand_flag(self, varying_net, two_station_net):
        assert varying_net.has_varying_demands
        assert not two_station_net.has_varying_demands

    def test_with_demands_replaces_in_order(self, two_station_net):
        net2 = two_station_net.with_demands([0.5, 0.6])
        np.testing.assert_allclose(net2.demands_at(1), [0.5, 0.6])
        # original untouched
        np.testing.assert_allclose(two_station_net.demands_at(1), [0.05, 0.08])

    def test_with_demands_wrong_length(self, two_station_net):
        with pytest.raises(ValueError, match="expected 2"):
            two_station_net.with_demands([0.5])

    def test_with_think_time(self, two_station_net):
        assert two_station_net.with_think_time(2.5).think_time == 2.5

    def test_delay_station_excluded_from_bottleneck(self):
        net = ClosedNetwork(
            [Station("cpu", 0.1), Station("lag", 5.0, kind="delay")]
        )
        assert net.bottleneck().name == "cpu"
        assert net.max_throughput() == pytest.approx(10.0)
