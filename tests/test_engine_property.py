"""Property-based equivalence: batched kernels vs scalar solvers.

The batched kernels must reproduce the scalar trajectories to <= 1e-10
on *arbitrary* networks — random station counts, kinds, server counts,
demands, think times — and parallel sweeps must equal serial sweeps
exactly.  Hypothesis drives the network generator.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ClosedNetwork, Station, exact_mva, mvasd, schweitzer_amva
from repro.core.mvasd import _resolve_demand_functions, precompute_demand_matrix
from repro.engine import (
    batched_exact_mva,
    batched_mvasd,
    batched_schweitzer_amva,
    parallel_map,
    spawn_seeds,
)

TOL = 1e-10


@st.composite
def networks(draw, max_stations=4, multiserver=False):
    k = draw(st.integers(min_value=1, max_value=max_stations))
    kinds = draw(
        st.lists(
            st.sampled_from(["queue", "queue", "queue", "delay"]),
            min_size=k,
            max_size=k,
        )
    )
    if all(kind == "delay" for kind in kinds):
        kinds[0] = "queue"
    stations = []
    for i, kind in enumerate(kinds):
        servers = (
            draw(st.integers(min_value=1, max_value=4))
            if multiserver and kind == "queue"
            else 1
        )
        stations.append(Station(f"st{i}", 0.0, servers=servers, kind=kind))
    think = draw(
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False, allow_infinity=False)
    )
    return ClosedNetwork(stations, think_time=think)


def demand_stacks(k, max_scenarios=5):
    return st.lists(
        st.lists(
            st.floats(min_value=1e-4, max_value=0.5, allow_nan=False),
            min_size=k,
            max_size=k,
        ),
        min_size=1,
        max_size=max_scenarios,
    ).map(np.array)


@given(data=st.data(), population=st.integers(min_value=1, max_value=15))
@settings(max_examples=40, deadline=None)
def test_batched_exact_mva_matches_scalar(data, population):
    net = data.draw(networks())
    demands = data.draw(demand_stacks(len(net)))
    batched = batched_exact_mva(net, population, demands)
    for i in range(demands.shape[0]):
        scalar = exact_mva(net, population, demands=demands[i])
        np.testing.assert_allclose(
            batched.throughput[i], scalar.throughput, rtol=0, atol=TOL
        )
        np.testing.assert_allclose(
            batched.queue_lengths[i], scalar.queue_lengths, rtol=0, atol=TOL
        )
        np.testing.assert_allclose(
            batched.utilizations[i], scalar.utilizations, rtol=0, atol=TOL
        )


@given(data=st.data(), population=st.integers(min_value=1, max_value=12))
@settings(max_examples=30, deadline=None)
def test_batched_schweitzer_matches_scalar(data, population):
    net = data.draw(networks())
    demands = data.draw(demand_stacks(len(net)))
    batched = batched_schweitzer_amva(net, population, demands)
    for i in range(demands.shape[0]):
        scalar = schweitzer_amva(net, population, demands=demands[i])
        np.testing.assert_allclose(
            batched.throughput[i], scalar.throughput, rtol=0, atol=TOL
        )
        np.testing.assert_allclose(
            batched.queue_lengths[i], scalar.queue_lengths, rtol=0, atol=TOL
        )


@given(
    data=st.data(),
    population=st.integers(min_value=1, max_value=12),
    single_server=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_batched_mvasd_matches_scalar(data, population, single_server):
    net = data.draw(networks(multiserver=True))
    k = len(net)
    s = data.draw(st.integers(min_value=1, max_value=4))
    # Per-scenario demand matrices: random positive surfaces over (n, k).
    matrices = data.draw(
        st.lists(
            st.lists(
                st.floats(min_value=1e-4, max_value=0.4, allow_nan=False),
                min_size=population * k,
                max_size=population * k,
            ),
            min_size=s,
            max_size=s,
        ).map(lambda rows: np.array(rows).reshape(s, population, k))
    )
    batched = batched_mvasd(net, population, matrices, single_server=single_server)
    for i in range(s):
        mat = matrices[i]
        fns = [
            (lambda lvl, _col=mat[:, j]: _col[int(round(lvl)) - 1]) for j in range(k)
        ]
        scalar = mvasd(
            net, population, demand_functions=fns, single_server=single_server
        )
        np.testing.assert_allclose(
            batched.throughput[i], scalar.throughput, rtol=0, atol=TOL
        )
        np.testing.assert_allclose(
            batched.queue_lengths[i], scalar.queue_lengths, rtol=0, atol=TOL
        )
        np.testing.assert_allclose(
            batched.residence_times[i], scalar.residence_times, rtol=0, atol=TOL
        )


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=1, max_value=16))
@settings(max_examples=50, deadline=None)
def test_spawn_seeds_worker_count_invariant(seed, count):
    # The full derivation depends only on (seed, index): any prefix of a
    # longer spawn equals the shorter spawn, so chunking/scheduling can
    # never change which replication gets which seed.
    seeds = spawn_seeds(seed, count)
    assert spawn_seeds(seed, count) == seeds
    assert len(set(seeds)) == count
    longer = spawn_seeds(seed, count + 3)
    assert longer[:count] == seeds


def _solve_task(item, payload):
    demands, population = item
    net, = payload
    result = exact_mva(net, population, demands=demands)
    return result.throughput


@pytest.mark.parametrize("workers", [2, 3])
def test_parallel_sweep_equals_serial_exactly(two_station_net, workers):
    rng = np.random.default_rng(9)
    items = [(rng.uniform(0.01, 0.3, size=2), 20) for _ in range(6)]
    serial = parallel_map(_solve_task, items, workers=1, payload=(two_station_net,))
    parallel = parallel_map(
        _solve_task, items, workers=workers, payload=(two_station_net,)
    )
    for a, b in zip(serial, parallel):
        np.testing.assert_array_equal(a, b)


def test_precomputed_matrix_equals_per_level_mvasd(varying_net):
    # The vectorized precomputation inside mvasd must not change results:
    # evaluate the same curves per level by hand and compare trajectories.
    n = 30
    fns = _resolve_demand_functions(varying_net, None)
    matrix = precompute_demand_matrix(fns, n)
    by_level = np.array([[float(f(float(lvl))) for f in fns] for lvl in range(1, n + 1)])
    np.testing.assert_array_equal(matrix, by_level)
    result = mvasd(varying_net, n)
    np.testing.assert_array_equal(result.demands_used, matrix)
