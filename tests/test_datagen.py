"""Synthetic datapool generation."""

import pytest

from repro.apps import Datapool, synthetic_records


class TestSyntheticRecords:
    def test_deterministic(self):
        a = list(synthetic_records(5, "customer", seed=1))
        b = list(synthetic_records(5, "customer", seed=1))
        assert a == b

    def test_seed_changes_content(self):
        a = list(synthetic_records(5, "customer", seed=1))
        b = list(synthetic_records(5, "customer", seed=2))
        assert a != b

    def test_customer_schema(self):
        rec = next(synthetic_records(1, "customer"))
        assert set(rec) == {"customer_id", "name", "vehicle", "policy_value", "premium"}
        assert rec["policy_value"] >= 50_000

    def test_item_schema(self):
        rec = next(synthetic_records(1, "item"))
        assert set(rec) == {"item_id", "category", "name", "unit_price", "stock"}

    def test_count(self):
        assert len(list(synthetic_records(100, "item"))) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            list(synthetic_records(-1))
        with pytest.raises(ValueError):
            list(synthetic_records(1, kind="order"))


class TestDatapool:
    def test_size_accounting(self):
        pool = Datapool(records=1000, bytes_per_record=500)
        assert pool.size_bytes == 500_000
        assert pool.size_gb == pytest.approx(0.0005)

    def test_paper_scale_vins(self):
        # 13M customers at ~770 B/row ~ 10 GB, the paper's datapool.
        pool = Datapool(records=13_000_000, bytes_per_record=770)
        assert pool.size_gb == pytest.approx(10.0, rel=0.01)

    def test_generate_prefix(self):
        pool = Datapool(records=10)
        assert len(list(pool.generate(3))) == 3
        assert len(list(pool.generate())) == 10
        assert len(list(pool.generate(100))) == 10  # capped at pool size

    def test_cache_miss_factor_limits(self):
        pool = Datapool(records=1000, bytes_per_record=1000)  # 1 MB
        assert pool.cache_miss_factor(0.0) == pytest.approx(1.0)
        assert pool.cache_miss_factor(10e6) == pytest.approx(0.0)
        assert pool.cache_miss_factor(0.5e6) == pytest.approx(0.5)

    def test_cache_miss_monotone_in_cache(self):
        pool = Datapool(records=1000, bytes_per_record=1000)
        misses = [pool.cache_miss_factor(c) for c in (0, 2e5, 5e5, 9e5, 2e6)]
        assert all(a >= b for a, b in zip(misses, misses[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            Datapool(records=0)
        with pytest.raises(ValueError):
            Datapool(records=1, bytes_per_record=0)
        with pytest.raises(ValueError):
            Datapool(records=1).cache_miss_factor(-1.0)
